#include "perf_counters.hh"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lsched::perfcount
{

namespace
{

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

perf_event_attr
attrFor(HwEvent event)
{
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    switch (event) {
      case HwEvent::Instructions:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_INSTRUCTIONS;
        break;
      case HwEvent::CpuCycles:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_CPU_CYCLES;
        break;
      case HwEvent::CacheReferences:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_CACHE_REFERENCES;
        break;
      case HwEvent::CacheMisses:
        attr.type = PERF_TYPE_HARDWARE;
        attr.config = PERF_COUNT_HW_CACHE_MISSES;
        break;
      case HwEvent::L1dReadMisses:
        attr.type = PERF_TYPE_HW_CACHE;
        attr.config = PERF_COUNT_HW_CACHE_L1D |
                      (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                      (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
        break;
    }
    return attr;
}

} // namespace

const char *
hwEventName(HwEvent event)
{
    switch (event) {
      case HwEvent::Instructions:
        return "instructions";
      case HwEvent::CpuCycles:
        return "cpu-cycles";
      case HwEvent::CacheReferences:
        return "cache-references";
      case HwEvent::CacheMisses:
        return "cache-misses";
      case HwEvent::L1dReadMisses:
        return "L1d-read-misses";
    }
    return "?";
}

PerfCounterGroup::PerfCounterGroup(std::vector<HwEvent> events)
    : events_(std::move(events))
{
    fds_.reserve(events_.size());
    for (const HwEvent event : events_) {
        perf_event_attr attr = attrFor(event);
        const int group_fd = fds_.empty() ? -1 : fds_.front();
        const long fd =
            perfEventOpen(&attr, 0 /* this thread */, -1, group_fd, 0);
        if (fd < 0) {
            error_ = std::string("perf_event_open(") +
                     hwEventName(event) +
                     ") failed: " + std::strerror(errno);
            for (const int open_fd : fds_)
                close(open_fd);
            fds_.clear();
            return;
        }
        fds_.push_back(static_cast<int>(fd));
    }
    usable_ = !fds_.empty();
}

PerfCounterGroup::~PerfCounterGroup()
{
    for (const int fd : fds_)
        close(fd);
}

void
PerfCounterGroup::start()
{
    if (!usable_)
        return;
    ioctl(fds_.front(), PERF_EVENT_IOC_RESET,
          PERF_IOC_FLAG_GROUP);
    ioctl(fds_.front(), PERF_EVENT_IOC_ENABLE,
          PERF_IOC_FLAG_GROUP);
}

PerfSample
PerfCounterGroup::stop()
{
    PerfSample sample;
    sample.values.assign(events_.size(), 0);
    if (!usable_)
        return sample;
    ioctl(fds_.front(), PERF_EVENT_IOC_DISABLE,
          PERF_IOC_FLAG_GROUP);
    sample.valid = true;
    for (std::size_t i = 0; i < fds_.size(); ++i) {
        std::uint64_t value = 0;
        if (read(fds_[i], &value, sizeof(value)) !=
            static_cast<ssize_t>(sizeof(value))) {
            sample.valid = false;
            break;
        }
        sample.values[i] = value;
    }
    return sample;
}

bool
countersAvailable()
{
    PerfCounterGroup probe({HwEvent::Instructions});
    if (!probe.usable())
        return false;
    probe.start();
    // Something for the counter to see.
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 1000; ++i)
        x = x + static_cast<std::uint64_t>(i);
    const PerfSample sample = probe.stop();
    return sample.valid && sample.values[0] > 0;
}

} // namespace lsched::perfcount
