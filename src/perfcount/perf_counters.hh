/**
 * @file
 * Hardware performance counters via Linux perf_event_open.
 *
 * The paper validated its cache simulations against real machines;
 * this substrate does the analogue on the host: native workload runs
 * can be measured with real instruction / cache-reference /
 * cache-miss counters and compared with the simulator's prediction
 * (bench/host_validation).
 *
 * Counters are frequently unavailable — containers, locked-down
 * perf_event_paranoid, or missing PMU virtualization — so the API
 * degrades gracefully: available() reports usability, and reads on an
 * unavailable group return zeros with valid() == false rather than
 * failing.
 */

#ifndef LSCHED_PERFCOUNT_PERF_COUNTERS_HH
#define LSCHED_PERFCOUNT_PERF_COUNTERS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lsched::perfcount
{

/** The hardware events the validation benches use. */
enum class HwEvent
{
    Instructions,
    CpuCycles,
    CacheReferences, ///< last-level cache references
    CacheMisses,     ///< last-level cache misses
    L1dReadMisses,
};

/** Printable name of an event. */
const char *hwEventName(HwEvent event);

/** Counter values captured by PerfCounterGroup::read(). */
struct PerfSample
{
    /** Aligned with the events the group was built with. */
    std::vector<std::uint64_t> values;
    /** False when the counters could not be collected. */
    bool valid = false;
};

/**
 * A group of hardware counters measured over start()/stop() windows
 * on the calling thread.
 */
class PerfCounterGroup
{
  public:
    /** Try to open the given events; failures leave the group
     *  unusable but harmless. */
    explicit PerfCounterGroup(std::vector<HwEvent> events);
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    /** True when every requested counter opened successfully. */
    bool usable() const { return usable_; }

    /** Why the group is not usable (empty when usable). */
    const std::string &error() const { return error_; }

    /** Zero and enable the counters. */
    void start();

    /** Disable the counters and read their values. */
    PerfSample stop();

    /** The events this group was built with. */
    const std::vector<HwEvent> &events() const { return events_; }

  private:
    std::vector<HwEvent> events_;
    std::vector<int> fds_;
    bool usable_ = false;
    std::string error_;
};

/**
 * Quick probe: can this process use hardware counters at all?
 * (Opens and closes a trial instruction counter.)
 */
bool countersAvailable();

} // namespace lsched::perfcount

#endif // LSCHED_PERFCOUNT_PERF_COUNTERS_HH
