/**
 * @file
 * Virtual-to-physical page mapping for physically-indexed caches.
 *
 * The paper's Section 2.2 notes that "second-level caches are often
 * physically indexed, while the addresses associated with the threads
 * are virtual", and that "the virtual-to-physical memory mapping ...
 * can significantly affect second-level cache behavior" (citing
 * Bershad et al. and Kessler & Hill). This mapper lets the hierarchy
 * index the L2 by simulated physical addresses under several mapping
 * policies so that effect can be measured (bench/ablation_physical).
 */

#ifndef LSCHED_CACHESIM_PAGE_MAP_HH
#define LSCHED_CACHESIM_PAGE_MAP_HH

#include <cstdint>
#include <unordered_map>

#include "support/align.hh"
#include "support/panic.hh"
#include "support/prng.hh"

namespace lsched::cachesim
{

/** How virtual pages map to physical frames. */
enum class PageMapPolicy : std::uint8_t
{
    /** Physical == virtual (the default; virtually-indexed model). */
    Identity,
    /**
     * First-touch sequential frame allocation — what a freshly booted
     * OS gives a single process; preserves locality across pages but
     * permutes cache colours.
     */
    FirstTouch,
    /**
     * Deterministic pseudo-random frames — a fragmented machine;
     * the worst case for page-colouring assumptions.
     */
    Random,
    /**
     * Page colouring (Kessler & Hill): frames are chosen first-touch
     * but constrained to preserve the virtual page's cache colour —
     * what a colouring OS gives you; physical indexing then behaves
     * like virtual indexing.
     */
    Colored,
};

/** Lazily populated virtual-to-physical page table. */
class PageMap
{
  public:
    /**
     * @param policy mapping policy.
     * @param page_bytes page size (power of two).
     * @param colors number of cache colours (cache sets *
     *        line / page, power of two); used by Colored.
     * @param seed randomness seed for Random.
     */
    explicit PageMap(PageMapPolicy policy = PageMapPolicy::Identity,
                     std::uint64_t page_bytes = 4096,
                     std::uint64_t colors = 1,
                     std::uint64_t seed = 0x9a9e)
        : policy_(policy), pageBytes_(page_bytes), colors_(colors),
          prng_(seed)
    {
        LSCHED_ASSERT(isPowerOfTwo(page_bytes),
                      "page size must be a power of two");
        LSCHED_ASSERT(colors_ > 0 && isPowerOfTwo(colors_),
                      "colour count must be a positive power of two");
        pageShift_ = floorLog2(page_bytes);
    }

    /** Translate a virtual byte address to a physical byte address. */
    std::uint64_t
    translate(std::uint64_t vaddr)
    {
        if (policy_ == PageMapPolicy::Identity)
            return vaddr;
        const std::uint64_t vpage = vaddr >> pageShift_;
        const std::uint64_t offset = vaddr & (pageBytes_ - 1);
        auto it = table_.find(vpage);
        if (it == table_.end())
            it = table_.emplace(vpage, allocateFrame(vpage)).first;
        return (it->second << pageShift_) | offset;
    }

    /** Pages mapped so far. */
    std::size_t mappedPages() const { return table_.size(); }

    /** The policy in force. */
    PageMapPolicy policy() const { return policy_; }

    /** Drop all translations (fresh address space). */
    void
    clear()
    {
        table_.clear();
        nextFrame_ = 0;
    }

  private:
    std::uint64_t
    allocateFrame(std::uint64_t vpage)
    {
        switch (policy_) {
          case PageMapPolicy::Identity:
            return vpage;
          case PageMapPolicy::FirstTouch:
            return nextFrame_++;
          case PageMapPolicy::Random:
            // Large sparse frame space; collisions are harmless for
            // indexing purposes (no inverse mapping is kept).
            return prng_.nextBelow(1ull << 24);
          case PageMapPolicy::Colored: {
            // Advance to the next frame whose colour matches the
            // virtual page's colour.
            const std::uint64_t colour = vpage & (colors_ - 1);
            std::uint64_t frame = nextFrame_;
            while ((frame & (colors_ - 1)) != colour)
                ++frame;
            nextFrame_ = frame + 1;
            return frame;
          }
        }
        return vpage;
    }

    PageMapPolicy policy_;
    std::uint64_t pageBytes_;
    std::uint64_t colors_;
    unsigned pageShift_ = 12;
    Prng prng_;
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
    std::uint64_t nextFrame_ = 0;
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_PAGE_MAP_HH
