#include "cache.hh"

#include <algorithm>

namespace lsched::cachesim
{

Cache::Cache(CacheConfig config, bool classify)
    : config_(std::move(config))
{
    config_.validate();
    lineShift_ = floorLog2(config_.lineBytes);
    ways_ = config_.ways();
    setMask_ = config_.numSets() - 1;
    tags_.assign(config_.numLines(), kInvalid);
    dirty_.assign(config_.numLines(), 0);
    if (classify)
        classifier_ = std::make_unique<MissClassifier>(config_.numLines());
}

void
Cache::installAt(std::uint64_t set, unsigned way,
                 std::uint64_t line_addr, bool dirty, Result &res)
{
    std::uint64_t *const tag = &tags_[set * ways_];
    std::uint8_t *const dty = &dirty_[set * ways_];
    const std::uint64_t victim = tag[way];
    if (victim != kInvalid && dty[way]) {
        res.writeback = true;
        res.victimLine = victim;
        ++stats_.writebacks;
    }
    // For LRU/FIFO the newest entry sits at slot 0, so shift the
    // prefix down; Random replaces in place.
    if (config_.replacement == Replacement::Random) {
        tag[way] = line_addr;
        dty[way] = dirty ? 1 : 0;
        return;
    }
    for (unsigned j = way; j > 0; --j) {
        tag[j] = tag[j - 1];
        dty[j] = dty[j - 1];
    }
    tag[0] = line_addr;
    dty[0] = dirty ? 1 : 0;
}

Cache::Result
Cache::accessLine(std::uint64_t line_addr, bool is_write)
{
    Result res;
    ++stats_.accesses;

    const bool write_through =
        config_.writePolicy == WritePolicy::WriteThroughNoAllocate;
    const std::uint64_t set = line_addr & setMask_;
    std::uint64_t *const tag = &tags_[set * ways_];
    std::uint8_t *const dty = &dirty_[set * ways_];

    if (write_through && is_write)
        res.propagateWrite = true;

    // Hit path.
    for (unsigned i = 0; i < ways_; ++i) {
        if (tag[i] == line_addr) {
            // Write-through caches hold no dirty data.
            const std::uint8_t d = static_cast<std::uint8_t>(
                dty[i] | ((is_write && !write_through) ? 1 : 0));
            if (config_.replacement == Replacement::Lru) {
                for (unsigned j = i; j > 0; --j) {
                    tag[j] = tag[j - 1];
                    dty[j] = dty[j - 1];
                }
                tag[0] = line_addr;
                dty[0] = d;
            } else {
                dty[i] = d;
            }
            if (classifier_)
                classifier_->observe(line_addr, false);
            return res;
        }
    }

    // Miss.
    res.miss = true;
    ++stats_.misses;

    const bool allocate = !(write_through && is_write);
    if (allocate) {
        unsigned way = ways_ - 1; // LRU/FIFO victim: the oldest slot
        if (config_.replacement == Replacement::Random) {
            // Prefer an invalid way; otherwise evict pseudo-randomly.
            way = static_cast<unsigned>(victimPrng_.nextBelow(ways_));
            for (unsigned i = 0; i < ways_; ++i) {
                if (tag[i] == kInvalid) {
                    way = i;
                    break;
                }
            }
        }
        installAt(set, way, line_addr, is_write && !write_through,
                  res);
    }

    if (classifier_) {
        res.kind = classifier_->observe(line_addr, true);
        switch (res.kind) {
          case MissKind::Compulsory:
            ++stats_.compulsoryMisses;
            break;
          case MissKind::Capacity:
            ++stats_.capacityMisses;
            break;
          case MissKind::Conflict:
            ++stats_.conflictMisses;
            break;
        }
    }
    return res;
}

bool
Cache::updateIfPresent(std::uint64_t line_addr)
{
    const std::uint64_t set = line_addr & setMask_;
    std::uint64_t *const tag = &tags_[set * ways_];
    for (unsigned i = 0; i < ways_; ++i) {
        if (tag[i] == line_addr) {
            dirty_[set * ways_ + i] = 1;
            return true;
        }
    }
    return false;
}

bool
Cache::probeLine(std::uint64_t line_addr) const
{
    const std::uint64_t set = line_addr & setMask_;
    const std::uint64_t *const tag = &tags_[set * ways_];
    for (unsigned i = 0; i < ways_; ++i)
        if (tag[i] == line_addr)
            return true;
    return false;
}

void
Cache::reset()
{
    std::fill(tags_.begin(), tags_.end(), kInvalid);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    stats_ = CacheStats{};
    if (classifier_)
        classifier_->clear();
}

} // namespace lsched::cachesim
