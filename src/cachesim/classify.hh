/**
 * @file
 * Single-run compulsory / capacity / conflict miss classification.
 *
 * The paper's authors modified DineroIII "to classify misses as
 * compulsory, capacity, or conflict in a single run"; this is that
 * classifier, following Hill's three-C model:
 *
 *   - compulsory: the line has never been referenced before;
 *   - capacity:   the reference would also miss in a fully-associative
 *                 LRU cache of the same capacity;
 *   - conflict:   the reference misses only because of limited
 *                 associativity (the fully-associative shadow hits).
 *
 * The shadow cache must observe *every* access (hits included) so its
 * LRU stack stays faithful.
 */

#ifndef LSCHED_CACHESIM_CLASSIFY_HH
#define LSCHED_CACHESIM_CLASSIFY_HH

#include <cstdint>
#include <unordered_set>

#include "cachesim/fully_assoc.hh"

namespace lsched::cachesim
{

/** Kind of cache miss under the three-C model. */
enum class MissKind : std::uint8_t
{
    Compulsory,
    Capacity,
    Conflict,
};

/** Tracks the shadow state needed to label each miss. */
class MissClassifier
{
  public:
    /** @param capacity_lines line capacity of the cache being shadowed. */
    explicit MissClassifier(std::uint64_t capacity_lines)
        : shadow_(capacity_lines)
    {
        everSeen_.reserve(capacity_lines * 4);
    }

    /**
     * Observe one access to @p line and, when @p missed, return its
     * classification. Must be called for hits too (result is
     * meaningless then) so the shadow LRU stack stays in sync.
     */
    MissKind
    observe(std::uint64_t line, bool missed)
    {
        const bool shadow_hit = shadow_.access(line);
        if (!missed)
            return MissKind::Compulsory; // ignored by caller
        if (everSeen_.insert(line).second)
            return MissKind::Compulsory;
        return shadow_hit ? MissKind::Conflict : MissKind::Capacity;
    }

    /** Forget all history. */
    void
    clear()
    {
        shadow_.clear();
        everSeen_.clear();
    }

  private:
    FullyAssocLru shadow_;
    std::unordered_set<std::uint64_t> everSeen_;
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_CLASSIFY_HH
