#include "hierarchy.hh"

#include "obs/registry.hh"
#include "obs/trace.hh"
#include "support/panic.hh"

namespace lsched::cachesim
{

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : l1i_(config.l1i, config.classifyL1),
      l1d_(config.l1d, config.classifyL1),
      l2_(config.l2, config.classifyL2),
      pageMap_(config.l2PageMap, config.pageBytes,
               std::max<std::uint64_t>(
                   1, config.l2.numSets() * config.l2.lineBytes /
                          config.pageBytes),
               config.pageMapSeed),
      translate_(config.l2PageMap != PageMapPolicy::Identity)
{
    LSCHED_ASSERT(config.l2.lineBytes >= config.l1i.lineBytes &&
                      config.l2.lineBytes >= config.l1d.lineBytes,
                  "L2 line must be at least as large as the L1 lines");
    l1iToL2Shift_ = l2_.lineShift() - l1i_.lineShift();
    l1dToL2Shift_ = l2_.lineShift() - l1d_.lineShift();
}

std::uint64_t
Hierarchy::l2LineOf(std::uint64_t l1_line, unsigned shift)
{
    if (!translate_)
        return l1_line >> shift;
    // Translate at byte granularity; pages are >= L2 lines, so the
    // whole line maps within one page.
    const unsigned l1_shift = l2_.lineShift() - shift;
    return l2_.lineOf(pageMap_.translate(l1_line << l1_shift));
}

void
Hierarchy::accessThrough(Cache &l1, std::uint64_t l1_line, bool is_write)
{
    const Cache::Result r1 = l1.accessLine(l1_line, is_write);
    if (!r1.miss && !r1.writeback && !r1.propagateWrite)
        return;

    const unsigned shift = (&l1 == &l1i_) ? l1iToL2Shift_ : l1dToL2Shift_;
    if (r1.propagateWrite) {
        // Write-through L1: the store itself travels to L2 (both on
        // hit and on the no-allocate miss).
        l2_.accessLine(l2LineOf(l1_line, shift), true);
    } else if (r1.miss) {
        // Demand fetch from L2. The fill is a read even when the
        // triggering reference is a store (write-allocate fetches the
        // line first); the dirtiness lives in L1 until eviction.
        const Cache::Result r2 =
            l2_.accessLine(l2LineOf(l1_line, shift), false);
        // Dirty victim leaving L2 goes to memory; counted in
        // l2 stats' writebacks by the cache itself.
        (void)r2;
    }
    if (r1.writeback) {
        // Dirty L1 victim updates L2 in place when resident. Because
        // every L1 fill also filled L2, absence is rare (the line was
        // evicted from the much larger L2 in the meantime); in that
        // case the data retires to memory without disturbing the
        // demand statistics.
        l2_.updateIfPresent(l2LineOf(r1.victimLine, shift));
    }
}

void
Hierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    pageMap_.clear();
    ifetches_ = 0;
    dataRefs_ = 0;
}

void
Hierarchy::publishMetrics(const std::string &prefix) const
{
    if (!obs::metricsOn())
        return;
    obs::Registry &r = obs::Registry::global();
    auto level = [&](const char *name, const CacheStats &s) {
        const std::string base = prefix + "." + name;
        r.gauge(base + ".accesses").set(s.accesses);
        r.gauge(base + ".misses").set(s.misses);
        r.gauge(base + ".writebacks").set(s.writebacks);
        r.gauge(base + ".misses.compulsory").set(s.compulsoryMisses);
        r.gauge(base + ".misses.capacity").set(s.capacityMisses);
        r.gauge(base + ".misses.conflict").set(s.conflictMisses);
    };
    r.gauge(prefix + ".ifetches").set(ifetches_);
    r.gauge(prefix + ".datarefs").set(dataRefs_);
    level("l1i", l1i_.stats());
    level("l1d", l1d_.stats());
    level("l2", l2_.stats());
}

} // namespace lsched::cachesim
