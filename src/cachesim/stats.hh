/**
 * @file
 * Counters reported by the cache simulator, mirroring the rows of the
 * paper's cache tables (references, misses, miss rate, and the
 * compulsory / capacity / conflict split).
 */

#ifndef LSCHED_CACHESIM_STATS_HH
#define LSCHED_CACHESIM_STATS_HH

#include <cstdint>

namespace lsched::cachesim
{

/** Per-cache access statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    // Populated only when a MissClassifier is attached.
    std::uint64_t compulsoryMisses = 0;
    std::uint64_t capacityMisses = 0;
    std::uint64_t conflictMisses = 0;

    /** Hits = accesses - misses. */
    std::uint64_t hits() const { return accesses - misses; }

    /** Miss rate in percent (0 when no accesses). */
    double
    missRatePercent() const
    {
        return accesses
                   ? 100.0 * static_cast<double>(misses) /
                         static_cast<double>(accesses)
                   : 0.0;
    }

    /** Merge another stats block into this one. */
    CacheStats &
    operator+=(const CacheStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
        writebacks += o.writebacks;
        compulsoryMisses += o.compulsoryMisses;
        capacityMisses += o.capacityMisses;
        conflictMisses += o.conflictMisses;
        return *this;
    }
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_STATS_HH
