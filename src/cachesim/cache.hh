/**
 * @file
 * A single set-associative (or fully-associative) write-back,
 * write-allocate cache with LRU replacement and optional single-run
 * three-C miss classification.
 */

#ifndef LSCHED_CACHESIM_CACHE_HH
#define LSCHED_CACHESIM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/cache_config.hh"
#include "cachesim/classify.hh"
#include "cachesim/stats.hh"
#include "support/prng.hh"

namespace lsched::cachesim
{

/** One cache level operating on line addresses. */
class Cache
{
  public:
    /** Outcome of a single line access. */
    struct Result
    {
        bool miss = false;
        /** A dirty line was evicted to make room. */
        bool writeback = false;
        /** The store must also be sent downstream (write-through). */
        bool propagateWrite = false;
        /** Line address of the evicted dirty victim (when writeback). */
        std::uint64_t victimLine = 0;
        /** Classification, valid only when miss and classify enabled. */
        MissKind kind = MissKind::Compulsory;
    };

    /**
     * @param config validated geometry.
     * @param classify attach a MissClassifier (costs one shadow
     *        access per reference).
     */
    explicit Cache(CacheConfig config, bool classify = false);

    /**
     * Reference the line containing byte address @p line_addr (already
     * shifted to line granularity). @p is_write marks the line dirty.
     */
    Result accessLine(std::uint64_t line_addr, bool is_write);

    /**
     * Update-only probe used for writebacks arriving from an upper
     * level: marks the line dirty if present and reports presence.
     * Does not touch statistics, recency, or the classifier.
     */
    bool updateIfPresent(std::uint64_t line_addr);

    /** True if the line is resident (no state change). */
    bool probeLine(std::uint64_t line_addr) const;

    /** Convert a byte address to this cache's line address. */
    std::uint64_t
    lineOf(std::uint64_t byte_addr) const
    {
        return byte_addr >> lineShift_;
    }

    /** log2(line size). */
    unsigned lineShift() const { return lineShift_; }

    /** Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

    /** Invalidate all lines and zero the statistics. */
    void reset();

  private:
    static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

    void installAt(std::uint64_t set, unsigned way,
                   std::uint64_t line_addr, bool dirty, Result &res);

    CacheConfig config_;
    unsigned lineShift_;
    unsigned ways_;
    std::uint64_t setMask_;

    // tags_[set * ways_ + i]; for LRU/FIFO ordered newest-first.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> dirty_;

    CacheStats stats_;
    std::unique_ptr<MissClassifier> classifier_;
    Prng victimPrng_{0xCACEull};
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_CACHE_HH
