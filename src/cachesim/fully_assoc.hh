/**
 * @file
 * Fully-associative LRU line store.
 *
 * Used two ways: as the shadow cache that drives single-run 3C miss
 * classification (a miss that would have hit a fully-associative cache
 * of equal capacity is a conflict miss, otherwise a capacity miss), and
 * directly as a cache replacement state when a CacheConfig requests
 * full associativity.
 *
 * Implementation: open hash map from line address to a slot in a
 * vector-backed intrusive doubly-linked LRU list, so every operation is
 * O(1) with no per-access allocation.
 */

#ifndef LSCHED_CACHESIM_FULLY_ASSOC_HH
#define LSCHED_CACHESIM_FULLY_ASSOC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/panic.hh"

namespace lsched::cachesim
{

/** Fully-associative LRU set of line addresses with fixed capacity. */
class FullyAssocLru
{
  public:
    /** @param capacity maximum number of lines held (> 0). */
    explicit FullyAssocLru(std::uint64_t capacity)
        : capacity_(capacity)
    {
        LSCHED_ASSERT(capacity_ > 0, "fully-associative capacity is 0");
        slots_.reserve(capacity_);
        index_.reserve(capacity_ * 2);
    }

    /**
     * Touch @p line: returns true on hit. On miss the line is inserted,
     * evicting the least-recently-used line when full. Either way the
     * line becomes most-recently-used.
     */
    bool
    access(std::uint64_t line)
    {
        auto it = index_.find(line);
        if (it != index_.end()) {
            moveToFront(it->second);
            return true;
        }
        insert(line);
        return false;
    }

    /** Hit test without updating recency or inserting. */
    bool
    contains(std::uint64_t line) const
    {
        return index_.find(line) != index_.end();
    }

    /** Number of resident lines. */
    std::uint64_t size() const { return index_.size(); }

    /** Maximum number of resident lines. */
    std::uint64_t capacity() const { return capacity_; }

    /** Drop all state. */
    void
    clear()
    {
        slots_.clear();
        index_.clear();
        head_ = kNone;
        tail_ = kNone;
    }

  private:
    static constexpr std::uint32_t kNone = ~std::uint32_t{0};

    struct Slot
    {
        std::uint64_t line;
        std::uint32_t prev;
        std::uint32_t next;
    };

    void
    unlink(std::uint32_t s)
    {
        Slot &slot = slots_[s];
        if (slot.prev != kNone)
            slots_[slot.prev].next = slot.next;
        else
            head_ = slot.next;
        if (slot.next != kNone)
            slots_[slot.next].prev = slot.prev;
        else
            tail_ = slot.prev;
    }

    void
    linkFront(std::uint32_t s)
    {
        Slot &slot = slots_[s];
        slot.prev = kNone;
        slot.next = head_;
        if (head_ != kNone)
            slots_[head_].prev = s;
        head_ = s;
        if (tail_ == kNone)
            tail_ = s;
    }

    void
    moveToFront(std::uint32_t s)
    {
        if (head_ == s)
            return;
        unlink(s);
        linkFront(s);
    }

    void
    insert(std::uint64_t line)
    {
        std::uint32_t s;
        if (index_.size() >= capacity_) {
            // Recycle the LRU victim's slot.
            s = tail_;
            index_.erase(slots_[s].line);
            unlink(s);
        } else {
            s = static_cast<std::uint32_t>(slots_.size());
            slots_.push_back({});
        }
        slots_[s].line = line;
        linkFront(s);
        index_.emplace(line, s);
    }

    std::uint64_t capacity_;
    std::vector<Slot> slots_;
    std::unordered_map<std::uint64_t, std::uint32_t> index_;
    std::uint32_t head_ = kNone;
    std::uint32_t tail_ = kNone;
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_FULLY_ASSOC_HH
