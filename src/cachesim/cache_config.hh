/**
 * @file
 * Geometry description of a single cache level.
 */

#ifndef LSCHED_CACHESIM_CACHE_CONFIG_HH
#define LSCHED_CACHESIM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "support/align.hh"
#include "support/panic.hh"

namespace lsched::cachesim
{

/** Replacement policy within a set. */
enum class Replacement : std::uint8_t
{
    Lru,    ///< least recently used (DineroIII's and our default)
    Fifo,   ///< evict the oldest fill
    Random, ///< evict a deterministic pseudo-random way
};

/** Write handling. */
enum class WritePolicy : std::uint8_t
{
    /** Write-back, write-allocate (the default; what the SGI L2s do). */
    WriteBackAllocate,
    /** Write-through, no-write-allocate: stores update only on hit
     *  and never fill the cache; every store propagates downstream. */
    WriteThroughNoAllocate,
};

/**
 * Static parameters of one cache. Sizes must be powers of two and the
 * capacity must be divisible by line size times associativity.
 */
struct CacheConfig
{
    /** Human-readable level name ("L1D", "L2", ...). */
    std::string name = "cache";
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 0;
    /** Line (block) size in bytes. */
    std::uint64_t lineBytes = 0;
    /** Ways per set; 0 requests full associativity. */
    unsigned associativity = 1;
    /** Replacement policy. */
    Replacement replacement = Replacement::Lru;
    /** Write policy. */
    WritePolicy writePolicy = WritePolicy::WriteBackAllocate;

    /** Number of lines the cache can hold. */
    std::uint64_t
    numLines() const
    {
        return sizeBytes / lineBytes;
    }

    /** Effective ways per set after resolving 0 = fully associative. */
    unsigned
    ways() const
    {
        return associativity == 0
                   ? static_cast<unsigned>(numLines())
                   : associativity;
    }

    /** Number of sets. */
    std::uint64_t
    numSets() const
    {
        return numLines() / ways();
    }

    /** Abort unless the geometry is realizable. */
    void
    validate() const
    {
        LSCHED_ASSERT(sizeBytes > 0 && lineBytes > 0,
                      name, ": size and line must be non-zero");
        LSCHED_ASSERT(isPowerOfTwo(sizeBytes), name,
                      ": size must be a power of two, got ", sizeBytes);
        LSCHED_ASSERT(isPowerOfTwo(lineBytes), name,
                      ": line must be a power of two, got ", lineBytes);
        LSCHED_ASSERT(lineBytes <= sizeBytes, name,
                      ": line larger than cache");
        const unsigned w = ways();
        LSCHED_ASSERT(w > 0 && numLines() % w == 0, name,
                      ": lines (", numLines(),
                      ") not divisible by ways (", w, ")");
        LSCHED_ASSERT(isPowerOfTwo(numSets()), name,
                      ": set count must be a power of two");
    }
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_CACHE_CONFIG_HH
