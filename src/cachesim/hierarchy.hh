/**
 * @file
 * Two-level cache hierarchy: split L1 instruction/data caches backed
 * by a unified L2, matching the SGI systems the paper measures and the
 * structure its modified DineroIII simulated.
 *
 * Policy notes:
 *  - write-back, write-allocate at both levels;
 *  - an L1 miss issues one demand access to L2 (at L2 line
 *    granularity);
 *  - dirty L1 victims write back to L2 ("update if present"); because
 *    every L1 fill also filled L2, the line is almost always resident,
 *    so this models writeback traffic without perturbing the
 *    demand-miss statistics the paper reports;
 *  - references spanning line boundaries touch every covered line.
 */

#ifndef LSCHED_CACHESIM_HIERARCHY_HH
#define LSCHED_CACHESIM_HIERARCHY_HH

#include <cstdint>
#include <string>

#include "cachesim/cache.hh"
#include "cachesim/cache_config.hh"
#include "cachesim/page_map.hh"
#include "cachesim/stats.hh"

namespace lsched::cachesim
{

/** Geometry and options for a Hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    /** Attach three-C classification to L1 caches. */
    bool classifyL1 = false;
    /** Attach three-C classification to the L2 cache. */
    bool classifyL2 = true;
    /**
     * Index the L2 by simulated physical addresses under this page
     * mapping (paper Section 2.2: real second-level caches are
     * physically indexed and the VM mapping perturbs them). Identity
     * keeps the virtually-indexed model the paper's simulations used.
     */
    PageMapPolicy l2PageMap = PageMapPolicy::Identity;
    /** Page size for the mapping. */
    std::uint64_t pageBytes = 4096;
    /** Seed for the Random page policy. */
    std::uint64_t pageMapSeed = 0x9a9e;
};

/** A split-L1 / unified-L2 simulated memory hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /** Simulate an instruction fetch of @p bytes at @p addr. */
    void
    ifetch(std::uint64_t addr, std::uint64_t bytes)
    {
        ++ifetches_;
        walkLines(l1i_, addr, bytes);
    }

    /** Simulate a data load of @p bytes at @p addr. */
    void
    load(std::uint64_t addr, std::uint64_t bytes)
    {
        ++dataRefs_;
        walkLines(l1d_, addr, bytes);
    }

    /** Simulate a data store of @p bytes at @p addr. */
    void
    store(std::uint64_t addr, std::uint64_t bytes)
    {
        ++dataRefs_;
        walkLinesWrite(l1d_, addr, bytes);
    }

    /**
     * Account for @p n instruction fetches without simulating them.
     * Used by the synthetic instruction-fetch model: loop bodies are
     * L1I-resident, so only the analytic count matters (see
     * trace::SynthIFetch, which still touches each code line once so
     * compulsory misses appear).
     */
    void countIFetches(std::uint64_t n) { ifetches_ += n; }

    /** Total instruction fetches (simulated + counted). */
    std::uint64_t ifetches() const { return ifetches_; }

    /** Total data references (loads + stores). */
    std::uint64_t dataRefs() const { return dataRefs_; }

    /** Per-level statistics. */
    const CacheStats &l1iStats() const { return l1i_.stats(); }
    const CacheStats &l1dStats() const { return l1d_.stats(); }
    const CacheStats &l2Stats() const { return l2_.stats(); }

    /** Combined L1 statistics (the paper's "L1 misses" row). */
    CacheStats
    l1Stats() const
    {
        CacheStats s = l1i_.stats();
        s += l1d_.stats();
        return s;
    }

    /**
     * Combined L1 miss rate over all references, the definition that
     * reproduces the paper's L1 "rate" rows (misses / (I + D refs)).
     */
    double
    l1MissRatePercent() const
    {
        const std::uint64_t refs = ifetches_ + dataRefs_;
        return refs ? 100.0 *
                          static_cast<double>(l1Stats().misses) /
                          static_cast<double>(refs)
                    : 0.0;
    }

    /** Direct cache access, for tests and bespoke experiments. */
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    /** Invalidate everything and zero all statistics. */
    void reset();

    /**
     * Publish the hierarchy's counters as gauges named
     * "<prefix>.l1i.misses" etc. in the global metrics registry.
     * A cheap no-op unless metrics collection is enabled.
     */
    void publishMetrics(const std::string &prefix = "cachesim") const;

    /** The virtual-to-physical mapping used for L2 indexing. */
    const PageMap &pageMap() const { return pageMap_; }

  private:
    void
    walkLines(Cache &l1, std::uint64_t addr, std::uint64_t bytes)
    {
        const std::uint64_t first = l1.lineOf(addr);
        const std::uint64_t last = l1.lineOf(addr + bytes - 1);
        for (std::uint64_t line = first; line <= last; ++line)
            accessThrough(l1, line, false);
    }

    void
    walkLinesWrite(Cache &l1, std::uint64_t addr, std::uint64_t bytes)
    {
        const std::uint64_t first = l1.lineOf(addr);
        const std::uint64_t last = l1.lineOf(addr + bytes - 1);
        for (std::uint64_t line = first; line <= last; ++line)
            accessThrough(l1, line, true);
    }

    void accessThrough(Cache &l1, std::uint64_t l1_line, bool is_write);
    std::uint64_t l2LineOf(std::uint64_t l1_line, unsigned l1_shift);

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    unsigned l1iToL2Shift_;
    unsigned l1dToL2Shift_;
    PageMap pageMap_;
    bool translate_ = false;
    std::uint64_t ifetches_ = 0;
    std::uint64_t dataRefs_ = 0;
};

} // namespace lsched::cachesim

#endif // LSCHED_CACHESIM_HIERARCHY_HH
