/**
 * @file
 * Matrix multiplication C = A * B, the paper's Section 4.2 workload,
 * in all five evaluated variants:
 *
 *  - Interchanged:      jki loop order with B[k,j] registered — the
 *                       best untiled order for column-major storage;
 *  - Transposed:        A transposed before/after so the dot-product
 *                       loop streams two contiguous vectors;
 *  - TiledInterchanged: cache-tiled jki (stands in for KAP tiling);
 *  - TiledTransposed:   register- plus cache-tiled transposed form
 *                       (3x3 register block, 9 madds / 6 loads per
 *                       step, exactly the inner loop the paper reports
 *                       for the compiler-tiled code);
 *  - Threaded:          one locality-scheduled thread per dot product
 *                       with column base addresses as hints — the
 *                       paper's Section 2.1/2.4 running example.
 *
 * Instruction accounting uses the paper's measured per-madd counts
 * (Section 4.2): 5 for untiled interchanged, 2 for tiled, 3.5 for the
 * transposed/threaded inner loop.
 */

#ifndef LSCHED_WORKLOADS_MATMUL_HH
#define LSCHED_WORKLOADS_MATMUL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/prng.hh"
#include "threads/hints.hh"
#include "threads/scheduler.hh"
#include "workloads/matrix.hh"
#include "workloads/memmodel.hh"

namespace lsched::workloads
{

/** Synthetic-text ids for the matmul kernels. */
enum MatmulKernelId : unsigned
{
    kMatmulZero = 0,
    kMatmulInterchanged,
    kMatmulTransposeA,
    kMatmulTransposed,
    kMatmulTiledInterchanged,
    kMatmulTiledTransposed,
    kMatmulThreadedDot,
};

/** Fill @p m with deterministic values in [-1, 1). */
inline void
randomize(Matrix &m, std::uint64_t seed)
{
    Prng prng(seed);
    for (std::size_t j = 0; j < m.cols(); ++j)
        for (std::size_t i = 0; i < m.rows(); ++i)
            m(i, j) = prng.nextDouble(-1.0, 1.0);
}

/** Zero @p c, charging the stores. */
template <class M>
void
zeroMatrix(Matrix &c, M &model)
{
    model.enterKernel(kMatmulZero);
    for (std::size_t j = 0; j < c.cols(); ++j) {
        for (std::size_t i = 0; i < c.rows(); ++i) {
            c(i, j) = 0.0;
            model.store(&c(i, j), 8);
        }
        model.instructions(2 * c.rows());
    }
}

/**
 * Transpose @p a into @p at, charging loads and stores. Blocked
 * (32 x 32 tiles) so the strided side of the transpose reuses every
 * touched cache line instead of thrashing power-of-two-strided sets.
 */
template <class M>
void
transpose(const Matrix &a, Matrix &at, M &model)
{
    model.enterKernel(kMatmulTransposeA);
    const std::size_t n = a.rows();
    constexpr std::size_t kTile = 32;
    for (std::size_t jj = 0; jj < a.cols(); jj += kTile) {
        const std::size_t jend = std::min(jj + kTile, a.cols());
        for (std::size_t ii = 0; ii < n; ii += kTile) {
            const std::size_t iend = std::min(ii + kTile, n);
            for (std::size_t j = jj; j < jend; ++j) {
                for (std::size_t i = ii; i < iend; ++i) {
                    model.load(&a(i, j), 8);
                    at(j, i) = a(i, j);
                    model.store(&at(j, i), 8);
                }
            }
            model.instructions(4 * (jend - jj) * (iend - ii) + 8);
        }
    }
}

/**
 * Untiled interchanged (jki) multiply: the paper's best plain
 * sequential method. B[k,j] is held in a register across the inner
 * loop, so each madd costs two loads and one store.
 */
template <class M>
void
matmulInterchanged(const Matrix &a, const Matrix &b, Matrix &c, M &model)
{
    const std::size_t n = a.rows();
    zeroMatrix(c, model);
    model.enterKernel(kMatmulInterchanged);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
            model.load(&b(k, j), 8);
            const double bkj = b(k, j);
            const double *const acol = a.col(k);
            double *const ccol = c.col(j);
            for (std::size_t i = 0; i < n; ++i) {
                model.load(&acol[i], 8);
                model.load(&ccol[i], 8);
                ccol[i] += acol[i] * bkj;
                model.store(&ccol[i], 8);
            }
            model.instructions(5 * n + 4);
        }
    }
}

/**
 * Transposed multiply: At = A^T is formed first (and A is notionally
 * restored after; both transposes are charged, as in the paper's
 * timings), then each C[i,j] is a dot product of two contiguous
 * columns with the sum in a register — two loads per madd.
 */
template <class M>
void
matmulTransposed(const Matrix &a, const Matrix &b, Matrix &c, M &model)
{
    const std::size_t n = a.rows();
    Matrix at(n, n);
    transpose(a, at, model);
    model.enterKernel(kMatmulTransposed);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double *const atcol = at.col(i);
            const double *const bcol = b.col(j);
            double sum = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                model.load(&atcol[k], 8);
                model.load(&bcol[k], 8);
                sum += atcol[k] * bcol[k];
            }
            c(i, j) = sum;
            model.store(&c(i, j), 8);
            model.instructions(7 * n / 2 + 6);
        }
    }
    // Restore transpose (the second transpose the paper charges).
    Matrix dummy(n, n);
    transpose(at, dummy, model);
}

/**
 * Cache-tiled jki multiply (the KAP stand-in for the interchanged
 * form): k and j are blocked so the active slice of A stays resident,
 * and the inner loop is unrolled over three k values so each C element
 * is loaded and stored once per three madds.
 */
template <class M>
void
matmulTiledInterchanged(const Matrix &a, const Matrix &b, Matrix &c,
                        M &model, std::size_t l1_bytes,
                        std::size_t l2_bytes)
{
    const std::size_t n = a.rows();
    zeroMatrix(c, model);
    model.enterKernel(kMatmulTiledInterchanged);

    // Block k so three A columns plus one C column sit in L1, and
    // block j so the A panel (n x bk) stays within half of L2.
    std::size_t bk = l2_bytes / (16 * n * sizeof(double) / 8);
    bk = std::max<std::size_t>(3, std::min(bk, n));
    bk -= bk % 3 ? bk % 3 : 0;
    if (bk < 3)
        bk = 3;
    std::size_t bj = l1_bytes / (2 * sizeof(double)) / bk;
    bj = std::max<std::size_t>(1, std::min(bj, n));

    for (std::size_t kk = 0; kk < n; kk += bk) {
        const std::size_t kend = std::min(kk + bk, n);
        for (std::size_t jj = 0; jj < n; jj += bj) {
            const std::size_t jend = std::min(jj + bj, n);
            for (std::size_t j = jj; j < jend; ++j) {
                std::size_t k = kk;
                for (; k + 3 <= kend; k += 3) {
                    model.load(&b(k, j), 8);
                    model.load(&b(k + 1, j), 8);
                    model.load(&b(k + 2, j), 8);
                    const double b0 = b(k, j);
                    const double b1 = b(k + 1, j);
                    const double b2 = b(k + 2, j);
                    const double *const a0 = a.col(k);
                    const double *const a1 = a.col(k + 1);
                    const double *const a2 = a.col(k + 2);
                    double *const ccol = c.col(j);
                    for (std::size_t i = 0; i < n; ++i) {
                        model.load(&a0[i], 8);
                        model.load(&a1[i], 8);
                        model.load(&a2[i], 8);
                        model.load(&ccol[i], 8);
                        ccol[i] += a0[i] * b0 + a1[i] * b1 + a2[i] * b2;
                        model.store(&ccol[i], 8);
                    }
                    model.instructions(6 * n + 12);
                }
                for (; k < kend; ++k) {
                    model.load(&b(k, j), 8);
                    const double bkj = b(k, j);
                    const double *const acol = a.col(k);
                    double *const ccol = c.col(j);
                    for (std::size_t i = 0; i < n; ++i) {
                        model.load(&acol[i], 8);
                        model.load(&ccol[i], 8);
                        ccol[i] += acol[i] * bkj;
                        model.store(&ccol[i], 8);
                    }
                    model.instructions(5 * n + 4);
                }
            }
        }
    }
}

/**
 * Register- and cache-tiled transposed multiply. The inner loop is
 * the paper's reported compiler output: a 3x3 register block of C,
 * nine madds fed by six loads per k step (2 instructions per madd).
 * The k-panel of At is packed into a contiguous buffer first — the
 * copy optimization Lam et al. recommend to defeat power-of-two
 * self-interference, without which the panel's column chunks land in
 * a handful of cache sets and thrash.
 */
template <class M>
void
matmulTiledTransposed(const Matrix &a, const Matrix &b, Matrix &c,
                      M &model, std::size_t l1_bytes,
                      std::size_t l2_bytes)
{
    const std::size_t n = a.rows();
    Matrix at(n, n);
    transpose(a, at, model);
    model.enterKernel(kMatmulTiledTransposed);

    // Six active chunks of length bk must fit in half of L1; the
    // packed At panel (bk x n) must fit in half of L2.
    std::size_t bk = l1_bytes / (12 * sizeof(double));
    bk = std::min(bk, l2_bytes / (2 * n * sizeof(double)));
    bk = std::max<std::size_t>(8, std::min(bk, n));

    // Packed panel: chunk i (rows kk..kend of At column i) lives at
    // packed[i * kb], contiguous and conflict-free.
    std::vector<double> packed(bk * n);

    auto dot_tail = [&](std::size_t i, std::size_t j, std::size_t kk,
                        std::size_t kb) {
        const double *const chunk = &packed[i * kb];
        const double *const bcol = b.col(j) + kk;
        double sum = 0.0;
        for (std::size_t k = 0; k < kb; ++k) {
            model.load(&chunk[k], 8);
            model.load(&bcol[k], 8);
            sum += chunk[k] * bcol[k];
        }
        model.load(&c(i, j), 8);
        c(i, j) += sum;
        model.store(&c(i, j), 8);
        model.instructions(7 * kb / 2 + 6);
    };

    for (std::size_t kk = 0; kk < n; kk += bk) {
        const std::size_t kend = std::min(kk + bk, n);
        const std::size_t kb = kend - kk;
        for (std::size_t i = 0; i < n; ++i) {
            const double *const src = at.col(i) + kk;
            double *const dst = &packed[i * kb];
            for (std::size_t k = 0; k < kb; ++k) {
                model.load(&src[k], 8);
                dst[k] = src[k];
                model.store(&dst[k], 8);
            }
            model.instructions(4 * kb + 4);
        }
        for (std::size_t jj = 0; jj < n; jj += 3) {
            const std::size_t jn = std::min<std::size_t>(3, n - jj);
            for (std::size_t ii = 0; ii < n; ii += 3) {
                const std::size_t in = std::min<std::size_t>(3, n - ii);
                if (in == 3 && jn == 3) {
                    const double *const a0 = &packed[ii * kb];
                    const double *const a1 = &packed[(ii + 1) * kb];
                    const double *const a2 = &packed[(ii + 2) * kb];
                    const double *const b0 = b.col(jj) + kk;
                    const double *const b1 = b.col(jj + 1) + kk;
                    const double *const b2 = b.col(jj + 2) + kk;
                    double c00 = 0, c01 = 0, c02 = 0;
                    double c10 = 0, c11 = 0, c12 = 0;
                    double c20 = 0, c21 = 0, c22 = 0;
                    for (std::size_t k = 0; k < kb; ++k) {
                        model.load(&a0[k], 8);
                        model.load(&a1[k], 8);
                        model.load(&a2[k], 8);
                        model.load(&b0[k], 8);
                        model.load(&b1[k], 8);
                        model.load(&b2[k], 8);
                        const double av0 = a0[k], av1 = a1[k],
                                     av2 = a2[k];
                        const double bv0 = b0[k], bv1 = b1[k],
                                     bv2 = b2[k];
                        c00 += av0 * bv0;
                        c01 += av0 * bv1;
                        c02 += av0 * bv2;
                        c10 += av1 * bv0;
                        c11 += av1 * bv1;
                        c12 += av1 * bv2;
                        c20 += av2 * bv0;
                        c21 += av2 * bv1;
                        c22 += av2 * bv2;
                    }
                    model.instructions(18 * kb + 20);
                    double *const cc0 = c.col(jj);
                    double *const cc1 = c.col(jj + 1);
                    double *const cc2 = c.col(jj + 2);
                    auto flush = [&](double *col, std::size_t i,
                                     double v) {
                        model.load(&col[i], 8);
                        col[i] += v;
                        model.store(&col[i], 8);
                    };
                    flush(cc0, ii, c00);
                    flush(cc0, ii + 1, c10);
                    flush(cc0, ii + 2, c20);
                    flush(cc1, ii, c01);
                    flush(cc1, ii + 1, c11);
                    flush(cc1, ii + 2, c21);
                    flush(cc2, ii, c02);
                    flush(cc2, ii + 1, c12);
                    flush(cc2, ii + 2, c22);
                } else {
                    for (std::size_t j = jj; j < jj + jn; ++j)
                        for (std::size_t i = ii; i < ii + in; ++i)
                            dot_tail(i, j, kk, kb);
                }
            }
        }
    }
    Matrix dummy(n, n);
    transpose(at, dummy, model);
}

/** Context shared by every dot-product thread of one threaded run. */
template <class M>
struct DotProductCtx
{
    const Matrix *at;
    const Matrix *b;
    Matrix *c;
    M *model;
};

/** Thread body: C[i,j] = dot(At[:,i], B[:,j]); arg2 packs (i, j). */
template <class M>
void
dotProductThread(void *ctx_p, void *ij_p)
{
    auto *ctx = static_cast<DotProductCtx<M> *>(ctx_p);
    const auto packed = reinterpret_cast<std::uintptr_t>(ij_p);
    const std::size_t i = packed >> 32;
    const std::size_t j = packed & 0xffffffffu;
    M &model = *ctx->model;
    const std::size_t n = ctx->at->rows();
    const double *const atcol = ctx->at->col(i);
    const double *const bcol = ctx->b->col(j);
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        model.load(&atcol[k], 8);
        model.load(&bcol[k], 8);
        sum += atcol[k] * bcol[k];
    }
    (*ctx->c)(i, j) = sum;
    model.store(&(*ctx->c)(i, j), 8);
    model.instructions(7 * n / 2 + 6 + kThreadOverheadInstr);
}

/**
 * The paper's threaded multiply (Sections 2.1, 4.2): one thread per
 * dot product, forked with the base addresses of the two columns it
 * reads as hints, then run in bin order by @p scheduler. Includes
 * both transpose passes, as the paper's timings do.
 *
 * With @p workers > 1 the bin tour is distributed over that many OS
 * threads (Section 7's SMP extension). The model must then be
 * thread-safe: NativeModel is (it is stateless); SimModel is not, so
 * simulated runs must keep workers == 1.
 */
template <class M>
void
matmulThreaded(const Matrix &a, const Matrix &b, Matrix &c,
               threads::LocalityScheduler &scheduler, M &model,
               unsigned workers = 1)
{
    const std::size_t n = a.rows();
    Matrix at(n, n);
    transpose(a, at, model);
    model.enterKernel(kMatmulThreadedDot);

    DotProductCtx<M> ctx{&at, &b, &c, &model};
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const auto packed =
                reinterpret_cast<void *>((i << 32) | j);
            scheduler.fork(&dotProductThread<M>, &ctx, packed,
                           threads::hintOf(at.col(i)),
                           threads::hintOf(b.col(j)));
        }
    }
    if (workers > 1)
        scheduler.runParallel(workers, false);
    else
        scheduler.run(false);

    Matrix dummy(n, n);
    transpose(at, dummy, model);
}

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_MATMUL_HH
