/**
 * @file
 * A geometric multigrid Poisson solver built on the locality thread
 * package — the surrounding context the paper's PDE experiment points
 * at ("meant to be nested inside a multigrid partial differential
 * equation solver", Section 4.3, with iters ~ 5 per level).
 *
 * Solves the standard 5-point discrete Poisson problem
 *     4 u[i,j] - u[i-1,j] - u[i+1,j] - u[i,j-1] - u[i,j+1] = b[i,j]
 * with zero Dirichlet boundary, using V-cycles of red-black
 * Gauss-Seidel smoothing (optionally threaded line-pair smoothing,
 * exactly the paper's decomposition), full-weighting restriction and
 * bilinear prolongation. Grids are n x n interior with n = 2^k - 1 so
 * coarsening is exact.
 */

#ifndef LSCHED_WORKLOADS_MULTIGRID_HH
#define LSCHED_WORKLOADS_MULTIGRID_HH

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/panic.hh"
#include "threads/hints.hh"
#include "threads/scheduler.hh"
#include "workloads/matrix.hh"

namespace lsched::workloads
{

/** Parameters of the multigrid solver. */
struct MultigridConfig
{
    /** Pre-smoothing sweeps per level (the paper's iters ~ 5). */
    unsigned preSmooth = 2;
    /** Post-smoothing sweeps per level. */
    unsigned postSmooth = 2;
    /** Interior size below which the level is solved by smoothing. */
    std::size_t coarsestN = 3;
    /** Sweeps on the coarsest level. */
    unsigned coarseSweeps = 30;
    /** Smooth with locality-scheduled line-pair threads. */
    bool threaded = false;
};

/** A multigrid hierarchy for one problem size. */
class MultigridSolver
{
  public:
    /**
     * @param n interior points per dimension, must be 2^k - 1.
     * @param config solver parameters.
     */
    MultigridSolver(std::size_t n, const MultigridConfig &config = {})
        : config_(config)
    {
        LSCHED_ASSERT(((n + 1) & n) == 0 && n >= 1,
                      "multigrid needs n = 2^k - 1, got ", n);
        for (std::size_t levelN = n; levelN >= config_.coarsestN ||
                                     levelN == n;
             levelN = (levelN - 1) / 2) {
            levels_.push_back(std::make_unique<Level>(levelN));
            if (levelN <= config_.coarsestN)
                break;
        }
        if (config_.threaded) {
            threads::SchedulerConfig scfg;
            scheduler_ =
                std::make_unique<threads::LocalityScheduler>(scfg);
        }
    }

    /** Right-hand side of the finest level (interior 1..n). */
    Matrix &rhs() { return levels_.front()->b; }

    /** Current solution estimate on the finest level. */
    const Matrix &solution() const { return levels_.front()->u; }

    /** Interior size of the finest level. */
    std::size_t n() const { return levels_.front()->n; }

    /** Number of levels in the hierarchy. */
    std::size_t levelCount() const { return levels_.size(); }

    /** Reset the solution to zero. */
    void
    resetSolution()
    {
        levels_.front()->u.fill(0.0);
    }

    /** Run one V-cycle; returns the finest-level residual L2 norm. */
    double
    vcycle()
    {
        descend(0);
        return residualNorm(0);
    }

    /**
     * Solve to the given residual norm or cycle limit; returns the
     * number of cycles used.
     */
    unsigned
    solve(double target_norm, unsigned max_cycles = 50)
    {
        for (unsigned cycle = 1; cycle <= max_cycles; ++cycle) {
            if (vcycle() <= target_norm)
                return cycle;
        }
        return max_cycles;
    }

    /** Residual L2 norm on the finest level. */
    double residualNorm() { return residualNorm(0); }

  private:
    /** One grid level: solution, right-hand side, residual scratch. */
    struct Level
    {
        explicit Level(std::size_t n)
            : n(n), u(n + 2, n + 2), b(n + 2, n + 2), r(n + 2, n + 2)
        {
        }

        std::size_t n;
        Matrix u;
        Matrix b;
        Matrix r;
    };

    /** Work descriptor for one threaded smoothing line pair. */
    struct SmoothCtx
    {
        Level *level;
        std::size_t j; // red line; black line is j - 1
    };

    static void
    smoothLinePairThread(void *ctx_p, void *)
    {
        auto *ctx = static_cast<SmoothCtx *>(ctx_p);
        Level &level = *ctx->level;
        const std::size_t j = ctx->j;
        if (j <= level.n) {
            relaxLine(level, j, true);
            if (j >= 2)
                relaxLine(level, j - 1, false);
        } else {
            relaxLine(level, level.n, false);
        }
    }

    /** Red-black colouring: red when (i + j) is even. */
    static void
    relaxLine(Level &level, std::size_t j, bool red)
    {
        const std::size_t start = 1 + ((1 + j + (red ? 0 : 1)) & 1);
        double *const uj = level.u.col(j);
        const double *const ujm = level.u.col(j - 1);
        const double *const ujp = level.u.col(j + 1);
        const double *const bj = level.b.col(j);
        for (std::size_t i = start; i <= level.n; i += 2) {
            uj[i] = 0.25 * (bj[i] + uj[i - 1] + uj[i + 1] + ujm[i] +
                            ujp[i]);
        }
    }

    void
    smooth(std::size_t li, unsigned sweeps)
    {
        Level &level = *levels_[li];
        if (!config_.threaded || level.n < 8) {
            for (unsigned s = 0; s < sweeps; ++s) {
                for (std::size_t j = 1; j <= level.n; ++j)
                    relaxLine(level, j, true);
                for (std::size_t j = 1; j <= level.n; ++j)
                    relaxLine(level, j, false);
            }
            return;
        }
        // The paper's decomposition: red line j with black line j-1
        // as one thread, ny + 1 threads per sweep, hinted by line
        // addresses; one run per sweep preserves the dependences.
        std::vector<SmoothCtx> ctxs(level.n + 1);
        for (unsigned s = 0; s < sweeps; ++s) {
            for (std::size_t j = 1; j <= level.n + 1; ++j) {
                ctxs[j - 1] = SmoothCtx{&level, j};
                const std::size_t hint_line = std::min(j, level.n);
                scheduler_->fork(
                    &smoothLinePairThread, &ctxs[j - 1], nullptr,
                    threads::hintOf(level.u.col(hint_line)),
                    threads::hintOf(level.b.col(hint_line)));
            }
            scheduler_->run(false);
        }
    }

    /** r = b - A u on level @p li. */
    void
    computeResidual(std::size_t li)
    {
        Level &level = *levels_[li];
        for (std::size_t j = 1; j <= level.n; ++j) {
            double *const rj = level.r.col(j);
            const double *const uj = level.u.col(j);
            const double *const ujm = level.u.col(j - 1);
            const double *const ujp = level.u.col(j + 1);
            const double *const bj = level.b.col(j);
            for (std::size_t i = 1; i <= level.n; ++i) {
                rj[i] = bj[i] - 4.0 * uj[i] + uj[i - 1] + uj[i + 1] +
                        ujm[i] + ujp[i];
            }
        }
    }

    /** Full-weighting restriction of fine.r into coarse.b. */
    void
    restrictResidual(std::size_t fine_i)
    {
        const Level &fine = *levels_[fine_i];
        Level &coarse = *levels_[fine_i + 1];
        for (std::size_t J = 1; J <= coarse.n; ++J) {
            const std::size_t j = 2 * J;
            for (std::size_t I = 1; I <= coarse.n; ++I) {
                const std::size_t i = 2 * I;
                coarse.b(I, J) =
                    0.25 * fine.r(i, j) +
                    0.125 * (fine.r(i - 1, j) + fine.r(i + 1, j) +
                             fine.r(i, j - 1) + fine.r(i, j + 1)) +
                    0.0625 * (fine.r(i - 1, j - 1) +
                              fine.r(i + 1, j - 1) +
                              fine.r(i - 1, j + 1) +
                              fine.r(i + 1, j + 1));
                // Scale for the coarse-grid operator (h -> 2h means
                // the undivided 5-point stencil weakens by 4).
                coarse.b(I, J) *= 4.0;
            }
        }
    }

    /** Bilinear prolongation of coarse.u added into fine.u. */
    void
    prolongAndCorrect(std::size_t fine_i)
    {
        Level &fine = *levels_[fine_i];
        const Level &coarse = *levels_[fine_i + 1];
        for (std::size_t J = 0; J <= coarse.n; ++J) {
            const std::size_t j = 2 * J;
            for (std::size_t I = 0; I <= coarse.n; ++I) {
                const std::size_t i = 2 * I;
                const double c00 = coarse.u(I, J);
                const double c10 = coarse.u(I + 1, J);
                const double c01 = coarse.u(I, J + 1);
                const double c11 = coarse.u(I + 1, J + 1);
                // The four fine points in this coarse cell.
                if (i >= 2 && j >= 2)
                    fine.u(i, j) += c00;
                if (i + 1 <= fine.n && j >= 2)
                    fine.u(i + 1, j) += 0.5 * (c00 + c10);
                if (i >= 2 && j + 1 <= fine.n)
                    fine.u(i, j + 1) += 0.5 * (c00 + c01);
                if (i + 1 <= fine.n && j + 1 <= fine.n) {
                    fine.u(i + 1, j + 1) =
                        fine.u(i + 1, j + 1) +
                        0.25 * (c00 + c10 + c01 + c11);
                }
            }
        }
    }

    void
    descend(std::size_t li)
    {
        if (li + 1 == levels_.size()) {
            smooth(li, config_.coarseSweeps);
            return;
        }
        smooth(li, config_.preSmooth);
        computeResidual(li);
        restrictResidual(li);
        levels_[li + 1]->u.fill(0.0);
        descend(li + 1);
        prolongAndCorrect(li);
        smooth(li, config_.postSmooth);
    }

    double
    residualNorm(std::size_t li)
    {
        computeResidual(li);
        const Level &level = *levels_[li];
        double sum = 0;
        for (std::size_t j = 1; j <= level.n; ++j)
            for (std::size_t i = 1; i <= level.n; ++i)
                sum += level.r(i, j) * level.r(i, j);
        return std::sqrt(sum);
    }

    MultigridConfig config_;
    std::vector<std::unique_ptr<Level>> levels_;
    std::unique_ptr<threads::LocalityScheduler> scheduler_;
};

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_MULTIGRID_HH
