/**
 * @file
 * The paper's Section 4.3 SOR workload: the standard compiler-
 * community test case (Lam, Rothberg & Wolf), t Gauss-Seidel-style
 * sweeps of a 5-point averaging stencil over an n x n array.
 *
 * Variants:
 *  - Untiled:   t full sweeps in storage order; every sweep streams
 *               the whole array through the cache.
 *  - HandTiled: time-skewed tiling (tile size s, the paper uses 18):
 *               a strip of s skewed columns is relaxed for all t
 *               iterations while resident. Preserves the sequential
 *               update order exactly (results are bitwise identical
 *               to Untiled) at the cost of extra loop overhead — the
 *               paper's hand-tiled version executes ~1.6x the
 *               instructions of the untiled one.
 *  - Threaded:  the paper's chaotic-relaxation trick: all t*(n-2)
 *               column-update threads are forked up front (iteration-
 *               major) and ONE th_run executes them bin by bin, so a
 *               cache-sized strip of columns receives all t updates
 *               while resident. Threads in a bin see slightly stale
 *               neighbour strips ("the algorithm works fine because
 *               the goal is to reach convergence").
 *
 * Reference accounting per column update point: 3 loads + 1 store
 * (centre and one vertical neighbour are register-carried), matching
 * the paper's 482M data references for n=2005, t=30.
 */

#ifndef LSCHED_WORKLOADS_SOR_HH
#define LSCHED_WORKLOADS_SOR_HH

#include <cstdint>

#include "support/prng.hh"
#include "threads/hints.hh"
#include "threads/scheduler.hh"
#include "workloads/matrix.hh"
#include "workloads/memmodel.hh"

namespace lsched::workloads
{

/** Synthetic-text ids for the SOR kernels. */
enum SorKernelId : unsigned
{
    kSorUntiled = 12,
    kSorHandTiled,
    kSorThreadedColumn,
};

/** Deterministic initial array in [-1, 1). */
inline Matrix
sorInit(std::size_t n, std::uint64_t seed)
{
    Matrix a(n, n);
    Prng prng(seed);
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i)
            a(i, j) = prng.nextDouble(-1.0, 1.0);
    return a;
}

namespace sor_detail
{

/**
 * Relax interior points of column @p j in place:
 * A[i,j] = 0.2 * (A[i,j] + A[i+1,j] + A[i-1,j] + A[i,j+1] + A[i,j-1]).
 * @p instr_per_point models the variant's loop-overhead difference.
 */
template <class M>
void
relaxColumn(Matrix &a, std::size_t j, M &model,
            std::uint64_t instr_per_point, std::uint64_t refs_per_point)
{
    double *const aj = a.col(j);
    const double *const ajm = a.col(j - 1);
    const double *const ajp = a.col(j + 1);
    const std::size_t n = a.rows();
    for (std::size_t i = 1; i + 1 < n; ++i) {
        // Centre and the just-written upper neighbour are register-
        // carried in the 4-reference accounting; the hand-tiled code
        // reloads everything (6 references).
        model.load(&aj[i + 1], 8);
        model.load(&ajm[i], 8);
        model.load(&ajp[i], 8);
        if (refs_per_point >= 6) {
            model.load(&aj[i], 8);
            model.load(&aj[i - 1], 8);
        }
        aj[i] = 0.2 * (aj[i] + aj[i + 1] + aj[i - 1] + ajm[i] + ajp[i]);
        model.store(&aj[i], 8);
    }
    model.instructions((n - 2) * instr_per_point + 6);
}

} // namespace sor_detail

/** Untiled SOR: t sweeps in storage order (10 instructions/point). */
template <class M>
void
sorUntiled(Matrix &a, unsigned t, M &model)
{
    model.enterKernel(kSorUntiled);
    for (unsigned it = 0; it < t; ++it)
        for (std::size_t j = 1; j + 1 < a.cols(); ++j)
            sor_detail::relaxColumn(a, j, model, 10, 4);
}

/**
 * Hand-tiled SOR with two-dimensional time skewing, after Lam,
 * Rothberg & Wolf: both spatial coordinates are skewed by 2*it and
 * tiled into s x s tiles; within a tile the t time steps run in
 * order over a window that slides by (-2, -2) per step, so the reuse
 * distance between consecutive time steps is only s*s*8 bytes (L1-
 * resident for the paper's s = 18) while the whole array streams
 * through the cache once overall. Every flow dependence of the
 * sequential order is respected, so the result is bitwise identical
 * to sorUntiled; the bookkeeping costs ~1.6x the instructions, as
 * the paper's Table 7 reports.
 */
template <class M>
void
sorHandTiled(Matrix &a, unsigned t, M &model, std::size_t s = 18)
{
    model.enterKernel(kSorHandTiled);
    const std::size_t n = a.cols();
    if (n < 3 || t == 0)
        return;
    // Interior points are 1 .. n-2 in each dimension; the skewed
    // coordinate p' = p + 2*it ranges over [3, (n-2) + 2t].
    const std::size_t skew_max =
        (n - 2) + 2 * static_cast<std::size_t>(t);
    for (std::size_t tj = 3; tj <= skew_max; tj += s) {
        for (std::size_t ti = 3; ti <= skew_max; ti += s) {
            for (unsigned it = 1; it <= t; ++it) {
                const std::size_t shift =
                    2 * static_cast<std::size_t>(it);
                // Map the tile's skewed ranges back to array indices
                // valid at this time step.
                const std::size_t j_lo =
                    tj > shift ? tj - shift : 0;
                const std::size_t j_hi =
                    std::min(tj + s - 1, skew_max) - shift;
                const std::size_t i_lo =
                    ti > shift ? ti - shift : 0;
                const std::size_t i_hi =
                    std::min(ti + s - 1, skew_max) - shift;
                if (tj + s - 1 < shift + 1 || ti + s - 1 < shift + 1)
                    continue;
                for (std::size_t j = std::max<std::size_t>(j_lo, 1);
                     j <= std::min(j_hi, n - 2); ++j) {
                    double *const aj = a.col(j);
                    const double *const ajm = a.col(j - 1);
                    const double *const ajp = a.col(j + 1);
                    std::uint64_t points = 0;
                    for (std::size_t i = std::max<std::size_t>(i_lo, 1);
                         i <= std::min(i_hi, n - 2); ++i) {
                        model.load(&aj[i], 8);
                        model.load(&aj[i + 1], 8);
                        model.load(&aj[i - 1], 8);
                        model.load(&ajm[i], 8);
                        model.load(&ajp[i], 8);
                        aj[i] = 0.2 * (aj[i] + aj[i + 1] + aj[i - 1] +
                                       ajm[i] + ajp[i]);
                        model.store(&aj[i], 8);
                        ++points;
                    }
                    model.instructions(points * 16 + 8);
                }
            }
        }
    }
}

/** Context of one SOR column thread. */
template <class M>
struct SorThreadCtx
{
    Matrix *a;
    M *model;
};

/** Thread body: relax one column; arg2 carries the column index. */
template <class M>
void
sorColumnThread(void *ctx_p, void *j_p)
{
    auto *ctx = static_cast<SorThreadCtx<M> *>(ctx_p);
    const std::size_t j = reinterpret_cast<std::uintptr_t>(j_p);
    sor_detail::relaxColumn(*ctx->a, j, *ctx->model, 10, 4);
    ctx->model->instructions(kThreadOverheadInstr);
}

/**
 * The paper's threaded SOR: fork all t*(n-2) column threads up front,
 * hinted with the start of the left neighbour column and the end of
 * the right neighbour column (its th_fork passes A(0, i3-1) and
 * A(n, i3+1)), then execute them with a single run().
 */
template <class M>
void
sorThreaded(Matrix &a, unsigned t,
            threads::LocalityScheduler &scheduler, M &model)
{
    model.enterKernel(kSorThreadedColumn);
    SorThreadCtx<M> ctx{&a, &model};
    const std::size_t n = a.cols();
    for (unsigned it = 0; it < t; ++it) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            scheduler.fork(&sorColumnThread<M>, &ctx,
                           reinterpret_cast<void *>(j),
                           threads::hintOf(a.col(j - 1)),
                           threads::hintOf(a.col(j + 1) + (a.rows() - 1)));
        }
    }
    scheduler.run(false);
}

/** Mean absolute 5-point defect — the convergence metric tests use. */
inline double
sorDefect(const Matrix &a)
{
    double total = 0;
    const std::size_t n = a.cols();
    for (std::size_t j = 1; j + 1 < n; ++j) {
        for (std::size_t i = 1; i + 1 < a.rows(); ++i) {
            const double v = 0.2 * (a(i, j) + a(i + 1, j) + a(i - 1, j) +
                                    a(i, j + 1) + a(i, j - 1)) -
                             a(i, j);
            total += v < 0 ? -v : v;
        }
    }
    const double points = static_cast<double>((n - 2) * (a.rows() - 2));
    return points > 0 ? total / points : 0.0;
}

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_SOR_HH
