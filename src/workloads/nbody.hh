/**
 * @file
 * The paper's Section 4.4 workload: a three-dimensional N-body
 * simulation using the Barnes-Hut algorithm. Each step builds an
 * octree over the bodies, computes the force on every body by walking
 * the tree with the opening-angle criterion, and advances positions
 * with a leapfrog integrator.
 *
 * This is the paper's irregular, dynamic case: data structures are
 * small, positions change every step, the tree is rebuilt every step,
 * and no reference information exists at compile time, so tiling is
 * infeasible — but the threaded variant forks one thread per body
 * with the body's (x, y, z) position scaled into the scheduling plane
 * as hints, so bodies that are near each other in space (and
 * therefore share tree paths) are computed together.
 *
 * Force results are independent of body evaluation order, so the
 * threaded and unthreaded variants produce bitwise-identical
 * trajectories — asserted by the tests.
 */

#ifndef LSCHED_WORKLOADS_NBODY_HH
#define LSCHED_WORKLOADS_NBODY_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/panic.hh"
#include "support/prng.hh"
#include "threads/hints.hh"
#include "threads/scheduler.hh"
#include "workloads/memmodel.hh"

namespace lsched::workloads
{

/** Synthetic-text ids for the N-body kernels. */
enum NBodyKernelId : unsigned
{
    kNBodyBuild = 16,
    kNBodyForce,
    kNBodyAdvance,
};

/** One particle. */
struct Body
{
    double x, y, z;
    double vx, vy, vz;
    double ax, ay, az;
    double mass;
};

/** One octree cell (internal or leaf). */
struct BhNode
{
    /** Geometric centre of the cell. */
    double cx, cy, cz;
    /** Half the cell edge length. */
    double half;
    /** Centre of mass (valid after finalize). */
    double mx, my, mz;
    /** Total mass. */
    double mass;
    /** Child node indices; -1 when absent. */
    std::int32_t child[8];
    /** Body index for a leaf holding one body; -1 otherwise. */
    std::int32_t body;
    /** True until the node is split. */
    bool leaf;
};

/** Parameters of the simulation. */
struct NBodyConfig
{
    std::size_t bodies = 8000;
    /** Opening-angle criterion (cell size / distance < theta). */
    double theta = 0.6;
    /** Plummer softening length. */
    double softening = 1e-2;
    /** Leapfrog time step. */
    double dt = 1e-3;
    std::uint64_t seed = 42;
};

/** The Barnes-Hut simulation state. */
class BarnesHut
{
  public:
    explicit BarnesHut(const NBodyConfig &config) : config_(config)
    {
        initPlummer();
    }

    /** Bodies (read-only view). */
    const std::vector<Body> &bodies() const { return bodies_; }

    /** Mutable access for tests. */
    std::vector<Body> &mutableBodies() { return bodies_; }

    /** Nodes of the most recent tree (for tests). */
    const std::vector<BhNode> &nodes() const { return nodes_; }

    const NBodyConfig &config() const { return config_; }

    /**
     * Build the octree over current positions. Charges one child-
     * pointer load per level descended and the body coordinates read,
     * plus a bottom-up centre-of-mass pass.
     */
    template <class M>
    void
    buildTree(M &model)
    {
        model.enterKernel(kNBodyBuild);
        nodes_.clear();
        // Bounding cube.
        double lo = bodies_[0].x, hi = bodies_[0].x;
        for (const Body &b : bodies_) {
            model.load(&b.x, 24);
            lo = std::min({lo, b.x, b.y, b.z});
            hi = std::max({hi, b.x, b.y, b.z});
        }
        model.instructions(bodies_.size() * 8);
        const double centre = 0.5 * (lo + hi);
        const double half = 0.5 * (hi - lo) + 1e-12;
        nodes_.push_back(makeCell(centre, centre, centre, half));
        for (std::size_t i = 0; i < bodies_.size(); ++i)
            insert(0, static_cast<std::int32_t>(i), model, 0);
        finalize(0, model);
    }

    /**
     * Compute the acceleration of body @p i from the current tree.
     * Pure function of the (old) positions, so evaluation order
     * across bodies is irrelevant — the key independence property.
     */
    template <class M>
    void
    computeForce(std::size_t i, M &model)
    {
        Body &b = bodies_[static_cast<std::size_t>(i)];
        model.load(&b.x, 24);
        double ax = 0, ay = 0, az = 0;
        walk(0, b, static_cast<std::int32_t>(i), ax, ay, az, model);
        b.ax = ax;
        b.ay = ay;
        b.az = az;
        model.store(&b.ax, 24);
        model.instructions(12);
    }

    /** Leapfrog: advance velocity and position of every body. */
    template <class M>
    void
    advance(M &model)
    {
        model.enterKernel(kNBodyAdvance);
        const double dt = config_.dt;
        for (Body &b : bodies_) {
            model.load(&b.vx, 24);
            model.load(&b.ax, 24);
            b.vx += b.ax * dt;
            b.vy += b.ay * dt;
            b.vz += b.az * dt;
            b.x += b.vx * dt;
            b.y += b.vy * dt;
            b.z += b.vz * dt;
            model.store(&b.x, 24);
            model.store(&b.vx, 24);
        }
        model.instructions(bodies_.size() * 18);
    }

    /**
     * Rewrite the node pool in depth-first order. Tree walks then
     * touch memory roughly monotonically, so subtree working sets
     * are contiguous — the *data-reordering* counterpart to the
     * paper's computation reordering (its Section 5 cites early work
     * on "arranging data structures to maximize locality"). The two
     * compose: see bench/ablation_layout.
     */
    void
    reorderTreeDfs()
    {
        if (nodes_.empty())
            return;
        std::vector<BhNode> reordered;
        reordered.reserve(nodes_.size());
        // Iterative DFS assigning new indices as nodes are emitted.
        struct Frame
        {
            std::int32_t old;
            std::int32_t parent; // index in `reordered`
            unsigned slot;       // child slot in the parent
        };
        std::vector<Frame> work{{0, -1, 0}};
        while (!work.empty()) {
            const Frame f = work.back();
            work.pop_back();
            const auto idx =
                static_cast<std::int32_t>(reordered.size());
            reordered.push_back(
                nodes_[static_cast<std::size_t>(f.old)]);
            if (f.parent >= 0) {
                reordered[static_cast<std::size_t>(f.parent)]
                    .child[f.slot] = idx;
            }
            // Push children in reverse so slot 0 is emitted first.
            for (unsigned q = 8; q-- > 0;) {
                const std::int32_t child =
                    reordered[static_cast<std::size_t>(idx)].child[q];
                if (child >= 0)
                    work.push_back({child, idx, q});
            }
        }
        nodes_ = std::move(reordered);
    }

    /** One unthreaded step: build, force on all bodies in array
     *  order, advance. @p dfs_layout applies reorderTreeDfs after
     *  the build. */
    template <class M>
    void
    stepUnthreaded(M &model, bool dfs_layout = false)
    {
        buildTree(model);
        if (dfs_layout)
            reorderTreeDfs();
        model.enterKernel(kNBodyForce);
        for (std::size_t i = 0; i < bodies_.size(); ++i)
            computeForce(i, model);
        advance(model);
    }

    /**
     * One threaded step (paper Section 4.4): one thread per body,
     * hinted with the body's position normalized to the unit cube and
     * scaled to the scheduling plane, so spatially adjacent bodies —
     * which share tree paths — land in the same bin.
     */
    template <class M>
    void
    stepThreaded(threads::LocalityScheduler &scheduler, M &model,
                 std::uint64_t plane_extent, bool dfs_layout = false)
    {
        buildTree(model);
        if (dfs_layout)
            reorderTreeDfs();
        model.enterKernel(kNBodyForce);

        // Normalize over the root cell (covers all bodies).
        const BhNode &root = nodes_[0];
        const double lox = root.cx - root.half;
        const double loy = root.cy - root.half;
        const double loz = root.cz - root.half;
        const double scale =
            static_cast<double>(plane_extent) / (2.0 * root.half);

        struct Ctx
        {
            BarnesHut *self;
            M *model;
        } ctx{this, &model};

        auto body_thread = [](void *ctx_p, void *i_p) {
            auto *c = static_cast<Ctx *>(ctx_p);
            const std::size_t i = reinterpret_cast<std::uintptr_t>(i_p);
            c->self->computeForce(i, *c->model);
            c->model->instructions(kNBodyThreadOverheadInstr);
        };

        for (std::size_t i = 0; i < bodies_.size(); ++i) {
            const Body &b = bodies_[i];
            const auto hx = static_cast<threads::Hint>(
                (b.x - lox) * scale);
            const auto hy = static_cast<threads::Hint>(
                (b.y - loy) * scale);
            const auto hz = static_cast<threads::Hint>(
                (b.z - loz) * scale);
            scheduler.fork(body_thread, &ctx,
                           reinterpret_cast<void *>(i), hx, hy, hz);
        }
        scheduler.run(false);
        advance(model);
    }

    /** Total momentum magnitude (a conservation sanity metric). */
    double
    momentum() const
    {
        double px = 0, py = 0, pz = 0;
        for (const Body &b : bodies_) {
            px += b.mass * b.vx;
            py += b.mass * b.vy;
            pz += b.mass * b.vz;
        }
        return std::sqrt(px * px + py * py + pz * pz);
    }

    /** Instructions charged per forked body thread. */
    static constexpr std::uint64_t kNBodyThreadOverheadInstr = 120;

  private:
    static BhNode
    makeCell(double cx, double cy, double cz, double half)
    {
        BhNode n;
        n.cx = cx;
        n.cy = cy;
        n.cz = cz;
        n.half = half;
        n.mx = n.my = n.mz = 0;
        n.mass = 0;
        for (auto &c : n.child)
            c = -1;
        n.body = -1;
        n.leaf = true;
        return n;
    }

    /** Octant of (x, y, z) within node @p n. */
    static unsigned
    octant(const BhNode &n, double x, double y, double z)
    {
        return (x >= n.cx ? 1u : 0u) | (y >= n.cy ? 2u : 0u) |
               (z >= n.cz ? 4u : 0u);
    }

    template <class M>
    void
    insert(std::int32_t node, std::int32_t body, M &model, int depth)
    {
        // Iterative descent; recursion depth is bounded but the
        // explicit loop keeps deep clusters safe.
        for (;;) {
            BhNode &n = nodes_[static_cast<std::size_t>(node)];
            model.load(&n.child, 32);
            model.instructions(10);
            if (n.leaf && n.body < 0) {
                n.body = body;
                return;
            }
            if (n.leaf) {
                // Split: push the resident body down one level.
                const std::int32_t old = n.body;
                n.body = -1;
                n.leaf = false;
                const Body &ob =
                    bodies_[static_cast<std::size_t>(old)];
                model.load(&ob.x, 24);
                const unsigned q = octant(n, ob.x, ob.y, ob.z);
                const std::int32_t child = newChild(node, q);
                nodes_[static_cast<std::size_t>(child)].body = old;
                // fall through to re-dispatch the incoming body
            }
            BhNode &n2 = nodes_[static_cast<std::size_t>(node)];
            const Body &nb = bodies_[static_cast<std::size_t>(body)];
            model.load(&nb.x, 24);
            const unsigned q = octant(n2, nb.x, nb.y, nb.z);
            std::int32_t child = n2.child[q];
            if (child < 0)
                child = newChild(node, q);
            node = child;
            if (++depth > 512) {
                LSCHED_PANIC("octree depth > 512: coincident bodies? "
                             "increase softening/jitter");
            }
        }
    }

    std::int32_t
    newChild(std::int32_t parent, unsigned q)
    {
        const BhNode p = nodes_[static_cast<std::size_t>(parent)];
        const double h = p.half * 0.5;
        const double cx = p.cx + ((q & 1) ? h : -h);
        const double cy = p.cy + ((q & 2) ? h : -h);
        const double cz = p.cz + ((q & 4) ? h : -h);
        nodes_.push_back(makeCell(cx, cy, cz, h));
        const auto idx = static_cast<std::int32_t>(nodes_.size() - 1);
        nodes_[static_cast<std::size_t>(parent)].child[q] = idx;
        return idx;
    }

    /** Bottom-up centre-of-mass computation. */
    template <class M>
    void
    finalize(std::int32_t node, M &model)
    {
        BhNode &n = nodes_[static_cast<std::size_t>(node)];
        model.load(&n.child, 32);
        if (n.leaf) {
            if (n.body >= 0) {
                const Body &b =
                    bodies_[static_cast<std::size_t>(n.body)];
                model.load(&b.x, 32);
                n.mass = b.mass;
                n.mx = b.x;
                n.my = b.y;
                n.mz = b.z;
            }
            model.instructions(8);
            return;
        }
        double m = 0, mx = 0, my = 0, mz = 0;
        for (unsigned q = 0; q < 8; ++q) {
            if (n.child[q] < 0)
                continue;
            finalize(n.child[q], model);
            const BhNode &c =
                nodes_[static_cast<std::size_t>(n.child[q])];
            model.load(&c.mx, 32);
            m += c.mass;
            mx += c.mass * c.mx;
            my += c.mass * c.my;
            mz += c.mass * c.mz;
        }
        BhNode &n3 = nodes_[static_cast<std::size_t>(node)];
        n3.mass = m;
        if (m > 0) {
            n3.mx = mx / m;
            n3.my = my / m;
            n3.mz = mz / m;
        }
        model.store(&n3.mx, 32);
        model.instructions(40);
    }

    /** Tree walk accumulating the acceleration on body @p self. */
    template <class M>
    void
    walk(std::int32_t node, const Body &b, std::int32_t self,
         double &ax, double &ay, double &az, M &model)
    {
        const BhNode &n = nodes_[static_cast<std::size_t>(node)];
        model.load(&n.mx, 8);
        model.load(&n.my, 8);
        model.load(&n.mz, 8);
        model.load(&n.mass, 8);
        model.load(&n.half, 8);
        model.instructions(20);
        if (n.mass <= 0)
            return;
        if (n.leaf && n.body == self)
            return;
        const double dx = n.mx - b.x;
        const double dy = n.my - b.y;
        const double dz = n.mz - b.z;
        const double d2 = dx * dx + dy * dy + dz * dz +
                          config_.softening * config_.softening;
        const double d = std::sqrt(d2);
        if (n.leaf || (2.0 * n.half) / d < config_.theta) {
            const double f = n.mass / (d2 * d);
            ax += f * dx;
            ay += f * dy;
            az += f * dz;
            return;
        }
        for (unsigned q = 0; q < 8; ++q) {
            model.load(&n.child[q], 4);
            if (n.child[q] >= 0)
                walk(n.child[q], b, self, ax, ay, az, model);
        }
    }

    /** Plummer-sphere positions with small random velocities. */
    void
    initPlummer()
    {
        LSCHED_ASSERT(config_.bodies > 0, "need at least one body");
        Prng prng(config_.seed);
        bodies_.resize(config_.bodies);
        const double m = 1.0 / static_cast<double>(config_.bodies);
        for (Body &b : bodies_) {
            // Radius from the Plummer cumulative mass profile,
            // truncated so the cluster stays bounded.
            double u = prng.nextDouble(1e-6, 0.999);
            double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
            r = std::min(r, 8.0);
            // Uniform direction.
            const double ct = prng.nextDouble(-1.0, 1.0);
            const double st = std::sqrt(
                std::max(0.0, 1.0 - ct * ct));
            const double phi = prng.nextDouble(0.0, 6.283185307179586);
            b.x = r * st * std::cos(phi);
            b.y = r * st * std::sin(phi);
            b.z = r * ct;
            b.vx = prng.nextDouble(-0.05, 0.05);
            b.vy = prng.nextDouble(-0.05, 0.05);
            b.vz = prng.nextDouble(-0.05, 0.05);
            b.ax = b.ay = b.az = 0;
            b.mass = m;
        }
    }

    NBodyConfig config_;
    std::vector<Body> bodies_;
    std::vector<BhNode> nodes_;
};

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_NBODY_HH
