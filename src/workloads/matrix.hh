/**
 * @file
 * Dense column-major (Fortran-layout) matrix of doubles.
 *
 * The paper's first three applications are Fortran programs; matching
 * their column-major storage keeps our kernels' access patterns — and
 * hence their cache behaviour — faithful to the original experiments.
 * Storage is page-aligned so simulated addresses are reproducible.
 */

#ifndef LSCHED_WORKLOADS_MATRIX_HH
#define LSCHED_WORKLOADS_MATRIX_HH

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>

#include "support/panic.hh"

namespace lsched::workloads
{

/** Column-major rows x cols matrix of double. */
class Matrix
{
  public:
    /** Allocate a rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols)
    {
        LSCHED_ASSERT(rows_ > 0 && cols_ > 0, "empty matrix");
        const std::size_t bytes = rows_ * cols_ * sizeof(double);
        data_ = static_cast<double *>(
            std::aligned_alloc(kAlign, roundUp(bytes, kAlign)));
        if (!data_)
            throw std::bad_alloc();
        std::memset(data_, 0, bytes);
    }

    ~Matrix() { std::free(data_); }

    Matrix(const Matrix &o) : Matrix(o.rows_, o.cols_)
    {
        std::memcpy(data_, o.data_, rows_ * cols_ * sizeof(double));
    }

    Matrix &operator=(const Matrix &) = delete;
    Matrix(Matrix &&o) noexcept
        : rows_(o.rows_), cols_(o.cols_), data_(o.data_)
    {
        o.data_ = nullptr;
        o.rows_ = o.cols_ = 0;
    }
    Matrix &operator=(Matrix &&) = delete;

    /** Element (row i, column j), 0-based. */
    double &operator()(std::size_t i, std::size_t j)
    {
        return data_[j * rows_ + i];
    }
    const double &operator()(std::size_t i, std::size_t j) const
    {
        return data_[j * rows_ + i];
    }

    /** Pointer to column @p j (contiguous, rows() elements). */
    double *col(std::size_t j) { return data_ + j * rows_; }
    const double *col(std::size_t j) const { return data_ + j * rows_; }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Raw storage (rows*cols doubles, column-major). */
    double *data() { return data_; }
    const double *data() const { return data_; }

    /** Set every element to @p v. */
    void
    fill(double v)
    {
        const std::size_t n = rows_ * cols_;
        for (std::size_t i = 0; i < n; ++i)
            data_[i] = v;
    }

    /** Max absolute element-wise difference against @p o. */
    double
    maxAbsDiff(const Matrix &o) const
    {
        LSCHED_ASSERT(rows_ == o.rows_ && cols_ == o.cols_,
                      "shape mismatch");
        double worst = 0;
        const std::size_t n = rows_ * cols_;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = data_[i] > o.data_[i]
                                 ? data_[i] - o.data_[i]
                                 : o.data_[i] - data_[i];
            if (d > worst)
                worst = d;
        }
        return worst;
    }

  private:
    static constexpr std::size_t kAlign = 4096;

    static std::size_t
    roundUp(std::size_t v, std::size_t a)
    {
        return (v + a - 1) / a * a;
    }

    std::size_t rows_;
    std::size_t cols_;
    double *data_;
};

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_MATRIX_HH
