/**
 * @file
 * The paper's Section 4.3 PDE workload: red-black ordered Gauss-Seidel
 * relaxation of Laplace's equation on a uniform mesh, with the
 * residual computed after the final iteration — the smoother inside a
 * multigrid solver (iters ~ 5 in practice).
 *
 * Variants:
 *  - Regular:         per iteration a full red sweep then a full black
 *                     sweep; a separate residual pass at the end. Data
 *                     passes through the cache 2*iters + 1 times.
 *  - CacheConscious:  Douglas's fused ordering — red points of line j
 *                     and black points of line j-1 in one pass, with
 *                     the residual computed along with the black
 *                     points of the last iteration. One pass per
 *                     iteration.
 *  - Threaded:        the fused line-pair block becomes a thread;
 *                     ny + 1 threads per iteration, hinted with the
 *                     line addresses of u and b.
 *
 * Because every black update depends only on current-iteration red
 * values and every red update only on previous-iteration black
 * values, all three variants compute bitwise-identical grids — the
 * property the correctness tests assert.
 *
 * "Line" here is a grid column (contiguous in our column-major
 * storage, as in the paper's Fortran).
 */

#ifndef LSCHED_WORKLOADS_PDE_HH
#define LSCHED_WORKLOADS_PDE_HH

#include <cstdint>

#include "support/prng.hh"
#include "threads/hints.hh"
#include "threads/scheduler.hh"
#include "workloads/matrix.hh"
#include "workloads/memmodel.hh"

namespace lsched::workloads
{

/** Synthetic-text ids for the PDE kernels. */
enum PdeKernelId : unsigned
{
    kPdeRegular = 8,
    kPdeCacheConscious,
    kPdeThreadedBlock,
};

/** The mesh: solution u, right-hand side b, residual r, with halo. */
struct PdeGrid
{
    /** @param n interior points per dimension. */
    explicit PdeGrid(std::size_t n)
        : n(n), u(n + 2, n + 2), b(n + 2, n + 2), r(n + 2, n + 2)
    {
    }

    /** Deterministic right-hand side in [-1, 1); u and r zeroed. */
    void
    init(std::uint64_t seed)
    {
        Prng prng(seed);
        u.fill(0.0);
        r.fill(0.0);
        for (std::size_t j = 1; j <= n; ++j)
            for (std::size_t i = 1; i <= n; ++i)
                b(i, j) = prng.nextDouble(-1.0, 1.0);
    }

    std::size_t n;
    Matrix u;
    Matrix b;
    Matrix r;
};

namespace pde_detail
{

/**
 * Relax the points of colour @p red on line (column) @p j.
 * u[i,j] = (b[i,j] - u[i-1,j] - u[i+1,j] - u[i,j-1] - u[i,j+1]) / 4.
 * Charges 4 loads + 1 store and 12 (regular) or 11 (fused)
 * instructions per point, matching the paper's reference counts.
 */
template <class M>
void
relaxLine(PdeGrid &g, std::size_t j, bool red, M &model,
          std::uint64_t instr_per_point)
{
    // Colour of (i, j): red when (i + j) is even.
    const std::size_t start = 1 + ((1 + j + (red ? 0 : 1)) & 1);
    double *const uj = g.u.col(j);
    const double *const ujm = g.u.col(j - 1);
    const double *const ujp = g.u.col(j + 1);
    const double *const bj = g.b.col(j);
    std::uint64_t points = 0;
    for (std::size_t i = start; i <= g.n; i += 2) {
        model.load(&bj[i], 8);
        model.load(&uj[i - 1], 8);
        model.load(&ujm[i], 8);
        model.load(&ujp[i], 8);
        uj[i] = 0.25 *
                (bj[i] - uj[i - 1] - uj[i + 1] - ujm[i] - ujp[i]);
        model.store(&uj[i], 8);
        ++points;
    }
    model.instructions(points * instr_per_point + 6);
}

/**
 * Residual on line @p j: r = b - 4u - (four neighbours).
 * @p fused charges the cache-conscious cost (3 loads + 1 store, the
 * u values being warm from the adjoining black relaxation); the
 * standalone pass charges 6 loads + 1 store.
 */
template <class M>
void
residualLine(PdeGrid &g, std::size_t j, M &model, bool fused)
{
    double *const rj = g.r.col(j);
    const double *const uj = g.u.col(j);
    const double *const ujm = g.u.col(j - 1);
    const double *const ujp = g.u.col(j + 1);
    const double *const bj = g.b.col(j);
    for (std::size_t i = 1; i <= g.n; ++i) {
        model.load(&bj[i], 8);
        if (!fused) {
            model.load(&uj[i], 8);
            model.load(&uj[i - 1], 8);
            model.load(&uj[i + 1], 8);
            model.load(&ujm[i], 8);
        } else {
            model.load(&uj[i], 8);
            model.load(&ujp[i], 8);
        }
        if (!fused)
            model.load(&ujp[i], 8);
        rj[i] = bj[i] - 4.0 * uj[i] - uj[i - 1] - uj[i + 1] - ujm[i] -
                ujp[i];
        model.store(&rj[i], 8);
    }
    model.instructions(g.n * (fused ? 12 : 14) + 6);
}

} // namespace pde_detail

/** Regular red-black Gauss-Seidel: full sweeps, residual afterwards. */
template <class M>
void
pdeRegular(PdeGrid &g, unsigned iters, M &model)
{
    model.enterKernel(kPdeRegular);
    for (unsigned it = 0; it < iters; ++it) {
        for (std::size_t j = 1; j <= g.n; ++j)
            pde_detail::relaxLine(g, j, true, model, 12);
        for (std::size_t j = 1; j <= g.n; ++j)
            pde_detail::relaxLine(g, j, false, model, 12);
    }
    for (std::size_t j = 1; j <= g.n; ++j)
        pde_detail::residualLine(g, j, model, false);
}

/**
 * Cache-conscious fused ordering: red line j with black line j-1 in
 * one pass; residual fused into the last iteration. Each iteration
 * passes the data through the cache once instead of twice.
 */
template <class M>
void
pdeCacheConscious(PdeGrid &g, unsigned iters, M &model)
{
    model.enterKernel(kPdeCacheConscious);
    for (unsigned it = 0; it < iters; ++it) {
        const bool last = (it + 1 == iters);
        pde_detail::relaxLine(g, 1, true, model, 11);
        for (std::size_t j = 2; j <= g.n; ++j) {
            pde_detail::relaxLine(g, j, true, model, 11);
            pde_detail::relaxLine(g, j - 1, false, model, 11);
            // r[.,j-2] needs final u on lines j-3..j-1; black(j-1)
            // just completed line j-1's final values.
            if (last && j >= 3)
                pde_detail::residualLine(g, j - 2, model, true);
        }
        pde_detail::relaxLine(g, g.n, false, model, 11);
        if (last) {
            if (g.n >= 2)
                pde_detail::residualLine(g, g.n - 1, model, true);
            pde_detail::residualLine(g, g.n, model, true);
        }
    }
}

/** Work descriptor of one PDE line-pair thread. */
template <class M>
struct PdeThreadCtx
{
    PdeGrid *grid;
    M *model;
    unsigned itersLeftToResidual; // 0 on the last iteration
};

/**
 * Thread body: red line j, black line j-1, fused residual on the last
 * iteration. arg2 packs the line index j in [1, n+1]; j == n+1 is the
 * trailing black/residual cleanup thread.
 */
template <class M>
void
pdeLinePairThread(void *ctx_p, void *j_p)
{
    auto *ctx = static_cast<PdeThreadCtx<M> *>(ctx_p);
    PdeGrid &g = *ctx->grid;
    M &model = *ctx->model;
    const std::size_t j = reinterpret_cast<std::uintptr_t>(j_p);
    const bool last = ctx->itersLeftToResidual == 0;
    if (j <= g.n) {
        pde_detail::relaxLine(g, j, true, model, 11);
        if (j >= 2)
            pde_detail::relaxLine(g, j - 1, false, model, 11);
        if (last && j >= 3)
            pde_detail::residualLine(g, j - 2, model, true);
    } else {
        pde_detail::relaxLine(g, g.n, false, model, 11);
        if (last) {
            if (g.n >= 2)
                pde_detail::residualLine(g, g.n - 1, model, true);
            pde_detail::residualLine(g, g.n, model, true);
        }
    }
    model.instructions(kThreadOverheadInstr);
}

/**
 * Threaded variant (paper Section 4.3): ny + 1 line-pair threads per
 * iteration, hinted with the u and b line addresses; one th_run per
 * iteration preserves the red-black dependence structure because
 * lines ascend through the address space and therefore through the
 * bins in creation order.
 */
template <class M>
void
pdeThreaded(PdeGrid &g, unsigned iters,
            threads::LocalityScheduler &scheduler, M &model)
{
    model.enterKernel(kPdeThreadedBlock);
    PdeThreadCtx<M> ctx{&g, &model, 0};
    for (unsigned it = 0; it < iters; ++it) {
        ctx.itersLeftToResidual = iters - 1 - it;
        for (std::size_t j = 1; j <= g.n + 1; ++j) {
            scheduler.fork(&pdeLinePairThread<M>, &ctx,
                           reinterpret_cast<void *>(j),
                           threads::hintOf(g.u.col(std::min(j, g.n))),
                           threads::hintOf(g.b.col(std::min(j, g.n))));
        }
        scheduler.run(false);
    }
}

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_PDE_HH
