/**
 * @file
 * Sparse matrix-vector multiply (CSR) with locality scheduling — an
 * extension experiment built on the paper's motivating case: "the
 * control or data flow complexity of a program may preclude static
 * analysis, e.g., data might be allocated dynamically or accessed
 * indirectly" (Section 1). A compiler cannot tile y = A*x when A's
 * column pattern is only known at run time; but at thread-creation
 * time the program *does* know each row's dominant column region, and
 * can hand it to the scheduler as a hint.
 *
 * The generated matrices are banded-random: each row draws its
 * nonzero columns from a window around a per-row band centre, and the
 * rows are stored in a shuffled order, so the natural row order jumps
 * randomly around the x vector (the cache-hostile case) while rows
 * with nearby band centres share an x region. The threaded version
 * forks one thread per row block, hinted with the address of the x
 * region its band touches, so the locality scheduler reassembles the
 * band structure at run time.
 */

#ifndef LSCHED_WORKLOADS_SPMV_HH
#define LSCHED_WORKLOADS_SPMV_HH

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "support/panic.hh"
#include "support/prng.hh"
#include "threads/hints.hh"
#include "threads/scheduler.hh"
#include "workloads/memmodel.hh"

namespace lsched::workloads
{

/** Synthetic-text ids for the SpMV kernels. */
enum SpmvKernelId : unsigned
{
    kSpmvRow = 24,
};

/** A CSR sparse matrix with known per-row band centres. */
struct CsrMatrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint32_t> rowPtr;  // rows + 1
    std::vector<std::uint32_t> colIdx;  // nnz
    std::vector<double> values;         // nnz
    /** Column the row's nonzeros cluster around (the hint source). */
    std::vector<std::uint32_t> bandCentre; // rows

    std::size_t nnz() const { return values.size(); }
};

/** Parameters of the banded-random generator. */
struct SpmvConfig
{
    std::size_t rows = 4096;
    std::size_t cols = 4096;
    /** Nonzeros per row. */
    std::size_t rowNnz = 32;
    /** Half-width of the column window around the band centre. */
    std::size_t bandHalfWidth = 256;
    std::uint64_t seed = 31;
};

/**
 * Generate a banded-random CSR matrix whose rows are stored in a
 * shuffled order (the natural iteration order is locality-hostile).
 */
inline CsrMatrix
makeBandedRandom(const SpmvConfig &config)
{
    LSCHED_ASSERT(config.rows > 0 && config.cols > 0,
                  "empty sparse matrix");
    LSCHED_ASSERT(config.rowNnz > 0, "rows need nonzeros");
    Prng prng(config.seed);

    CsrMatrix m;
    m.rows = config.rows;
    m.cols = config.cols;
    m.rowPtr.reserve(config.rows + 1);
    m.bandCentre.reserve(config.rows);
    m.colIdx.reserve(config.rows * config.rowNnz);
    m.values.reserve(config.rows * config.rowNnz);

    // Band centres sweep the columns, then the rows are shuffled so
    // storage order decorrelates from band order.
    std::vector<std::uint32_t> centres(config.rows);
    for (std::size_t r = 0; r < config.rows; ++r) {
        centres[r] = static_cast<std::uint32_t>(
            (r * config.cols) / config.rows);
    }
    std::shuffle(centres.begin(), centres.end(), prng);

    m.rowPtr.push_back(0);
    std::vector<std::uint32_t> row_cols(config.rowNnz);
    for (std::size_t r = 0; r < config.rows; ++r) {
        const std::uint32_t centre = centres[r];
        for (std::size_t k = 0; k < config.rowNnz; ++k) {
            const std::int64_t offset =
                static_cast<std::int64_t>(
                    prng.nextBelow(2 * config.bandHalfWidth + 1)) -
                static_cast<std::int64_t>(config.bandHalfWidth);
            std::int64_t col =
                static_cast<std::int64_t>(centre) + offset;
            col = std::clamp<std::int64_t>(
                col, 0, static_cast<std::int64_t>(config.cols) - 1);
            row_cols[k] = static_cast<std::uint32_t>(col);
        }
        std::sort(row_cols.begin(), row_cols.end());
        for (const std::uint32_t c : row_cols) {
            m.colIdx.push_back(c);
            m.values.push_back(prng.nextDouble(-1.0, 1.0));
        }
        m.rowPtr.push_back(
            static_cast<std::uint32_t>(m.colIdx.size()));
        m.bandCentre.push_back(centre);
    }
    return m;
}

namespace spmv_detail
{

/** y[row] = dot(A[row, :], x), charging the indirect references. */
template <class M>
void
computeRow(const CsrMatrix &a, const std::vector<double> &x,
           std::vector<double> &y, std::size_t row, M &model)
{
    const std::uint32_t begin = a.rowPtr[row];
    const std::uint32_t end = a.rowPtr[row + 1];
    double sum = 0;
    for (std::uint32_t k = begin; k < end; ++k) {
        model.load(&a.colIdx[k], 4);
        model.load(&a.values[k], 8);
        model.load(&x[a.colIdx[k]], 8);
        sum += a.values[k] * x[a.colIdx[k]];
    }
    y[row] = sum;
    model.store(&y[row], 8);
    model.instructions(8ull * (end - begin) + 8);
}

} // namespace spmv_detail

/** Natural (storage-order) SpMV — the untiled baseline. */
template <class M>
void
spmvNatural(const CsrMatrix &a, const std::vector<double> &x,
            std::vector<double> &y, M &model)
{
    model.enterKernel(kSpmvRow);
    for (std::size_t row = 0; row < a.rows; ++row)
        spmv_detail::computeRow(a, x, y, row, model);
}

/** Work descriptor of one SpMV row thread. */
template <class M>
struct SpmvCtx
{
    const CsrMatrix *a;
    const std::vector<double> *x;
    std::vector<double> *y;
    M *model;
};

/** Thread body: one row; arg2 carries the row index. */
template <class M>
void
spmvRowThread(void *ctx_p, void *row_p)
{
    auto *ctx = static_cast<SpmvCtx<M> *>(ctx_p);
    const std::size_t row = reinterpret_cast<std::uintptr_t>(row_p);
    spmv_detail::computeRow(*ctx->a, *ctx->x, *ctx->y, row,
                            *ctx->model);
    ctx->model->instructions(kThreadOverheadInstr);
}

/**
 * Locality-scheduled SpMV: one thread per row, hinted with the
 * address of the x-vector entry at the row's band centre — the one
 * object rows share — so rows touching the same x region run
 * consecutively regardless of storage order. (The row's own CSR data
 * is streamed exactly once either way, so it is not worth a hint; cf.
 * the paper's guidance to hint with the most-reused objects.)
 */
template <class M>
void
spmvThreaded(const CsrMatrix &a, const std::vector<double> &x,
             std::vector<double> &y,
             threads::LocalityScheduler &scheduler, M &model)
{
    model.enterKernel(kSpmvRow);
    SpmvCtx<M> ctx{&a, &x, &y, &model};
    for (std::size_t row = 0; row < a.rows; ++row) {
        scheduler.fork(&spmvRowThread<M>, &ctx,
                       reinterpret_cast<void *>(row),
                       threads::hintOf(&x[a.bandCentre[row]]));
    }
    scheduler.run(false);
}

/** Reference result for correctness checks. */
inline std::vector<double>
spmvReference(const CsrMatrix &a, const std::vector<double> &x)
{
    std::vector<double> y(a.rows, 0.0);
    for (std::size_t row = 0; row < a.rows; ++row) {
        double sum = 0;
        for (std::uint32_t k = a.rowPtr[row]; k < a.rowPtr[row + 1];
             ++k)
            sum += a.values[k] * x[a.colIdx[k]];
        y[row] = sum;
    }
    return y;
}

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_SPMV_HH
