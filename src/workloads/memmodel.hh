/**
 * @file
 * Memory-model policies for instrumented kernels.
 *
 * Every workload kernel is a template over a model M with the
 * interface below. NativeModel compiles to nothing, so the timed
 * binaries run uninstrumented machine code; SimModel plays the role
 * of Pixie + DineroIII, forwarding each load/store to the simulated
 * hierarchy and accounting instructions through the synthetic
 * instruction-fetch model (see trace/synth_ifetch.hh).
 */

#ifndef LSCHED_WORKLOADS_MEMMODEL_HH
#define LSCHED_WORKLOADS_MEMMODEL_HH

#include <cstdint>

#include "cachesim/hierarchy.hh"
#include "trace/synth_ifetch.hh"

namespace lsched::workloads
{

/**
 * Instructions charged per forked-and-run thread in traced kernels,
 * calibrated to the paper's Table 1 total overhead (1.60 us at
 * 75 MHz ~ 120 cycles).
 */
constexpr std::uint64_t kThreadOverheadInstr = 120;

/** Uninstrumented policy: all hooks vanish at -O1 and above. */
struct NativeModel
{
    static constexpr bool traced = false;

    void load(const void *, std::uint32_t) {}
    void store(const void *, std::uint32_t) {}
    /** Account @p n executed instructions. */
    void instructions(std::uint64_t) {}
    /** Mark entry into the kernel whose synthetic text is @p id. */
    void enterKernel(unsigned) {}
};

/** Pixie-like policy: every reference reaches the cache simulator. */
class SimModel
{
  public:
    static constexpr bool traced = true;

    /** Size of each kernel's synthetic text region. */
    static constexpr std::uint64_t kKernelBytes = 512;
    /** Base virtual address of the synthetic text segment. */
    static constexpr std::uint64_t kTextBase = 0x00400000;

    explicit SimModel(cachesim::Hierarchy &hierarchy,
                      trace::SynthIFetch::Mode mode =
                          trace::SynthIFetch::Mode::Analytic)
        : hierarchy_(&hierarchy), mode_(mode)
    {
    }

    void
    load(const void *p, std::uint32_t bytes)
    {
        hierarchy_->load(reinterpret_cast<std::uintptr_t>(p), bytes);
    }

    void
    store(const void *p, std::uint32_t bytes)
    {
        hierarchy_->store(reinterpret_cast<std::uintptr_t>(p), bytes);
    }

    void
    instructions(std::uint64_t n)
    {
        ifetch_.execute(n);
    }

    void
    enterKernel(unsigned id)
    {
        // Each kernel id owns a disjoint synthetic text region; the
        // first entry after a switch touches its code lines so
        // compulsory I-misses register.
        if (id != kernelId_ || !entered_) {
            kernelId_ = id;
            entered_ = true;
            ifetch_ = trace::SynthIFetch(
                hierarchy_, kTextBase + id * kKernelBytes, kKernelBytes,
                mode_);
            ifetch_.enter();
        }
    }

    /** The hierarchy being driven. */
    cachesim::Hierarchy &hierarchy() { return *hierarchy_; }

  private:
    cachesim::Hierarchy *hierarchy_;
    trace::SynthIFetch::Mode mode_;
    trace::SynthIFetch ifetch_{nullptr, 0, 1};
    unsigned kernelId_ = ~0u;
    bool entered_ = false;
};

} // namespace lsched::workloads

#endif // LSCHED_WORKLOADS_MEMMODEL_HH
