/**
 * @file
 * The unified, string-keyed configuration surface.
 *
 * The config surface had sprawled — th_init's two sizes,
 * th_set_placement/th_set_backend, one CLI flag per knob — and every
 * new knob (the streaming ones arrived with three) widened every
 * layer. This is the one parser all of them now route through:
 * th_configure("key", "value") and th_config_get() at the C boundary,
 * the generic --sched key=value CLI flag, and the legacy entry points
 * reimplemented as shims over it.
 *
 * The key set mirrors SchedulerConfig field-for-field in snake_case
 * (configKeys() enumerates it), values round-trip — configKeyValue()
 * emits exactly the tokens applyConfigKey() accepts — and a new
 * SchedulerConfig field needs only a row in the table in
 * config_keys.cc to be reachable from C, Fortran (numerically), and
 * the command line.
 *
 * Canonical names are snake_case. The camelCase spellings that
 * predate the audit (the SchedulerConfig field names themselves —
 * "streamMaxPending", "cacheBytes", "adapt.targetMiss", ...) are
 * accepted as read/write aliases: canonicalConfigKey() folds any key
 * with an uppercase letter to its snake_case form before dispatch.
 * configKeys() enumerates canonical names only.
 *
 * One prefixed family is process-global rather than per-scheduler:
 * the "profile.*" keys configure the continuous-profiling subsystem
 * (obs/profile.hh). They accept writes and round-trip reads through
 * the same entry points, but the @p config argument is bypassed —
 * applying the same value twice (e.g. --sched replayed onto several
 * schedulers) is idempotent.
 */

#ifndef LSCHED_THREADS_CONFIG_KEYS_HH
#define LSCHED_THREADS_CONFIG_KEYS_HH

#include <string>
#include <vector>

namespace lsched::threads
{

struct SchedulerConfig;

/**
 * Set the field @p key names on @p config from the string @p value.
 * Returns false — with a caller-facing message in @p error, when
 * non-null — on an unknown key or an unparsable value; @p config is
 * untouched on failure. Cross-field consistency (e.g. "backend"
 * keeping persistentPool in sync) is applied here, so the result is
 * what the legacy setters would have produced.
 */
bool applyConfigKey(SchedulerConfig &config, const std::string &key,
                    const std::string &value, std::string *error);

/**
 * Read the field @p key names from @p config, formatted so feeding it
 * back through applyConfigKey() reproduces the field. Returns false
 * on an unknown key.
 */
bool configKeyValue(const SchedulerConfig &config,
                    const std::string &key, std::string *out);

/** Every canonical key, in the order they are documented. */
const std::vector<std::string> &configKeys();

/**
 * Fold a legacy camelCase spelling to the canonical snake_case key
 * ("streamMaxPending" → "stream_max_pending"). Keys without an
 * uppercase letter come back unchanged, so canonical names pay one
 * scan and no allocation-shape change.
 */
std::string canonicalConfigKey(const std::string &key);

} // namespace lsched::threads

#endif // LSCHED_THREADS_CONFIG_KEYS_HH
