/**
 * @file
 * The locality thread scheduler — the paper's primary contribution.
 *
 * Threads are forked with up to k address hints; the hints select a
 * block of the k-dimensional scheduling space (block dimensions sum to
 * the cache size), the block hashes to a bin, and running all threads
 * of a bin consecutively keeps their combined working set within the
 * second-level cache (Sections 2.3 and 3.2).
 *
 * Guarantees:
 *  - threads with hints in the same block always share a bin;
 *  - bins run in tour order (creation order by default, the paper's
 *    ready list), threads within a bin in fork order;
 *  - run(keep=true) preserves all thread specifications so the same
 *    schedule can be re-executed (the paper's th_run(keep));
 *  - forking from inside a running thread is legal when keep is
 *    false: the new thread lands in its bin and runs before run()
 *    returns (an extension past the paper's batch model).
 */

#ifndef LSCHED_THREADS_SCHEDULER_HH
#define LSCHED_THREADS_SCHEDULER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "support/stats.hh"
#include "threads/block_map.hh"
#include "threads/hash_table.hh"
#include "threads/hints.hh"
#include "threads/thread_group.hh"
#include "threads/tour.hh"

namespace lsched::threads
{

/** Tunables of a LocalityScheduler (th_init's knobs and more). */
struct SchedulerConfig
{
    /** Scheduling-space dimensionality k (the paper implements 3). */
    unsigned dims = 3;
    /**
     * Target cache capacity in bytes; the sum of the k block
     * dimensions defaults to this (paper Sections 2.3, 3.2).
     */
    std::uint64_t cacheBytes = 2 * 1024 * 1024;
    /** Block dimension size; 0 selects cacheBytes / dims. */
    std::uint64_t blockBytes = 0;
    /** Hash table buckets (rounded up to a power of two). */
    std::size_t hashBuckets = 4096;
    /** Threads per thread group (amortization chunk). */
    std::uint32_t groupCapacity = 64;
    /** Fold symmetric hint permutations into one bin. */
    bool symmetricHints = false;
    /** Bin traversal order. */
    TourPolicy tour = TourPolicy::CreationOrder;

    /** The block dimension actually used. */
    std::uint64_t
    effectiveBlockBytes() const
    {
        return blockBytes ? blockBytes : cacheBytes / dims;
    }
};

/** Occupancy and shape statistics for reporting. */
struct SchedulerStats
{
    /** Threads currently scheduled (pending). */
    std::uint64_t pendingThreads = 0;
    /** Threads executed over the scheduler's lifetime. */
    std::uint64_t executedThreads = 0;
    /** Bins currently allocated. */
    std::uint64_t bins = 0;
    /** Non-empty bins. */
    std::uint64_t occupiedBins = 0;
    /** Distribution of threads over non-empty bins. */
    Summary threadsPerBin;
    /** Longest hash-bucket chain. */
    std::uint64_t maxHashChain = 0;
    /** Manhattan tour length over the current ready list. */
    std::uint64_t tourLength = 0;
};

/** The locality-scheduling thread package. */
class LocalityScheduler
{
  public:
    /** Build with the given configuration. */
    explicit LocalityScheduler(const SchedulerConfig &config = {});

    LocalityScheduler(const LocalityScheduler &) = delete;
    LocalityScheduler &operator=(const LocalityScheduler &) = delete;

    /**
     * Reconfigure (the paper's th_init, which "can be called more
     * than once to change those sizes"). Fatal while threads are
     * pending or running.
     */
    void configure(const SchedulerConfig &config);

    /** Current configuration. */
    const SchedulerConfig &config() const { return config_; }

    /**
     * Create and schedule a thread (the paper's th_fork). Hints are
     * the addresses of the data the thread will reference; unused
     * hints are 0.
     */
    void
    fork(ThreadFn fn, void *arg1, void *arg2, Hint hint1 = 0,
         Hint hint2 = 0, Hint hint3 = 0)
    {
        const Hint hints[3] = {hint1, hint2, hint3};
        fork(fn, arg1, arg2, std::span<const Hint>(hints, 3));
    }

    /** Fork with an arbitrary hint vector (k-dimensional case). */
    void fork(ThreadFn fn, void *arg1, void *arg2,
              std::span<const Hint> hints);

    /**
     * Run every scheduled thread, bins in tour order, threads within
     * a bin in fork order (the paper's th_run). With @p keep the
     * specifications survive for re-execution; otherwise all bins and
     * groups are recycled. Returns the number of threads executed.
     */
    std::uint64_t run(bool keep = false);

    /**
     * SMP extension (paper Section 7 notes the idea "can be extended
     * in a straightforward manner to ... symmetric multiprocessors"):
     * distribute the bin tour over @p workers OS threads, each worker
     * running whole bins so per-bin locality is preserved on its CPU.
     * User threads must be mutually independent. Forking from inside
     * a running thread is not supported here. Returns the number of
     * threads executed. Implemented in parallel_scheduler.cc.
     */
    std::uint64_t runParallel(unsigned workers, bool keep = false);

    /** Drop all pending threads without running them. */
    void clear();

    /** Number of threads waiting to run. */
    std::uint64_t pendingThreads() const { return pendingThreads_; }

    /** Bins allocated so far. */
    std::uint64_t binCount() const { return table_.binCount(); }

    /** Snapshot of occupancy statistics. */
    SchedulerStats stats() const;

    /** Per-bin thread counts in ready order (for tests/reports). */
    std::vector<std::uint64_t> binOccupancy() const;

    /** Block coordinates a given hint vector maps to (for tests). */
    BlockCoords
    coordsFor(std::span<const Hint> hints) const
    {
        return blockMap_.coordsFor(hints);
    }

  private:
    void rebuild();
    std::vector<Bin *> readyBins() const;
    void appendReady(Bin *bin);

    SchedulerConfig config_;
    BlockMap blockMap_;
    BinTable table_;
    GroupPool pool_;

    Bin *readyHead_ = nullptr;
    Bin *readyTail_ = nullptr;

    std::uint64_t pendingThreads_ = 0;
    std::uint64_t executedThreads_ = 0;
    bool running_ = false;
    bool nestedForkOk_ = false;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_SCHEDULER_HH
