/**
 * @file
 * The locality thread scheduler — the paper's primary contribution.
 *
 * Threads are forked with up to k address hints; the hints select a
 * block of the k-dimensional scheduling space (block dimensions sum to
 * the cache size), the block hashes to a bin, and running all threads
 * of a bin consecutively keeps their combined working set within the
 * second-level cache (Sections 2.3 and 3.2).
 *
 * Guarantees:
 *  - threads with hints in the same block always share a bin;
 *  - bins run in tour order (creation order by default, the paper's
 *    ready list), threads within a bin in fork order;
 *  - run(keep=true) preserves all thread specifications so the same
 *    schedule can be re-executed (the paper's th_run(keep));
 *  - forking from inside a running thread is legal when keep is
 *    false: the new thread lands in its bin and runs before run()
 *    returns (an extension past the paper's batch model).
 *
 * Beyond the paper: configuration errors and API misuse are
 * recoverable exceptions (support/error.hh), user-thread exceptions
 * are contained per ErrorPolicy (threads/fault.hh), runParallel() has
 * an optional stall watchdog, and named fail points
 * (support/failpoint.hh) inject faults into the allocation and
 * execution paths for testing.
 */

#ifndef LSCHED_THREADS_SCHEDULER_HH
#define LSCHED_THREADS_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "machine/topology.hh"
#include "support/stats.hh"
#include "threads/execution.hh"
#include "threads/fault.hh"
#include "threads/hash_table.hh"
#include "threads/hints.hh"
#include "threads/placement.hh"
#include "threads/recovery.hh"
#include "threads/stream.hh"
#include "threads/thread_group.hh"
#include "threads/tour.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

/** Tunables of a LocalityScheduler (th_init's knobs and more). */
struct SchedulerConfig
{
    /** Scheduling-space dimensionality k (the paper implements 3). */
    unsigned dims = 3;
    /**
     * Target cache capacity in bytes; the sum of the k block
     * dimensions defaults to this (paper Sections 2.3, 3.2).
     */
    std::uint64_t cacheBytes = 2 * 1024 * 1024;
    /** Block dimension size; 0 selects cacheBytes / dims. */
    std::uint64_t blockBytes = 0;
    /** Hash table buckets (rounded up to a power of two). */
    std::size_t hashBuckets = 4096;
    /** Threads per thread group (amortization chunk). */
    std::uint32_t groupCapacity = 64;
    /** Fold symmetric hint permutations into one bin. */
    bool symmetricHints = false;
    /**
     * Hint→bin placement policy (placement.hh). BlockHash is the
     * paper's algorithm; RoundRobin the locality-oblivious baseline;
     * Hierarchical adds worker-sized super-bins the parallel
     * partitioner keeps on one worker. Overridable per process with
     * the --placement CLI flag.
     */
    PlacementKind placement = PlacementKind::BlockHash;
    /**
     * Parallel execution backend (execution.hh). Pooled is the
     * persistent work-stealing pool; ColdSpawn the spawn-per-tour
     * baseline (implies persistentPool == false); Serial makes
     * runParallel() run the tour on the caller alone. Overridable per
     * process with the --backend CLI flag.
     */
    BackendKind backend = BackendKind::Pooled;
    /** RoundRobin placement: bins cycled over (0 = policy default). */
    std::uint64_t roundRobinBins = 0;
    /** Hierarchical placement: blocks per super-bin per dimension
     *  (0 = derive from the topology when it has more than one L2
     *  group, else the policy default). */
    std::uint64_t superBinFan = 0;
    /**
     * Cache-hierarchy discovery (machine/topology.hh):
     *  - "auto" (the default) discovers the host tree from sysfs
     *    (overridable per process with the LSCHED_TOPOLOGY environment
     *    variable), falling back to flat when discovery fails;
     *  - "flat" disables the topology entirely — the pre-topology
     *    behavior, byte for byte;
     *  - a "PxCxGxS[/l2=N][/l3=N]" spec forces a synthetic tree
     *    (deterministic benches/tests; ConfigError when malformed).
     * A resolved multi-L2 tree derives what the knobs leave at 0:
     * cacheBytes == 0 takes the discovered L2 size, superBinFan == 0
     * the L2-groups-per-L3-cluster ratio (hierarchical placements),
     * and pinWorkers upgrades to the tree's domain-major pin plan with
     * super-bins routed to the workers sharing their cache domain.
     */
    std::string topology = "auto";
    /** Bin traversal order. */
    TourPolicy tour = TourPolicy::CreationOrder;
    /** What to do with an exception escaping a user thread. */
    ErrorPolicy onError = ErrorPolicy::Abort;
    /**
     * runParallel() watchdog deadline in milliseconds; 0 disables.
     * When a tour overruns the deadline a monitor thread warns with
     * the stuck worker/bin ids and emits a WatchdogStall trace event;
     * watchdogAction selects what happens next.
     */
    std::uint32_t watchdogMillis = 0;
    /**
     * What the watchdog does when it fires (recovery.hh): Event (the
     * default) only warns and traces, preserving the historic
     * observe-only behavior; Cancel additionally raises the tour's
     * cancellation token — the same cooperative cancel a deadline
     * uses — so a wedged tour is cut short instead of merely reported.
     */
    WatchdogAction watchdogAction = WatchdogAction::Event;
    /**
     * Tour/epoch deadline in milliseconds; 0 disables. A batch tour
     * (run()/runParallel()) that overruns it is cooperatively
     * cancelled: workers stop at the next bin boundary, dropped work
     * is accounted in stats().recover, and the call throws
     * DeadlineError (under ErrorPolicy::ContinueAndCollect it returns
     * normally with the cancellation recorded as contained faults).
     * While streaming, the deadline instead bounds *epoch progress*:
     * a standing backlog that retires nothing for a full deadline
     * period cancels the stream the same way, surfacing at
     * streamEnd().
     */
    std::uint32_t deadlineMillis = 0;
    /**
     * Bound on consecutive no-progress backpressure waits a streaming
     * producer tolerates before admission fails with AdmissionTimeout
     * (each wait backs off exponentially with jitter). 0 = retry
     * forever — but the wait is still timed, so a wedged pool produces
     * periodic warnings instead of a silent hang.
     */
    std::uint32_t streamAdmitRetries = 0;
    /**
     * Overload governor (recovery.hh): consecutive overloaded epochs
     * — cancelled tours, or stream ticks pinned at the backpressure
     * bound — before the scheduler degrades (parallel tours step down
     * to serial; streams shed load by force-sealing). 0 disables the
     * governor.
     */
    unsigned overloadEpochs = 0;
    /** Consecutive healthy epochs before a degraded scheduler steps
     *  back up. */
    unsigned recoverEpochs = 2;
    /**
     * Keep runParallel()'s workers parked between tours (the default):
     * OS threads are created once, at the first parallel tour, and
     * reused until the scheduler is destroyed or reconfigured. false
     * restores the historic cold path — spawn and join a fresh set of
     * threads every tour — kept for comparison (bench/ablation_smp).
     */
    bool persistentPool = true;
    /**
     * Pin pool workers round-robin over CPUs (Linux; elsewhere a
     * no-op). Keeps a worker's bins — and their cached working sets —
     * on one CPU across tours, at the price of ceding load balancing
     * to the OS-level mix.
     */
    bool pinWorkers = false;
    /**
     * Streaming (streamBegin/runStream) intake shards: independent
     * lock+BinTable+GroupPool units producers spread over by
     * coordinate hash. 0 selects StreamSession::kDefaultShards.
     */
    unsigned streamShards = 0;
    /**
     * Streaming backpressure bound: the most admitted-but-unexecuted
     * threads a stream may hold. At the bound a producer drains a
     * sealed bin inline or blocks until the drain catches up; nested
     * forks from an inline drain bypass the bound (deadlock
     * avoidance), making it soft for those workloads only.
     * 0 = unbounded.
     */
    std::uint64_t streamMaxPending = 0;
    /**
     * Seal a streaming bin for draining once it holds this many
     * threads (it re-opens for the next epoch). 0 seals only under
     * backpressure and at streamEnd — maximum per-bin locality,
     * minimum overlap.
     */
    std::uint64_t streamSealThreshold = 0;
    /**
     * Adaptive placement (placement == Adaptive; threads/adapt.hh):
     * the base policy the tuner wraps and re-parameterizes. Must not
     * itself be Adaptive.
     */
    PlacementKind adaptBase = PlacementKind::BlockHash;
    /**
     * Miss rate at or below which an epoch counts as the compulsory
     * floor (PMU mode); adaptEpochs consecutive floor epochs allow the
     * tuner to grow the block back toward adaptMaxBlock.
     */
    double adaptTargetMiss = 0.05;
    /**
     * Miss rate above which an epoch is capacity-dominated; after
     * adaptEpochs consecutive such epochs the tuner halves the block
     * (doubles the bin count under a round-robin base).
     */
    double adaptHighMiss = 0.10;
    /**
     * Convergence factor over the target miss rate: the band
     * [target, target * converge] reads as converged-enough. Also the
     * bound bench/ablation_adaptive gates on.
     */
    double adaptConverge = 1.5;
    /** Consecutive same-regime epochs before the tuner acts. */
    unsigned adaptEpochs = 2;
    /** Post-retune hold: epochs of no action while the new parameters
     *  settle (prevents reacting to a half-old epoch). */
    unsigned adaptHold = 4;
    /** Smallest block the tuner may shrink to. */
    std::uint64_t adaptMinBlock = 4096;
    /** Largest block the tuner may grow to; 0 = cacheBytes. */
    std::uint64_t adaptMaxBlock = 0;
    /** Minimum LLC references per epoch for a PMU classification;
     *  epochs below it are ignored as noise. */
    std::uint64_t adaptMinRefs = 1024;
    /**
     * Dwell-only mode (no PMU): fractional dwell-per-thread
     * improvement a probe retune must deliver to be kept; otherwise
     * it is reverted and that parameter marked bad.
     */
    double adaptDwellImprove = 0.05;

    /** The block dimension actually used. */
    std::uint64_t
    effectiveBlockBytes() const
    {
        return blockBytes ? blockBytes : cacheBytes / dims;
    }
};

/** The cache topology in force (SchedulerStats::topology). */
struct TopologySnapshot
{
    /** True when a non-flat topology resolved (config topology !=
     *  "flat" and discovery/spec produced a tree). */
    bool active = false;
    /** machine::TopologySource numeric (flat=0, sysfs=1, spec=2). */
    std::uint8_t source = 0;
    unsigned packages = 0;
    unsigned l3Clusters = 0;
    unsigned l2Groups = 0;
    unsigned cpus = 0;
    unsigned smtPerCore = 0;
    std::uint64_t l2Bytes = 0;
    std::uint64_t l3Bytes = 0;
    /** Fan the tree derives (groups per cluster); 0 when the tree is
     *  single-domain. The config's superBinFan still overrides. */
    std::uint64_t derivedFan = 0;
    /** Cache domains the most recent parallel tour partitioned over
     *  (0: no topology-aware tour yet). */
    std::uint32_t domains = 0;
    /** Workers per domain in that tour (ceiling when uneven). */
    std::uint32_t domainWorkers = 0;
    /** One-line human summary (harness TopologySummary row). */
    std::string summary;
};

/** Occupancy and shape statistics for reporting. */
struct SchedulerStats
{
    /** Threads currently scheduled (pending). */
    std::uint64_t pendingThreads = 0;
    /** Threads executed over the scheduler's lifetime. */
    std::uint64_t executedThreads = 0;
    /** User threads whose exception was contained (lifetime). */
    std::uint64_t faultedThreads = 0;
    /** Bins currently allocated. */
    std::uint64_t bins = 0;
    /** Non-empty bins. */
    std::uint64_t occupiedBins = 0;
    /** Distribution of threads over non-empty bins. */
    Summary threadsPerBin;
    /** Longest probe sequence in the bin table. */
    std::uint64_t maxHashChain = 0;
    /** Manhattan tour length over the current ready list. */
    std::uint64_t tourLength = 0;
    /** Worker-pool lifetime statistics (spawns, steals, parks). */
    WorkerPoolStats pool;
    /** Streaming statistics (live session, else lifetime totals). */
    StreamStats stream;
    /** Recovery-layer counters and governor state (lifetime). */
    RecoverySnapshot recover;
    /** Adaptive-placement tuner state (all-zero unless adaptive). */
    AdaptSnapshot adapt;
    /** Cache topology in force and last tour's domain shape. */
    TopologySnapshot topology;
};

/** The locality-scheduling thread package. */
class LocalityScheduler
{
  public:
    /** Build with the given configuration. */
    explicit LocalityScheduler(const SchedulerConfig &config = {});

    /** Parks and joins the worker pool, if one was ever created. */
    ~LocalityScheduler();

    LocalityScheduler(const LocalityScheduler &) = delete;
    LocalityScheduler &operator=(const LocalityScheduler &) = delete;

    /**
     * Reconfigure (the paper's th_init, which "can be called more
     * than once to change those sizes"). Throws ConfigError on an
     * unusable configuration and UsageError while threads are pending
     * or running; the previous configuration is retained either way.
     */
    void configure(const SchedulerConfig &config);

    /** Current configuration. */
    const SchedulerConfig &config() const { return config_; }

    /**
     * Create and schedule a thread (the paper's th_fork). Hints are
     * the addresses of the data the thread will reference; unused
     * hints are 0.
     *
     * The hint span is adapted to config().dims explicitly: with
     * dims > 3 the missing trailing dimensions behave as hint 0
     * (zero-extension, as the paper's th_fork documents); with
     * dims < 3 the surplus hints are truncated, which is a UsageError
     * when a truncated hint is non-zero — it would otherwise be
     * silently ignored.
     */
    void fork(ThreadFn fn, void *arg1, void *arg2, Hint hint1 = 0,
              Hint hint2 = 0, Hint hint3 = 0);

    /** Fork with an arbitrary hint vector (k-dimensional case). */
    void fork(ThreadFn fn, void *arg1, void *arg2,
              std::span<const Hint> hints);

    /**
     * Run every scheduled thread, bins in tour order, threads within
     * a bin in fork order (the paper's th_run). With @p keep the
     * specifications survive for re-execution; otherwise all bins and
     * groups are recycled. Returns the number of threads executed.
     *
     * Exceptions escaping user threads are handled per
     * config().onError; after a StopTour rethrow (or any unwind) the
     * scheduler is back in a clean, reusable state with no pending
     * threads.
     */
    std::uint64_t run(bool keep = false);

    /**
     * SMP extension (paper Section 7 notes the idea "can be extended
     * in a straightforward manner to ... symmetric multiprocessors"):
     * distribute the bin tour over @p workers OS threads, each worker
     * running whole bins so per-bin locality is preserved on its CPU.
     * User threads must be mutually independent. Forking from inside
     * a running thread is not supported here — it is detected and
     * fatal, naming the restriction. Exceptions from user threads are
     * handled per config().onError; config().watchdogMillis arms a
     * stall watchdog. Returns the number of threads executed.
     * Implemented in parallel_scheduler.cc.
     */
    std::uint64_t runParallel(unsigned workers, bool keep = false);

    /**
     * Streaming extension (the server-shaped mode): open a
     * fork-while-run session. Until streamEnd(), fork() is safe from
     * any OS thread concurrently and admitted threads are drained by
     * @p workers pool helpers as bins seal — there is no barrier
     * between forking and running. @p workers == 0 picks
     * hardware_concurrency; with the Serial backend no helpers run
     * and all draining happens on producers (backpressure) and in
     * streamEnd(). Throws UsageError mid-run, mid-stream, or with
     * batch threads pending.
     */
    void streamBegin(unsigned workers = 0);

    /**
     * Close the session opened by streamBegin(): seals and drains
     * everything still pending, stops the helpers, folds the
     * session's counters into the scheduler's lifetime statistics,
     * and (under StopTour) rethrows the first contained exception
     * exactly once. Returns the number of threads the stream
     * executed.
     */
    std::uint64_t streamEnd();

    /**
     * Convenience wrapper: streamBegin(workers), run @p producer on
     * @p producers OS threads (index 0 runs on the caller), then
     * streamEnd(). A throwing producer still closes the stream before
     * its exception is rethrown.
     */
    std::uint64_t
    runStream(unsigned workers, unsigned producers,
              const std::function<void(unsigned)> &producer);

    /** True between streamBegin() and streamEnd(). */
    bool streaming() const { return stream_ != nullptr; }

    /** Live session counters, or lifetime totals when idle. */
    StreamStats
    streamStats() const
    {
        return stream_ ? stream_->stats() : lifetimeStream_;
    }

    /** Per-bin totals of the most recent finished stream. */
    const std::vector<StreamBinReport> &lastStreamBins() const
    {
        return lastStreamBins_;
    }

    /** Drop all pending threads without running them. */
    void clear();

    /** Number of threads waiting to run. */
    std::uint64_t pendingThreads() const { return pendingThreads_; }

    /** Bins allocated so far. */
    std::uint64_t binCount() const { return table_.binCount(); }

    /** Snapshot of occupancy statistics. */
    SchedulerStats stats() const;

    /** Per-bin thread counts in ready order (for tests/reports). */
    std::vector<std::uint64_t> binOccupancy() const;

    /**
     * Faults contained during the most recent run()/runParallel()
     * (at most FaultCtx::kMaxRecordedFaults retained in detail).
     */
    const std::vector<ThreadFault> &lastFaults() const
    {
        return lastFaults_;
    }

    /** Total faults in the most recent run, including past the cap. */
    std::uint64_t lastFaultCount() const { return lastFaultsTotal_; }

    /**
     * Lifetime worker-pool statistics, including pools already retired
     * (cold-spawn tours, reconfiguration). threadsSpawned stays flat
     * across warm tours — the observable proof that repeated
     * runParallel() calls create no OS threads after the first.
     */
    WorkerPoolStats workerPoolStats() const
    {
        WorkerPoolStats s = retiredPoolStats_;
        if (workerPool_)
            s += workerPool_->stats();
        return s;
    }

    /**
     * Block coordinates a given hint vector maps to (for tests and
     * stats). A pure inspection: routed through PlacementPolicy::peek,
     * so a stateful placement (RoundRobin's cursor) is *not* advanced
     * — calling this can never perturb where real forks land.
     */
    BlockCoords
    coordsFor(std::span<const Hint> hints) const
    {
        return placement_->peek(hints).coords;
    }

    /** The active placement policy (inspection; tests). */
    const PlacementPolicy &placementPolicy() const { return *placement_; }

    /**
     * Give an adaptive placement (placement == Adaptive) a chance to
     * retune from the profiler's attribution right now, in addition to
     * the automatic hooks (end of run()/runParallel(), streamBegin/
     * streamEnd, the stream monitor's tick). For benches and tests
     * that feed Profiler::recordSample() between tours. Legal while
     * idle or streaming; throws UsageError mid-run (a tour must place
     * against fixed parameters). Returns true when the parameters
     * changed; always false for non-adaptive placements.
     */
    bool pollAdaptivePlacement();

    /**
     * Arm (or disarm, ms == 0) the tour/epoch deadline without a full
     * reconfigure — the th_set_deadline C shim. Takes effect at the
     * next run()/runParallel()/streamBegin(); an in-flight tour keeps
     * the deadline it was armed with. Not thread-safe against a
     * concurrent configure().
     */
    void setDeadlineMillis(std::uint32_t ms) { config_.deadlineMillis = ms; }

    /** Current overload-governor state (Healthy when disabled). */
    RecoveryState recoveryState() const { return governor_.state(); }

    /**
     * The resolved cache topology, or null when the config forced
     * "flat" (or auto-discovery found nothing and fell back). Shared:
     * callers may hold it past a reconfigure.
     */
    std::shared_ptr<const machine::CacheTopology> topologyTree() const
    {
        return topo_;
    }

    /** Lifetime recovery counters (also embedded in stats()). */
    RecoverySnapshot
    recoverySnapshot() const
    {
        RecoverySnapshot s = recovery_.snapshot();
        s.state = governor_.state();
        return s;
    }

  private:
    friend struct detail::RunGuard;

    void rebuild();
    std::vector<Bin *> readyBins() const;
    void appendReady(Bin *bin);
    /**
     * Reset to a clean idle state after an abandoned run: recycles
     * @p inFlight (a bin already unlinked by the streaming loop) and
     * every bin still on the ready list, then zeroes the pending count
     * and the running flag. noexcept — runs during unwinds.
     */
    void abandonRun(Bin *inFlight) noexcept;

    /**
     * Resolved cache topology; null when flat. Declared before
     * config_: the constructor resolves it as an out-parameter of the
     * same validated() call that initializes config_, so it must be
     * constructed first.
     */
    std::shared_ptr<const machine::CacheTopology> topo_;
    SchedulerConfig config_;
    /** The placement layer: hint vector → bin decision. */
    std::unique_ptr<PlacementPolicy> placement_;
    /** Cached placement_->hotPolicy(): the batch fork path dispatches
     *  straight to the adaptive wrapper's inner generation, so a
     *  quiescent tuner adds nothing per fork. Refreshed wherever
     *  maybeRetune() runs and on reconfiguration. */
    PlacementPolicy *placeHot_ = nullptr;
    BinTable table_;
    GroupPool pool_;
    /** Persistent parallel workers; created at first runParallel(). */
    std::unique_ptr<WorkerPool> workerPool_;
    /** Stats of pools retired by cold tours or reconfiguration. */
    WorkerPoolStats retiredPoolStats_;

    Bin *readyHead_ = nullptr;
    Bin *readyTail_ = nullptr;

    std::uint64_t pendingThreads_ = 0;
    std::uint64_t executedThreads_ = 0;
    std::uint64_t faultedThreads_ = 0;
    std::vector<ThreadFault> lastFaults_;
    std::uint64_t lastFaultsTotal_ = 0;
    bool running_ = false;
    bool nestedForkOk_ = false;

    /**
     * Active streaming session; non-null exactly while streaming().
     * Declared after workerPool_ so teardown finishes the stream
     * (stopping the drain helpers) before the pool is destroyed.
     */
    std::unique_ptr<StreamSession> stream_;
    /** Accumulated counters of finished streams. */
    StreamStats lifetimeStream_;
    std::vector<StreamBinReport> lastStreamBins_;

    /** Domain shape of the most recent topology-aware parallel tour
     *  (0 until one runs); surfaced via stats().topology. */
    std::uint32_t lastTourDomains_ = 0;
    std::uint32_t lastTourDomainWorkers_ = 0;

    /** Lifetime recovery counters (deadlines, cancels, sheds). */
    detail::RecoveryStats recovery_;
    /** Overload → degrade → recover state machine; disabled unless
     *  config_.overloadEpochs > 0. */
    OverloadGovernor governor_;
};

namespace detail
{

/**
 * Unwind protection for run()/runParallel(): unless the run commits,
 * destruction abandons it — every ready bin is recycled, the pending
 * count zeroed, and the running flag dropped — so a throw (user
 * exception under Abort, StopTour rethrow, injected allocation
 * failure) can never leave the scheduler stuck with running_ == true.
 */
struct RunGuard
{
    LocalityScheduler &scheduler;
    /** Bin the streaming loop has unlinked but not finished. */
    Bin **inFlight = nullptr;
    bool committed = false;

    /** Normal completion: the run loop restored state itself. */
    void
    commit()
    {
        committed = true;
        scheduler.running_ = false;
        scheduler.nestedForkOk_ = false;
    }

    ~RunGuard()
    {
        if (!committed)
            scheduler.abandonRun(inFlight ? *inFlight : nullptr);
    }
};

} // namespace detail

} // namespace lsched::threads

#endif // LSCHED_THREADS_SCHEDULER_HH
