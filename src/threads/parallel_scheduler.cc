/**
 * @file
 * SMP extension of the locality scheduler (paper Section 7).
 *
 * Bins are the unit of distribution: a worker always runs a whole bin
 * so the per-bin working-set property carries over to each CPU's own
 * cache. Bins are handed out dynamically from a shared cursor, which
 * balances load when bin occupancy is skewed (as in N-body).
 *
 * Fault containment: with ErrorPolicy::StopTour or
 * ::ContinueAndCollect each worker catches user-thread exceptions
 * (sched_obs.hh, executeBinGuarded) instead of letting them hit the
 * std::thread boundary and std::terminate. The optional watchdog
 * (SchedulerConfig::watchdogMillis) is a monitor thread that warns —
 * and emits a WatchdogStall trace event — when the tour overruns its
 * deadline, naming the stuck workers and the bins they hold.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/panic.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

/** Worker "current bin" states for the watchdog. */
constexpr std::int64_t kWorkerIdle = -1;
constexpr std::int64_t kWorkerDone = -2;

thread_local bool t_inParallelWorker = false;

/** Scoped thread-local marker for runParallel worker bodies. */
struct ParallelWorkerScope
{
    ParallelWorkerScope() { t_inParallelWorker = true; }
    ~ParallelWorkerScope() { t_inParallelWorker = false; }
};

/** Rendezvous between the tour and its watchdog monitor. */
struct WatchdogChannel
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
};

/**
 * Monitor body: wake every deadline period; while workers are still
 * running past a deadline, warn with the stuck worker/bin ids and
 * record a WatchdogStall event. Purely observational — it never stops
 * or kills the tour.
 */
void
watchdogBody(WatchdogChannel &channel, std::uint32_t deadlineMillis,
             const std::atomic<std::int64_t> *currentBin,
             unsigned workers)
{
    if (obs::traceOn())
        obs::TraceSession::global().setLaneName("watchdog");
    std::unique_lock<std::mutex> lock(channel.mutex);
    const auto period = std::chrono::milliseconds(deadlineMillis);
    while (!channel.done) {
        if (channel.cv.wait_for(lock, period,
                                [&] { return channel.done; }))
            return;
        // Deadline passed with workers still out there.
        std::uint64_t stalled = 0;
        std::int64_t firstStuckBin = kWorkerIdle;
        std::ostringstream who;
        for (unsigned w = 0; w < workers; ++w) {
            const std::int64_t bin =
                currentBin[w].load(std::memory_order_relaxed);
            if (bin == kWorkerDone)
                continue;
            ++stalled;
            if (who.tellp() > 0)
                who << ", ";
            if (bin == kWorkerIdle)
                who << "worker " << w << " (between bins)";
            else
                who << "worker " << w << " (bin " << bin << ")";
            if (firstStuckBin == kWorkerIdle && bin >= 0)
                firstStuckBin = bin;
        }
        LSCHED_WARN("runParallel watchdog: tour still running after ",
                    deadlineMillis, " ms deadline; ", stalled,
                    " worker(s) busy: ", who.str());
        LSCHED_TRACE_EVENT(
            obs::EventType::WatchdogStall, stalled,
            firstStuckBin >= 0
                ? static_cast<std::uint64_t>(firstStuckBin)
                : 0,
            deadlineMillis);
    }
}

} // namespace

namespace detail
{

bool
inParallelWorker()
{
    return t_inParallelWorker;
}

} // namespace detail

std::uint64_t
LocalityScheduler::runParallel(unsigned workers, bool keep)
{
    LSCHED_ASSERT(!running_, "recursive run()");
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers <= 1)
        return run(keep);

    running_ = true;
    nestedForkOk_ = false;
    lastFaults_.clear();
    lastFaultsTotal_ = 0;

    detail::RunGuard guard{*this, nullptr};
    detail::FaultCtx ctx(config_.onError, &lastFaults_);
    const bool contain = ctx.policy != ErrorPolicy::Abort;

    const std::vector<Bin *> tour =
        orderBins(config_.tour, readyBins(), config_.dims);

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, pendingThreads_,
                       table_.binCount(), workers);
    if (obs::metricsOn()) {
        detail::schedInstruments().runs->add();
        // Hops of the nominal tour; interleaving across workers is
        // visible in the trace, not the histogram.
        detail::recordTourHops(tour, config_.dims);
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::uint64_t> executed{0};
    const std::unique_ptr<std::atomic<std::int64_t>[]> currentBin(
        new std::atomic<std::int64_t>[workers]);
    for (unsigned w = 0; w < workers; ++w)
        currentBin[w].store(kWorkerIdle, std::memory_order_relaxed);

    auto worker_body = [&](unsigned w) {
        ParallelWorkerScope in_worker;
        if (obs::traceOn()) {
            obs::TraceSession::global().setLaneName(
                "worker " + std::to_string(w));
        }
        std::uint64_t mine = 0;
        for (;;) {
            if (ctx.stopRequested())
                break;
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= tour.size())
                break;
            Bin *bin = tour[i];
            currentBin[w].store(bin->id, std::memory_order_relaxed);
            LSCHED_TRACE_EVENT(obs::EventType::WorkerClaimBin, bin->id,
                               i, w);
            // Abort keeps the historic uncontained fast path: an
            // escaped exception hits the std::thread boundary.
            mine += contain ? detail::executeBinGuarded(bin, ctx, w)
                            : detail::executeBin(bin);
            currentBin[w].store(kWorkerIdle, std::memory_order_relaxed);
        }
        currentBin[w].store(kWorkerDone, std::memory_order_relaxed);
        executed.fetch_add(mine, std::memory_order_relaxed);
    };

    WatchdogChannel channel;
    std::thread watchdog;
    if (config_.watchdogMillis > 0) {
        watchdog = std::thread(watchdogBody, std::ref(channel),
                               config_.watchdogMillis, currentBin.get(),
                               workers);
    }

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker_body, w);
    worker_body(0);
    for (auto &t : pool)
        t.join();

    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(channel.mutex);
            channel.done = true;
        }
        channel.cv.notify_one();
        watchdog.join();
    }

    const bool faultedStop = ctx.first != nullptr;
    if (!keep && !faultedStop) {
        for (Bin *bin : tour) {
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            bin->readyNext = nullptr;
            bin->onReadyList = false;
        }
        readyHead_ = nullptr;
        readyTail_ = nullptr;
        pendingThreads_ = 0;
    }

    executedThreads_ += executed.load();
    lastFaultsTotal_ = ctx.totalFaults;
    faultedThreads_ += lastFaultsTotal_;
    if (faultedStop) {
        // StopTour: all workers have joined; rethrow the first user
        // exception exactly once on the caller. The guard's unwind
        // path recycles every bin and zeroes the pending count.
        std::rethrow_exception(ctx.first);
    }
    guard.commit();
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, executed.load());
    return executed.load();
}

} // namespace lsched::threads
