/**
 * @file
 * SMP extension of the locality scheduler (paper Section 7) — now a
 * thin dispatcher over the execution layer.
 *
 * Bins are the unit of distribution: a worker always runs a whole bin
 * so the per-bin working-set property carries over to each CPU's own
 * cache. runParallel() orders the tour (grouping super-bins together
 * under a hierarchical placement), arms the optional stall watchdog,
 * and hands a TourSpec to the configured ExecutionBackend
 * (execution.hh) — the pooled work-stealing default, the cold
 * spawn-per-tour baseline, or the serial fallback. All bin execution,
 * fault containment (ErrorPolicy), tracing, and fail-point sites live
 * in the one executeBin() routine (bin_exec.hh) the backends share.
 *
 * The watchdog (SchedulerConfig::watchdogMillis) is a monitor thread
 * that warns — and emits a WatchdogStall trace event — when the tour
 * overruns its deadline, naming the stuck workers and the bins they
 * hold. Purely observational; it never stops or kills the tour.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.hh"
#include "support/error.hh"
#include "support/panic.hh"
#include "threads/execution.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

namespace
{

/** Per-backend tour counters (sched.backend.<name>.tours). */
obs::Counter &
backendToursCounter(BackendKind kind)
{
    static obs::Counter *const counters[] = {
        &obs::Registry::global().counter("sched.backend.serial.tours"),
        &obs::Registry::global().counter("sched.backend.pooled.tours"),
        &obs::Registry::global().counter(
            "sched.backend.coldspawn.tours"),
    };
    return *counters[static_cast<std::size_t>(kind)];
}

/** Rendezvous between the tour and its watchdog monitor. */
struct WatchdogChannel
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
};

/**
 * Monitor body: wake every deadline period; while workers are still
 * running past a deadline, warn with the stuck worker/bin ids and
 * record a WatchdogStall event. Purely observational — it never stops
 * or kills the tour.
 */
void
watchdogBody(WatchdogChannel &channel, std::uint32_t deadlineMillis,
             const std::atomic<std::int64_t> *currentBin,
             unsigned workers)
{
    if (obs::traceOn())
        obs::TraceSession::global().setLaneName("watchdog");
    std::unique_lock<std::mutex> lock(channel.mutex);
    const auto period = std::chrono::milliseconds(deadlineMillis);
    while (!channel.done) {
        if (channel.cv.wait_for(lock, period,
                                [&] { return channel.done; }))
            return;
        // Deadline passed with workers still out there.
        std::uint64_t stalled = 0;
        std::int64_t firstStuckBin = detail::kWorkerIdle;
        std::ostringstream who;
        for (unsigned w = 0; w < workers; ++w) {
            const std::int64_t bin =
                currentBin[w].load(std::memory_order_relaxed);
            if (bin == detail::kWorkerDone)
                continue;
            ++stalled;
            if (who.tellp() > 0)
                who << ", ";
            if (bin == detail::kWorkerIdle)
                who << "worker " << w << " (between bins)";
            else
                who << "worker " << w << " (bin " << bin << ")";
            if (firstStuckBin == detail::kWorkerIdle && bin >= 0)
                firstStuckBin = bin;
        }
        LSCHED_WARN("runParallel watchdog: tour still running after ",
                    deadlineMillis, " ms deadline; ", stalled,
                    " worker(s) busy: ", who.str());
        LSCHED_TRACE_EVENT(
            obs::EventType::WatchdogStall, stalled,
            firstStuckBin >= 0
                ? static_cast<std::uint64_t>(firstStuckBin)
                : 0,
            deadlineMillis);
    }
}

/**
 * RAII watchdog: armed when the config asks for one, always stopped
 * and joined on scope exit — including the unwind when a worker-0
 * exception propagates out of the tour.
 */
struct WatchdogGuard
{
    WatchdogChannel channel;
    std::thread monitor;

    WatchdogGuard(std::uint32_t deadlineMillis,
                  const std::atomic<std::int64_t> *currentBin,
                  unsigned workers)
    {
        if (deadlineMillis > 0) {
            monitor = std::thread(watchdogBody, std::ref(channel),
                                  deadlineMillis, currentBin, workers);
        }
    }

    ~WatchdogGuard()
    {
        if (monitor.joinable()) {
            {
                std::lock_guard<std::mutex> lock(channel.mutex);
                channel.done = true;
            }
            channel.cv.notify_one();
            monitor.join();
        }
    }
};

} // namespace

std::uint64_t
LocalityScheduler::runParallel(unsigned workers, bool keep)
{
    if (stream_) {
        throw lsched::UsageError("runParallel() during an active "
                                 "stream; close it with streamEnd() "
                                 "first");
    }
    LSCHED_ASSERT(!running_, "recursive run()");
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers <= 1 || config_.backend == BackendKind::Serial) {
        // One worker — or the serial backend, whose tour is exactly
        // run()'s ordered walk (no helpers, so no watchdog either).
        if (obs::metricsOn() && config_.backend == BackendKind::Serial)
            backendToursCounter(BackendKind::Serial).add();
        return run(keep);
    }

    running_ = true;
    nestedForkOk_ = false;
    lastFaults_.clear();
    lastFaultsTotal_ = 0;

    detail::RunGuard guard{*this, nullptr};
    detail::FaultCtx ctx(config_.onError, &lastFaults_);

    std::vector<Bin *> tour =
        orderBins(config_.tour, readyBins(), config_.dims);
    const bool superBins = placement_->hierarchical();
    if (superBins)
        tour = groupBySuperBins(std::move(tour));

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, pendingThreads_,
                       table_.binCount(), workers);
    obs::profileNoteEpoch();
    if (obs::metricsOn()) {
        detail::schedInstruments().runs->add();
        backendToursCounter(config_.backend).add();
        // Hops of the nominal tour; interleaving across workers is
        // visible in the trace, not the histogram.
        detail::recordTourHops(tour, config_.dims);
    }

    const std::unique_ptr<std::atomic<std::int64_t>[]> currentBin(
        new std::atomic<std::int64_t>[workers]);
    for (unsigned w = 0; w < workers; ++w)
        currentBin[w].store(detail::kWorkerIdle,
                            std::memory_order_relaxed);

    TourSpec spec;
    spec.tour = tour.data();
    spec.bins = tour.size();
    spec.workers = workers;
    spec.fault = &ctx;
    spec.pinWorkers = config_.pinWorkers;
    spec.honorSuperBins = superBins;
    spec.currentBin = currentBin.get();
    if (config_.backend == BackendKind::Pooled) {
        if (!workerPool_)
            workerPool_ =
                std::make_unique<WorkerPool>(config_.pinWorkers);
        spec.pool = workerPool_.get();
    } else {
        spec.retiredStats = &retiredPoolStats_;
    }

    std::uint64_t executed = 0;
    {
        WatchdogGuard watchdog(config_.watchdogMillis, currentBin.get(),
                               workers);
        executed = executionBackend(config_.backend).runTour(spec);
    }

    const bool faultedStop = ctx.first != nullptr;
    if (!keep && !faultedStop) {
        for (Bin *bin : tour) {
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            bin->readyNext = nullptr;
            bin->onReadyList = false;
        }
        readyHead_ = nullptr;
        readyTail_ = nullptr;
        pendingThreads_ = 0;
    }

    executedThreads_ += executed;
    lastFaultsTotal_ = ctx.totalFaults;
    faultedThreads_ += lastFaultsTotal_;
    if (faultedStop) {
        // StopTour: all workers have finished the tour; rethrow the
        // first user exception exactly once on the caller. The guard's
        // unwind path recycles every bin and zeroes the pending count.
        std::rethrow_exception(ctx.first);
    }
    guard.commit();
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, executed);
    return executed;
}

} // namespace lsched::threads
