/**
 * @file
 * SMP extension of the locality scheduler (paper Section 7).
 *
 * Bins are the unit of distribution: a worker always runs a whole bin
 * so the per-bin working-set property carries over to each CPU's own
 * cache. Bins are handed out dynamically from a shared cursor, which
 * balances load when bin occupancy is skewed (as in N-body).
 */

#include <atomic>
#include <thread>
#include <vector>

#include "support/panic.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

std::uint64_t
runWholeBin(Bin *bin)
{
    std::uint64_t executed = 0;
    for (ThreadGroup *g = bin->groupsHead; g; g = g->next) {
        for (std::uint32_t i = 0; i < g->count; ++i) {
            const ThreadSpec &t = g->specs[i];
            t.fn(t.arg1, t.arg2);
            ++executed;
        }
    }
    return executed;
}

} // namespace

std::uint64_t
LocalityScheduler::runParallel(unsigned workers, bool keep)
{
    LSCHED_ASSERT(!running_, "recursive run()");
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers <= 1)
        return run(keep);

    running_ = true;
    nestedForkOk_ = false;

    const std::vector<Bin *> tour =
        orderBins(config_.tour, readyBins(), config_.dims);

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::uint64_t> executed{0};

    auto worker_body = [&]() {
        std::uint64_t mine = 0;
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= tour.size())
                break;
            mine += runWholeBin(tour[i]);
        }
        executed.fetch_add(mine, std::memory_order_relaxed);
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker_body);
    worker_body();
    for (auto &t : pool)
        t.join();

    if (!keep) {
        for (Bin *bin : tour) {
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            bin->readyNext = nullptr;
            bin->onReadyList = false;
        }
        readyHead_ = nullptr;
        readyTail_ = nullptr;
        pendingThreads_ = 0;
    }

    executedThreads_ += executed.load();
    running_ = false;
    return executed.load();
}

} // namespace lsched::threads
