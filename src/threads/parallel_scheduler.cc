/**
 * @file
 * SMP extension of the locality scheduler (paper Section 7).
 *
 * Bins are the unit of distribution: a worker always runs a whole bin
 * so the per-bin working-set property carries over to each CPU's own
 * cache. The tour is split into contiguous, occupancy-weighted
 * segments — each worker walks neighboring bins, preserving the
 * tour-order locality the paper's ready list provides — and load skew
 * is absorbed by work stealing from segment tails (worker_pool.hh).
 * Workers are persistent: parked between tours and reused, so repeat
 * tours pay no thread creation cost (SchedulerConfig::persistentPool
 * restores the historic spawn-per-tour behavior when false).
 *
 * Fault containment: with ErrorPolicy::StopTour or
 * ::ContinueAndCollect each worker catches user-thread exceptions
 * (sched_obs.hh, executeBinGuarded) instead of letting them hit the
 * worker-thread boundary and std::terminate. Under StopTour workers
 * stop claiming; unclaimed bins stay in the deques, whose segments are
 * per-tour, and the caller's unwind path recycles them off the ready
 * list. The optional watchdog (SchedulerConfig::watchdogMillis) is a
 * monitor thread that warns — and emits a WatchdogStall trace event —
 * when the tour overruns its deadline, naming the stuck workers and
 * the bins they hold.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/panic.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

namespace
{

thread_local bool t_inParallelWorker = false;

/** Scoped thread-local marker for runParallel worker bodies. */
struct ParallelWorkerScope
{
    ParallelWorkerScope() { t_inParallelWorker = true; }
    ~ParallelWorkerScope() { t_inParallelWorker = false; }
};

/** Rendezvous between the tour and its watchdog monitor. */
struct WatchdogChannel
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
};

/**
 * Monitor body: wake every deadline period; while workers are still
 * running past a deadline, warn with the stuck worker/bin ids and
 * record a WatchdogStall event. Purely observational — it never stops
 * or kills the tour.
 */
void
watchdogBody(WatchdogChannel &channel, std::uint32_t deadlineMillis,
             const std::atomic<std::int64_t> *currentBin,
             unsigned workers)
{
    if (obs::traceOn())
        obs::TraceSession::global().setLaneName("watchdog");
    std::unique_lock<std::mutex> lock(channel.mutex);
    const auto period = std::chrono::milliseconds(deadlineMillis);
    while (!channel.done) {
        if (channel.cv.wait_for(lock, period,
                                [&] { return channel.done; }))
            return;
        // Deadline passed with workers still out there.
        std::uint64_t stalled = 0;
        std::int64_t firstStuckBin = detail::kWorkerIdle;
        std::ostringstream who;
        for (unsigned w = 0; w < workers; ++w) {
            const std::int64_t bin =
                currentBin[w].load(std::memory_order_relaxed);
            if (bin == detail::kWorkerDone)
                continue;
            ++stalled;
            if (who.tellp() > 0)
                who << ", ";
            if (bin == detail::kWorkerIdle)
                who << "worker " << w << " (between bins)";
            else
                who << "worker " << w << " (bin " << bin << ")";
            if (firstStuckBin == detail::kWorkerIdle && bin >= 0)
                firstStuckBin = bin;
        }
        LSCHED_WARN("runParallel watchdog: tour still running after ",
                    deadlineMillis, " ms deadline; ", stalled,
                    " worker(s) busy: ", who.str());
        LSCHED_TRACE_EVENT(
            obs::EventType::WatchdogStall, stalled,
            firstStuckBin >= 0
                ? static_cast<std::uint64_t>(firstStuckBin)
                : 0,
            deadlineMillis);
    }
}

/**
 * RAII watchdog: armed when the config asks for one, always stopped
 * and joined on scope exit — including the unwind when a worker-0
 * exception propagates out of the tour.
 */
struct WatchdogGuard
{
    WatchdogChannel channel;
    std::thread monitor;

    WatchdogGuard(std::uint32_t deadlineMillis,
                  const std::atomic<std::int64_t> *currentBin,
                  unsigned workers)
    {
        if (deadlineMillis > 0) {
            monitor = std::thread(watchdogBody, std::ref(channel),
                                  deadlineMillis, currentBin, workers);
        }
    }

    ~WatchdogGuard()
    {
        if (monitor.joinable()) {
            {
                std::lock_guard<std::mutex> lock(channel.mutex);
                channel.done = true;
            }
            channel.cv.notify_one();
            monitor.join();
        }
    }
};

/** Per-tour context threaded through the pool's execute callback. */
struct BinExecCtx
{
    detail::FaultCtx *fault;
    bool contain;
};

std::uint64_t
executeOneBin(Bin *bin, unsigned worker, void *ctxRaw)
{
    auto *ctx = static_cast<BinExecCtx *>(ctxRaw);
    // The thread-local marker covers exactly the span where user
    // threads run, so fork() can reject the unsynchronized-ready-list
    // race from any pool worker, persistent or not.
    ParallelWorkerScope in_worker;
    // Abort keeps the historic uncontained fast path: an escaped
    // exception hits the worker-thread boundary (std::terminate on a
    // helper; rethrown on the caller for worker 0).
    return ctx->contain
               ? detail::executeBinGuarded(bin, *ctx->fault, worker)
               : detail::executeBin(bin);
}

} // namespace

namespace detail
{

bool
inParallelWorker()
{
    return t_inParallelWorker;
}

} // namespace detail

std::uint64_t
LocalityScheduler::runParallel(unsigned workers, bool keep)
{
    LSCHED_ASSERT(!running_, "recursive run()");
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers <= 1)
        return run(keep);

    running_ = true;
    nestedForkOk_ = false;
    lastFaults_.clear();
    lastFaultsTotal_ = 0;

    detail::RunGuard guard{*this, nullptr};
    detail::FaultCtx ctx(config_.onError, &lastFaults_);
    const bool contain = ctx.policy != ErrorPolicy::Abort;

    const std::vector<Bin *> tour =
        orderBins(config_.tour, readyBins(), config_.dims);

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, pendingThreads_,
                       table_.binCount(), workers);
    if (obs::metricsOn()) {
        detail::schedInstruments().runs->add();
        // Hops of the nominal tour; interleaving across workers is
        // visible in the trace, not the histogram.
        detail::recordTourHops(tour, config_.dims);
    }

    const std::unique_ptr<std::atomic<std::int64_t>[]> currentBin(
        new std::atomic<std::int64_t>[workers]);
    for (unsigned w = 0; w < workers; ++w)
        currentBin[w].store(detail::kWorkerIdle,
                            std::memory_order_relaxed);

    BinExecCtx execCtx{&ctx, contain};
    detail::PoolJob job;
    job.tour = tour.data();
    job.bins = tour.size();
    job.workers = workers;
    job.execute = &executeOneBin;
    job.ctx = &execCtx;
    job.stop = ctx.policy == ErrorPolicy::StopTour ? &ctx.stop : nullptr;
    job.currentBin = currentBin.get();

    {
        WatchdogGuard watchdog(config_.watchdogMillis, currentBin.get(),
                               workers);
        if (config_.persistentPool) {
            if (!workerPool_) {
                workerPool_ =
                    std::make_unique<WorkerPool>(config_.pinWorkers);
            }
            workerPool_->runTour(job);
        } else {
            // Historic cold path: a throwaway pool, so every tour pays
            // thread creation/join — the baseline ablation_smp compares
            // the warm pool against.
            WorkerPool cold(config_.pinWorkers);
            try {
                cold.runTour(job);
            } catch (...) {
                retiredPoolStats_ += cold.stats();
                throw;
            }
            retiredPoolStats_ += cold.stats();
        }
    }

    const std::uint64_t executed =
        job.executed.load(std::memory_order_relaxed);
    const bool faultedStop = ctx.first != nullptr;
    if (!keep && !faultedStop) {
        for (Bin *bin : tour) {
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            bin->readyNext = nullptr;
            bin->onReadyList = false;
        }
        readyHead_ = nullptr;
        readyTail_ = nullptr;
        pendingThreads_ = 0;
    }

    executedThreads_ += executed;
    lastFaultsTotal_ = ctx.totalFaults;
    faultedThreads_ += lastFaultsTotal_;
    if (faultedStop) {
        // StopTour: all workers have finished the tour; rethrow the
        // first user exception exactly once on the caller. The guard's
        // unwind path recycles every bin and zeroes the pending count.
        std::rethrow_exception(ctx.first);
    }
    guard.commit();
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, executed);
    return executed;
}

} // namespace lsched::threads
