/**
 * @file
 * SMP extension of the locality scheduler (paper Section 7) — now a
 * thin dispatcher over the execution layer.
 *
 * Bins are the unit of distribution: a worker always runs a whole bin
 * so the per-bin working-set property carries over to each CPU's own
 * cache. runParallel() orders the tour (grouping super-bins together
 * under a hierarchical placement), arms the optional stall watchdog,
 * and hands a TourSpec to the configured ExecutionBackend
 * (execution.hh) — the pooled work-stealing default, the cold
 * spawn-per-tour baseline, or the serial fallback. All bin execution,
 * fault containment (ErrorPolicy), tracing, and fail-point sites live
 * in the one executeBin() routine (bin_exec.hh) the backends share.
 *
 * The tour monitor (threads/recovery.hh) supervises each parallel
 * tour: SchedulerConfig::deadlineMillis arms a hard deadline whose
 * expiry requests cooperative cancellation through the tour's
 * CancelToken, and watchdogMillis a periodic stall report that — with
 * watchdogAction == cancel — escalates to the same token. When the
 * overload governor is degraded, pooled tours step down to the serial
 * path until it recovers.
 */

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "obs/profile.hh"
#include "support/error.hh"
#include "support/panic.hh"
#include "threads/execution.hh"
#include "threads/placement.hh"
#include "threads/recovery.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

namespace
{

/** Per-backend tour counters (sched.backend.<name>.tours). */
obs::Counter &
backendToursCounter(BackendKind kind)
{
    static obs::Counter *const counters[] = {
        &obs::Registry::global().counter("sched.backend.serial.tours"),
        &obs::Registry::global().counter("sched.backend.pooled.tours"),
        &obs::Registry::global().counter(
            "sched.backend.coldspawn.tours"),
    };
    return *counters[static_cast<std::size_t>(kind)];
}

} // namespace

std::uint64_t
LocalityScheduler::runParallel(unsigned workers, bool keep)
{
    if (stream_) {
        throw lsched::UsageError("runParallel() during an active "
                                 "stream; close it with streamEnd() "
                                 "first");
    }
    LSCHED_ASSERT(!running_, "recursive run()");
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers > 1 && config_.backend != BackendKind::Serial &&
        governor_.degraded()) {
        // Graceful degradation: while the governor is degraded, the
        // tour steps down to the serial path (which still arms the
        // deadline) instead of fanning out over a pool that is not
        // keeping up. run() feeds the governor, so sustained healthy
        // tours step back up.
        recovery_.degradedTours.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsOn())
            detail::schedInstruments().recoverDegradedTours->add();
        LSCHED_WARN("overload governor degraded: runParallel(", workers,
                    ") stepping down to the serial path");
        LSCHED_TRACE_EVENT(
            obs::EventType::LoadShed, 0, pendingThreads_, workers);
        workers = 1;
    }
    if (workers <= 1 || config_.backend == BackendKind::Serial) {
        // One worker — or the serial backend, whose tour is exactly
        // run()'s ordered walk (no helpers, so no watchdog either).
        if (obs::metricsOn() && config_.backend == BackendKind::Serial)
            backendToursCounter(BackendKind::Serial).add();
        return run(keep);
    }

    running_ = true;
    nestedForkOk_ = false;
    lastFaults_.clear();
    lastFaultsTotal_ = 0;

    detail::RunGuard guard{*this, nullptr};
    detail::FaultCtx ctx(config_.onError, &lastFaults_);
    ctx.recovery = &recovery_;
    CancelToken cancelToken;
    if (config_.deadlineMillis > 0 ||
        (config_.watchdogMillis > 0 &&
         config_.watchdogAction == WatchdogAction::Cancel)) {
        ctx.cancel = &cancelToken;
    }

    std::vector<Bin *> tour =
        orderBins(config_.tour, readyBins(), config_.dims);
    const bool superBins = placement_->hierarchical();
    if (superBins)
        tour = groupBySuperBins(std::move(tour));

    // Topology-aware domain partition: with a resolved cache tree that
    // exposes more than one L2 group, deal super-bins across cache
    // domains and split the workers into matching teams, so each
    // super-bin's blocks execute on workers pinned inside one domain.
    // Gated on pinWorkers — without pinning the teams would be
    // arbitrary thread subsets with no cache in common.
    std::vector<std::uint32_t> binDomain;
    std::vector<std::uint32_t> workerDomain;
    std::uint32_t domains = 0;
    lastTourDomains_ = 0;
    lastTourDomainWorkers_ = 0;
    if (superBins && topo_ && topo_->l2Groups() > 1 && workers > 1 &&
        config_.pinWorkers) {
        domains = std::min<std::uint32_t>(topo_->l2Groups(), workers);
        // Stable, so super-bin groups stay contiguous inside their
        // domain's run — the pool's partition requires one contiguous
        // range per domain.
        std::stable_sort(
            tour.begin(), tour.end(),
            [domains](const Bin *a, const Bin *b) {
                return TopologyPlacement::domainOf(a->superBin, a->id,
                                                   domains) <
                       TopologyPlacement::domainOf(b->superBin, b->id,
                                                   domains);
            });
        binDomain.reserve(tour.size());
        for (const Bin *bin : tour) {
            binDomain.push_back(TopologyPlacement::domainOf(
                bin->superBin, bin->id, domains));
        }
        workerDomain.resize(workers);
        for (unsigned w = 0; w < workers; ++w)
            workerDomain[w] = w % domains;
        lastTourDomains_ = domains;
        lastTourDomainWorkers_ = (workers + domains - 1) / domains;
    }

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, pendingThreads_,
                       table_.binCount(), workers);
    obs::profileNoteEpoch();
    if (obs::metricsOn()) {
        detail::schedInstruments().runs->add();
        backendToursCounter(config_.backend).add();
        // Hops of the nominal tour; interleaving across workers is
        // visible in the trace, not the histogram.
        detail::recordTourHops(tour, config_.dims);
    }

    const std::unique_ptr<std::atomic<std::int64_t>[]> currentBin(
        new std::atomic<std::int64_t>[workers]);
    for (unsigned w = 0; w < workers; ++w)
        currentBin[w].store(detail::kWorkerIdle,
                            std::memory_order_relaxed);

    TourSpec spec;
    spec.tour = tour.data();
    spec.bins = tour.size();
    spec.workers = workers;
    spec.fault = &ctx;
    spec.pinWorkers = config_.pinWorkers;
    spec.honorSuperBins = superBins;
    spec.currentBin = currentBin.get();
    if (domains > 0) {
        spec.binDomain = binDomain.data();
        spec.workerDomain = workerDomain.data();
        spec.domains = domains;
    }
    if (config_.backend == BackendKind::Pooled) {
        if (!workerPool_) {
            workerPool_ = std::make_unique<WorkerPool>(
                config_.pinWorkers,
                topo_ ? topo_->pinPlan() : std::vector<unsigned>{});
        }
        spec.pool = workerPool_.get();
    } else {
        spec.retiredStats = &retiredPoolStats_;
        if (topo_)
            spec.pinPlan = topo_->pinPlan();
    }

    std::uint64_t executed = 0;
    {
        detail::TourMonitorSpec mspec;
        mspec.deadlineMillis = config_.deadlineMillis;
        mspec.watchdogMillis = config_.watchdogMillis;
        mspec.watchdogAction = config_.watchdogAction;
        mspec.cancel = &cancelToken;
        mspec.recovery = &recovery_;
        mspec.currentBin = currentBin.get();
        mspec.workers = workers;
        detail::TourMonitor monitor(mspec);
        executed = executionBackend(config_.backend).runTour(spec);
    }

    const bool cancelled = ctx.cancelRequested();
    if (governor_.enabled())
        governor_.observe(cancelled);
    const bool faultedStop = ctx.first != nullptr;
    if (!keep && !faultedStop) {
        for (Bin *bin : tour) {
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            bin->readyNext = nullptr;
            bin->onReadyList = false;
        }
        readyHead_ = nullptr;
        readyTail_ = nullptr;
        pendingThreads_ = 0;
    }

    executedThreads_ += executed;
    lastFaultsTotal_ = ctx.totalFaults;
    faultedThreads_ += lastFaultsTotal_;
    if (faultedStop) {
        // StopTour: all workers have finished the tour; rethrow the
        // first user exception exactly once on the caller. The guard's
        // unwind path recycles every bin and zeroes the pending count.
        std::rethrow_exception(ctx.first);
    }
    if (cancelled && config_.onError != ErrorPolicy::ContinueAndCollect) {
        // Deadline/watchdog cancellation under Abort/StopTour: all
        // workers have joined and the dropped work is accounted;
        // surface a recoverable error on the caller.
        throw DeadlineError(lsched::detail::concatMessage(
            "parallel tour cancelled (",
            cancelReasonName(cancelToken.why()), ") after ",
            cancelToken.why() == CancelReason::Watchdog
                ? config_.watchdogMillis
                : config_.deadlineMillis,
            " ms: ",
            ctx.cancelledBins.load(std::memory_order_relaxed),
            " bin(s), ",
            ctx.cancelledThreads.load(std::memory_order_relaxed),
            " thread(s) dropped"));
    }
    // Tour boundary: let the adaptive placement re-derive its block
    // dims from this tour's profiler feedback before the next run.
    placement_->maybeRetune();
    placeHot_ = placement_->hotPolicy();
    guard.commit();
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, executed);
    return executed;
}

} // namespace lsched::threads
