/**
 * @file
 * SMP extension of the locality scheduler (paper Section 7).
 *
 * Bins are the unit of distribution: a worker always runs a whole bin
 * so the per-bin working-set property carries over to each CPU's own
 * cache. Bins are handed out dynamically from a shared cursor, which
 * balances load when bin occupancy is skewed (as in N-body).
 */

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/panic.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

std::uint64_t
LocalityScheduler::runParallel(unsigned workers, bool keep)
{
    LSCHED_ASSERT(!running_, "recursive run()");
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers <= 1)
        return run(keep);

    running_ = true;
    nestedForkOk_ = false;

    const std::vector<Bin *> tour =
        orderBins(config_.tour, readyBins(), config_.dims);

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, pendingThreads_,
                       table_.binCount(), workers);
    if (obs::metricsOn()) {
        detail::schedInstruments().runs->add();
        // Hops of the nominal tour; interleaving across workers is
        // visible in the trace, not the histogram.
        detail::recordTourHops(tour, config_.dims);
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::uint64_t> executed{0};

    auto worker_body = [&](unsigned w) {
        if (obs::traceOn()) {
            obs::TraceSession::global().setLaneName(
                "worker " + std::to_string(w));
        }
        std::uint64_t mine = 0;
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= tour.size())
                break;
            Bin *bin = tour[i];
            LSCHED_TRACE_EVENT(obs::EventType::WorkerClaimBin, bin->id,
                               i, w);
            mine += detail::executeBin(bin);
        }
        executed.fetch_add(mine, std::memory_order_relaxed);
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker_body, w);
    worker_body(0);
    for (auto &t : pool)
        t.join();

    if (!keep) {
        for (Bin *bin : tour) {
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            bin->readyNext = nullptr;
            bin->onReadyList = false;
        }
        readyHead_ = nullptr;
        readyTail_ = nullptr;
        pendingThreads_ = 0;
    }

    executedThreads_ += executed.load();
    running_ = false;
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, executed.load());
    return executed.load();
}

} // namespace lsched::threads
