/**
 * @file
 * THE bin-execution routine — the mechanism half of the scheduler.
 *
 * Every path that runs a bin's threads routes through executeBin():
 * the serial run() (streaming and ordered), every parallel backend
 * (execution.hh), and the fiber scheduler's queue drain. ErrorPolicy
 * containment, BinStart/ThreadStart/ThreadEnd/BinEnd tracing, the
 * per-bin dwell metrics, and the "sched.bin.execute" fail-point site
 * therefore live in exactly one place; PRs that used to patch three
 * copies in lockstep patch one.
 *
 * The routine is a template over a Cursor — the *source* of work
 * items, which is the only thing the call sites differ in:
 *
 *   bool next();          // advance to the next item; false = drained.
 *                         // Re-evaluated each step, so items appended
 *                         // mid-execution (nested fork) are picked up.
 *   std::uint64_t run();  // run the current item; returns completions
 *                         // (1 per finished thread; 0 for a yielded
 *                         // fiber). May throw — containment is the
 *                         // caller branch's job, per ctx.policy.
 *
 * GroupCursor below adapts a Bin's thread-group chain; the fiber
 * scheduler supplies its own queue cursor.
 */

#ifndef LSCHED_THREADS_BIN_EXEC_HH
#define LSCHED_THREADS_BIN_EXEC_HH

#include "obs/profile.hh"
#include "obs/trace.hh"
#include "support/failpoint.hh"
#include "threads/bin.hh"
#include "threads/fault.hh"
#include "threads/sched_obs.hh"
#include "threads/thread_group.hh"

namespace lsched::threads::detail
{

/** Cursor over a bin's thread-group chain, in fork order. */
class GroupCursor
{
  public:
    explicit GroupCursor(Bin *bin) : group_(bin->groupsHead) {}

    /** Cursor over a detached chain (a sealed streaming epoch). */
    explicit GroupCursor(ThreadGroup *head) : group_(head) {}

    /** Counts and links are re-read each step so threads forked into
     *  this very bin during execution (nested fork) are picked up. */
    bool
    next()
    {
        while (group_) {
            if (index_ < group_->count) {
                current_ = &group_->specs[index_++];
                return true;
            }
            group_ = group_->next;
            index_ = 0;
        }
        return false;
    }

    std::uint64_t
    run()
    {
        current_->fn(current_->arg1, current_->arg2);
        return 1;
    }

  private:
    ThreadGroup *group_;
    std::uint32_t index_ = 0;
    const ThreadSpec *current_ = nullptr;
};

/**
 * Execute one bin's work items off @p cursor on @p worker.
 *
 * @p announced is the item count recorded in the BinStart event (the
 * bin's thread count; nested forks may run more). Behavior splits on
 * ctx.policy:
 *
 *  - Abort: no containment — the historic fast path. An escaped
 *    exception (or the "sched.bin.execute" fail point, which fires
 *    before any per-bin event) propagates to the caller.
 *  - StopTour / ContinueAndCollect: each item runs under a try/catch;
 *    faults are recorded through noteFault(). Under StopTour the rest
 *    of the bin is skipped after the first fault.
 *
 * @p superBin and @p streamEpoch only feed the profiling attribution
 * (obs/profile.hh): callers that know the bin's super-bin or the
 * stream seal epoch pass them so online miss rates aggregate the same
 * way placement did.
 *
 * Returns the number of items that completed.
 */
template <typename Cursor>
std::uint64_t
executeBin(std::uint32_t binId, std::uint64_t announced, FaultCtx &ctx,
           unsigned worker, Cursor &&cursor,
           std::uint32_t superBin = obs::kProfileNoSuperBin,
           std::uint32_t streamEpoch = obs::kProfileCurrentEpoch)
{
    // One pointer test when no deadline/watchdog token is armed; with
    // a token, one relaxed load per user thread — the cooperative
    // cancellation boundary the recovery layer relies on.
    const CancelToken *cancelTok = ctx.cancel;
    const auto cancelled = [cancelTok] {
        return cancelTok && cancelTok->requested();
    };
    const bool contain = ctx.policy != ErrorPolicy::Abort;
    if (!contain) {
        // Under ErrorPolicy::Abort this injected failure propagates
        // like any user-thread exception would (the contained branch
        // below instead records it, after BinStart — matching where a
        // real failure at the top of bin execution would surface).
        LSCHED_FAILPOINT("sched.bin.execute");
    }

    const bool traced = obs::traceOn();
    const bool metered = obs::metricsOn();
    const std::uint64_t t0 = (traced || metered) ? obs::nowNs() : 0;
    const obs::ProfileToken ptok = obs::profileBinBegin();

    std::uint64_t executed = 0;
    if (traced) {
        obs::TraceSession::global().record(obs::EventType::BinStart,
                                           binId, announced);
    }

    std::uint64_t faulted = 0;
    if (!contain) {
        if (traced) {
            obs::TraceSession &session = obs::TraceSession::global();
            while (!cancelled() && cursor.next()) {
                session.record(obs::EventType::ThreadStart, binId);
                executed += cursor.run();
                session.record(obs::EventType::ThreadEnd, binId);
            }
        } else {
            while (!cancelled() && cursor.next())
                executed += cursor.run();
        }
    } else {
        bool stopped = false;
        try {
            LSCHED_FAILPOINT("sched.bin.execute");
        } catch (...) {
            noteFault(ctx, binId, worker);
            ++faulted;
            stopped = ctx.policy == ErrorPolicy::StopTour;
        }
        while (!stopped && !cancelled() && cursor.next()) {
            try {
                if (traced) {
                    obs::TraceSession::global().record(
                        obs::EventType::ThreadStart, binId);
                }
                executed += cursor.run();
                if (traced) {
                    obs::TraceSession::global().record(
                        obs::EventType::ThreadEnd, binId);
                }
            } catch (...) {
                noteFault(ctx, binId, worker);
                ++faulted;
                if (ctx.policy == ErrorPolicy::StopTour)
                    stopped = true;
            }
        }
    }
    if (cancelled() && announced > executed + faulted) {
        // The cancellation cut this bin short mid-flight: account the
        // un-run tail (bins never claimed are swept by the backends).
        noteCancelledBin(ctx, binId, worker,
                         announced - executed - faulted);
    }

    obs::profileBinEnd(ptok, binId, superBin, executed, worker,
                       streamEpoch);
    if (traced) {
        obs::TraceSession::global().record(obs::EventType::BinEnd,
                                           binId, executed);
    }
    if (metered) {
        const SchedInstruments &ins = schedInstruments();
        ins.executed->add(executed);
        ins.threadsPerBin->record(executed);
        ins.binDwellNs->record(obs::nowNs() - t0);
    }
    return executed;
}

/** Execute all threads currently scheduled in @p bin. */
inline std::uint64_t
executeBin(Bin *bin, FaultCtx &ctx, unsigned worker)
{
    GroupCursor cursor(bin);
    return executeBin(bin->id, bin->threadCount, ctx, worker, cursor,
                      bin->superBin);
}

} // namespace lsched::threads::detail

#endif // LSCHED_THREADS_BIN_EXEC_HH
