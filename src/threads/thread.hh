/**
 * @file
 * The thread representation of the locality scheduling package.
 *
 * Because threads are independent and run to completion with no
 * blocking, no preemption, and no per-thread stack (paper Section 3.2),
 * a thread is nothing but a function pointer and the two user
 * arguments — 24 bytes, no handle, no identity.
 */

#ifndef LSCHED_THREADS_THREAD_HH
#define LSCHED_THREADS_THREAD_HH

namespace lsched::threads
{

/** Body signature: f(arg1, arg2), run on the caller's stack. */
using ThreadFn = void (*)(void *, void *);

/** A scheduled-but-not-yet-run thread. */
struct ThreadSpec
{
    ThreadFn fn = nullptr;
    void *arg1 = nullptr;
    void *arg2 = nullptr;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_THREAD_HH
