/**
 * @file
 * The block map: hint addresses -> block coordinates in the
 * k-dimensional scheduling space (paper Section 2.3).
 *
 * The space is divided into equally sized blocks whose dimension sizes
 * sum to (at most) the cache size, so all data of the threads in one
 * block fits in the cache. The default dimension size is cache/k. A
 * power-of-two dimension reduces the mapping to a shift, matching the
 * paper's "shift and mask" default hash.
 */

#ifndef LSCHED_THREADS_BLOCK_MAP_HH
#define LSCHED_THREADS_BLOCK_MAP_HH

#include <algorithm>
#include <cstdint>
#include <span>

#include "support/align.hh"
#include "support/panic.hh"
#include "threads/hints.hh"

namespace lsched::threads
{

/** Maps hint vectors to block coordinates. */
class BlockMap
{
  public:
    /**
     * @param dims dimensionality k of the scheduling space (1..kMaxDims).
     * @param block_bytes size of each block dimension in bytes.
     * @param symmetric fold symmetric hint permutations into one block
     *        (paper Section 2.3: (h_i, h_j) and (h_j, h_i) reference
     *        the same data, halving the bins).
     */
    BlockMap(unsigned dims, std::uint64_t block_bytes,
             bool symmetric = false)
        : dims_(dims), blockBytes_(block_bytes), symmetric_(symmetric)
    {
        LSCHED_ASSERT(dims_ >= 1 && dims_ <= kMaxDims,
                      "dims must be in [1, ", kMaxDims, "], got ", dims_);
        LSCHED_ASSERT(blockBytes_ > 0, "block size must be positive");
        shift_ = isPowerOfTwo(blockBytes_)
                     ? static_cast<int>(floorLog2(blockBytes_))
                     : -1;
    }

    /**
     * Compute the block coordinates of @p hints (missing trailing
     * dimensions behave as hint 0, per the paper's th_fork).
     */
    BlockCoords
    coordsFor(std::span<const Hint> hints) const
    {
        BlockCoords c{};
        const unsigned n =
            std::min<unsigned>(dims_, static_cast<unsigned>(hints.size()));
        if (shift_ >= 0) {
            for (unsigned d = 0; d < n; ++d)
                c[d] = static_cast<std::uint64_t>(hints[d]) >> shift_;
        } else {
            for (unsigned d = 0; d < n; ++d)
                c[d] = static_cast<std::uint64_t>(hints[d]) / blockBytes_;
        }
        if (symmetric_) {
            // Insertion sort: dims_ <= kMaxDims (8), and this avoids
            // a GCC 12 -Warray-bounds false positive in std::sort.
            for (unsigned i = 1; i < dims_ && i < kMaxDims; ++i) {
                const std::uint64_t v = c[i];
                unsigned j = i;
                while (j > 0 && c[j - 1] > v) {
                    c[j] = c[j - 1];
                    --j;
                }
                c[j] = v;
            }
        }
        return c;
    }

    /** Dimensionality k. */
    unsigned dims() const { return dims_; }

    /** Block dimension size in bytes. */
    std::uint64_t blockBytes() const { return blockBytes_; }

    /** Whether symmetric folding is enabled. */
    bool symmetric() const { return symmetric_; }

  private:
    unsigned dims_;
    std::uint64_t blockBytes_;
    bool symmetric_;
    int shift_;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_BLOCK_MAP_HH
