/**
 * @file
 * Persistent work-stealing worker pool for the SMP extension.
 *
 * The first implementation of runParallel() spawned std::threads per
 * tour and handed bins out from one shared atomic cursor: every run
 * paid full thread creation/join cost and every claim bounced the same
 * cache line between all CPUs. This pool replaces both mechanisms:
 *
 *  - Workers are OS threads created once (lazily, at the first
 *    parallel tour) and parked on a condition variable between tours;
 *    repeated runParallel() calls reuse them at the cost of one
 *    notify_all. The pool is destroyed with its owning scheduler.
 *
 *  - The bin tour is partitioned into contiguous, occupancy-weighted
 *    segments, one per worker. Contiguity preserves tour-order
 *    locality: each worker walks *neighboring* bins of the scheduling
 *    space, which is exactly what the paper's shortest-path tour is
 *    meant to provide, now per CPU. Each segment lives in a bounded
 *    Chase-Lev-style deque; the owner takes bins from the front (its
 *    locality frontier) while idle workers steal single bins from the
 *    back — the bins *farthest* from the victim's frontier, so a steal
 *    disturbs the victim's locality as little as possible.
 *
 * Because a tour's segments are pre-filled before any worker wakes and
 * nothing is ever pushed mid-run, the deque needs no growth and no
 * owner-push path: both ends reduce to a compare-exchange on one
 * packed front/back word per worker. Claims therefore contend only on
 * the owner's own cache line (plus thieves at the crossing point),
 * never on a global cursor.
 */

#ifndef LSCHED_THREADS_WORKER_POOL_HH
#define LSCHED_THREADS_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "threads/bin.hh"
#include "threads/fault.hh"

namespace lsched::threads
{

/** Lifetime statistics of a WorkerPool (also surfaced via th_stats). */
struct WorkerPoolStats
{
    /** OS threads ever created (warm tours add none). */
    std::uint64_t threadsSpawned = 0;
    /** Parallel tours executed. */
    std::uint64_t tours = 0;
    /** Bins taken from another worker's segment. */
    std::uint64_t steals = 0;
    /** Times a worker parked waiting for the next tour. */
    std::uint64_t parks = 0;
    /** Steals whose victim was pinned into another cache domain
     *  (subset of steals; topology-aware tours only). */
    std::uint64_t crossSteals = 0;
    /** CPU-affinity syscalls that failed; workers fell back to
     *  unpinned execution. */
    std::uint64_t pinFailed = 0;

    WorkerPoolStats &
    operator+=(const WorkerPoolStats &o)
    {
        threadsSpawned += o.threadsSpawned;
        tours += o.tours;
        steals += o.steals;
        parks += o.parks;
        crossSteals += o.crossSteals;
        pinFailed += o.pinFailed;
        return *this;
    }
};

namespace detail
{

/** Worker "current bin" watchdog states (see PoolJob::currentBin). */
constexpr std::int64_t kWorkerIdle = -1;
constexpr std::int64_t kWorkerDone = -2;

/**
 * Bounded two-ended work-stealing deque over a pre-filled, read-only
 * tour segment (Chase-Lev discipline; see the file comment for why no
 * push/grow path exists). The owner takes from the front, thieves from
 * the back; the packed front/back word makes every claim a single CAS
 * and guarantees each bin is handed out exactly once.
 */
class BinDeque
{
  public:
    /** Point the deque at @p count bins starting at @p items.
     *  Single-threaded: runs before the tour's workers wake. */
    void
    reset(Bin *const *items, std::uint32_t count)
    {
        items_ = items;
        state_.store(pack(0, count), std::memory_order_relaxed);
    }

    /** Owner: claim the bin at the locality frontier (front). */
    Bin *
    take()
    {
        std::uint64_t s = state_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t front = unpackFront(s);
            const std::uint32_t back = unpackBack(s);
            if (front >= back)
                return nullptr;
            if (state_.compare_exchange_weak(
                    s, pack(front + 1, back),
                    std::memory_order_acq_rel,
                    std::memory_order_acquire))
                return items_[front];
        }
    }

    /** Thief: claim the bin farthest from the owner's frontier. */
    Bin *
    steal()
    {
        std::uint64_t s = state_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t front = unpackFront(s);
            const std::uint32_t back = unpackBack(s);
            if (front >= back)
                return nullptr;
            if (state_.compare_exchange_weak(
                    s, pack(front, back - 1),
                    std::memory_order_acq_rel,
                    std::memory_order_acquire))
                return items_[back - 1];
        }
    }

    /** Bins not yet claimed (racy snapshot, for stats/tests). */
    std::uint32_t
    size() const
    {
        const std::uint64_t s = state_.load(std::memory_order_acquire);
        const std::uint32_t front = unpackFront(s);
        const std::uint32_t back = unpackBack(s);
        return front < back ? back - front : 0;
    }

  private:
    static std::uint64_t
    pack(std::uint32_t front, std::uint32_t back)
    {
        return (static_cast<std::uint64_t>(front) << 32) | back;
    }
    static std::uint32_t
    unpackFront(std::uint64_t s)
    {
        return static_cast<std::uint32_t>(s >> 32);
    }
    static std::uint32_t
    unpackBack(std::uint64_t s)
    {
        return static_cast<std::uint32_t>(s);
    }

    Bin *const *items_ = nullptr;
    std::atomic<std::uint64_t> state_{0};
};

/** One parallel tour handed to the pool. */
struct PoolJob
{
    /** The ordered bin tour (owned by the caller, outlives the tour). */
    Bin *const *tour = nullptr;
    std::size_t bins = 0;
    /** Workers participating in this tour (>= 1; 0 is the caller). */
    unsigned workers = 1;
    /** Execute one bin on worker @p worker; returns threads run. */
    std::uint64_t (*execute)(Bin *bin, unsigned worker,
                             void *ctx) = nullptr;
    void *ctx = nullptr;
    /** When non-null, workers stop claiming once it reads true
     *  (ErrorPolicy::StopTour); unclaimed bins stay in the deques and
     *  are dropped when the tour's segments are reset — the caller's
     *  unwind path recycles them off the ready list. */
    const std::atomic<bool> *stop = nullptr;
    /** When non-null, workers also stop claiming once the token is
     *  raised (deadline/watchdog cancellation). After the join,
     *  runTour drains every deque and reports each unclaimed bin
     *  through @p cancelledBin, so dropped work is accounted. */
    const CancelToken *cancel = nullptr;
    /** Per-bin cancellation sink (called from runTour's caller thread
     *  after all workers joined; race-free). May be null. */
    void (*cancelledBin)(Bin *bin, void *ctx) = nullptr;
    /** Watchdog slots, one per worker: current bin id, kWorkerIdle
     *  between bins, kWorkerDone after the segment drains. May be
     *  null. */
    std::atomic<std::int64_t> *currentBin = nullptr;
    /** Never split a super-bin across segments: the partitioner snaps
     *  each segment boundary forward to the next super-bin edge. The
     *  tour must already be grouped (groupBySuperBins). */
    bool honorSuperBins = false;
    /**
     * Cache-domain affinity (topology-aware tours; null/0 otherwise).
     * binDomain[i] is the L2 domain of tour[i] — each domain's bins
     * must form one contiguous run of the tour — and workerDomain[w]
     * the domain worker w is pinned into. The partitioner then splits
     * each domain's run only among that domain's workers, and
     * trySteal prefers same-domain victims; steals that do cross
     * count into WorkerPoolStats::crossSteals.
     */
    const std::uint32_t *binDomain = nullptr;
    const std::uint32_t *workerDomain = nullptr;
    std::uint32_t domains = 0;
    /** Total user threads executed (all workers). */
    std::atomic<std::uint64_t> executed{0};
};

/**
 * One streaming drain handed to the pool (beginStream/endStream):
 * each participating helper runs @p body once, and the body is
 * expected to loop popping sealed bins until the stream's queue
 * finishes. Unlike a PoolJob this has no tour — the work arrives
 * incrementally from the producers.
 */
struct StreamJob
{
    /**
     * Drain loop, run to completion by each participating helper.
     * @p worker is the pool worker id, 1..workers — id 0 is reserved
     * for producers draining inline under backpressure.
     */
    void (*body)(unsigned worker, void *ctx) = nullptr;
    void *ctx = nullptr;
    /** Helper threads draining the stream (>= 1). */
    unsigned workers = 1;
};

} // namespace detail

/**
 * The persistent pool. One instance per LocalityScheduler, created at
 * the first runParallel() and reused until the scheduler dies
 * (SchedulerConfig::persistentPool == false instead builds a
 * throwaway pool per tour — the historic cold-spawn behavior, kept
 * for comparison benchmarks).
 *
 * Thread model: runTour() is called from one thread at a time (the
 * scheduler's running_ flag already enforces this); the caller
 * participates as worker 0 and helper threads are workers 1..N-1.
 * Helpers above a tour's worker count stay parked.
 */
class WorkerPool
{
  public:
    /**
     * @param pinWorkers pin helper threads over CPUs.
     * @param pinPlan domain-major CPU order from CacheTopology::
     *     pinPlan(); helper id pins to pinPlan[id % size]. Empty =
     *     the legacy id % cpus round-robin.
     */
    explicit WorkerPool(bool pinWorkers,
                        std::vector<unsigned> pinPlan = {});

    /** Parks, wakes, and joins every helper. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Distribute @p job's tour over job.workers workers (spawning
     * missing helpers on first use) and run it to completion. The
     * calling thread is worker 0. Exceptions from job.execute on
     * worker 0 propagate to the caller *after* all helpers finish the
     * tour; an exception escaping a helper terminates, as any escaped
     * exception on a detached-from-caller thread would
     * (ErrorPolicy::Abort's documented parallel behavior).
     */
    void runTour(detail::PoolJob &job);

    /**
     * Wake job.workers helpers and set them looping job.body — the
     * streaming drain. The caller does *not* participate (it returns
     * immediately to keep producing); helpers run until the body
     * returns, which the stream session arranges by finishing its
     * sealed-bin queue. @p job must stay alive until endStream()
     * returns. No tour may run between beginStream and endStream
     * (the scheduler's running_ flag already enforces this).
     */
    void beginStream(detail::StreamJob &job);

    /** Wait for every stream helper to finish the drain body. */
    void endStream();

    /** Lifetime statistics. */
    WorkerPoolStats stats() const;

    /** Helper threads currently alive (workers minus the caller). */
    unsigned threadCount() const;

  private:
    /** Deques padded apart so owners do not false-share claims. */
    struct alignas(64) WorkerSlot
    {
        detail::BinDeque deque;
    };

    void ensureWorkers(unsigned workers);
    void partition(const detail::PoolJob &job);
    void splitSegment(const detail::PoolJob &job, std::size_t first,
                      std::size_t last, const unsigned *workers,
                      unsigned count);
    void helperMain(unsigned helperIndex, std::uint64_t startEpoch);
    void workerLoop(unsigned id, detail::PoolJob &job);
    Bin *trySteal(unsigned id, const detail::PoolJob &job,
                  unsigned *victim);

    const bool pin_;
    /** Domain-major CPU order (may be empty; see the constructor). */
    const std::vector<unsigned> pinPlan_;

    /** Index == worker id; unique_ptr keeps slot addresses stable. */
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::thread> helpers_;

    mutable std::mutex mutex_;
    std::condition_variable wakeCv_; ///< helpers park here
    std::condition_variable doneCv_; ///< runTour waits here
    detail::PoolJob *job_ = nullptr; ///< current tour, under mutex_
    /** Current tour's width, under mutex_. Helpers test participation
     *  against this — not job_, which they may only dereference when
     *  participating (the active_ handshake keeps it alive for exactly
     *  those helpers). */
    unsigned tourWorkers_ = 0;
    /** Current stream, under mutex_; same deref discipline as job_. */
    detail::StreamJob *streamJob_ = nullptr;
    /** Stream width, under mutex_ — the streaming tourWorkers_. */
    unsigned streamWorkers_ = 0;
    /**
     * True from beginStream until the *next tour's* epoch bump — not
     * endStream — so a helper that parked before the stream and wakes
     * after it cannot fall into the tour branch and test the stale
     * pre-stream tourWorkers_ (the shrinking-tour use-after-free,
     * streaming edition).
     */
    bool streamActive_ = false;
    std::uint64_t epoch_ = 0;        ///< bumped per tour, under mutex_
    unsigned active_ = 0;            ///< helpers still in the tour
    bool shutdown_ = false;

    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> parks_{0};
    std::atomic<std::uint64_t> spawned_{0};
    std::atomic<std::uint64_t> tours_{0};
    std::atomic<std::uint64_t> crossSteals_{0};
    std::atomic<std::uint64_t> pinFailed_{0};
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_WORKER_POOL_HH
