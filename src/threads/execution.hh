/**
 * @file
 * The execution layer: *how* an ordered bin tour is run.
 *
 * Complementing the placement layer (placement.hh — where a fork
 * goes), an ExecutionBackend takes a tour the scheduler has already
 * ordered and executes every bin exactly once, all of them through
 * the one executeBin() routine (bin_exec.hh):
 *
 *  - SerialBackend — one worker (the caller) walks the tour in order;
 *    also the body of run()'s ordered branch.
 *  - PooledBackend — the persistent work-stealing pool
 *    (worker_pool.hh): workers parked between tours, occupancy-
 *    weighted contiguous partition, tail stealing.
 *  - ColdSpawnBackend — the historic spawn-per-tour baseline: a
 *    throwaway WorkerPool whose statistics fold into the scheduler's
 *    retired-pool totals.
 *
 * Backends are stateless singletons; all per-tour state travels in
 * the TourSpec. runParallel() (and run()) reduce to building a spec
 * and dispatching — policy and mechanism meet only here.
 */

#ifndef LSCHED_THREADS_EXECUTION_HH
#define LSCHED_THREADS_EXECUTION_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "threads/fault.hh"
#include "threads/placement.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

/** Selectable execution backends (SchedulerConfig::backend). */
enum class BackendKind : std::uint8_t
{
    /** The caller walks the tour alone (no helper threads). */
    Serial,
    /** Persistent work-stealing worker pool (the default). */
    Pooled,
    /** Spawn-and-join a throwaway pool per tour (baseline). */
    ColdSpawn,
};

/** Printable name of a backend ("serial", "pooled", "coldspawn"). */
const char *backendName(BackendKind kind);

/** Parse a backend name; false (and *out untouched) when unknown. */
bool tryBackendFromName(const std::string &name, BackendKind *out);

/** Parse a backend name; fatal on an unknown one (CLI path). */
BackendKind backendFromName(const std::string &name);

/** Everything one tour hands its backend. */
struct TourSpec
{
    /** The ordered bin tour (owned by the caller, outlives the tour). */
    Bin *const *tour = nullptr;
    std::size_t bins = 0;
    /** Workers to distribute over (>= 1; the caller is worker 0). */
    unsigned workers = 1;
    /** Shared fault state; its policy selects containment. */
    detail::FaultCtx *fault = nullptr;
    /** Pin helper threads over CPUs (ColdSpawn pool construction). */
    bool pinWorkers = false;
    /** Never split a super-bin across workers (TopologyPlacement;
     *  the tour must already be grouped — see groupBySuperBins). */
    bool honorSuperBins = false;
    /**
     * Cache-domain affinity (topology-aware tours; all unset when the
     * topology is flat or pinning is off): binDomain[i] is the L2
     * domain of tour[i] — the tour must already be sorted so each
     * domain's bins are one contiguous run — and workerDomain[w] the
     * domain worker w is pinned into; both sized by the caller and
     * outliving the tour. domains is the active domain count.
     */
    const std::uint32_t *binDomain = nullptr;
    const std::uint32_t *workerDomain = nullptr;
    std::uint32_t domains = 0;
    /** Domain-major CPU order for ColdSpawn pinning (empty = id %
     *  cpus legacy order); see CacheTopology::pinPlan(). */
    std::vector<unsigned> pinPlan;
    /** Persistent pool to run on (Pooled; null otherwise). */
    WorkerPool *pool = nullptr;
    /** Where a throwaway pool's stats fold (ColdSpawn; null else). */
    WorkerPoolStats *retiredStats = nullptr;
    /** Watchdog slots, one per worker; may be null. */
    std::atomic<std::int64_t> *currentBin = nullptr;
};

/** Runs an ordered tour; every bin through executeBin() exactly once. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend();

    /** Execute @p spec's tour; returns the threads completed. */
    virtual std::uint64_t runTour(TourSpec &spec) = 0;

    /** Which backend this is. */
    virtual BackendKind kind() const = 0;

    /** Printable backend name. */
    const char *name() const { return backendName(kind()); }
};

/** The (stateless, process-shared) backend instance for @p kind. */
ExecutionBackend &executionBackend(BackendKind kind);

namespace detail
{

/**
 * CLI overrides installed by --placement/--backend/--sched
 * (support/cli.hh's sched hook, registered from execution.cc's static
 * initializer). An ordered list of config (key, value) pairs — the
 * dedicated flags become their "placement"/"backend" keys, --sched
 * pairs follow in the order given, later entries winning — already
 * validated against applyConfigKey() at parse time. SchedulerConfig
 * validation replays the list onto every scheduler configured
 * afterwards; empty when no flag was given.
 */
const std::vector<std::pair<std::string, std::string>> &schedOverrides();

} // namespace detail

} // namespace lsched::threads

#endif // LSCHED_THREADS_EXECUTION_HH
