/**
 * @file
 * The key table behind applyConfigKey/configKeyValue. One row per
 * SchedulerConfig field; see config_keys.hh for the contract.
 */

#include "threads/config_keys.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "machine/topology.hh"
#include "obs/profile.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

bool
parseU64(const std::string &value, std::uint64_t *out)
{
    if (value.empty())
        return false;
    const char *begin = value.c_str();
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(begin, &end, 10);
    if (errno != 0 || end != begin + value.size())
        return false;
    // strtoull silently accepts a leading minus by wrapping.
    if (value[0] == '-')
        return false;
    *out = parsed;
    return true;
}

bool
parseDouble(const std::string &value, double *out)
{
    if (value.empty())
        return false;
    const char *begin = value.c_str();
    char *end = nullptr;
    errno = 0;
    const double parsed = std::strtod(begin, &end);
    if (errno != 0 || end != begin + value.size())
        return false;
    if (!std::isfinite(parsed) || parsed < 0.0)
        return false;
    *out = parsed;
    return true;
}

/** %g keeps the round-trip short ("0.05", not "0.050000"). */
std::string
doubleToken(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

bool
parseBool(const std::string &value, bool *out)
{
    if (value == "1" || value == "true" || value == "on" ||
        value == "yes") {
        *out = true;
        return true;
    }
    if (value == "0" || value == "false" || value == "off" ||
        value == "no") {
        *out = false;
        return true;
    }
    return false;
}

/**
 * Non-fatal counterpart of tourPolicyFromName (which is a CLI-path
 * LSCHED_FATAL on unknown names).
 */
bool
tryTourFromName(const std::string &name, TourPolicy *out)
{
    if (name == "creation")
        *out = TourPolicy::CreationOrder;
    else if (name == "snake")
        *out = TourPolicy::SortedSnake;
    else if (name == "nearest")
        *out = TourPolicy::NearestNeighbor;
    else if (name == "hilbert")
        *out = TourPolicy::Hilbert;
    else
        return false;
    return true;
}

bool
tryErrorPolicyFromName(const std::string &name, ErrorPolicy *out)
{
    if (name == "abort")
        *out = ErrorPolicy::Abort;
    else if (name == "stoptour")
        *out = ErrorPolicy::StopTour;
    else if (name == "continue")
        *out = ErrorPolicy::ContinueAndCollect;
    else
        return false;
    return true;
}

const char *
errorPolicyToken(ErrorPolicy policy)
{
    switch (policy) {
      case ErrorPolicy::Abort:              return "abort";
      case ErrorPolicy::StopTour:           return "stoptour";
      case ErrorPolicy::ContinueAndCollect: return "continue";
    }
    return "?";
}

void
fail(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

bool
badValue(std::string *error, const std::string &key,
         const std::string &value, const char *want)
{
    fail(error, "config key '" + key + "': bad value '" + value +
                    "' (want " + want + ")");
    return false;
}

/**
 * The process-global profile.* family (obs::Profiler), reached through
 * the same string surface as the SchedulerConfig keys. Idempotent, so
 * --sched replay onto every scheduler a program builds is harmless.
 */
bool
applyProfileKey(const std::string &key, const std::string &value,
                std::string *error)
{
    std::uint64_t u = 0;
    bool b = false;
    obs::ProfileConfig config = obs::Profiler::global().config();

    if (key == "profile.enable") {
        if (!parseBool(value, &b))
            return badValue(error, key, value, "a boolean");
        obs::Profiler::global().setEnabled(b);
        return true;
    }
    if (key == "profile.pmu") {
        if (!parseBool(value, &b))
            return badValue(error, key, value, "a boolean");
        config.pmu = b;
    } else if (key == "profile.interval_ms") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "milliseconds (0 = manual snapshots)");
        config.intervalMs = u;
    } else if (key == "profile.output") {
        config.output = value;
    } else if (key == "profile.om_output") {
        config.omOutput = value;
    } else if (key == "profile.ring") {
        if (!parseU64(value, &u) || u == 0)
            return badValue(error, key, value,
                            "a positive snapshot count");
        config.ringDepth = static_cast<std::size_t>(u);
    } else if (key == "profile.max_bins") {
        if (!parseU64(value, &u) || u == 0)
            return badValue(error, key, value, "a positive bin count");
        config.maxBins = static_cast<std::size_t>(u);
    } else {
        fail(error, "unknown config key '" + key + "'");
        return false;
    }
    return obs::Profiler::global().configure(config, error);
}

bool
profileKeyValue(const std::string &key, std::string *out)
{
    const obs::ProfileConfig config = obs::Profiler::global().config();
    if (key == "profile.enable")
        *out = obs::Profiler::global().enabled() ? "1" : "0";
    else if (key == "profile.pmu")
        *out = config.pmu ? "1" : "0";
    else if (key == "profile.interval_ms")
        *out = std::to_string(config.intervalMs);
    else if (key == "profile.output")
        *out = config.output;
    else if (key == "profile.om_output")
        *out = config.omOutput;
    else if (key == "profile.ring")
        *out = std::to_string(config.ringDepth);
    else if (key == "profile.max_bins")
        *out = std::to_string(config.maxBins);
    else
        return false;
    return true;
}

} // namespace

std::string
canonicalConfigKey(const std::string &raw)
{
    bool hasUpper = false;
    for (char c : raw) {
        if (c >= 'A' && c <= 'Z') {
            hasUpper = true;
            break;
        }
    }
    if (!hasUpper)
        return raw;
    std::string key;
    key.reserve(raw.size() + 4);
    for (char c : raw) {
        if (c >= 'A' && c <= 'Z') {
            key.push_back('_');
            key.push_back(static_cast<char>(c - 'A' + 'a'));
        } else {
            key.push_back(c);
        }
    }
    return key;
}

bool
applyConfigKey(SchedulerConfig &config, const std::string &rawKey,
               const std::string &value, std::string *error)
{
    const std::string key = canonicalConfigKey(rawKey);
    if (key.rfind("profile.", 0) == 0)
        return applyProfileKey(key, value, error);

    std::uint64_t u = 0;
    bool b = false;

    if (key == "dims") {
        if (!parseU64(value, &u) || u == 0 || u > kMaxDims)
            return badValue(error, key, value, "an integer in [1, 8]");
        config.dims = static_cast<unsigned>(u);
    } else if (key == "cache_bytes") {
        if (!parseU64(value, &u))
            return badValue(error, key, value, "a byte count");
        config.cacheBytes = u;
    } else if (key == "block_bytes") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "a byte count (0 = cache_bytes / dims)");
        config.blockBytes = u;
    } else if (key == "hash_buckets") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "a bucket count (0 = default)");
        config.hashBuckets = static_cast<std::size_t>(u);
    } else if (key == "group_capacity") {
        if (!parseU64(value, &u) || u == 0 || u > 0xffffffffull)
            return badValue(error, key, value,
                            "a positive 32-bit thread count");
        config.groupCapacity = static_cast<std::uint32_t>(u);
    } else if (key == "symmetric_hints") {
        if (!parseBool(value, &b))
            return badValue(error, key, value, "a boolean");
        config.symmetricHints = b;
    } else if (key == "placement") {
        PlacementKind kind;
        if (!tryPlacementFromName(value, &kind))
            return badValue(error, key, value,
                            "blockhash|roundrobin|hierarchical|adaptive");
        config.placement = kind;
    } else if (key == "backend") {
        BackendKind kind;
        if (!tryBackendFromName(value, &kind))
            return badValue(error, key, value,
                            "serial|pooled|coldspawn");
        config.backend = kind;
        // The legacy knob pair stays consistent both ways, exactly as
        // th_set_backend always kept it: picking pooled back on must
        // re-enable the persistent pool validated() would otherwise
        // fold the backend away with.
        config.persistentPool = kind != BackendKind::ColdSpawn;
    } else if (key == "round_robin_bins") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "a bin count (0 = policy default)");
        config.roundRobinBins = u;
    } else if (key == "topology") {
        if (value != "auto" && value != "flat") {
            machine::CacheTopology probe;
            std::string why;
            if (!machine::CacheTopology::fromSpec(value, &probe, &why))
                return badValue(error, key, value,
                                "auto|flat|PxCxGxS[/l2=N][/l3=N]");
        }
        config.topology = value;
    } else if (key == "super_bin_fan") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "blocks per super-bin (0 = policy default)");
        config.superBinFan = u;
    } else if (key == "tour") {
        TourPolicy policy;
        if (!tryTourFromName(value, &policy))
            return badValue(error, key, value,
                            "creation|snake|nearest|hilbert");
        config.tour = policy;
    } else if (key == "on_error") {
        ErrorPolicy policy;
        if (!tryErrorPolicyFromName(value, &policy))
            return badValue(error, key, value,
                            "abort|stoptour|continue");
        config.onError = policy;
    } else if (key == "watchdog_millis") {
        if (!parseU64(value, &u) || u > 0xffffffffull)
            return badValue(error, key, value,
                            "milliseconds (0 disables)");
        config.watchdogMillis = static_cast<std::uint32_t>(u);
    } else if (key == "watchdog_action") {
        WatchdogAction action;
        if (!tryWatchdogActionFromName(value, &action))
            return badValue(error, key, value, "event|cancel");
        config.watchdogAction = action;
    } else if (key == "deadline_millis") {
        if (!parseU64(value, &u) || u > 0xffffffffull)
            return badValue(error, key, value,
                            "milliseconds (0 disables)");
        config.deadlineMillis = static_cast<std::uint32_t>(u);
    } else if (key == "stream_admit_retries") {
        if (!parseU64(value, &u) || u > 0xffffffffull)
            return badValue(error, key, value,
                            "a retry bound (0 = retry forever)");
        config.streamAdmitRetries = static_cast<std::uint32_t>(u);
    } else if (key == "overload_epochs") {
        if (!parseU64(value, &u) || u > 0xffffffffull)
            return badValue(error, key, value,
                            "an epoch count (0 disables the governor)");
        config.overloadEpochs = static_cast<unsigned>(u);
    } else if (key == "recover_epochs") {
        if (!parseU64(value, &u) || u == 0 || u > 0xffffffffull)
            return badValue(error, key, value,
                            "a positive epoch count");
        config.recoverEpochs = static_cast<unsigned>(u);
    } else if (key == "persistent_pool") {
        if (!parseBool(value, &b))
            return badValue(error, key, value, "a boolean");
        config.persistentPool = b;
    } else if (key == "pin_workers") {
        if (!parseBool(value, &b))
            return badValue(error, key, value, "a boolean");
        config.pinWorkers = b;
    } else if (key == "stream_shards") {
        if (!parseU64(value, &u) || u > 0xffffffffull)
            return badValue(error, key, value,
                            "a shard count (0 = default)");
        config.streamShards = static_cast<unsigned>(u);
    } else if (key == "stream_max_pending") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "a thread bound (0 = unbounded)");
        config.streamMaxPending = u;
    } else if (key == "stream_seal_threshold") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "a thread count (0 = seal at end only)");
        config.streamSealThreshold = u;
    } else if (key == "adapt.base") {
        PlacementKind kind;
        if (!tryPlacementFromName(value, &kind) ||
            kind == PlacementKind::Adaptive)
            return badValue(error, key, value,
                            "blockhash|roundrobin|hierarchical");
        config.adaptBase = kind;
    } else if (key == "adapt.target_miss") {
        double d = 0.0;
        if (!parseDouble(value, &d) || d > 1.0)
            return badValue(error, key, value,
                            "a miss rate in [0, 1]");
        config.adaptTargetMiss = d;
    } else if (key == "adapt.high_miss") {
        double d = 0.0;
        if (!parseDouble(value, &d) || d > 1.0)
            return badValue(error, key, value,
                            "a miss rate in [0, 1]");
        config.adaptHighMiss = d;
    } else if (key == "adapt.converge") {
        double d = 0.0;
        if (!parseDouble(value, &d) || d < 1.0)
            return badValue(error, key, value,
                            "a factor >= 1 over the tuned miss rate");
        config.adaptConverge = d;
    } else if (key == "adapt.epochs") {
        if (!parseU64(value, &u) || u == 0 || u > 0xffffffffull)
            return badValue(error, key, value,
                            "a positive epoch count");
        config.adaptEpochs = static_cast<unsigned>(u);
    } else if (key == "adapt.hold") {
        if (!parseU64(value, &u) || u > 0xffffffffull)
            return badValue(error, key, value,
                            "an epoch count (0 = react immediately)");
        config.adaptHold = static_cast<unsigned>(u);
    } else if (key == "adapt.min_block") {
        if (!parseU64(value, &u) || u == 0)
            return badValue(error, key, value,
                            "a positive byte floor");
        config.adaptMinBlock = u;
    } else if (key == "adapt.max_block") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "a byte ceiling (0 = cache_bytes)");
        config.adaptMaxBlock = u;
    } else if (key == "adapt.min_refs") {
        if (!parseU64(value, &u))
            return badValue(error, key, value,
                            "an LLC-reference floor per epoch");
        config.adaptMinRefs = u;
    } else if (key == "adapt.dwell_improve") {
        double d = 0.0;
        if (!parseDouble(value, &d) || d > 1.0)
            return badValue(error, key, value,
                            "an improvement fraction in [0, 1]");
        config.adaptDwellImprove = d;
    } else {
        fail(error, "unknown config key '" + key + "'");
        return false;
    }
    return true;
}

bool
configKeyValue(const SchedulerConfig &config,
               const std::string &rawKey, std::string *out)
{
    const std::string key = canonicalConfigKey(rawKey);
    if (key.rfind("profile.", 0) == 0)
        return profileKeyValue(key, out);

    if (key == "dims")
        *out = std::to_string(config.dims);
    else if (key == "cache_bytes")
        *out = std::to_string(config.cacheBytes);
    else if (key == "block_bytes")
        *out = std::to_string(config.blockBytes);
    else if (key == "hash_buckets")
        *out = std::to_string(config.hashBuckets);
    else if (key == "group_capacity")
        *out = std::to_string(config.groupCapacity);
    else if (key == "symmetric_hints")
        *out = config.symmetricHints ? "1" : "0";
    else if (key == "placement")
        *out = placementName(config.placement);
    else if (key == "backend")
        *out = backendName(config.backend);
    else if (key == "round_robin_bins")
        *out = std::to_string(config.roundRobinBins);
    else if (key == "topology")
        *out = config.topology;
    else if (key == "super_bin_fan")
        *out = std::to_string(config.superBinFan);
    else if (key == "tour")
        *out = tourPolicyName(config.tour);
    else if (key == "on_error")
        *out = errorPolicyToken(config.onError);
    else if (key == "watchdog_millis")
        *out = std::to_string(config.watchdogMillis);
    else if (key == "watchdog_action")
        *out = watchdogActionName(config.watchdogAction);
    else if (key == "deadline_millis")
        *out = std::to_string(config.deadlineMillis);
    else if (key == "stream_admit_retries")
        *out = std::to_string(config.streamAdmitRetries);
    else if (key == "overload_epochs")
        *out = std::to_string(config.overloadEpochs);
    else if (key == "recover_epochs")
        *out = std::to_string(config.recoverEpochs);
    else if (key == "persistent_pool")
        *out = config.persistentPool ? "1" : "0";
    else if (key == "pin_workers")
        *out = config.pinWorkers ? "1" : "0";
    else if (key == "stream_shards")
        *out = std::to_string(config.streamShards);
    else if (key == "stream_max_pending")
        *out = std::to_string(config.streamMaxPending);
    else if (key == "stream_seal_threshold")
        *out = std::to_string(config.streamSealThreshold);
    else if (key == "adapt.base")
        *out = placementName(config.adaptBase);
    else if (key == "adapt.target_miss")
        *out = doubleToken(config.adaptTargetMiss);
    else if (key == "adapt.high_miss")
        *out = doubleToken(config.adaptHighMiss);
    else if (key == "adapt.converge")
        *out = doubleToken(config.adaptConverge);
    else if (key == "adapt.epochs")
        *out = std::to_string(config.adaptEpochs);
    else if (key == "adapt.hold")
        *out = std::to_string(config.adaptHold);
    else if (key == "adapt.min_block")
        *out = std::to_string(config.adaptMinBlock);
    else if (key == "adapt.max_block")
        *out = std::to_string(config.adaptMaxBlock);
    else if (key == "adapt.min_refs")
        *out = std::to_string(config.adaptMinRefs);
    else if (key == "adapt.dwell_improve")
        *out = doubleToken(config.adaptDwellImprove);
    else
        return false;
    return true;
}

const std::vector<std::string> &
configKeys()
{
    static const std::vector<std::string> keys = {
        "dims",
        "cache_bytes",
        "block_bytes",
        "hash_buckets",
        "group_capacity",
        "symmetric_hints",
        "placement",
        "backend",
        "round_robin_bins",
        "super_bin_fan",
        "topology",
        "tour",
        "on_error",
        "watchdog_millis",
        "watchdog_action",
        "deadline_millis",
        "stream_admit_retries",
        "overload_epochs",
        "recover_epochs",
        "persistent_pool",
        "pin_workers",
        "stream_shards",
        "stream_max_pending",
        "stream_seal_threshold",
        "adapt.base",
        "adapt.target_miss",
        "adapt.high_miss",
        "adapt.converge",
        "adapt.epochs",
        "adapt.hold",
        "adapt.min_block",
        "adapt.max_block",
        "adapt.min_refs",
        "adapt.dwell_improve",
        "profile.enable",
        "profile.pmu",
        "profile.interval_ms",
        "profile.output",
        "profile.om_output",
        "profile.ring",
        "profile.max_bins",
    };
    return keys;
}

} // namespace lsched::threads
