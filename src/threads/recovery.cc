/**
 * @file
 * Recovery-layer implementation: the tour monitor (deadline +
 * watchdog escalation) and the overload governor's state machine.
 * See recovery.hh for the design.
 */

#include "threads/recovery.hh"

#include <chrono>
#include <sstream>

#include "obs/trace.hh"
#include "support/panic.hh"
#include "threads/sched_obs.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

const char *
watchdogActionName(WatchdogAction action)
{
    switch (action) {
      case WatchdogAction::Event:  return "event";
      case WatchdogAction::Cancel: return "cancel";
    }
    return "?";
}

bool
tryWatchdogActionFromName(const std::string &name, WatchdogAction *out)
{
    if (name == "event")
        *out = WatchdogAction::Event;
    else if (name == "cancel")
        *out = WatchdogAction::Cancel;
    else
        return false;
    return true;
}

const char *
recoveryStateName(RecoveryState state)
{
    switch (state) {
      case RecoveryState::Healthy:   return "healthy";
      case RecoveryState::Backoff:   return "backoff";
      case RecoveryState::Degraded:  return "degraded";
      case RecoveryState::Recovered: return "recovered";
    }
    return "?";
}

namespace detail
{

namespace
{

/** Warn with the stuck worker/bin ids and record a WatchdogStall. */
void
reportStall(const TourMonitorSpec &spec)
{
    std::uint64_t stalled = 0;
    std::int64_t firstStuckBin = kWorkerIdle;
    std::ostringstream who;
    if (spec.currentBin) {
        for (unsigned w = 0; w < spec.workers; ++w) {
            const std::int64_t bin =
                spec.currentBin[w].load(std::memory_order_relaxed);
            if (bin == kWorkerDone)
                continue;
            ++stalled;
            if (who.tellp() > 0)
                who << ", ";
            if (bin == kWorkerIdle)
                who << "worker " << w << " (between bins)";
            else
                who << "worker " << w << " (bin " << bin << ")";
            if (firstStuckBin == kWorkerIdle && bin >= 0)
                firstStuckBin = bin;
        }
    }
    LSCHED_WARN("runParallel watchdog: tour still running after ",
                spec.watchdogMillis, " ms deadline; ", stalled,
                " worker(s) busy: ", who.str());
    LSCHED_TRACE_EVENT(
        obs::EventType::WatchdogStall, stalled,
        firstStuckBin >= 0 ? static_cast<std::uint64_t>(firstStuckBin)
                           : 0,
        spec.watchdogMillis);
}

} // namespace

TourMonitor::TourMonitor(const TourMonitorSpec &spec)
    : spec_(spec)
{
    if (spec_.deadlineMillis == 0 && spec_.watchdogMillis == 0)
        return;
    const bool cancels =
        spec_.deadlineMillis > 0 ||
        spec_.watchdogAction == WatchdogAction::Cancel;
    LSCHED_ASSERT(!cancels || spec_.cancel != nullptr,
                  "tour monitor that cancels needs a token");
    monitor_ = std::thread(&TourMonitor::body, this);
}

TourMonitor::~TourMonitor()
{
    if (monitor_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            done_ = true;
        }
        cv_.notify_one();
        monitor_.join();
    }
}

void
TourMonitor::body()
{
    if (obs::traceOn())
        obs::TraceSession::global().setLaneName("monitor");
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    bool deadlineArmed = spec_.deadlineMillis > 0;
    Clock::time_point deadlineAt =
        start + std::chrono::milliseconds(spec_.deadlineMillis);
    bool watchdogArmed = spec_.watchdogMillis > 0;
    const auto watchdogPeriod =
        std::chrono::milliseconds(spec_.watchdogMillis);
    Clock::time_point watchdogAt = start + watchdogPeriod;

    std::unique_lock<std::mutex> lock(mutex_);
    while (!done_) {
        if (!deadlineArmed && !watchdogArmed) {
            // Both triggers consumed; hold on until the tour joins us.
            cv_.wait(lock, [&] { return done_; });
            return;
        }
        Clock::time_point wake;
        if (deadlineArmed && watchdogArmed)
            wake = std::min(deadlineAt, watchdogAt);
        else
            wake = deadlineArmed ? deadlineAt : watchdogAt;
        if (cv_.wait_until(lock, wake, [&] { return done_; }))
            return;

        const Clock::time_point now = Clock::now();
        if (deadlineArmed && now >= deadlineAt) {
            deadlineArmed = false;
            LSCHED_WARN("tour deadline: still running after ",
                        spec_.deadlineMillis,
                        " ms; requesting cooperative cancellation");
            LSCHED_TRACE_EVENT(
                obs::EventType::DeadlineExpire, spec_.deadlineMillis,
                static_cast<std::uint64_t>(CancelReason::Deadline), 0);
            if (spec_.recovery) {
                spec_.recovery->deadlines.fetch_add(
                    1, std::memory_order_relaxed);
            }
            if (obs::metricsOn())
                schedInstruments().recoverDeadlines->add();
            spec_.cancel->request(CancelReason::Deadline);
        }
        if (watchdogArmed && now >= watchdogAt) {
            reportStall(spec_);
            if (spec_.watchdogAction == WatchdogAction::Cancel) {
                watchdogArmed = false;
                if (spec_.recovery) {
                    spec_.recovery->watchdogCancels.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (obs::metricsOn())
                    schedInstruments().recoverWatchdogCancels->add();
                spec_.cancel->request(CancelReason::Watchdog);
            } else {
                watchdogAt += watchdogPeriod;
            }
        }
    }
}

} // namespace detail

void
OverloadGovernor::configure(unsigned overloadEpochs,
                            unsigned recoverEpochs,
                            detail::RecoveryStats *stats)
{
    std::lock_guard<std::mutex> lock(mutex_);
    overloadEpochs_ = overloadEpochs;
    recoverEpochs_ = std::max(1u, recoverEpochs);
    stats_ = stats;
    state_ = RecoveryState::Healthy;
    streak_ = 0;
}

bool
OverloadGovernor::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overloadEpochs_ > 0;
}

RecoveryState
OverloadGovernor::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

bool
OverloadGovernor::degraded() const
{
    return state() == RecoveryState::Degraded;
}

RecoveryState
OverloadGovernor::observe(bool overloaded)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (overloadEpochs_ == 0)
        return state_;
    const RecoveryState old = state_;
    switch (state_) {
      case RecoveryState::Healthy:
      case RecoveryState::Recovered:
        if (overloaded) {
            streak_ = 1;
            state_ = streak_ >= overloadEpochs_
                         ? RecoveryState::Degraded
                         : RecoveryState::Backoff;
        } else {
            streak_ = 0;
            state_ = RecoveryState::Healthy;
        }
        break;
      case RecoveryState::Backoff:
        if (overloaded) {
            if (++streak_ >= overloadEpochs_)
                state_ = RecoveryState::Degraded;
        } else {
            streak_ = 0;
            state_ = RecoveryState::Healthy;
        }
        break;
      case RecoveryState::Degraded:
        if (overloaded) {
            streak_ = 0;
        } else if (++streak_ >= recoverEpochs_) {
            state_ = RecoveryState::Recovered;
            if (stats_) {
                stats_->recoveries.fetch_add(1,
                                             std::memory_order_relaxed);
            }
            if (obs::metricsOn())
                detail::schedInstruments().recoverRecoveries->add();
        }
        break;
    }
    if (state_ != old) {
        if (state_ == RecoveryState::Degraded)
            streak_ = 0;
        LSCHED_WARN("overload governor: ", recoveryStateName(old),
                    " -> ", recoveryStateName(state_));
        LSCHED_TRACE_EVENT(obs::EventType::RecoveryStep,
                           static_cast<std::uint64_t>(state_),
                           static_cast<std::uint64_t>(old), streak_);
    }
    return state_;
}

} // namespace lsched::threads
