#include "scheduler.hh"

#include <cstdlib>
#include <mutex>
#include <thread>

#include "support/error.hh"
#include "support/panic.hh"
#include "threads/adapt.hh"
#include "threads/bin_exec.hh"
#include "threads/config_keys.hh"
#include "threads/sched_obs.hh"

namespace lsched::threads
{

namespace detail
{

const SchedInstruments &
schedInstruments()
{
    static const SchedInstruments ins = [] {
        obs::Registry &r = obs::Registry::global();
        return SchedInstruments{
            &r.counter("sched.threads.forked"),
            &r.counter("sched.threads.executed"),
            &r.counter("sched.runs"),
            &r.counter("sched.bins.created"),
            &r.counter("sched.threads.faulted"),
            &r.counter("sched.pool.steals"),
            &r.counter("sched.pool.parks"),
            &r.counter("sched.pool.cross_steals"),
            &r.counter("sched.pool.pin_failed"),
            &r.counter("sched.stream.forked"),
            &r.counter("sched.stream.seals"),
            &r.counter("sched.stream.backpressure"),
            &r.counter("sched.stream.inline_drains"),
            &r.counter("sched.recover.deadlines"),
            &r.counter("sched.recover.watchdog_cancels"),
            &r.counter("sched.recover.cancelled_bins"),
            &r.counter("sched.recover.cancelled_threads"),
            &r.counter("sched.recover.admission_retries"),
            &r.counter("sched.recover.admission_timeouts"),
            &r.counter("sched.recover.load_sheds"),
            &r.counter("sched.recover.degraded_tours"),
            &r.counter("sched.recover.recoveries"),
            &r.histogram("sched.hash.probes"),
            &r.histogram("sched.bin.threads"),
            &r.histogram("sched.bin.dwell_ns"),
            &r.histogram("sched.tour.hop_distance"),
        };
    }();
    return ins;
}

void
noteFault(FaultCtx &ctx, std::uint32_t binId, unsigned worker)
{
    std::string message = "unknown exception";
    try {
        throw;
    } catch (const std::exception &e) {
        message = e.what();
    } catch (...) {
    }

    {
        std::lock_guard<std::mutex> lock(ctx.mutex);
        ++ctx.totalFaults;
        if (ctx.faults &&
            ctx.faults->size() < FaultCtx::kMaxRecordedFaults)
            ctx.faults->push_back({binId, worker, std::move(message)});
        if (ctx.policy == ErrorPolicy::StopTour && !ctx.first)
            ctx.first = std::current_exception();
    }
    if (ctx.policy == ErrorPolicy::StopTour)
        ctx.stop.store(true, std::memory_order_relaxed);

    LSCHED_TRACE_EVENT(obs::EventType::ThreadFault, binId, worker);
    if (obs::metricsOn())
        schedInstruments().faulted->add();
}

void
noteCancelledBin(FaultCtx &ctx, std::uint32_t binId, unsigned worker,
                 std::uint64_t threads)
{
    ctx.cancelledBins.fetch_add(1, std::memory_order_relaxed);
    ctx.cancelledThreads.fetch_add(threads, std::memory_order_relaxed);
    if (ctx.recovery) {
        ctx.recovery->cancelledBins.fetch_add(
            1, std::memory_order_relaxed);
        ctx.recovery->cancelledThreads.fetch_add(
            threads, std::memory_order_relaxed);
    }
    if (ctx.policy == ErrorPolicy::ContinueAndCollect) {
        // This run returns normally, so the dropped work must be
        // visible where contained faults are: one recorded fault per
        // cancelled bin, counting every dropped thread.
        const CancelReason reason =
            ctx.cancel ? ctx.cancel->why() : CancelReason::None;
        std::lock_guard<std::mutex> lock(ctx.mutex);
        ctx.totalFaults += threads;
        if (ctx.faults &&
            ctx.faults->size() < FaultCtx::kMaxRecordedFaults) {
            ctx.faults->push_back(
                {binId, worker,
                 lsched::detail::concatMessage(
                     "bin cancelled (", cancelReasonName(reason), "): ",
                     threads, " thread(s) dropped")});
        }
    }
    LSCHED_TRACE_EVENT(obs::EventType::BinCancelled, binId, worker,
                       threads);
    if (obs::metricsOn()) {
        const SchedInstruments &ins = schedInstruments();
        ins.recoverCancelledBins->add();
        ins.recoverCancelledThreads->add(threads);
    }
}

} // namespace detail

namespace
{

/** Per-placement fork counters (sched.placement.<name>.forked). */
obs::Counter &
placementForkedCounter(PlacementKind kind)
{
    static obs::Counter *const counters[] = {
        &obs::Registry::global().counter(
            "sched.placement.blockhash.forked"),
        &obs::Registry::global().counter(
            "sched.placement.roundrobin.forked"),
        &obs::Registry::global().counter(
            "sched.placement.hierarchical.forked"),
        &obs::Registry::global().counter(
            "sched.placement.adaptive.forked"),
    };
    return *counters[static_cast<std::size_t>(kind)];
}

/** The placement instance a validated configuration selects. */
std::unique_ptr<PlacementPolicy>
placementFor(const SchedulerConfig &config)
{
    if (config.placement == PlacementKind::Adaptive)
        return makeAdaptivePlacement(config);
    return makePlacement(config.placement, config.dims,
                         config.blockBytes, config.symmetricHints,
                         config.roundRobinBins, config.superBinFan);
}

/**
 * Resolve the topology config key into a tree (machine/topology.hh):
 * null for "flat" (and for failed auto-discovery — the legacy
 * single-domain behavior), a discovered tree for "auto", a synthetic
 * one for a spec string. The LSCHED_TOPOLOGY environment variable
 * overrides *only* "auto" — configs that pinned a spec (tests,
 * benches) are immune to the CI matrix forcing a path.
 */
std::shared_ptr<const machine::CacheTopology>
resolveTopology(const SchedulerConfig &config)
{
    std::string spec = config.topology.empty() ? "auto" : config.topology;
    bool fromEnv = false;
    if (spec == "auto") {
        if (const char *env = std::getenv("LSCHED_TOPOLOGY");
            env != nullptr && *env != '\0') {
            spec = env;
            fromEnv = true;
        }
    }
    if (spec == "flat")
        return nullptr;
    if (spec != "auto") {
        auto topo = std::make_shared<machine::CacheTopology>();
        std::string error;
        if (machine::CacheTopology::fromSpec(spec, topo.get(), &error))
            return topo;
        if (!fromEnv) {
            throw ConfigError(
                lsched::detail::concatMessage("topology: ", error));
        }
        // A broken environment override must not take schedulers down;
        // warn and fall through to real discovery.
        LSCHED_WARN("ignoring LSCHED_TOPOLOGY: ", error);
    }
    auto topo = std::make_shared<machine::CacheTopology>();
    if (machine::CacheTopology::fromSysfs("/sys/devices/system/cpu",
                                          topo.get()))
        return topo;
    return nullptr;
}

/**
 * Normalize defaults and reject unusable configurations. The zeros
 * that the paper's th_init documents as "pick the default" stay
 * defaults (blockBytes, hashBuckets); everything that would flow into
 * a div-by-zero or a degenerate block map is a ConfigError. When
 * @p topoOut is non-null it receives the resolved cache topology,
 * which also fills in what the knobs left at 0: cacheBytes from the
 * discovered L2 size, superBinFan (hierarchical placements, multi-L2
 * trees) from the groups-per-cluster ratio.
 */
SchedulerConfig
validated(SchedulerConfig config,
          std::shared_ptr<const machine::CacheTopology> *topoOut = nullptr)
{
    // Process-wide --placement/--backend/--sched overrides beat
    // per-scheduler settings, mirroring how --trace turns tracing on
    // globally. The list was already validated at parse time, so a
    // failure here means the tables drifted.
    for (const auto &[key, value] : detail::schedOverrides()) {
        std::string error;
        if (!applyConfigKey(config, key, value, &error))
            throw ConfigError(error);
    }
    // The legacy persistentPool knob and the backend enum describe the
    // same choice; keep them mutually consistent, with the backend
    // winning when it was set away from the default.
    if (config.backend == BackendKind::ColdSpawn)
        config.persistentPool = false;
    else if (config.backend == BackendKind::Pooled &&
             !config.persistentPool)
        config.backend = BackendKind::ColdSpawn;

    if (config.dims < 1 || config.dims > kMaxDims) {
        throw ConfigError(lsched::detail::concatMessage(
            "dims must be in [1, ", kMaxDims, "], got ", config.dims));
    }
    const std::shared_ptr<const machine::CacheTopology> topo =
        resolveTopology(config);
    if (config.cacheBytes == 0 && topo && topo->l2Bytes() > 0) {
        // The knob said "whatever the hardware has": size blocks to
        // the discovered per-core L2, the cache bins actually live in.
        config.cacheBytes = topo->l2Bytes();
    }
    if (config.cacheBytes == 0)
        throw ConfigError("cacheBytes must be non-zero");
    if (config.groupCapacity == 0)
        throw ConfigError("groupCapacity must be non-zero");
    const bool hierarchicalish =
        config.placement == PlacementKind::Hierarchical ||
        (config.placement == PlacementKind::Adaptive &&
         config.adaptBase == PlacementKind::Hierarchical);
    if (config.superBinFan == 0 && hierarchicalish && topo &&
        topo->l2Groups() > 1) {
        // Super-bins spread over L3 clusters: one super-bin spans as
        // many blocks per dimension as the cluster has L2 domains, so
        // a cluster's worth of bins is one scheduling unit. The
        // adaptive tuner starts from this value (makeAdaptivePlacement
        // reads the materialized config) and stays bounded by
        // cacheBytes, which the same tree sized to one L2 domain.
        config.superBinFan = topo->groupsPerCluster();
    }
    if (topoOut)
        *topoOut = topo;
    if (config.blockBytes == 0)
        config.blockBytes = config.cacheBytes / config.dims;
    if (config.blockBytes == 0) {
        throw ConfigError(lsched::detail::concatMessage(
            "cacheBytes (", config.cacheBytes, ") too small for ",
            config.dims, " dimensions"));
    }
    if (config.blockBytes > config.cacheBytes) {
        // Legal but almost certainly a mistake outside deliberate
        // degradation experiments (Figure 4 sweeps past the cache on
        // purpose), so this warns instead of rejecting.
        LSCHED_WARN("blockBytes (", config.blockBytes,
                    ") exceeds cacheBytes (", config.cacheBytes,
                    "); every bin will overflow the cache");
    }
    if (config.hashBuckets == 0)
        config.hashBuckets = 4096;
    if (config.adaptBase == PlacementKind::Adaptive) {
        throw ConfigError(
            "adapt.base must name a concrete policy "
            "(blockhash|roundrobin|hierarchical), not adaptive");
    }
    if (config.placement == PlacementKind::Adaptive) {
        if (config.adaptHighMiss < config.adaptTargetMiss) {
            throw ConfigError(lsched::detail::concatMessage(
                "adapt.high_miss (", config.adaptHighMiss,
                ") must be >= adapt.target_miss (",
                config.adaptTargetMiss, ")"));
        }
        if (config.adaptEpochs == 0)
            throw ConfigError("adapt.epochs must be non-zero");
        if (config.adaptMinBlock == 0)
            throw ConfigError("adapt.min_block must be non-zero");
    }
    return config;
}

} // namespace

LocalityScheduler::LocalityScheduler(const SchedulerConfig &config)
    : config_(validated(config, &topo_)),
      placement_(placementFor(config_)),
      table_(config_.dims, config_.hashBuckets),
      pool_(config_.groupCapacity)
{
    placeHot_ = placement_->hotPolicy();
    governor_.configure(config_.overloadEpochs, config_.recoverEpochs,
                        &recovery_);
}

LocalityScheduler::~LocalityScheduler() = default;

void
LocalityScheduler::configure(const SchedulerConfig &config)
{
    if (running_) {
        // Placement geometry (blockBytes, superBinFan, placement kind)
        // is load-bearing while a stream is open: bins already placed
        // under the old dims would stop matching new forks. Reject
        // rather than silently remap.
        throw UsageError(stream_
                             ? "cannot reconfigure while a stream is "
                               "open; close it with streamEnd() first"
                             : "cannot reconfigure a running scheduler");
    }
    if (pendingThreads_ != 0) {
        throw UsageError(lsched::detail::concatMessage(
            "cannot reconfigure with ", pendingThreads_,
            " threads pending; run or clear them first"));
    }
    // Validate before touching anything so a bad config leaves the
    // previous one fully intact.
    std::shared_ptr<const machine::CacheTopology> nextTopo;
    const SchedulerConfig next = validated(config, &nextTopo);
    config_ = next;
    topo_ = std::move(nextTopo);
    lastTourDomains_ = 0;
    lastTourDomainWorkers_ = 0;
    placement_ = placementFor(config_);
    placeHot_ = placement_->hotPolicy();
    table_ = BinTable(config_.dims, config_.hashBuckets);
    pool_ = GroupPool(config_.groupCapacity);
    readyHead_ = nullptr;
    readyTail_ = nullptr;
    // Retire the worker pool so pool-affecting knobs (pinWorkers,
    // persistentPool) take effect on the next parallel tour; its
    // lifetime counters carry over.
    if (workerPool_) {
        retiredPoolStats_ += workerPool_->stats();
        workerPool_.reset();
    }
    // Re-arming the governor resets its state machine to Healthy; the
    // lifetime recovery counters are deliberately preserved.
    governor_.configure(config_.overloadEpochs, config_.recoverEpochs,
                        &recovery_);
}

void
LocalityScheduler::appendReady(Bin *bin)
{
    bin->readyNext = nullptr;
    bin->onReadyList = true;
    if (readyTail_)
        readyTail_->readyNext = bin;
    else
        readyHead_ = bin;
    readyTail_ = bin;
}

void
LocalityScheduler::fork(ThreadFn fn, void *arg1, void *arg2, Hint hint1,
                        Hint hint2, Hint hint3)
{
    const Hint hints[3] = {hint1, hint2, hint3};
    unsigned n = 3;
    if (config_.dims < 3) {
        // Truncate explicitly: a non-zero hint beyond dims would be
        // silently ignored (it never reaches the block map), which is
        // always a caller bug — surface it.
        for (unsigned d = config_.dims; d < 3; ++d) {
            if (hints[d] != 0) {
                throw UsageError(lsched::detail::concatMessage(
                    "fork: hint ", d + 1, " is non-zero but the "
                    "scheduler has only ", config_.dims,
                    " dimension(s); pass 0 or raise dims"));
            }
        }
        n = config_.dims;
    }
    // dims > 3: the block map zero-extends the missing trailing
    // dimensions, per the paper's th_fork.
    fork(fn, arg1, arg2, std::span<const Hint>(hints, n));
}

void
LocalityScheduler::fork(ThreadFn fn, void *arg1, void *arg2,
                        std::span<const Hint> hints)
{
    LSCHED_ASSERT(fn != nullptr, "fork of a null thread function");
    if (detail::inParallelWorker()) {
        // Checked via thread-local state *before* touching the ready
        // list: reading scheduler fields from a worker would itself be
        // the data race this diagnostic exists to prevent. fatal, not
        // throw — unwinding a worker mid-tour is not safe here.
        LSCHED_FATAL(
            "fork() from a thread running under runParallel() or a "
            "streaming drain helper is not supported: the ready list "
            "is not synchronized during a parallel tour. Fork before "
            "runParallel(), use run() with keep == false for nested "
            "forking, or fork from producer threads in a stream.");
    }
    if (stream_) {
        // Streaming mode: admission goes to the sharded intake, which
        // is safe from any OS thread (and may block at the
        // backpressure bound).
        stream_->fork(fn, arg1, arg2, hints);
        return;
    }
    if (running_ && !nestedForkOk_) {
        throw UsageError("fork during run() requires keep == false and "
                         "the creation-order tour");
    }

    const PlacementDecision where = placeHot_->place(hints);
    std::uint32_t probes = 0;
    const auto [bin, created] = table_.findOrCreate(where.coords, &probes);
    if (created)
        bin->superBin = where.superBin;
    if (obs::anyOn()) [[unlikely]] {
        if (obs::metricsOn()) {
            const detail::SchedInstruments &ins =
                detail::schedInstruments();
            ins.forked->add();
            placementForkedCounter(config_.placement).add();
            ins.hashProbes->record(probes);
            if (created)
                ins.binsCreated->add();
        }
        if (created) {
            LSCHED_TRACE_EVENT(obs::EventType::BinCreate, bin->id,
                               where.coords[0], where.coords[1]);
        }
        LSCHED_TRACE_EVENT(obs::EventType::ThreadFork, bin->id,
                           where.coords[0], where.coords[1]);
    }

    ThreadGroup *group = bin->groupsTail;
    if (!group || group->full()) {
        group = pool_.allocate();
        if (bin->groupsTail)
            bin->groupsTail->next = group;
        else
            bin->groupsHead = group;
        bin->groupsTail = group;
    }
    group->push(fn, arg1, arg2);
    ++bin->threadCount;
    ++pendingThreads_;

    if (!bin->onReadyList)
        appendReady(bin);
}

std::uint64_t
LocalityScheduler::run(bool keep)
{
    if (stream_) {
        // Recoverable misuse, unlike a recursive run(): a batch run
        // has no tour to walk while admission streams past it.
        throw UsageError("run() during an active stream; close it "
                         "with streamEnd() first");
    }
    LSCHED_ASSERT(!running_, "recursive run()");
    running_ = true;
    nestedForkOk_ = !keep && config_.tour == TourPolicy::CreationOrder;
    lastFaults_.clear();
    lastFaultsTotal_ = 0;
    std::uint64_t executed = 0;

    Bin *inFlight = nullptr;
    detail::RunGuard guard{*this, &inFlight};
    detail::FaultCtx ctx(config_.onError, &lastFaults_);
    ctx.recovery = &recovery_;
    CancelToken cancelToken;
    if (config_.deadlineMillis > 0)
        ctx.cancel = &cancelToken;

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, pendingThreads_,
                       table_.binCount(), 1);
    obs::profileNoteEpoch();
    if (obs::metricsOn())
        detail::schedInstruments().runs->add();

    // Deadline monitor for the serial tour (runParallel arms its own,
    // with the watchdog on top). The monitor's dtor joins before the
    // guard runs, so a cancel can never race the unwind path.
    detail::TourMonitorSpec mspec;
    mspec.deadlineMillis = config_.deadlineMillis;
    mspec.cancel = &cancelToken;
    mspec.recovery = &recovery_;
    detail::TourMonitor monitor(mspec);

    if (nestedForkOk_) {
        // Streaming traversal: pop bins off the ready list as they
        // run; nested forks may append bins (including already-run
        // ones) at the tail and are executed before we return.
        const Bin *prev = nullptr;
        while (readyHead_ && !ctx.stopRequested()) {
            Bin *bin = readyHead_;
            readyHead_ = bin->readyNext;
            if (!readyHead_)
                readyTail_ = nullptr;
            bin->readyNext = nullptr;
            bin->onReadyList = false;
            inFlight = bin;
            if (obs::metricsOn()) {
                if (prev) {
                    detail::schedInstruments().tourHop->record(
                        detail::hopDistance(prev, bin, config_.dims));
                }
                prev = bin;
            }
            executed += detail::executeBin(bin, ctx, 0);
            pool_.recycleChain(bin->groupsHead);
            bin->clearGroups();
            inFlight = nullptr;
        }
        if (ctx.stopRequested()) {
            if (ctx.cancelRequested()) {
                // Account the bins the cancellation left on the ready
                // list (the backend sweeps only bins it was handed).
                for (Bin *bin = readyHead_; bin; bin = bin->readyNext) {
                    if (bin->threadCount > 0) {
                        detail::noteCancelledBin(ctx, bin->id, 0,
                                                 bin->threadCount);
                    }
                }
                if (config_.onError == ErrorPolicy::ContinueAndCollect) {
                    // This path returns normally: drop the remainder
                    // now so the scheduler comes back clean.
                    abandonRun(nullptr);
                    running_ = true; // guard.commit() clears it
                }
            }
            // Otherwise un-run bins stay on the ready list; the
            // rethrow below lets the guard recycle them.
        } else {
            LSCHED_ASSERT(pendingThreads_ <=
                              executed + ctx.totalFaults,
                          "pending threads outlived the streaming run");
            pendingThreads_ = 0;
        }
    } else {
        const std::vector<Bin *> tour =
            orderBins(config_.tour, readyBins(), config_.dims);
        if (obs::metricsOn())
            detail::recordTourHops(tour, config_.dims);
        // The ordered tour is exactly a one-worker tour: delegate to
        // the serial execution backend so this path and runParallel()
        // share one mechanism.
        TourSpec spec;
        spec.tour = tour.data();
        spec.bins = tour.size();
        spec.workers = 1;
        spec.fault = &ctx;
        executed +=
            executionBackend(BackendKind::Serial).runTour(spec);
        // A cancelled ContinueAndCollect run returns normally, so its
        // remainder (already accounted by the backend's sweep) must be
        // recycled here like any completed tour's.
        const bool cancelledButReturning =
            ctx.cancelRequested() &&
            config_.onError == ErrorPolicy::ContinueAndCollect;
        if (!keep && (!ctx.stopRequested() || cancelledButReturning)) {
            for (Bin *bin : tour) {
                pool_.recycleChain(bin->groupsHead);
                bin->clearGroups();
                bin->readyNext = nullptr;
                bin->onReadyList = false;
            }
            readyHead_ = nullptr;
            readyTail_ = nullptr;
            pendingThreads_ = 0;
        }
    }

    executedThreads_ += executed;
    lastFaultsTotal_ = ctx.totalFaults;
    faultedThreads_ += lastFaultsTotal_;
    const bool cancelled = ctx.cancelRequested();
    if (governor_.enabled())
        governor_.observe(cancelled);
    if (ctx.first) {
        // StopTour: rethrow the first user exception exactly once on
        // the caller; the guard's unwind path drops what never ran.
        std::rethrow_exception(ctx.first);
    }
    if (cancelled && config_.onError != ErrorPolicy::ContinueAndCollect) {
        // Abort/StopTour surface the cancellation as a recoverable
        // error; the guard's unwind path drops what never ran.
        throw DeadlineError(lsched::detail::concatMessage(
            "run cancelled (", cancelReasonName(cancelToken.why()),
            ") after ", config_.deadlineMillis, " ms: ",
            ctx.cancelledBins.load(std::memory_order_relaxed),
            " bin(s), ",
            ctx.cancelledThreads.load(std::memory_order_relaxed),
            " thread(s) dropped"));
    }
    // Tour boundary: the one place a serial tour lets the adaptive
    // placement re-derive its block dims from profiler feedback.
    placement_->maybeRetune();
    placeHot_ = placement_->hotPolicy();
    guard.commit();
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, executed);
    return executed;
}

void
LocalityScheduler::streamBegin(unsigned workers)
{
    if (running_) {
        throw UsageError(stream_
                             ? "streamBegin during an active stream"
                             : "streamBegin during run()");
    }
    if (pendingThreads_ != 0) {
        throw UsageError(lsched::detail::concatMessage(
            "streamBegin with ", pendingThreads_,
            " batch threads pending; run or clear them first"));
    }
    WorkerPool *pool = nullptr;
    unsigned helpers = 0;
    if (config_.backend != BackendKind::Serial) {
        helpers = workers
                      ? workers
                      : std::max(1u,
                                 std::thread::hardware_concurrency());
        if (!workerPool_) {
            workerPool_ = std::make_unique<WorkerPool>(
                config_.pinWorkers,
                topo_ ? topo_->pinPlan() : std::vector<unsigned>{});
        }
        pool = workerPool_.get();
    }
    lastFaults_.clear();
    lastFaultsTotal_ = 0;
    // Safe boundary: no bins exist yet, so a retune here only changes
    // where the upcoming stream's forks land.
    placement_->maybeRetune();
    placeHot_ = placement_->hotPolicy();
    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, 0, 0, helpers);
    obs::profileNoteEpoch();
    if (obs::metricsOn())
        detail::schedInstruments().runs->add();
    stream_ = std::make_unique<StreamSession>(config_, *placement_,
                                              pool, helpers, &recovery_,
                                              &governor_);
    running_ = true;
}

std::uint64_t
LocalityScheduler::streamEnd()
{
    if (!stream_)
        throw UsageError("streamEnd without an active stream");
    std::exception_ptr abortError;
    try {
        stream_->finish();
    } catch (...) {
        // ErrorPolicy::Abort fault from the caller-side tail drain:
        // restore scheduler state below, then let it propagate.
        abortError = std::current_exception();
    }
    const StreamStats s = stream_->stats();
    lifetimeStream_ += s;
    executedThreads_ += s.executed;
    lastFaults_ = stream_->faults();
    lastFaultsTotal_ = stream_->faultCount();
    faultedThreads_ += lastFaultsTotal_;
    lastStreamBins_ = stream_->binReports();
    const std::exception_ptr first = stream_->firstFault();
    const CancelReason streamCancel = stream_->cancelReason();
    stream_.reset();
    running_ = false;
    // The stream just drained: fold its profiler epochs into the
    // adaptive placement before the next run begins.
    placement_->maybeRetune();
    placeHot_ = placement_->hotPolicy();
    if (!config_.persistentPool && workerPool_) {
        // Cold-spawn semantics: no threads stay parked between runs.
        retiredPoolStats_ += workerPool_->stats();
        workerPool_.reset();
    }
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, s.executed);
    if (abortError)
        std::rethrow_exception(abortError);
    if (first) {
        // StopTour: the first contained exception, exactly once.
        std::rethrow_exception(first);
    }
    if (streamCancel != CancelReason::None &&
        config_.onError != ErrorPolicy::ContinueAndCollect) {
        // The epoch deadline cancelled the stream; surface it here,
        // after the session's counters were folded in.
        throw DeadlineError(lsched::detail::concatMessage(
            "stream cancelled (", cancelReasonName(streamCancel),
            "): no epoch progress within ", config_.deadlineMillis,
            " ms"));
    }
    return s.executed;
}

std::uint64_t
LocalityScheduler::runStream(
    unsigned workers, unsigned producers,
    const std::function<void(unsigned)> &producer)
{
    if (producers == 0)
        producers = 1;
    streamBegin(workers);
    std::mutex errMutex;
    std::exception_ptr producerError;
    const auto body = [&](unsigned index) {
        try {
            producer(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errMutex);
            if (!producerError)
                producerError = std::current_exception();
        }
    };
    {
        std::vector<std::thread> extras;
        extras.reserve(producers - 1);
        for (unsigned i = 1; i < producers; ++i)
            extras.emplace_back(body, i);
        body(0);
        for (std::thread &t : extras)
            t.join();
    }
    if (producerError) {
        try {
            streamEnd();
        } catch (...) {
            // The producer's own failure is the primary error.
        }
        std::rethrow_exception(producerError);
    }
    return streamEnd();
}

void
LocalityScheduler::abandonRun(Bin *inFlight) noexcept
{
    if (inFlight && !inFlight->onReadyList) {
        pool_.recycleChain(inFlight->groupsHead);
        inFlight->clearGroups();
        inFlight->readyNext = nullptr;
    }
    for (Bin *bin = readyHead_; bin;) {
        Bin *next = bin->readyNext;
        pool_.recycleChain(bin->groupsHead);
        bin->clearGroups();
        bin->readyNext = nullptr;
        bin->onReadyList = false;
        bin = next;
    }
    readyHead_ = nullptr;
    readyTail_ = nullptr;
    pendingThreads_ = 0;
    running_ = false;
    nestedForkOk_ = false;
}

void
LocalityScheduler::clear()
{
    if (running_)
        throw UsageError("clear() during run()");
    for (Bin *bin = readyHead_; bin;) {
        Bin *next = bin->readyNext;
        pool_.recycleChain(bin->groupsHead);
        bin->clearGroups();
        bin->readyNext = nullptr;
        bin->onReadyList = false;
        bin = next;
    }
    readyHead_ = nullptr;
    readyTail_ = nullptr;
    pendingThreads_ = 0;
}

std::vector<Bin *>
LocalityScheduler::readyBins() const
{
    std::vector<Bin *> bins;
    for (Bin *bin = readyHead_; bin; bin = bin->readyNext)
        bins.push_back(bin);
    return bins;
}

std::vector<std::uint64_t>
LocalityScheduler::binOccupancy() const
{
    std::vector<std::uint64_t> counts;
    for (const Bin *bin = readyHead_; bin; bin = bin->readyNext)
        counts.push_back(bin->threadCount);
    return counts;
}

SchedulerStats
LocalityScheduler::stats() const
{
    SchedulerStats s;
    s.pendingThreads = pendingThreads_;
    s.executedThreads = executedThreads_;
    s.faultedThreads = faultedThreads_;
    s.bins = table_.binCount();
    s.maxHashChain = table_.maxChainLength();
    const std::vector<Bin *> bins = readyBins();
    for (const Bin *bin : bins) {
        if (bin->threadCount > 0) {
            ++s.occupiedBins;
            s.threadsPerBin.add(static_cast<double>(bin->threadCount));
        }
    }
    s.tourLength = tourLength(
        orderBins(config_.tour, bins, config_.dims), config_.dims);
    s.pool = workerPoolStats();
    s.stream = streamStats();
    s.recover = recoverySnapshot();
    s.adapt = placement_->adaptSnapshot();
    s.topology.active = topo_ != nullptr;
    if (topo_) {
        s.topology.source = static_cast<std::uint8_t>(topo_->source());
        s.topology.packages = topo_->packages();
        s.topology.l3Clusters = topo_->l3Clusters();
        s.topology.l2Groups = topo_->l2Groups();
        s.topology.cpus = topo_->cpus();
        s.topology.smtPerCore = topo_->smtPerCore();
        s.topology.l2Bytes = topo_->l2Bytes();
        s.topology.l3Bytes = topo_->l3Bytes();
        s.topology.derivedFan =
            topo_->l2Groups() > 1 ? topo_->groupsPerCluster() : 0;
        s.topology.summary = topo_->summary();
    }
    s.topology.domains = lastTourDomains_;
    s.topology.domainWorkers = lastTourDomainWorkers_;

    // The registry is the export path for these numbers: every
    // snapshot refreshes the scheduler gauges so a --metrics dump (or
    // the harness JSON report) carries the same values this struct
    // reports.
    if (obs::metricsOn()) {
        obs::Registry &r = obs::Registry::global();
        r.gauge("sched.pending_threads").set(s.pendingThreads);
        r.gauge("sched.executed_threads").set(s.executedThreads);
        r.gauge("sched.faulted_threads").set(s.faultedThreads);
        r.gauge("sched.bins").set(s.bins);
        r.gauge("sched.bins.occupied").set(s.occupiedBins);
        r.gauge("sched.hash.max_chain").set(s.maxHashChain);
        r.gauge("sched.tour.length").set(s.tourLength);
        r.gauge("sched.pool.threads").set(s.pool.threadsSpawned);
        r.gauge("sched.pool.tours").set(s.pool.tours);
        r.gauge("sched.stream.backlog").set(s.stream.backlog);
        r.gauge("sched.stream.peak_backlog")
            .set(s.stream.peakBacklog);
        r.gauge("sched.recover.state")
            .set(static_cast<std::uint64_t>(s.recover.state));
        r.gauge("sched.recover.deadline_millis")
            .set(config_.deadlineMillis);
        if (s.adapt.active) {
            r.gauge("sched.adapt.block_bytes").set(s.adapt.blockBytes);
            r.gauge("sched.adapt.super_bin_fan")
                .set(s.adapt.superBinFan);
            r.gauge("sched.adapt.regime")
                .set(static_cast<std::uint64_t>(s.adapt.regime));
            r.gauge("sched.adapt.retunes").set(s.adapt.retunes);
        }
        r.gauge("sched.pool.pin_failed").set(s.pool.pinFailed);
        if (s.topology.active) {
            r.gauge("sched.topology.l2_groups").set(s.topology.l2Groups);
            r.gauge("sched.topology.domains").set(s.topology.domains);
            r.gauge("sched.topology.domain_workers")
                .set(s.topology.domainWorkers);
            r.gauge("sched.topology.cross_steals")
                .set(s.pool.crossSteals);
        }
    }
    return s;
}

bool
LocalityScheduler::pollAdaptivePlacement()
{
    if (running_ && !stream_) {
        throw UsageError(
            "pollAdaptivePlacement during run(); retuning happens at "
            "tour boundaries only");
    }
    const bool changed = placement_->maybeRetune();
    placeHot_ = placement_->hotPolicy();
    return changed;
}

} // namespace lsched::threads
