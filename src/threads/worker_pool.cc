/**
 * @file
 * WorkerPool implementation: parking protocol, occupancy-weighted
 * contiguous partitioning, and the take/steal worker loop. See
 * worker_pool.hh for the design rationale.
 */

#include "threads/worker_pool.hh"

#include <string>

#include "obs/profile.hh"
#include "support/panic.hh"
#include "threads/sched_obs.hh"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace lsched::threads
{

namespace
{

/** Pin the calling thread to one CPU; false when the affinity
 *  syscall failed (or the platform has none). */
bool
pinToCpu(unsigned cpu)
{
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

} // namespace

WorkerPool::WorkerPool(bool pinWorkers, std::vector<unsigned> pinPlan)
    : pin_(pinWorkers), pinPlan_(std::move(pinPlan))
{
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &t : helpers_)
        t.join();
}

WorkerPoolStats
WorkerPool::stats() const
{
    WorkerPoolStats s;
    s.threadsSpawned = spawned_.load(std::memory_order_relaxed);
    s.tours = tours_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.parks = parks_.load(std::memory_order_relaxed);
    s.crossSteals = crossSteals_.load(std::memory_order_relaxed);
    s.pinFailed = pinFailed_.load(std::memory_order_relaxed);
    return s;
}

unsigned
WorkerPool::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<unsigned>(helpers_.size());
}

void
WorkerPool::ensureWorkers(unsigned workers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Helpers index slots_ without the lock only while running a tour,
    // and runTour (the sole caller, between tours) waits for every
    // participant before returning — but grow under mutex_ anyway so
    // the safety is structural, not inherited from the caller.
    while (slots_.size() < workers)
        slots_.push_back(std::make_unique<WorkerSlot>());
    while (helpers_.size() + 1 < workers) {
        const unsigned helperIndex =
            static_cast<unsigned>(helpers_.size());
        // A helper born between tours must not mistake the *previous*
        // epoch for a fresh one (its job pointer is dead) nor treat
        // the upcoming epoch as already seen: hand it the epoch as of
        // its spawn so it waits for the next bump exactly.
        helpers_.emplace_back(&WorkerPool::helperMain, this,
                              helperIndex, epoch_);
        spawned_.fetch_add(1, std::memory_order_relaxed);
    }
}

/**
 * Contiguous, occupancy-weighted partition: worker w's segment ends
 * where the running thread count reaches (w+1)/workers of the total.
 * Contiguity preserves tour-order locality; the occupancy weighting
 * pre-balances skewed workloads (N-body) so stealing is the fallback,
 * not the common case.
 */
void
WorkerPool::splitSegment(const detail::PoolJob &job, std::size_t first,
                         std::size_t last, const unsigned *workers,
                         unsigned count)
{
    std::uint64_t total = 0;
    for (std::size_t i = first; i < last; ++i)
        total += job.tour[i]->threadCount;

    std::size_t start = first;
    std::uint64_t seen = 0;
    for (unsigned k = 0; k < count; ++k) {
        std::size_t end;
        if (k + 1 == count) {
            end = last;
        } else {
            const std::uint64_t want = total * (k + 1) / count;
            end = start;
            while (end < last && seen < want) {
                seen += job.tour[end]->threadCount;
                ++end;
            }
            if (job.honorSuperBins) {
                // Snap the boundary forward so a super-bin — bins a
                // topology placement pinned together — never splits
                // across two workers' segments.
                while (end > start && end < last &&
                       job.tour[end]->superBin != kNoSuperBin &&
                       job.tour[end]->superBin ==
                           job.tour[end - 1]->superBin) {
                    seen += job.tour[end]->threadCount;
                    ++end;
                }
            }
        }
        slots_[workers[k]]->deque.reset(
            job.tour + start, static_cast<std::uint32_t>(end - start));
        start = end;
    }
}

void
WorkerPool::partition(const detail::PoolJob &job)
{
    const bool domainAware = job.binDomain != nullptr &&
                             job.workerDomain != nullptr &&
                             job.domains > 0;
    if (!domainAware) {
        std::vector<unsigned> everyone(job.workers);
        for (unsigned w = 0; w < job.workers; ++w)
            everyone[w] = w;
        splitSegment(job, 0, job.bins, everyone.data(), job.workers);
        return;
    }

    // Domain-aware: the caller sorted the tour so each domain's bins
    // are one contiguous run; split each run only among the workers
    // pinned into that domain. Validate the shape first (one run per
    // domain, every populated domain has a worker) and fall back to
    // the flat split when it doesn't hold — mispartitioning would
    // strand bins, and correctness beats affinity.
    std::vector<std::vector<unsigned>> byDomain(job.domains);
    for (unsigned w = 0; w < job.workers; ++w)
        byDomain[job.workerDomain[w] % job.domains].push_back(w);
    std::vector<std::size_t> runStart(job.domains, job.bins);
    std::vector<std::size_t> runEnd(job.domains, job.bins);
    bool valid = true;
    for (std::size_t i = 0; i < job.bins && valid; ++i) {
        const std::uint32_t d = job.binDomain[i] % job.domains;
        if (runStart[d] == job.bins) {
            runStart[d] = i;
            runEnd[d] = i + 1;
            valid = !byDomain[d].empty();
        } else if (runEnd[d] == i) {
            runEnd[d] = i + 1;
        } else {
            valid = false; // second run of the same domain
        }
    }
    if (!valid) {
        std::vector<unsigned> everyone(job.workers);
        for (unsigned w = 0; w < job.workers; ++w)
            everyone[w] = w;
        splitSegment(job, 0, job.bins, everyone.data(), job.workers);
        return;
    }
    for (unsigned w = 0; w < job.workers; ++w)
        slots_[w]->deque.reset(nullptr, 0);
    for (std::uint32_t d = 0; d < job.domains; ++d) {
        if (runStart[d] == job.bins)
            continue; // domain got no bins this tour
        splitSegment(job, runStart[d], runEnd[d], byDomain[d].data(),
                     static_cast<unsigned>(byDomain[d].size()));
    }
}

void
WorkerPool::runTour(detail::PoolJob &job)
{
    LSCHED_ASSERT(job.workers >= 1, "tour with zero workers");
    LSCHED_ASSERT(job.bins <= 0xffffffffu, "tour too long for a deque");

    ensureWorkers(job.workers);
    partition(job);

    if (job.workers > 1) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &job;
            tourWorkers_ = job.workers;
            streamActive_ = false;
            ++epoch_;
            active_ = job.workers - 1;
        }
        wakeCv_.notify_all();
    }

    try {
        workerLoop(0, job);
    } catch (...) {
        // Worker 0 ran the caller's thread: let its exception reach
        // the caller (ErrorPolicy::Abort), but only after the helpers
        // are done with the tour's stack-allocated state.
        if (job.workers > 1) {
            std::unique_lock<std::mutex> lock(mutex_);
            doneCv_.wait(lock, [&] { return active_ == 0; });
        }
        tours_.fetch_add(1, std::memory_order_relaxed);
        throw;
    }

    if (job.workers > 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&] { return active_ == 0; });
    }
    tours_.fetch_add(1, std::memory_order_relaxed);

    if (job.cancel && job.cancel->requested() && job.cancelledBin) {
        // Every worker has joined, so the deques are quiescent: drain
        // the unclaimed remainder and account each dropped bin.
        for (unsigned w = 0; w < job.workers; ++w) {
            while (Bin *bin = slots_[w]->deque.take())
                job.cancelledBin(bin, job.ctx);
        }
    }
}

void
WorkerPool::beginStream(detail::StreamJob &job)
{
    LSCHED_ASSERT(job.workers >= 1, "stream with zero drain workers");
    ensureWorkers(job.workers + 1); // job.workers helpers; 0 = producers
    {
        std::lock_guard<std::mutex> lock(mutex_);
        streamJob_ = &job;
        streamWorkers_ = job.workers;
        streamActive_ = true;
        ++epoch_;
        active_ = job.workers;
    }
    wakeCv_.notify_all();
}

void
WorkerPool::endStream()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&] { return active_ == 0; });
        // streamActive_ deliberately stays true (see the member
        // comment); the wait above just proved every participant is
        // past the body, and non-participants never deref streamJob_,
        // so clearing the pointer is safe even though the job itself
        // dies with the stream session.
        streamJob_ = nullptr;
    }
    tours_.fetch_add(1, std::memory_order_relaxed);
}

void
WorkerPool::helperMain(unsigned helperIndex, std::uint64_t startEpoch)
{
    const unsigned id = helperIndex + 1;
    if (pin_) {
        unsigned cpu;
        if (!pinPlan_.empty()) {
            cpu = pinPlan_[id % pinPlan_.size()];
        } else {
            const unsigned cpus =
                std::max(1u, std::thread::hardware_concurrency());
            cpu = id % cpus;
        }
        if (!pinToCpu(cpu)) {
            // Recoverable: the worker runs unpinned; cluster-aware
            // partitioning degrades to plain stealing. Count every
            // failure, diagnose once per process.
            pinFailed_.fetch_add(1, std::memory_order_relaxed);
            if (obs::metricsOn())
                detail::schedInstruments().poolPinFailed->add();
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true, std::memory_order_relaxed)) {
                LSCHED_WARN("pinning worker ", id, " to cpu ", cpu,
                            " failed; workers run unpinned "
                            "(sched.pool.pin_failed counts these)");
            }
        }
    }

    std::uint64_t seen = startEpoch;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (!shutdown_ && epoch_ == seen) {
            parks_.fetch_add(1, std::memory_order_relaxed);
            LSCHED_TRACE_EVENT(obs::EventType::WorkerPark, id, seen);
            if (obs::metricsOn())
                detail::schedInstruments().poolParks->add();
            wakeCv_.wait(lock,
                         [&] { return shutdown_ || epoch_ != seen; });
        }
        if (shutdown_)
            return;
        seen = epoch_;
        if (streamActive_) {
            // Streaming epoch. Same discipline as the tour branch
            // below: participation comes from streamWorkers_ under
            // mutex_, and only participants — whom endStream waits
            // for via active_ — may deref streamJob_.
            if (id > streamWorkers_)
                continue;
            detail::StreamJob &job = *streamJob_;
            lock.unlock();
            job.body(id, job.ctx);
            lock.lock();
            if (--active_ == 0)
                doneCv_.notify_one();
            continue;
        }
        // Participation is decided under mutex_ from tourWorkers_,
        // never by dereferencing job_: the job lives on runTour's
        // caller's stack and the active_ handshake keeps it alive only
        // for helpers the tour waits on. A helper woken past the
        // tour's width (notify_all wakes everyone) re-parks without
        // touching it — reading the dead previous job here was a
        // use-after-free whenever a tour shrank the worker count.
        if (id >= tourWorkers_)
            continue;
        detail::PoolJob &job = *job_;
        lock.unlock();

        // An exception escaping here (a user thread under
        // ErrorPolicy::Abort) unwinds out of the thread function:
        // std::terminate, the documented Abort-parallel behavior.
        workerLoop(id, job);

        lock.lock();
        if (--active_ == 0)
            doneCv_.notify_one();
    }
}

Bin *
WorkerPool::trySteal(unsigned id, const detail::PoolJob &job,
                     unsigned *victim)
{
    // Same-cache-domain victims first (topology-aware tours): a steal
    // within the thief's L2 domain keeps the bin's working set in a
    // cache the thief already shares. Only when the whole domain is
    // dry does the thief go cross-domain.
    if (job.workerDomain != nullptr && job.domains > 0) {
        const std::uint32_t mine = job.workerDomain[id];
        for (unsigned i = 1; i < job.workers; ++i) {
            const unsigned v = (id + i) % job.workers;
            if (job.workerDomain[v] != mine)
                continue;
            if (Bin *bin = slots_[v]->deque.steal()) {
                *victim = v;
                return bin;
            }
        }
    }
    // One full pass over the other workers. Segments are never
    // refilled mid-tour, so observing every deque empty means the
    // remaining bins are already being executed — this worker is done.
    for (unsigned i = 1; i < job.workers; ++i) {
        const unsigned v = (id + i) % job.workers;
        if (Bin *bin = slots_[v]->deque.steal()) {
            *victim = v;
            return bin;
        }
    }
    return nullptr;
}

void
WorkerPool::workerLoop(unsigned id, detail::PoolJob &job)
{
    if (obs::traceOn()) {
        obs::TraceSession::global().setLaneName(
            "worker " + std::to_string(id));
    }
    // Pre-open this worker's HW counter group so the first bin's
    // profiling window doesn't pay the perf_event_open cost.
    obs::profileWorkerAttach(id);

    detail::BinDeque &mine = slots_[id]->deque;
    std::uint64_t ran = 0;
    for (;;) {
        if (job.stop && job.stop->load(std::memory_order_relaxed))
            break;
        if (job.cancel && job.cancel->requested())
            break;
        unsigned victim = id;
        Bin *bin = mine.take();
        if (!bin)
            bin = trySteal(id, job, &victim);
        if (!bin)
            break;

        if (job.currentBin) {
            job.currentBin[id].store(bin->id,
                                     std::memory_order_relaxed);
        }
        if (victim != id) {
            steals_.fetch_add(1, std::memory_order_relaxed);
            LSCHED_TRACE_EVENT(obs::EventType::StealBin, bin->id,
                               victim, id);
            if (obs::metricsOn())
                detail::schedInstruments().poolSteals->add();
            if (job.workerDomain != nullptr && job.domains > 0 &&
                job.workerDomain[victim] != job.workerDomain[id]) {
                crossSteals_.fetch_add(1, std::memory_order_relaxed);
                if (obs::metricsOn())
                    detail::schedInstruments().poolCrossSteals->add();
            }
        }
        LSCHED_TRACE_EVENT(obs::EventType::WorkerClaimBin, bin->id,
                           victim, id);

        ran += job.execute(bin, id, job.ctx);

        if (job.currentBin) {
            job.currentBin[id].store(detail::kWorkerIdle,
                                     std::memory_order_relaxed);
        }
    }
    job.executed.fetch_add(ran, std::memory_order_relaxed);
    if (job.currentBin) {
        job.currentBin[id].store(detail::kWorkerDone,
                                 std::memory_order_relaxed);
    }
}

} // namespace lsched::threads
