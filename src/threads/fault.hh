/**
 * @file
 * Fault containment for user threads.
 *
 * The paper's package ran trusted batch code: an exception escaping a
 * thread body killed the process (std::terminate from a worker, or a
 * scheduler left stuck with running_ == true). A production embedder
 * must survive misbehaving user threads, so run()/runParallel()
 * execute thread bodies under a configurable ErrorPolicy, and every
 * containment path records a ThreadFault for reporting.
 */

#ifndef LSCHED_THREADS_FAULT_HH
#define LSCHED_THREADS_FAULT_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <vector>

namespace lsched::threads
{

/** What run()/runParallel() does with an exception from a thread. */
enum class ErrorPolicy : std::uint8_t
{
    /**
     * Do not contain (the package's historic behavior): the exception
     * propagates out of run() on the caller, or out of a worker
     * thread — std::terminate — under runParallel(). The run-guard
     * still restores scheduler state when the caller-side unwind is
     * catchable.
     */
    Abort,
    /**
     * Stop the tour: no further bins are claimed, in-flight bins
     * drain, and the first exception is rethrown exactly once on the
     * calling thread after all workers join. Un-run threads are
     * dropped; the scheduler is immediately reusable.
     */
    StopTour,
    /**
     * Run everything: each faulted thread is recorded and the rest of
     * the tour executes normally. run() returns the count of threads
     * that completed; lastFaults() reports the faults.
     */
    ContinueAndCollect,
};

/** Printable name of a policy. */
inline const char *
errorPolicyName(ErrorPolicy policy)
{
    switch (policy) {
      case ErrorPolicy::Abort:              return "Abort";
      case ErrorPolicy::StopTour:           return "StopTour";
      case ErrorPolicy::ContinueAndCollect: return "ContinueAndCollect";
    }
    return "?";
}

/** One contained user-thread failure. */
struct ThreadFault
{
    /** Bin the faulted thread belonged to. */
    std::uint32_t binId = 0;
    /** Worker that ran it (0 for sequential run()). */
    unsigned worker = 0;
    /** what() of the escaped exception ("unknown exception" else). */
    std::string message;
};

/** Why a tour or stream epoch was cooperatively cancelled. */
enum class CancelReason : std::uint8_t
{
    None = 0,
    /** The deadlineMillis deadline expired. */
    Deadline,
    /** The watchdog fired with watchdogAction == cancel. */
    Watchdog,
    /** The overload governor shed the work. */
    Overload,
};

/** Printable name of a cancel reason. */
inline const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None:     return "none";
      case CancelReason::Deadline: return "deadline";
      case CancelReason::Watchdog: return "watchdog";
      case CancelReason::Overload: return "overload";
    }
    return "?";
}

/**
 * Cooperative cancellation token shared by one tour (or stream) and
 * its monitors. Workers observe it at bin and thread boundaries and
 * stop claiming work once it is raised; the first request wins, so the
 * recorded reason names what actually pulled the trigger.
 */
struct CancelToken
{
    std::atomic<std::uint8_t> reason{0};

    /** Has a cancellation been requested? */
    bool
    requested() const
    {
        return reason.load(std::memory_order_relaxed) != 0;
    }

    /** The winning reason (None while not cancelled). */
    CancelReason
    why() const
    {
        return static_cast<CancelReason>(
            reason.load(std::memory_order_relaxed));
    }

    /** Raise the token; only the first caller's reason sticks. */
    void
    request(CancelReason r)
    {
        std::uint8_t expected = 0;
        reason.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(r),
            std::memory_order_relaxed);
    }
};

namespace detail
{

struct RunGuard;      // RAII unwind protection, defined in scheduler.cc
struct RecoveryStats; // per-scheduler recovery counters (recovery.hh)

/** Shared fault-collection state for one run()/runParallel() call. */
struct FaultCtx
{
    ErrorPolicy policy = ErrorPolicy::Abort;
    /** Set under StopTour once a fault is seen; workers stop claiming. */
    std::atomic<bool> stop{false};
    std::mutex mutex;
    /** First escaped exception (StopTour rethrows it on the caller). */
    std::exception_ptr first;
    /** Recorded faults (capped at kMaxRecordedFaults). */
    std::vector<ThreadFault> *faults = nullptr;
    /** Total faults, including those past the cap. */
    std::uint64_t totalFaults = 0;
    /** Cancellation token of the tour's monitors; null = no deadline
     *  armed, and every cancel check folds to one pointer test. */
    const CancelToken *cancel = nullptr;
    /** Owning scheduler's recovery counters; may be null (tests). */
    RecoveryStats *recovery = nullptr;
    /** Bins dropped (whole or mid-bin) by a cancellation. */
    std::atomic<std::uint64_t> cancelledBins{0};
    /** User threads dropped un-run by a cancellation. */
    std::atomic<std::uint64_t> cancelledThreads{0};

    /** Faults retained with full detail per run. */
    static constexpr std::size_t kMaxRecordedFaults = 64;

    FaultCtx(ErrorPolicy p, std::vector<ThreadFault> *sink)
        : policy(p), faults(sink)
    {
    }

    /** Has a monitor cancelled this tour? */
    bool
    cancelRequested() const
    {
        return cancel && cancel->requested();
    }

    /** Should this worker stop claiming bins? */
    bool
    stopRequested() const
    {
        return cancelRequested() ||
               (policy == ErrorPolicy::StopTour &&
                stop.load(std::memory_order_relaxed));
    }
};

/**
 * Record the in-flight exception (call from a catch block only) as a
 * fault of @p binId on @p worker; under StopTour also captures the
 * first exception and raises the stop flag. Defined in scheduler.cc.
 */
void noteFault(FaultCtx &ctx, std::uint32_t binId, unsigned worker);

/**
 * Account @p threads of @p binId dropped un-run by a cancellation:
 * bumps the context's cancelled counters (and the scheduler's recovery
 * stats through ctx.recovery), emits a BinCancelled trace event, and —
 * under ContinueAndCollect, where the run returns normally — records
 * one ThreadFault naming the cancel reason so lastFaults() reports
 * what was dropped. Defined in scheduler.cc next to noteFault.
 */
void noteCancelledBin(FaultCtx &ctx, std::uint32_t binId,
                      unsigned worker, std::uint64_t threads);

/**
 * True on a thread currently executing bins for runParallel().
 * fork() uses it to reject the silent ready-list data race that
 * forking from inside a parallel tour would be. Defined in
 * execution.cc.
 */
bool inParallelWorker();

/**
 * Scoped thread-local marker for parallel worker bodies — the span
 * where inParallelWorker() answers true. Shared by the pool callback
 * behind every parallel backend and the streaming drain loop; ctor and
 * dtor are defined in execution.cc next to the thread-local flag.
 */
struct ParallelWorkerScope
{
    ParallelWorkerScope();
    ~ParallelWorkerScope();
    ParallelWorkerScope(const ParallelWorkerScope &) = delete;
    ParallelWorkerScope &operator=(const ParallelWorkerScope &) = delete;
};

} // namespace detail

} // namespace lsched::threads

#endif // LSCHED_THREADS_FAULT_HH
