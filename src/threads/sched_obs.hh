/**
 * @file
 * Internal observability glue for the locality scheduler: the cached
 * registry instruments shared by scheduler.cc and
 * parallel_scheduler.cc, and the instrumented bin-execution loop both
 * run paths use.
 *
 * Everything here is gated on obs::traceOn() / obs::metricsOn(); with
 * the LSCHED_TRACE_ENABLED build option off those fold to constant
 * false and the instrumented branches compile away, leaving the
 * original tight loops.
 */

#ifndef LSCHED_THREADS_SCHED_OBS_HH
#define LSCHED_THREADS_SCHED_OBS_HH

#include <vector>

#include "obs/registry.hh"
#include "obs/trace.hh"
#include "support/failpoint.hh"
#include "threads/bin.hh"
#include "threads/fault.hh"

namespace lsched::threads::detail
{

/** The scheduler's process-global instruments, resolved once. */
struct SchedInstruments
{
    obs::Counter *forked;
    obs::Counter *executed;
    obs::Counter *runs;
    obs::Counter *binsCreated;
    obs::Counter *faulted;
    obs::Counter *poolSteals;
    obs::Counter *poolParks;
    obs::Histogram *hashProbes;
    obs::Histogram *threadsPerBin;
    obs::Histogram *binDwellNs;
    obs::Histogram *tourHop;
};

/** Lazily resolved singleton (defined in scheduler.cc). */
const SchedInstruments &schedInstruments();

/**
 * Execute all threads in @p bin, in fork order. Re-reads group counts
 * and next links each step so threads forked into this very bin during
 * execution (nested fork) are picked up. Emits BinStart/ThreadStart/
 * ThreadEnd/BinEnd events when tracing and the per-bin dwell-time and
 * threads-per-bin histograms when metrics are on.
 */
inline std::uint64_t
executeBin(Bin *bin)
{
    // Under ErrorPolicy::Abort this injected failure propagates like
    // any user-thread exception would (the guarded variant below
    // contains it instead).
    LSCHED_FAILPOINT("sched.bin.execute");
    const bool traced = obs::traceOn();
    const bool metered = obs::metricsOn();
    const std::uint64_t t0 = (traced || metered) ? obs::nowNs() : 0;

    std::uint64_t executed = 0;
    if (traced) {
        obs::TraceSession &session = obs::TraceSession::global();
        session.record(obs::EventType::BinStart, bin->id,
                       bin->threadCount);
        for (ThreadGroup *g = bin->groupsHead; g; g = g->next) {
            for (std::uint32_t i = 0; i < g->count; ++i) {
                const ThreadSpec &t = g->specs[i];
                session.record(obs::EventType::ThreadStart, bin->id);
                t.fn(t.arg1, t.arg2);
                session.record(obs::EventType::ThreadEnd, bin->id);
                ++executed;
            }
        }
        session.record(obs::EventType::BinEnd, bin->id, executed);
    } else {
        for (ThreadGroup *g = bin->groupsHead; g; g = g->next) {
            for (std::uint32_t i = 0; i < g->count; ++i) {
                const ThreadSpec &t = g->specs[i];
                t.fn(t.arg1, t.arg2);
                ++executed;
            }
        }
    }

    if (metered) {
        const SchedInstruments &ins = schedInstruments();
        ins.executed->add(executed);
        ins.threadsPerBin->record(executed);
        ins.binDwellNs->record(obs::nowNs() - t0);
    }
    return executed;
}

/**
 * executeBin with per-thread exception containment — the run loops
 * select this variant when the policy is StopTour or
 * ContinueAndCollect, so the Abort fast path above stays untouched.
 * Returns the number of threads that completed; faulted threads are
 * recorded through noteFault(). Under StopTour the remainder of the
 * bin is skipped after the first fault.
 */
inline std::uint64_t
executeBinGuarded(Bin *bin, FaultCtx &ctx, unsigned worker)
{
    const bool traced = obs::traceOn();
    const bool metered = obs::metricsOn();
    const std::uint64_t t0 = (traced || metered) ? obs::nowNs() : 0;

    std::uint64_t executed = 0;
    if (traced) {
        obs::TraceSession::global().record(obs::EventType::BinStart,
                                           bin->id, bin->threadCount);
    }
    bool stopped = false;
    try {
        // Injection site standing in for a failure at the top of bin
        // execution (a bad bin, a poisoned group chain, ...).
        LSCHED_FAILPOINT("sched.bin.execute");
    } catch (...) {
        noteFault(ctx, bin->id, worker);
        stopped = ctx.policy == ErrorPolicy::StopTour;
    }
    for (ThreadGroup *g = bin->groupsHead; g && !stopped; g = g->next) {
        for (std::uint32_t i = 0; i < g->count; ++i) {
            try {
                if (traced) {
                    obs::TraceSession::global().record(
                        obs::EventType::ThreadStart, bin->id);
                }
                const ThreadSpec &t = g->specs[i];
                t.fn(t.arg1, t.arg2);
                if (traced) {
                    obs::TraceSession::global().record(
                        obs::EventType::ThreadEnd, bin->id);
                }
                ++executed;
            } catch (...) {
                noteFault(ctx, bin->id, worker);
                if (ctx.policy == ErrorPolicy::StopTour) {
                    stopped = true;
                    break;
                }
            }
        }
    }
    if (traced) {
        obs::TraceSession::global().record(obs::EventType::BinEnd,
                                           bin->id, executed);
    }

    if (metered) {
        const SchedInstruments &ins = schedInstruments();
        ins.executed->add(executed);
        ins.threadsPerBin->record(executed);
        ins.binDwellNs->record(obs::nowNs() - t0);
    }
    return executed;
}

/** Manhattan distance between two bins' block coordinates. */
inline std::uint64_t
hopDistance(const Bin *from, const Bin *to, unsigned dims)
{
    std::uint64_t hop = 0;
    for (unsigned d = 0; d < dims; ++d) {
        const std::uint64_t a = from->coords[d];
        const std::uint64_t b = to->coords[d];
        hop += a > b ? a - b : b - a;
    }
    return hop;
}

/** Histogram every hop of an ordered tour (metrics path). */
inline void
recordTourHops(const std::vector<Bin *> &tour, unsigned dims)
{
    obs::Histogram *h = schedInstruments().tourHop;
    for (std::size_t i = 1; i < tour.size(); ++i)
        h->record(hopDistance(tour[i - 1], tour[i], dims));
}

} // namespace lsched::threads::detail

#endif // LSCHED_THREADS_SCHED_OBS_HH
