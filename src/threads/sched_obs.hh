/**
 * @file
 * Internal observability glue for the locality scheduler: the cached
 * registry instruments shared by scheduler.cc, the execution backends,
 * and the worker pool, plus the tour-hop helpers. The instrumented
 * bin-execution loop itself lives in bin_exec.hh.
 *
 * Everything here is gated on obs::traceOn() / obs::metricsOn(); with
 * the LSCHED_TRACE_ENABLED build option off those fold to constant
 * false and the instrumented branches compile away, leaving the
 * original tight loops.
 */

#ifndef LSCHED_THREADS_SCHED_OBS_HH
#define LSCHED_THREADS_SCHED_OBS_HH

#include <vector>

#include "obs/registry.hh"
#include "obs/trace.hh"
#include "threads/bin.hh"
#include "threads/fault.hh"

namespace lsched::threads::detail
{

/** The scheduler's process-global instruments, resolved once. */
struct SchedInstruments
{
    obs::Counter *forked;
    obs::Counter *executed;
    obs::Counter *runs;
    obs::Counter *binsCreated;
    obs::Counter *faulted;
    obs::Counter *poolSteals;
    obs::Counter *poolParks;
    obs::Counter *poolCrossSteals;
    obs::Counter *poolPinFailed;
    obs::Counter *streamForked;
    obs::Counter *streamSeals;
    obs::Counter *streamBackpressure;
    obs::Counter *streamInline;
    obs::Counter *recoverDeadlines;
    obs::Counter *recoverWatchdogCancels;
    obs::Counter *recoverCancelledBins;
    obs::Counter *recoverCancelledThreads;
    obs::Counter *recoverAdmissionRetries;
    obs::Counter *recoverAdmissionTimeouts;
    obs::Counter *recoverLoadSheds;
    obs::Counter *recoverDegradedTours;
    obs::Counter *recoverRecoveries;
    obs::Histogram *hashProbes;
    obs::Histogram *threadsPerBin;
    obs::Histogram *binDwellNs;
    obs::Histogram *tourHop;
};

/** Lazily resolved singleton (defined in scheduler.cc). */
const SchedInstruments &schedInstruments();

/** Manhattan distance between two bins' block coordinates. */
inline std::uint64_t
hopDistance(const Bin *from, const Bin *to, unsigned dims)
{
    std::uint64_t hop = 0;
    for (unsigned d = 0; d < dims; ++d) {
        const std::uint64_t a = from->coords[d];
        const std::uint64_t b = to->coords[d];
        hop += a > b ? a - b : b - a;
    }
    return hop;
}

/** Histogram every hop of an ordered tour (metrics path). */
inline void
recordTourHops(const std::vector<Bin *> &tour, unsigned dims)
{
    obs::Histogram *h = schedInstruments().tourHop;
    for (std::size_t i = 1; i < tour.size(); ++i)
        h->record(hopDistance(tour[i - 1], tour[i], dims));
}

} // namespace lsched::threads::detail

#endif // LSCHED_THREADS_SCHED_OBS_HH
