/**
 * @file
 * Thread groups: chunked storage for thread specifications.
 *
 * Grouping threads in fixed-capacity arrays amortizes management cost
 * (paper Section 3.2): forking is usually a pointer bump into the
 * current group. Group objects come from slab-backed storage — one
 * allocation covers kSlabGroups descriptors and their spec arrays —
 * and recycle through an intrusive free list between runs, so steady
 * state forking performs no allocation and a cold burst performs two
 * per slab rather than two per group.
 */

#ifndef LSCHED_THREADS_THREAD_GROUP_HH
#define LSCHED_THREADS_THREAD_GROUP_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/failpoint.hh"
#include "support/panic.hh"
#include "threads/thread.hh"

namespace lsched::threads
{

/** A chunk of thread specifications chained within one bin. */
struct ThreadGroup
{
    /**
     * Streaming claim word, low half: bit set once a sealer has closed
     * the group. Producers that meet it in the claim word divert to a
     * fresh group (concurrent_bin_table.hh).
     */
    static constexpr std::uint64_t kClosed = 0x80000000u;

    /** Chunk storage; points into the owning pool's slab. */
    ThreadSpec *specs = nullptr;
    /** Capacity of specs. */
    std::uint32_t capacity = 0;
    /** Number of live specs. */
    std::uint32_t count = 0;
    /** Next group in the same bin (fork order). */
    ThreadGroup *next = nullptr;

    /**
     * Streaming (lock-free intake) protocol, unused by the batch path.
     * The claim word packs [life generation:32][kClosed | slots:31]:
     * ConcurrentGroupPool::allocate() starts each life by bumping the
     * generation half and zeroing the rest, and producers reserve a
     * slot with a CAS whose expected value carries the generation
     * their bin's tail word named — a producer that slept across this
     * group's seal/drain/recycle always fails the CAS (new life, new
     * generation) instead of writing into somebody else's group. The
     * winner writes its spec and publishes it by bumping ready; the
     * sealer ORs kClosed into claim, then waits until ready covers
     * every reserved slot before the chain is handed to a drain
     * worker. prev links a bin's current-epoch chain newest-first
     * (the only direction a lock-free append can build); sealing
     * reverses it into the fork-order next chain the GroupCursor
     * walks.
     */
    std::atomic<std::uint64_t> claim{0};
    std::atomic<std::uint32_t> ready{0};
    ThreadGroup *prev = nullptr;
    /** Index in the owning ConcurrentGroupPool's slab directory (the
     *  ABA-safe free list links groups by index, not pointer). */
    std::uint32_t poolIndex = 0;
    /** Free-list successor index (+1; 0 = end). Atomic only because a
     *  racing pop may read it while a re-push writes it; the stack
     *  head's tag makes such stale reads harmless. */
    std::atomic<std::uint32_t> freeNext{0};

    /** True when no further spec fits. */
    bool full() const { return count == capacity; }

    /** Append a spec; the group must not be full. */
    void
    push(ThreadFn fn, void *arg1, void *arg2)
    {
        specs[count++] = {fn, arg1, arg2};
    }
};

/**
 * Allocator/recycler for ThreadGroups. Fresh groups are carved from
 * slabs (stable addresses, two allocations per kSlabGroups groups);
 * recycled groups come off an intrusive free list in constant time.
 */
class GroupPool
{
  public:
    /** Groups carved per slab allocation. */
    static constexpr std::uint32_t kSlabGroups = 16;

    /** @param capacity threads per group (> 0). */
    explicit GroupPool(std::uint32_t capacity)
        : capacity_(capacity)
    {
        LSCHED_ASSERT(capacity_ > 0, "group capacity must be positive");
    }

    /** Obtain an empty group (recycled when possible). */
    ThreadGroup *
    allocate()
    {
        ThreadGroup *g;
        if (free_) {
            g = free_;
            free_ = g->next;
        } else {
            g = carve();
        }
        g->count = 0;
        g->next = nullptr;
        return g;
    }

    /** Return a whole bin chain of groups to the free list. */
    void
    recycleChain(ThreadGroup *head)
    {
        while (head) {
            ThreadGroup *next = head->next;
            head->count = 0;
            head->next = free_;
            free_ = head;
            head = next;
        }
    }

    /** Threads per group. */
    std::uint32_t capacity() const { return capacity_; }

    /** Groups ever handed out (capacity planning statistic). */
    std::size_t allocatedGroups() const { return handedOut_; }

    /** Slab allocations performed (each covers kSlabGroups groups). */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    /** One slab: group descriptors plus their shared spec storage. */
    struct Slab
    {
        std::unique_ptr<ThreadGroup[]> groups;
        std::unique_ptr<ThreadSpec[]> specs;
    };

    /** Hand out the next never-used group, growing by a slab. */
    ThreadGroup *
    carve()
    {
        if (slabUsed_ == kSlabGroups) {
            // Fail point standing in for a real out-of-memory from the
            // slab allocations below.
            if (LSCHED_FAILPOINT_HIT("grouppool.allocate"))
                throw std::bad_alloc();
            Slab slab;
            slab.groups = std::make_unique<ThreadGroup[]>(kSlabGroups);
            slab.specs = std::make_unique<ThreadSpec[]>(
                static_cast<std::size_t>(kSlabGroups) * capacity_);
            slabs_.push_back(std::move(slab));
            slabUsed_ = 0;
        }
        Slab &slab = slabs_.back();
        ThreadGroup *g = &slab.groups[slabUsed_];
        g->specs = slab.specs.get() +
                   static_cast<std::size_t>(slabUsed_) * capacity_;
        g->capacity = capacity_;
        ++slabUsed_;
        ++handedOut_;
        return g;
    }

    std::uint32_t capacity_;
    /** Groups carved from the current (last) slab; == kSlabGroups
     *  forces a new slab on the next carve. */
    std::uint32_t slabUsed_ = kSlabGroups;
    std::vector<Slab> slabs_;
    ThreadGroup *free_ = nullptr;
    std::size_t handedOut_ = 0;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_THREAD_GROUP_HH
