/**
 * @file
 * Thread groups: chunked storage for thread specifications.
 *
 * Grouping threads in fixed-capacity arrays amortizes management cost
 * (paper Section 3.2): forking is usually a pointer bump into the
 * current group, and group objects are recycled between runs so steady
 * state forking performs no allocation.
 */

#ifndef LSCHED_THREADS_THREAD_GROUP_HH
#define LSCHED_THREADS_THREAD_GROUP_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <new>

#include "support/failpoint.hh"
#include "support/panic.hh"
#include "threads/thread.hh"

namespace lsched::threads
{

/** A chunk of thread specifications chained within one bin. */
struct ThreadGroup
{
    /** Chunk storage; allocated once, recycled across runs. */
    std::unique_ptr<ThreadSpec[]> specs;
    /** Capacity of specs. */
    std::uint32_t capacity = 0;
    /** Number of live specs. */
    std::uint32_t count = 0;
    /** Next group in the same bin (fork order). */
    ThreadGroup *next = nullptr;

    /** True when no further spec fits. */
    bool full() const { return count == capacity; }

    /** Append a spec; the group must not be full. */
    void
    push(ThreadFn fn, void *arg1, void *arg2)
    {
        specs[count++] = {fn, arg1, arg2};
    }
};

/**
 * Allocator/recycler for ThreadGroups. Uses a deque so group addresses
 * stay stable, plus an intrusive free list for constant-time reuse.
 */
class GroupPool
{
  public:
    /** @param capacity threads per group (> 0). */
    explicit GroupPool(std::uint32_t capacity)
        : capacity_(capacity)
    {
        LSCHED_ASSERT(capacity_ > 0, "group capacity must be positive");
    }

    /** Obtain an empty group (recycled when possible). */
    ThreadGroup *
    allocate()
    {
        ThreadGroup *g;
        if (free_) {
            g = free_;
            free_ = g->next;
        } else {
            // Fail point standing in for a real out-of-memory from the
            // group allocation below.
            if (LSCHED_FAILPOINT_HIT("grouppool.allocate"))
                throw std::bad_alloc();
            pool_.emplace_back();
            g = &pool_.back();
            g->specs = std::make_unique<ThreadSpec[]>(capacity_);
            g->capacity = capacity_;
        }
        g->count = 0;
        g->next = nullptr;
        return g;
    }

    /** Return a whole bin chain of groups to the free list. */
    void
    recycleChain(ThreadGroup *head)
    {
        while (head) {
            ThreadGroup *next = head->next;
            head->count = 0;
            head->next = free_;
            free_ = head;
            head = next;
        }
    }

    /** Threads per group. */
    std::uint32_t capacity() const { return capacity_; }

    /** Total groups ever allocated (capacity planning statistic). */
    std::size_t allocatedGroups() const { return pool_.size(); }

  private:
    std::uint32_t capacity_;
    std::deque<ThreadGroup> pool_;
    ThreadGroup *free_ = nullptr;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_THREAD_GROUP_HH
