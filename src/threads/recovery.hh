/**
 * @file
 * The recovery layer: deadlines, watchdog escalation, and graceful
 * degradation for long-running tours and streams.
 *
 * PRs 2-6 gave the scheduler fault *containment* (ErrorPolicy) but no
 * defense against work that is merely *stuck*: a wedged worker held a
 * tour forever and a saturated stream held its producers forever. This
 * layer adds the production failure story (DESIGN.md §13):
 *
 *  - TourMonitor — one monitor thread per tour that arms the
 *    deadlineMillis deadline (expiry requests cooperative cancellation
 *    through the tour's CancelToken) and the watchdogMillis watchdog
 *    (periodic stall report; with watchdogAction == cancel it
 *    escalates to the same token). Workers observe the token at bin
 *    and thread boundaries, so cancellation is cooperative and the
 *    scheduler is immediately reusable afterwards.
 *
 *  - OverloadGovernor — the degradation state machine
 *    Healthy → Backoff → Degraded → Recovered. Fed one observation per
 *    tour or stream epoch; after overloadEpochs consecutive overloaded
 *    epochs it degrades (streams shed load by force-sealing, parallel
 *    tours step down to the serial backend) and after recoverEpochs
 *    consecutive healthy epochs it recovers.
 *
 *  - RecoveryStats — per-scheduler counters mirrored into the
 *    sched.recover.* registry instruments, so degradation and
 *    recovery are observable in metrics dumps and th_stats.
 */

#ifndef LSCHED_THREADS_RECOVERY_HH
#define LSCHED_THREADS_RECOVERY_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "threads/fault.hh"

namespace lsched::threads
{

/** What the runParallel watchdog does when its deadline passes. */
enum class WatchdogAction : std::uint8_t
{
    /** Warn and emit a WatchdogStall event (the historic behavior). */
    Event,
    /** Escalate: request cancellation through the tour's token, as a
     *  deadline expiry would. */
    Cancel,
};

/** Printable token of a watchdog action ("event" / "cancel"). */
const char *watchdogActionName(WatchdogAction action);

/** Parse a watchdog action; false (and *out untouched) when unknown. */
bool tryWatchdogActionFromName(const std::string &name,
                               WatchdogAction *out);

/** Overload-governor states (DESIGN.md §13 state machine). */
enum class RecoveryState : std::uint8_t
{
    /** No overload observed. */
    Healthy,
    /** Overloaded epochs accumulating toward the degrade threshold. */
    Backoff,
    /** Degraded: load is shed and parallel tours step down. */
    Degraded,
    /** Just recovered; behaves as Healthy on the next observation. */
    Recovered,
};

/** Printable name of a recovery state. */
const char *recoveryStateName(RecoveryState state);

/** Plain-value snapshot of RecoveryStats (SchedulerStats::recover). */
struct RecoverySnapshot
{
    /** Tour/epoch deadlines that expired. */
    std::uint64_t deadlines = 0;
    /** Watchdog firings that escalated to a cancellation. */
    std::uint64_t watchdogCancels = 0;
    /** Bins (whole or mid-bin tails) dropped by cancellations. */
    std::uint64_t cancelledBins = 0;
    /** User threads dropped un-run by cancellations. */
    std::uint64_t cancelledThreads = 0;
    /** Backoff rounds producers waited at the admission bound. */
    std::uint64_t admissionRetries = 0;
    /** Producers that exhausted streamAdmitRetries (AdmissionTimeout). */
    std::uint64_t admissionTimeouts = 0;
    /** Times the governor shed streaming load by force-sealing. */
    std::uint64_t loadSheds = 0;
    /** Parallel tours stepped down to the serial backend. */
    std::uint64_t degradedTours = 0;
    /** Degraded → Recovered transitions. */
    std::uint64_t recoveries = 0;
    /** Governor state at snapshot time. */
    RecoveryState state = RecoveryState::Healthy;
};

namespace detail
{

/**
 * Per-scheduler recovery counters. Atomics because monitors, workers,
 * and producers all write concurrently; snapshot() is the read side.
 * Forward-declared in fault.hh so FaultCtx can carry a pointer.
 */
struct RecoveryStats
{
    std::atomic<std::uint64_t> deadlines{0};
    std::atomic<std::uint64_t> watchdogCancels{0};
    std::atomic<std::uint64_t> cancelledBins{0};
    std::atomic<std::uint64_t> cancelledThreads{0};
    std::atomic<std::uint64_t> admissionRetries{0};
    std::atomic<std::uint64_t> admissionTimeouts{0};
    std::atomic<std::uint64_t> loadSheds{0};
    std::atomic<std::uint64_t> degradedTours{0};
    std::atomic<std::uint64_t> recoveries{0};

    /** Plain-value copy (state is filled in by the governor owner). */
    RecoverySnapshot
    snapshot() const
    {
        RecoverySnapshot s;
        s.deadlines = deadlines.load(std::memory_order_relaxed);
        s.watchdogCancels =
            watchdogCancels.load(std::memory_order_relaxed);
        s.cancelledBins =
            cancelledBins.load(std::memory_order_relaxed);
        s.cancelledThreads =
            cancelledThreads.load(std::memory_order_relaxed);
        s.admissionRetries =
            admissionRetries.load(std::memory_order_relaxed);
        s.admissionTimeouts =
            admissionTimeouts.load(std::memory_order_relaxed);
        s.loadSheds = loadSheds.load(std::memory_order_relaxed);
        s.degradedTours =
            degradedTours.load(std::memory_order_relaxed);
        s.recoveries = recoveries.load(std::memory_order_relaxed);
        return s;
    }
};

/** Everything one tour hands its monitor. */
struct TourMonitorSpec
{
    /** Tour deadline in ms; 0 = no deadline. */
    std::uint32_t deadlineMillis = 0;
    /** Watchdog period in ms; 0 = no watchdog. */
    std::uint32_t watchdogMillis = 0;
    WatchdogAction watchdogAction = WatchdogAction::Event;
    /** Token cancellation is requested through (required when either
     *  the deadline or a cancelling watchdog is armed). */
    CancelToken *cancel = nullptr;
    /** Recovery counters to bump; may be null. */
    RecoveryStats *recovery = nullptr;
    /** Watchdog slots for the stall report; may be null. */
    const std::atomic<std::int64_t> *currentBin = nullptr;
    unsigned workers = 1;
};

/**
 * RAII tour monitor: one thread armed when the spec asks for a
 * deadline or a watchdog, always stopped and joined on scope exit —
 * including the unwind when a worker-0 exception propagates out of
 * the tour. Replaces the observation-only WatchdogGuard.
 */
class TourMonitor
{
  public:
    explicit TourMonitor(const TourMonitorSpec &spec);
    ~TourMonitor();

    TourMonitor(const TourMonitor &) = delete;
    TourMonitor &operator=(const TourMonitor &) = delete;

  private:
    void body();

    TourMonitorSpec spec_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    std::thread monitor_;
};

} // namespace detail

/**
 * The degradation state machine. Thread-safe: tours observe from the
 * caller, streams from their monitor thread. Disabled (permanently
 * Healthy) until configure() sets a non-zero overload threshold.
 */
class OverloadGovernor
{
  public:
    /**
     * @param overloadEpochs consecutive overloaded epochs before
     *        degrading; 0 disables the governor entirely.
     * @param recoverEpochs consecutive healthy epochs before a
     *        degraded scheduler recovers (clamped to >= 1).
     * @param stats recovery counters to bump; may be null.
     */
    void configure(unsigned overloadEpochs, unsigned recoverEpochs,
                   detail::RecoveryStats *stats);

    /** Is the governor armed at all? */
    bool enabled() const;

    /**
     * Feed one tour/epoch outcome; returns the state after the
     * transition (RecoveryStep trace events make them observable).
     */
    RecoveryState observe(bool overloaded);

    /** Current state. */
    RecoveryState state() const;

    /** Convenience: state() == Degraded. */
    bool degraded() const;

  private:
    mutable std::mutex mutex_;
    unsigned overloadEpochs_ = 0;
    unsigned recoverEpochs_ = 1;
    detail::RecoveryStats *stats_ = nullptr;
    RecoveryState state_ = RecoveryState::Healthy;
    /** Consecutive epochs toward the pending transition. */
    unsigned streak_ = 0;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_RECOVERY_HH
