/**
 * @file
 * Streaming admission: fork-while-run (the tentpole past the paper's
 * batch model).
 *
 * The paper's package is strictly fork-everything-then-th_run; its §7
 * leaves concurrency as future work. A StreamSession removes the
 * barrier: any OS thread may fork while the pool drains, so admission
 * overlaps execution and the machine never idles waiting for bins to
 * be built.
 *
 * Structure (lock-free admission path — see DESIGN.md §16):
 *
 *  - Intake is *sharded*: forks hash their block coordinates once
 *    (hashCoords) — the top bits pick a shard, the rest the slot in
 *    that shard's ConcurrentBinTable. Shards no longer carry a mutex:
 *    lookup/insert is a CAS into the shard's open-addressing table,
 *    and sharding survives purely to split the id spaces and spread
 *    growth freezes. Group storage comes from ONE shared
 *    ConcurrentGroupPool whose fast path is a per-producer
 *    thread-local cache over a lock-free global refill.
 *
 *  - Bins gain *seal/epoch* semantics: a bin anchors its current
 *    epoch's thread groups in a single atomic tail pointer; producers
 *    append with a claim/ready reservation protocol and sealing is
 *    one exchange that hands the chain to exactly one caller
 *    (concurrent_bin_table.hh). A bin seals when it reaches
 *    streamSealThreshold threads, when a producer under backpressure
 *    force-seals it, or at finish(). Drain workers execute *sealed*
 *    chains only — the seal is the hand-off point, after which the
 *    chain is exclusively the drainer's.
 *
 *  - Backpressure bounds memory through a *ticket gate*: every
 *    admission takes a ticket (one fetch_add); with streamMaxPending
 *    set, a producer passes only once the drain has retired enough
 *    threads that its ticket fits under the bound, which keeps the
 *    backlog exactly bounded and FIFO-fair without any mutex. A
 *    producer held at the gate first tries to drain one sealed bin
 *    inline (becoming worker 0 for that bin), then to force-seal an
 *    open bin for the pool, and only then backs off with a timed,
 *    jittered exponential sleep — the slow path that preserves the
 *    stream_admit_retries / AdmissionTimeout semantics. Nested forks
 *    from a thread *being drained inline* bypass the bound — blocking
 *    there would deadlock the very producer doing the draining — so
 *    for workloads that fork from user threads the bound is a soft
 *    target, exact otherwise.
 *
 * Draining is the fourth execution mode next to Serial/Pooled/
 * ColdSpawn tours: there is no tour to partition — work arrives
 * incrementally — so the pool's helpers loop on the sealed queue
 * (WorkerPool::beginStream) and every chain still runs through THE
 * one executeBin() routine (bin_exec.hh), keeping ErrorPolicy
 * containment, tracing, and dwell metrics identical to batch runs.
 */

#ifndef LSCHED_THREADS_STREAM_HH
#define LSCHED_THREADS_STREAM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "threads/concurrent_bin_table.hh"
#include "threads/concurrent_group_pool.hh"
#include "threads/fault.hh"
#include "threads/hints.hh"
#include "threads/placement.hh"
#include "threads/recovery.hh"
#include "threads/thread_group.hh"
#include "threads/worker_pool.hh"

namespace lsched::threads
{

struct SchedulerConfig;

/** Counters of one streaming session (also lifetime-accumulated). */
struct StreamStats
{
    /** Threads admitted through the stream. */
    std::uint64_t forked = 0;
    /** Threads executed by the drain (inline or pool). */
    std::uint64_t executed = 0;
    /** Sealed-chain work items produced. */
    std::uint64_t seals = 0;
    /** Times a producer backed off at the maxPending bound. */
    std::uint64_t backpressureWaits = 0;
    /** Sealed bins a producer drained inline under backpressure. */
    std::uint64_t inlineDrains = 0;
    /** Threads admitted but not yet executed (live snapshot). */
    std::uint64_t backlog = 0;
    /** Highest backlog observed. */
    std::uint64_t peakBacklog = 0;

    StreamStats &
    operator+=(const StreamStats &o)
    {
        forked += o.forked;
        executed += o.executed;
        seals += o.seals;
        backpressureWaits += o.backpressureWaits;
        inlineDrains += o.inlineDrains;
        backlog = o.backlog;
        peakBacklog = std::max(peakBacklog, o.peakBacklog);
        return *this;
    }
};

/** Per-bin outcome of a finished stream (tests, reports). */
struct StreamBinReport
{
    /** The bin's block coordinates. */
    BlockCoords coords{};
    /** Seal epochs the bin went through. */
    std::uint32_t epochs = 0;
    /** Threads admitted to the bin across all epochs. */
    std::uint64_t threads = 0;
};

namespace detail
{

/** One sealed chain: a bin epoch's threads, ready to drain. */
struct SealedBin
{
    std::uint32_t binId = 0;
    std::uint32_t epoch = 0;
    /** The bin's super-bin group (profiling attribution). */
    std::uint32_t superBin = 0xffffffffu;
    std::uint64_t threads = 0;
    ThreadGroup *groups = nullptr;
};

/**
 * MPMC FIFO of sealed chains between producers and drain workers.
 * Draining in seal order is the streaming analogue of the ready
 * list's creation-order tour.
 *
 * The ring is Vyukov's bounded MPMC queue: per-cell sequence numbers
 * carry the acquire/release hand-off, so push and pop are lock-free.
 * The mutex exists only to park idle drain helpers: a push touches it
 * solely when the sleepers count says somebody is (about to be)
 * parked, so the admission path stays mutex-free while the queue has
 * active consumers. The missed-wakeup race (sleeper registering while
 * a pusher checks) is closed Dekker-style with seq_cst fences on both
 * sides of the counter.
 */
class SealedQueue
{
  public:
    /** Ring capacity (power of two). On full, callers drain inline. */
    static constexpr std::size_t kCells = 4096;

    SealedQueue()
    {
        for (std::size_t i = 0; i < kCells; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    /** Lock-free push; false when the ring is full. */
    bool
    tryPush(const SealedBin &item)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & (kCells - 1)];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::intptr_t dif =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // full
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        Cell &cell = cells_[pos & (kCells - 1)];
        cell.item = item;
        cell.seq.store(pos + 1, std::memory_order_release);
        wakeOne();
        return true;
    }

    /** Lock-free non-blocking pop (inline drains, finish tail). */
    bool
    tryPop(SealedBin &out)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & (kCells - 1)];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::intptr_t dif =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty (or the pusher mid-publish)
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        Cell &cell = cells_[pos & (kCells - 1)];
        out = cell.item;
        cell.seq.store(pos + kCells, std::memory_order_release);
        return true;
    }

    /** Park until an item arrives or finish(); false = stream over. */
    bool
    waitPop(SealedBin &out)
    {
        for (;;) {
            if (tryPop(out))
                return true;
            std::unique_lock<std::mutex> lock(mutex_);
            sleepers_.fetch_add(1, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            // Re-check after registering: a pusher that missed our
            // registration must have published before our fence, so
            // this pop sees its item.
            if (tryPop(out)) {
                sleepers_.fetch_sub(1, std::memory_order_relaxed);
                return true;
            }
            if (finished_.load(std::memory_order_acquire)) {
                sleepers_.fetch_sub(1, std::memory_order_relaxed);
                // Every push happened before finish(); one last pop
                // sweeps anything a racing helper has not claimed.
                return tryPop(out);
            }
            cv_.wait(lock);
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
        }
    }

    /** No more pushes will come; unblocks every waitPop. */
    void
    finish()
    {
        finished_.store(true, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lock(mutex_);
        }
        cv_.notify_all();
    }

  private:
    struct alignas(64) Cell
    {
        std::atomic<std::size_t> seq{0};
        SealedBin item;
    };

    void
    wakeOne()
    {
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (sleepers_.load(std::memory_order_relaxed) > 0) {
            // Pass through the lock so a sleeper between its re-check
            // and its wait cannot miss this notify.
            {
                std::lock_guard<std::mutex> lock(mutex_);
            }
            cv_.notify_one();
        }
    }

    std::unique_ptr<Cell[]> cells_ =
        std::make_unique<Cell[]>(kCells);
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<unsigned> sleepers_{0};
    std::atomic<bool> finished_{false};
    std::mutex mutex_;
    std::condition_variable cv_;
};

} // namespace detail

/**
 * One fork-while-run session (th_stream_begin .. th_stream_end).
 * Created by LocalityScheduler::streamBegin(), which also flips the
 * scheduler into streaming mode so fork() routes here. fork() is safe
 * from any number of OS threads concurrently; every other method is
 * the owning scheduler's to call.
 */
class StreamSession
{
  public:
    /** Shards used when the config leaves streamShards at 0. */
    static constexpr unsigned kDefaultShards = 8;

    /**
     * @param config the owning scheduler's validated configuration.
     * @param placement the scheduler's placement policy. Stateless
     *        policies (BlockHash) are called lock-free from producers;
     *        stateful ones are serialized on an internal mutex.
     * @param pool the scheduler's worker pool, or nullptr for the
     *        inline-only mode (Serial backend): no drain helpers, all
     *        execution happens on producers and at finish().
     * @param drainWorkers helper threads draining sealed bins
     *        (ignored when @p pool is null).
     * @param recovery the owning scheduler's recovery counters; may be
     *        null (standalone tests).
     * @param governor the owning scheduler's overload governor; may be
     *        null. When enabled, the session's monitor feeds it one
     *        observation per tick and sheds load while it is degraded.
     */
    StreamSession(const SchedulerConfig &config,
                  PlacementPolicy &placement, WorkerPool *pool,
                  unsigned drainWorkers,
                  detail::RecoveryStats *recovery = nullptr,
                  OverloadGovernor *governor = nullptr);

    /** Finishes the stream if the owner never did (teardown path). */
    ~StreamSession();

    StreamSession(const StreamSession &) = delete;
    StreamSession &operator=(const StreamSession &) = delete;

    /** Admit one thread (thread-safe; may block under backpressure). */
    void fork(ThreadFn fn, void *arg1, void *arg2,
              std::span<const Hint> hints);

    /**
     * Seal every open bin, drain the backlog to empty, and stop the
     * helpers. Idempotent. Does not rethrow — the owner decides what
     * to do with firstFault() after restoring its own state.
     */
    void finish();

    /** Live (or final) counters. */
    StreamStats stats() const;

    /** Per-bin totals; valid after finish(). */
    const std::vector<StreamBinReport> &binReports() const
    {
        return bins_;
    }

    /** Contained faults; valid after finish(). */
    const std::vector<ThreadFault> &faults() const { return faults_; }

    /** Total faults including past the recording cap. */
    std::uint64_t faultCount() const { return fault_.totalFaults; }

    /** First StopTour exception, for the owner to rethrow. */
    std::exception_ptr firstFault() const { return fault_.first; }

    /** Why the stream was cancelled (None while healthy). The owner
     *  turns a non-None reason into a DeadlineError at streamEnd(). */
    CancelReason cancelReason() const { return cancel_.why(); }

    /** Is the session currently shedding load (governor degraded)? */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * One intake shard: its own concurrent table (disjoint id space),
     * no lock. Padded so the tables' hot heads do not false-share.
     */
    struct alignas(64) Shard
    {
        ConcurrentBinTable table;

        Shard(unsigned dims, std::size_t buckets,
              std::uint32_t idBase)
            : table(dims, buckets, idBase)
        {
        }
    };

    static void drainMain(unsigned worker, void *ctx);

    unsigned shardOf(std::uint64_t hash) const;
    /** Take a ticket and wait out the maxPending gate. */
    void admitThread();
    /** Record the post-admission backlog (peak tracking). */
    void notePending();
    /** Help at the bound: inline-drain a sealed bin or force-seal an
     *  open one. False when the backlog is entirely in flight. */
    bool tryHelp();
    /** Package a detached chain as a queue work item. */
    detail::SealedBin makeItem(const StreamBin &bin,
                               const SealedChain &chain) const;
    /** Trace + count + queue one sealed chain (drains inline when the
     *  ring is full, so a push can never deadlock). */
    void enqueue(const detail::SealedBin &item);
    /** Seal the first non-empty open bin, rotating over shards. */
    bool forceSealOne();
    /** Execute one sealed chain as @p worker and retire it. */
    void drainOne(const detail::SealedBin &item, unsigned worker);
    /** Retire a chain without running it (StopTour/cancel discard). */
    void discard(const detail::SealedBin &item);
    /** Return the chain to the pool and shrink the backlog. */
    void retire(const detail::SealedBin &item);
    /** Epoch-progress monitor body (deadline + overload governor). */
    void monitorMain();
    /** Stop and join the monitor thread (idempotent). */
    void stopMonitor();
    /** Degraded: force-seal every open bin so the drain has it all. */
    void shedLoad();

    const unsigned dims_;
    const std::uint64_t sealThreshold_;
    const std::uint64_t maxPending_;
    /** Epoch deadline: cancel when a standing backlog retires nothing
     *  for a full period. 0 = no deadline. */
    const std::uint32_t deadlineMillis_;
    /** No-progress backoff rounds before AdmissionTimeout; 0 = ∞. */
    const std::uint32_t admitRetries_;

    PlacementPolicy &placement_;
    /** Serializes place() for stateful policies; unused otherwise. */
    std::mutex placementMutex_;
    const bool placementStateless_;
    /** Adaptive placement: the monitor ticks maybeRetune(). */
    const bool placementAdaptive_;

    std::vector<std::unique_ptr<Shard>> shards_;
    /** Group storage, shared by every shard and drain worker. */
    ConcurrentGroupPool groupPool_;
    detail::SealedQueue queue_;
    /** Rotation cursor for forceSealOne's shard scan. */
    std::atomic<unsigned> sealCursor_{0};

    std::vector<ThreadFault> faults_;
    detail::FaultCtx fault_;

    /**
     * Ticket gate. tickets_ numbers every admission; retiredThreads_
     * counts threads the drain has retired (plus fork-rollback
     * refunds). A gated producer passes once
     * ticket < retiredThreads_ + maxPending_, which bounds the
     * admitted-unretired backlog by maxPending_ exactly.
     */
    std::atomic<std::uint64_t> tickets_{0};
    std::atomic<std::uint64_t> retiredThreads_{0};

    std::atomic<std::uint64_t> pending_{0};
    std::atomic<std::uint64_t> peak_{0};
    std::atomic<std::uint64_t> forked_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> seals_{0};
    std::atomic<std::uint64_t> bpWaits_{0};
    std::atomic<std::uint64_t> inlineDrains_{0};

    WorkerPool *pool_;
    detail::StreamJob job_;
    bool helpersRunning_ = false;

    std::vector<StreamBinReport> bins_;
    bool finished_ = false;

    /** Raised by the monitor on epoch-deadline expiry; fault_.cancel
     *  points here when a deadline is armed, so drains and backed-off
     *  producers observe it through stopRequested(). */
    CancelToken cancel_;
    /** Chains retired so far — the monitor's progress signal. */
    std::atomic<std::uint64_t> retired_{0};
    /** True while the governor holds the session degraded: producers
     *  stop blocking (soft bound) and open bins are force-sealed. */
    std::atomic<bool> degraded_{false};
    /** Seed mix-in so concurrent producers jitter independently. */
    std::atomic<std::uint64_t> jitterSeed_{0};
    detail::RecoveryStats *recovery_;
    OverloadGovernor *governor_;
    std::mutex monMutex_;
    std::condition_variable monCv_;
    bool monDone_ = false;
    std::thread monitor_;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_STREAM_HH
