#include "tour.hh"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "support/panic.hh"

namespace lsched::threads
{

TourPolicy
tourPolicyFromName(const std::string &name)
{
    if (name == "creation")
        return TourPolicy::CreationOrder;
    if (name == "snake")
        return TourPolicy::SortedSnake;
    if (name == "nearest")
        return TourPolicy::NearestNeighbor;
    if (name == "hilbert")
        return TourPolicy::Hilbert;
    LSCHED_FATAL("unknown tour policy '", name,
                 "' (want creation|snake|nearest|hilbert)");
}

const char *
tourPolicyName(TourPolicy policy)
{
    switch (policy) {
      case TourPolicy::CreationOrder:
        return "creation";
      case TourPolicy::SortedSnake:
        return "snake";
      case TourPolicy::NearestNeighbor:
        return "nearest";
      case TourPolicy::Hilbert:
        return "hilbert";
    }
    return "?";
}

namespace
{

/** Lexicographic compare over the first @p dims coordinates. */
bool
lexLess(const Bin *a, const Bin *b, unsigned dims)
{
    for (unsigned d = 0; d < dims; ++d) {
        if (a->coords[d] != b->coords[d])
            return a->coords[d] < b->coords[d];
    }
    return false;
}

std::vector<Bin *>
snakeOrder(std::vector<Bin *> bins, unsigned dims)
{
    std::sort(bins.begin(), bins.end(),
              [dims](const Bin *a, const Bin *b) {
                  return lexLess(a, b, dims);
              });
    if (dims < 2)
        return bins;
    // Reverse the direction of the last dimension within each run of
    // equal leading coordinates, alternating run to run (boustrophedon)
    // so consecutive bins stay adjacent.
    std::size_t run_start = 0;
    bool reverse = false;
    auto same_leading = [dims](const Bin *a, const Bin *b) {
        for (unsigned d = 0; d + 1 < dims; ++d)
            if (a->coords[d] != b->coords[d])
                return false;
        return true;
    };
    for (std::size_t i = 1; i <= bins.size(); ++i) {
        if (i == bins.size() ||
            !same_leading(bins[run_start], bins[i])) {
            if (reverse) {
                std::reverse(bins.begin() +
                                 static_cast<std::ptrdiff_t>(run_start),
                             bins.begin() + static_cast<std::ptrdiff_t>(i));
            }
            reverse = !reverse;
            run_start = i;
        }
    }
    return bins;
}

std::vector<Bin *>
nearestNeighborOrder(std::vector<Bin *> bins, unsigned dims)
{
    if (bins.size() < 3)
        return bins;
    std::vector<Bin *> tour;
    tour.reserve(bins.size());
    std::vector<bool> used(bins.size(), false);
    std::size_t current = 0;
    used[0] = true;
    tour.push_back(bins[0]);
    for (std::size_t step = 1; step < bins.size(); ++step) {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        std::size_t pick = 0;
        for (std::size_t j = 0; j < bins.size(); ++j) {
            if (used[j])
                continue;
            std::uint64_t dist = 0;
            for (unsigned d = 0; d < dims; ++d) {
                const std::uint64_t a = bins[current]->coords[d];
                const std::uint64_t b = bins[j]->coords[d];
                dist += a > b ? a - b : b - a;
            }
            if (dist < best) {
                best = dist;
                pick = j;
            }
        }
        used[pick] = true;
        current = pick;
        tour.push_back(bins[pick]);
    }
    return tour;
}

/** xy -> distance along a 2^order Hilbert curve (classic bit walk). */
std::uint64_t
hilbertD(std::uint64_t x, std::uint64_t y, unsigned order)
{
    std::uint64_t rx, ry, d = 0;
    for (std::uint64_t s = std::uint64_t{1} << (order - 1); s > 0;
         s >>= 1) {
        rx = (x & s) ? 1 : 0;
        ry = (y & s) ? 1 : 0;
        d += s * s * ((3 * rx) ^ ry);
        // Rotate quadrant.
        if (ry == 0) {
            if (rx == 1) {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::swap(x, y);
        }
    }
    return d;
}

std::vector<Bin *>
hilbertOrder(std::vector<Bin *> bins, unsigned dims)
{
    if (dims != 2)
        return snakeOrder(std::move(bins), dims);
    std::uint64_t max_coord = 1;
    for (const Bin *b : bins)
        max_coord = std::max({max_coord, b->coords[0], b->coords[1]});
    unsigned order = 1;
    while ((std::uint64_t{1} << order) <= max_coord)
        ++order;
    std::sort(bins.begin(), bins.end(),
              [order](const Bin *a, const Bin *b) {
                  return hilbertD(a->coords[0], a->coords[1], order) <
                         hilbertD(b->coords[0], b->coords[1], order);
              });
    return bins;
}

} // namespace

std::vector<Bin *>
orderBins(TourPolicy policy, std::vector<Bin *> bins, unsigned dims)
{
    switch (policy) {
      case TourPolicy::CreationOrder:
        return bins;
      case TourPolicy::SortedSnake:
        return snakeOrder(std::move(bins), dims);
      case TourPolicy::NearestNeighbor:
        return nearestNeighborOrder(std::move(bins), dims);
      case TourPolicy::Hilbert:
        return hilbertOrder(std::move(bins), dims);
    }
    return bins;
}

std::vector<Bin *>
groupBySuperBins(std::vector<Bin *> bins)
{
    // kNoSuperBin is the maximum id, so ungrouped bins sort last.
    std::stable_sort(bins.begin(), bins.end(),
                     [](const Bin *a, const Bin *b) {
                         return a->superBin < b->superBin;
                     });
    return bins;
}

std::uint64_t
tourLength(const std::vector<Bin *> &bins, unsigned dims)
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < bins.size(); ++i) {
        for (unsigned d = 0; d < dims; ++d) {
            const std::uint64_t a = bins[i - 1]->coords[d];
            const std::uint64_t b = bins[i]->coords[d];
            total += a > b ? a - b : b - a;
        }
    }
    return total;
}

} // namespace lsched::threads
