/**
 * @file
 * AdaptiveTuner + AdaptivePlacement implementation. See adapt.hh for
 * the state-machine contract and the safe-boundary rule.
 */

#include "threads/adapt.hh"

#include <algorithm>

#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "support/panic.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

/** Bound on round-robin bin doubling (a runaway backstop). */
constexpr std::uint64_t kMaxRoundRobinBins = 1ull << 20;

/** The sched.adapt.* counters, resolved once. */
struct AdaptInstruments
{
    obs::Counter *observations;
    obs::Counter *retunes;
    obs::Counter *shrinks;
    obs::Counter *grows;
    obs::Counter *reverts;
};

const AdaptInstruments &
adaptInstruments()
{
    static const AdaptInstruments ins = [] {
        obs::Registry &r = obs::Registry::global();
        return AdaptInstruments{
            &r.counter("sched.adapt.observations"),
            &r.counter("sched.adapt.retunes"),
            &r.counter("sched.adapt.shrinks"),
            &r.counter("sched.adapt.grows"),
            &r.counter("sched.adapt.reverts"),
        };
    }();
    return ins;
}

/** Current absolute profiler totals, summed over the bin table. */
AdaptSample
profilerTotals()
{
    const obs::Profiler &profiler = obs::Profiler::global();
    AdaptSample t;
    t.samples = profiler.samples();
    t.pmuSamples = profiler.pmuSampleCount();
    for (const obs::BinProfile &bin : profiler.binProfiles()) {
        t.llcRefs += bin.llcRefs;
        t.llcMisses += bin.llcMisses;
        t.dwellNs += bin.dwellNs;
        t.threads += bin.threads;
    }
    return t;
}

} // namespace

AdaptiveTuner::AdaptiveTuner(const AdaptTunerConfig &config,
                             PlacementKind base,
                             const AdaptParams &initial)
    : config_(config), base_(base), initial_(initial), params_(initial)
{
    LSCHED_ASSERT(base_ != PlacementKind::Adaptive,
                  "adaptive tuner wrapping itself");
}

std::uint64_t
AdaptiveTuner::primary() const
{
    return base_ == PlacementKind::RoundRobin ? params_.roundRobinBins
                                              : params_.blockBytes;
}

void
AdaptiveTuner::setPrimary(std::uint64_t value)
{
    if (base_ == PlacementKind::RoundRobin) {
        params_.roundRobinBins = value;
    } else {
        params_.blockBytes = value;
        params_.superBinFan = fanFor(value);
    }
}

std::uint64_t
AdaptiveTuner::shrinkTarget() const
{
    if (base_ == PlacementKind::RoundRobin) {
        // More bins = fewer threads (less data) per bin.
        const std::uint64_t next = params_.roundRobinBins * 2;
        return next <= kMaxRoundRobinBins ? next : 0;
    }
    const std::uint64_t next = params_.blockBytes / 2;
    return next >= config_.minBlock ? next : 0;
}

std::uint64_t
AdaptiveTuner::growTarget() const
{
    if (base_ == PlacementKind::RoundRobin) {
        const std::uint64_t next = params_.roundRobinBins / 2;
        return next >= 1 ? next : 0;
    }
    const std::uint64_t next = params_.blockBytes * 2;
    return next <= config_.maxBlock ? next : 0;
}

std::uint64_t
AdaptiveTuner::fanFor(std::uint64_t blockBytes) const
{
    if (base_ != PlacementKind::Hierarchical ||
        initial_.superBinFan == 0 || blockBytes == 0)
        return initial_.superBinFan;
    // Keep the super-bin byte span (fan x block per dimension)
    // invariant: halving the block doubles the fan, so a worker's
    // super-bin still covers the same address range.
    const std::uint64_t fan =
        initial_.superBinFan * initial_.blockBytes / blockBytes;
    return fan ? fan : 1;
}

void
AdaptiveTuner::apply(std::uint64_t value)
{
    setPrimary(value);
    ++retunes_;
    holdRemaining_ = config_.hold;
    capacityStreak_ = 0;
    floorStreak_ = 0;
    stableDwell_ = 0;
    stableThreads_ = 0;
    stableObs_ = 0;
}

bool
AdaptiveTuner::observe(const AdaptSample &delta)
{
    if (delta.samples == 0)
        return false;
    ++observations_;
    if (delta.pmuSamples > 0)
        return observePmu(delta);
    return observeDwell(delta);
}

bool
AdaptiveTuner::observePmu(const AdaptSample &delta)
{
    if (probing_) {
        // The PMU came (back) online mid-probe: keep the probed
        // parameters and let miss rates govern from here.
        probing_ = false;
    }
    if (delta.llcRefs < config_.minRefs)
        return false; // too little traffic to classify; ignore
    const double rate = static_cast<double>(delta.llcMisses) /
                        static_cast<double>(delta.llcRefs);
    if (rate > config_.highMiss) {
        regime_ = AdaptRegime::Capacity;
        ++capacityStreak_;
        floorStreak_ = 0;
    } else if (rate <= config_.targetMiss) {
        regime_ = AdaptRegime::Floor;
        ++floorStreak_;
        capacityStreak_ = 0;
    } else {
        regime_ = AdaptRegime::Neutral;
        capacityStreak_ = 0;
        floorStreak_ = 0;
    }
    if (holdRemaining_ > 0) {
        --holdRemaining_;
        return false;
    }
    if (capacityStreak_ >= config_.epochs) {
        // This size demonstrably overflows the cache: never grow back
        // into it (the hysteresis that makes oscillation impossible).
        bad_.insert(primary());
        const std::uint64_t target = shrinkTarget();
        capacityStreak_ = 0;
        if (target == 0)
            return false; // already at the floor of the knob range
        apply(target);
        ++shrinks_;
        return true;
    }
    if (floorStreak_ >= config_.epochs) {
        const std::uint64_t target = growTarget();
        floorStreak_ = 0;
        if (target == 0 || bad_.count(target))
            return false; // at the cap, or a size known to overflow
        apply(target);
        ++grows_;
        return true;
    }
    return false;
}

bool
AdaptiveTuner::observeDwell(const AdaptSample &delta)
{
    if (delta.threads == 0 || delta.dwellNs == 0)
        return false; // nothing to climb on
    if (holdRemaining_ > 0) {
        --holdRemaining_;
        return false;
    }
    if (probing_) {
        regime_ = AdaptRegime::Probing;
        probeDwell_ += delta.dwellNs;
        probeThreads_ += delta.threads;
        if (++probeObs_ < config_.epochs)
            return false;
        // Judge the probe on its dwell-per-thread average.
        const double metric =
            static_cast<double>(probeDwell_) /
            static_cast<double>(probeThreads_);
        probing_ = false;
        if (metric <=
            preProbeMetric_ * (1.0 - config_.dwellImprove)) {
            // Improved enough: the probe becomes permanent; a further
            // probe may follow after the next stable window.
            regime_ = AdaptRegime::Neutral;
            holdRemaining_ = config_.hold;
            return false;
        }
        // No improvement: roll back and never probe that value again.
        bad_.insert(primary());
        params_ = preProbe_;
        ++retunes_;
        ++reverts_;
        regime_ = AdaptRegime::Neutral;
        holdRemaining_ = config_.hold;
        stableDwell_ = 0;
        stableThreads_ = 0;
        stableObs_ = 0;
        return true;
    }
    regime_ = AdaptRegime::Neutral;
    stableDwell_ += delta.dwellNs;
    stableThreads_ += delta.threads;
    if (++stableObs_ < config_.epochs)
        return false;
    const std::uint64_t target = shrinkTarget();
    if (target == 0 || bad_.count(target)) {
        // Quiescent: nothing left to probe. Keep a rolling window so
        // a later config change starts from fresh numbers.
        stableDwell_ = delta.dwellNs;
        stableThreads_ = delta.threads;
        stableObs_ = 1;
        return false;
    }
    preProbe_ = params_;
    preProbeMetric_ = static_cast<double>(stableDwell_) /
                      static_cast<double>(stableThreads_);
    probeDwell_ = 0;
    probeThreads_ = 0;
    probeObs_ = 0;
    probing_ = true;
    apply(target);
    ++shrinks_;
    regime_ = AdaptRegime::Probing;
    return true;
}

AdaptivePlacement::AdaptivePlacement(PlacementKind base, unsigned dims,
                                     bool symmetric,
                                     const AdaptTunerConfig &tunerConfig,
                                     const AdaptParams &initial)
    : base_(base), dims_(dims), symmetric_(symmetric),
      tuner_(tunerConfig, base, initial)
{
    generations_.push_back(buildInner());
    innerStateless_ = generations_.back()->stateless();
    inner_.store(generations_.back().get(), std::memory_order_release);
}

std::unique_ptr<PlacementPolicy>
AdaptivePlacement::buildInner() const
{
    const AdaptParams &p = tuner_.params();
    return makePlacement(base_, dims_, p.blockBytes, symmetric_,
                         p.roundRobinBins, p.superBinFan);
}

PlacementDecision
AdaptivePlacement::place(std::span<const Hint> hints)
{
    return inner_.load(std::memory_order_acquire)->place(hints);
}

PlacementDecision
AdaptivePlacement::peek(std::span<const Hint> hints) const
{
    return inner_.load(std::memory_order_acquire)->peek(hints);
}

bool
AdaptivePlacement::maybeRetune()
{
    const AdaptSample totals = profilerTotals();
    std::lock_guard<std::mutex> lock(mutex_);
    if (totals.samples < lastTotals_.samples) {
        // The profiler was reset since the last poll; its totals
        // restarted from zero, so consume them whole.
        lastTotals_ = AdaptSample{};
    }
    AdaptSample delta;
    delta.samples = totals.samples - lastTotals_.samples;
    delta.pmuSamples = totals.pmuSamples - lastTotals_.pmuSamples;
    delta.llcRefs = totals.llcRefs - lastTotals_.llcRefs;
    delta.llcMisses = totals.llcMisses - lastTotals_.llcMisses;
    delta.dwellNs = totals.dwellNs - lastTotals_.dwellNs;
    delta.threads = totals.threads - lastTotals_.threads;
    lastTotals_ = totals;
    if (delta.samples == 0)
        return false;

    const std::uint64_t retunesBefore = tuner_.retunes();
    const std::uint64_t shrinksBefore = tuner_.shrinks();
    const std::uint64_t growsBefore = tuner_.grows();
    const std::uint64_t revertsBefore = tuner_.reverts();
    const bool changed = tuner_.observe(delta);
    if (obs::metricsOn()) {
        const AdaptInstruments &ins = adaptInstruments();
        ins.observations->add();
        ins.retunes->add(tuner_.retunes() - retunesBefore);
        ins.shrinks->add(tuner_.shrinks() - shrinksBefore);
        ins.grows->add(tuner_.grows() - growsBefore);
        ins.reverts->add(tuner_.reverts() - revertsBefore);
    }
    if (!changed)
        return false;

    // Publish the new generation; the old one stays alive for any
    // place() that loaded it just before the swap.
    generations_.push_back(buildInner());
    inner_.store(generations_.back().get(), std::memory_order_release);
    const AdaptParams &p = tuner_.params();
    LSCHED_TRACE_EVENT(
        obs::EventType::AdaptRetune, p.blockBytes,
        base_ == PlacementKind::RoundRobin ? p.roundRobinBins
                                           : p.superBinFan,
        static_cast<std::uint64_t>(tuner_.regime()));
    return true;
}

AdaptSnapshot
AdaptivePlacement::adaptSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    AdaptSnapshot s;
    s.active = true;
    s.regime = tuner_.regime();
    s.blockBytes = tuner_.params().blockBytes;
    s.superBinFan = tuner_.params().superBinFan;
    s.roundRobinBins = tuner_.params().roundRobinBins;
    s.observations = tuner_.observations();
    s.retunes = tuner_.retunes();
    s.shrinks = tuner_.shrinks();
    s.grows = tuner_.grows();
    s.reverts = tuner_.reverts();
    return s;
}

AdaptParams
AdaptivePlacement::currentParams() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tuner_.params();
}

std::unique_ptr<PlacementPolicy>
makeAdaptivePlacement(const SchedulerConfig &config)
{
    LSCHED_ASSERT(config.adaptBase != PlacementKind::Adaptive,
                  "adaptBase must name a concrete base policy");
    AdaptTunerConfig t;
    t.targetMiss = config.adaptTargetMiss;
    t.highMiss = config.adaptHighMiss;
    t.converge = config.adaptConverge;
    t.epochs = config.adaptEpochs;
    t.hold = config.adaptHold;
    t.maxBlock =
        config.adaptMaxBlock ? config.adaptMaxBlock : config.cacheBytes;
    t.minBlock = std::min(config.adaptMinBlock, t.maxBlock);
    t.minRefs = config.adaptMinRefs;
    t.dwellImprove = config.adaptDwellImprove;

    AdaptParams p;
    p.blockBytes = config.effectiveBlockBytes();
    if (config.adaptBase == PlacementKind::Hierarchical) {
        p.superBinFan = config.superBinFan
                            ? config.superBinFan
                            : TopologyPlacement::kDefaultFan;
    }
    if (config.adaptBase == PlacementKind::RoundRobin) {
        p.roundRobinBins = config.roundRobinBins
                               ? config.roundRobinBins
                               : RoundRobinPlacement::kDefaultBins;
    }
    return std::make_unique<AdaptivePlacement>(
        config.adaptBase, config.dims, config.symmetricHints, t, p);
}

} // namespace lsched::threads
