#include "threads/placement.hh"

#include "support/panic.hh"

namespace lsched::threads
{

PlacementPolicy::~PlacementPolicy() = default;

const char *
placementName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::BlockHash:
        return "blockhash";
      case PlacementKind::RoundRobin:
        return "roundrobin";
      case PlacementKind::Hierarchical:
        return "hierarchical";
      case PlacementKind::Adaptive:
        return "adaptive";
    }
    return "?";
}

const char *
adaptRegimeName(AdaptRegime regime)
{
    switch (regime) {
      case AdaptRegime::Warmup:   return "warmup";
      case AdaptRegime::Floor:    return "floor";
      case AdaptRegime::Neutral:  return "neutral";
      case AdaptRegime::Capacity: return "capacity";
      case AdaptRegime::Probing:  return "probing";
    }
    return "?";
}

bool
tryPlacementFromName(const std::string &name, PlacementKind *out)
{
    if (name == "blockhash")
        *out = PlacementKind::BlockHash;
    else if (name == "roundrobin")
        *out = PlacementKind::RoundRobin;
    else if (name == "hierarchical")
        *out = PlacementKind::Hierarchical;
    else if (name == "adaptive")
        *out = PlacementKind::Adaptive;
    else
        return false;
    return true;
}

PlacementKind
placementFromName(const std::string &name)
{
    PlacementKind kind;
    if (!tryPlacementFromName(name, &kind)) {
        LSCHED_FATAL(
            "unknown placement policy '", name,
            "' (want blockhash|roundrobin|hierarchical|adaptive)");
    }
    return kind;
}

PlacementDecision
TopologyPlacement::place(std::span<const Hint> hints)
{
    PlacementDecision d;
    d.coords = map_.coordsFor(hints);
    BlockCoords super{};
    for (unsigned dim = 0; dim < map_.dims(); ++dim)
        super[dim] = d.coords[dim] / fan_;
    const auto [it, created] = superIds_.try_emplace(
        super, static_cast<std::uint32_t>(superIds_.size()));
    (void)created;
    d.superBin = it->second;
    return d;
}

PlacementDecision
TopologyPlacement::peek(std::span<const Hint> hints) const
{
    PlacementDecision d;
    d.coords = map_.coordsFor(hints);
    BlockCoords super{};
    for (unsigned dim = 0; dim < map_.dims(); ++dim)
        super[dim] = d.coords[dim] / fan_;
    const auto it = superIds_.find(super);
    d.superBin = it == superIds_.end() ? kNoSuperBin : it->second;
    return d;
}

std::unique_ptr<PlacementPolicy>
makePlacement(PlacementKind kind, unsigned dims,
              std::uint64_t blockBytes, bool symmetricHints,
              std::uint64_t roundRobinBins, std::uint64_t superBinFan)
{
    switch (kind) {
      case PlacementKind::BlockHash:
        return std::make_unique<BlockHashPlacement>(dims, blockBytes,
                                                    symmetricHints);
      case PlacementKind::RoundRobin:
        return std::make_unique<RoundRobinPlacement>(roundRobinBins);
      case PlacementKind::Hierarchical:
        return std::make_unique<TopologyPlacement>(
            dims, blockBytes, symmetricHints, superBinFan);
      case PlacementKind::Adaptive:
        // The adaptive wrapper needs the whole SchedulerConfig (tuner
        // thresholds, base policy); build it via makeAdaptivePlacement
        // (threads/adapt.hh) instead.
        LSCHED_PANIC("PlacementKind::Adaptive requires "
                     "makeAdaptivePlacement(config)");
    }
    LSCHED_PANIC("unhandled PlacementKind ",
                 static_cast<int>(kind));
}

} // namespace lsched::threads
