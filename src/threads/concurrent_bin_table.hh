/**
 * @file
 * Concurrent bin table for the lock-free streaming intake.
 *
 * The batch BinTable (hash_table.hh) is single-owner; the streaming
 * intake used to wrap one per shard in a mutex. This table keeps the
 * same shape — open addressing, linear probing over a power-of-two
 * slot array, cached 64-bit coordinate hashes, grow past 3/4 load —
 * but makes every operation safe for any number of producers:
 *
 *  - *Bins are stable.* StreamBin records live in a segmented arena
 *    (atomic bump over CAS-installed segments), so a published bin
 *    pointer never moves or dies before the table does. Growth only
 *    replaces the slot array.
 *
 *  - *Insert is a CAS.* A probe walks slots under acquire loads; a
 *    miss claims the terminating null slot with a single CAS. Losers
 *    re-examine the slot (the winner may have inserted the very same
 *    coordinates) and recycle their speculative bin through a tagged
 *    free stack.
 *
 *  - *Growth freezes, then relocates.* One grower (growing_ flag)
 *    CASes every remaining null slot to a kFrozen sentinel, so no
 *    insert can land in the old array once the sweep passes it;
 *    probes that meet kFrozen spin-yield until the new array is
 *    published and retry there. With the old array quiescent, the
 *    grower migrates entries single-threaded using the cached hashes,
 *    applying the robin-hood displacement order (shortest probe
 *    distance first) that the concurrent fast path cannot afford to
 *    maintain. Displaced slot arrays are not freed in place — they
 *    are retired onto a list owned by the table and reclaimed in the
 *    destructor, the session-end quiescent point, so a probe that
 *    still holds the old array never reads freed memory.
 *
 *  - *Appending threads to a bin is lock-free and ABA-proof.* Each
 *    bin anchors a prev-linked chain of ThreadGroups in a single
 *    atomic tail word tagged with the tail group's life generation
 *    ([generation:32][pool index + 1:32]). A producer reserves a slot
 *    with a CAS on the group's claim word whose expected value
 *    carries that generation — a producer preempted across the
 *    group's seal/drain/recycle cycle fails the CAS (the new life
 *    re-stamped the generation) instead of claiming into a group
 *    that now belongs to another bin — then writes the spec and
 *    publishes it by bumping ready (release). When the group is full
 *    or a sealer closed it, the producer installs a fresh group with
 *    one CAS on the tail anchor. Sealing is tail.exchange(0):
 *    exactly one caller gets the chain, closes each group
 *    (claim |= kClosed), waits for the in-flight ready publications
 *    it counted, and reverses the prev links into the fork-order
 *    next chain that GroupCursor walks. Producers and drainers never
 *    share a group: the hand-off point is the seal.
 */

#ifndef LSCHED_THREADS_CONCURRENT_BIN_TABLE_HH
#define LSCHED_THREADS_CONCURRENT_BIN_TABLE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>

#include "support/align.hh"
#include "support/failpoint.hh"
#include "support/panic.hh"
#include "threads/bin.hh"
#include "threads/concurrent_group_pool.hh"
#include "threads/hints.hh"

namespace lsched::threads
{

/**
 * One bin of the streaming scheduling space. The search key (coords +
 * cached hash), id, and super-bin are written by the creating producer
 * before the bin is published into a table slot; everything else is
 * concurrently updated through atomics.
 */
struct alignas(64) StreamBin
{
    /** Search key: block coordinates in the scheduling space. */
    BlockCoords coords{};
    /** Cached hash of coords (probe compare + growth relocation). */
    std::uint64_t hashVal = 0;
    /** Stable trace identity: table idBase + arena index. */
    std::uint32_t id = 0;
    /** Second-level placement group (kNoSuperBin when flat). */
    std::uint32_t superBin = kNoSuperBin;

    /**
     * Newest group of the current epoch's prev-linked chain, as a
     * tagged word [life generation:32][pool index + 1:32]; 0 while
     * the bin has no unsealed threads. Carrying the generation the
     * group had when it was installed lets a producer's claim CAS
     * prove the group still belongs to this bin's current epoch
     * (appendStreamSpec). The single anchor both producers (CAS
     * install) and sealers (exchange) contend on.
     */
    std::atomic<std::uint64_t> tail{0};
    /** Threads admitted to the current epoch (threshold sealing). */
    std::atomic<std::uint64_t> epochThreads{0};
    /** Seal epochs this bin has gone through. */
    std::atomic<std::uint32_t> epochs{0};
    /** Threads admitted across all epochs (final report). */
    std::atomic<std::uint64_t> totalThreads{0};
    /** Spare-stack successor index (+1; 0 = end). */
    std::atomic<std::uint32_t> spareNext{0};
};

/** A bin epoch detached by sealStreamBin(), ready to drain. */
struct SealedChain
{
    /** Fork-order chain (next-linked); null when nothing was open. */
    ThreadGroup *head = nullptr;
    /** Threads in the chain. */
    std::uint64_t threads = 0;
    /** The epoch number this seal closed (1-based). */
    std::uint32_t epoch = 0;
};

/**
 * Admit one thread spec into @p bin. Lock-free; any number of callers
 * may append to the same bin concurrently with each other and with
 * sealStreamBin(). Returns the bin's epoch thread count *including*
 * this spec, the threshold-seal trigger.
 *
 * Slot reservation is a CAS on the tail group's claim word whose
 * expected value carries the life generation named by the bin's tail
 * word: a producer preempted between reading the tail and reserving —
 * long enough for the group to be sealed, drained, recycled, and
 * re-published elsewhere — fails the CAS (allocate() re-stamped the
 * generation) and retries from the tail, so a spec can never be
 * written into a group that moved on. The CAS also bounds claims at
 * capacity, so every reservation is matched by exactly one ready
 * publication the sealer can wait on.
 *
 * The epoch/total counters are bumped *before* the spec is published
 * (and rolled back if the group allocation throws): a sealer that
 * captures the spec has, through the publication's release/acquire
 * edge, already seen the bumps, so its fetch_sub of the sealed count
 * can never transiently underflow the counter.
 */
inline std::uint64_t
appendStreamSpec(StreamBin &bin, ConcurrentGroupPool &pool,
                 ThreadFn fn, void *arg1, void *arg2)
{
    const std::uint64_t epochCount =
        bin.epochThreads.fetch_add(1, std::memory_order_relaxed) + 1;
    bin.totalThreads.fetch_add(1, std::memory_order_relaxed);
    ThreadGroup *fresh = nullptr;
    for (;;) {
        const std::uint64_t t =
            bin.tail.load(std::memory_order_acquire);
        ThreadGroup *g = nullptr;
        if (t) {
            g = pool.groupAt(static_cast<std::uint32_t>(t) - 1);
            const std::uint64_t gen = t >> 32;
            std::uint64_t c = g->claim.load(std::memory_order_acquire);
            bool divert = false;
            while ((c >> 32) == gen) {
                const std::uint32_t used =
                    static_cast<std::uint32_t>(c);
                if ((used & ThreadGroup::kClosed) ||
                    used >= g->capacity) {
                    divert = true; // sealed or full: fresh group
                    break;
                }
                if (g->claim.compare_exchange_weak(
                        c, c + 1, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    g->specs[used] = {fn, arg1, arg2};
                    g->ready.fetch_add(1, std::memory_order_release);
                    if (fresh)
                        pool.recycleChain(fresh);
                    return epochCount;
                }
            }
            if (!divert) {
                // The generation moved: the group was recycled under
                // us, which implies the bin's tail changed too (a
                // seal emptied it first). Reload the tail.
                continue;
            }
        }
        if (!fresh) {
            try {
                fresh = pool.allocate();
            } catch (...) {
                // Roll the speculative bumps back: a failed admission
                // must not leave a phantom thread inflating the bin's
                // report or keeping force-seal sweeps rescanning it.
                bin.epochThreads.fetch_sub(1,
                                           std::memory_order_relaxed);
                bin.totalThreads.fetch_sub(1,
                                           std::memory_order_relaxed);
                throw;
            }
            // allocate() stamped the new life's generation; keep it
            // and pre-publish one reserved, ready slot.
            fresh->specs[0] = {fn, arg1, arg2};
            fresh->claim.store(
                (fresh->claim.load(std::memory_order_relaxed) &
                 ~std::uint64_t{0xffffffffu}) |
                    1,
                std::memory_order_relaxed);
            fresh->ready.store(1, std::memory_order_relaxed);
        }
        fresh->prev = g;
        const std::uint64_t freshWord =
            (fresh->claim.load(std::memory_order_relaxed) &
             ~std::uint64_t{0xffffffffu}) |
            (fresh->poolIndex + 1);
        std::uint64_t expected = t;
        // Success publishes the spec and counters via the CAS release.
        if (bin.tail.compare_exchange_strong(expected, freshWord,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed))
            return epochCount;
        // Lost to another append or a seal: retry against the new
        // tail, reusing the speculative group.
    }
}

/**
 * Detach @p bin's current epoch as a drainable chain. Any thread may
 * call this concurrently with appends and other seals: the exchange
 * hands the chain to exactly one caller, and appends that raced past
 * it land in the bin's next epoch. Returns head == nullptr when there
 * was nothing to seal.
 */
inline SealedChain
sealStreamBin(StreamBin &bin, ConcurrentGroupPool &pool)
{
    const std::uint64_t t =
        bin.tail.exchange(0, std::memory_order_acq_rel);
    if (!t)
        return {};
    ThreadGroup *g = pool.groupAt(static_cast<std::uint32_t>(t) - 1);
    SealedChain chain;
    ThreadGroup *head = nullptr;
    while (g) {
        // Closing returns the reservations made so far; late claimers
        // see the bit and divert to the next epoch. The claim CAS
        // bounds reservations at capacity; the min is belt and braces.
        const std::uint64_t raw = g->claim.fetch_or(
            ThreadGroup::kClosed, std::memory_order_acq_rel);
        const std::uint32_t n = std::min(
            static_cast<std::uint32_t>(raw & ~ThreadGroup::kClosed),
            g->capacity);
        // Wait out in-flight writers: each reservation publishes
        // exactly one ready bump (release), so once ready covers n
        // every captured spec is visible here.
        while (g->ready.load(std::memory_order_acquire) < n)
            std::this_thread::yield();
        g->count = n;
        chain.threads += n;
        ThreadGroup *prev = g->prev;
        g->next = head; // reverse newest-first into fork order
        head = g;
        g = prev;
    }
    chain.head = head;
    chain.epoch =
        bin.epochs.fetch_add(1, std::memory_order_relaxed) + 1;
    bin.epochThreads.fetch_sub(chain.threads,
                               std::memory_order_relaxed);
    return chain;
}

/** Owns all streaming bins and finds them by block coordinates. */
class ConcurrentBinTable
{
  public:
    /** Slots below this are rounded up (headroom for early growth). */
    static constexpr std::size_t kMinSlots = 16;
    /** Bins carved per arena segment. */
    static constexpr std::uint32_t kSegmentBins = 256;
    /** Segment-directory capacity (kMaxSegments * kSegmentBins bins). */
    static constexpr std::uint32_t kMaxSegments = 1u << 12;

    /**
     * @param dims scheduling-space dimensionality.
     * @param buckets initial slot count (rounded up to a power of
     *        two, minimum kMinSlots).
     * @param idBase offset added to every bin id (shard id spaces).
     */
    ConcurrentBinTable(unsigned dims, std::size_t buckets,
                       std::uint32_t idBase = 0)
        : dims_(dims), idBase_(idBase)
    {
        LSCHED_ASSERT(dims_ >= 1 && dims_ <= kMaxDims,
                      "bad dimensionality ", dims_);
        current_.store(
            makeTable(roundUpPowerOfTwo(
                buckets < kMinSlots ? kMinSlots : buckets)),
            std::memory_order_release);
    }

    ~ConcurrentBinTable()
    {
        // Session-end quiescent point: no probe can still hold a
        // retired slot array, so the whole chain reclaims here.
        Table *t = current_.load(std::memory_order_relaxed);
        while (t) {
            Table *older = t->older;
            delete t;
            t = older;
        }
        const std::uint32_t carved =
            carveNext_.load(std::memory_order_relaxed);
        const std::uint32_t segments =
            (carved + kSegmentBins - 1) / kSegmentBins;
        for (std::uint32_t s = 0; s < segments && s < kMaxSegments;
             ++s)
            delete[] segments_[s].load(std::memory_order_relaxed);
    }

    ConcurrentBinTable(const ConcurrentBinTable &) = delete;
    ConcurrentBinTable &operator=(const ConcurrentBinTable &) = delete;

    /**
     * Find the bin with coordinates @p coords (hash @p h precomputed
     * via hashCoords()), creating it on first use with super-bin
     * @p superBin. Safe from any number of threads. Returns the bin
     * and whether this call created it.
     */
    std::pair<StreamBin *, bool>
    findOrCreate(const BlockCoords &coords, std::uint64_t h,
                 std::uint32_t superBin)
    {
        StreamBin *spare = nullptr;
        for (;;) {
            Table *t = current_.load(std::memory_order_acquire);
            const std::size_t mask = t->mask;
            std::size_t i = h & mask;
            std::size_t walked = 0;
            bool frozen = false;
            for (;; i = (i + 1) & mask) {
                if (++walked > mask + 1) {
                    // Safety valve: a create burst filled every slot
                    // before any trigger fired. Grow (or wait for the
                    // grower) and retry in the bigger table.
                    grow(t);
                    frozen = true;
                    break;
                }
                StreamBin *b =
                    t->slots[i].load(std::memory_order_acquire);
                if (b == frozenSlot()) {
                    frozen = true;
                    break;
                }
                if (b) {
                    if (b->hashVal == h &&
                        sameCoords(b->coords, coords)) {
                        if (spare)
                            pushSpare(spare);
                        return {b, false};
                    }
                    continue;
                }
                // Terminating null: this is a miss. Claim the slot.
                if (!spare) {
                    // Fail point standing in for a real out-of-memory
                    // from the bin growth below (same site as the
                    // batch table, so chaos specs reach this path).
                    if (LSCHED_FAILPOINT_HIT("bintable.grow"))
                        throw std::bad_alloc();
                    spare = takeSpare();
                    if (!spare)
                        spare = carve();
                }
                spare->coords = coords;
                spare->hashVal = h;
                spare->superBin = superBin;
                StreamBin *expected = nullptr;
                if (t->slots[i].compare_exchange_strong(
                        expected, spare, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    StreamBin *won = spare;
                    const std::size_t count =
                        published_.fetch_add(
                            1, std::memory_order_relaxed) +
                        1;
                    // Keep load under 3/4 so probes stay short and a
                    // null (or frozen) slot always terminates them.
                    if ((count + 1) * 4 > (mask + 1) * 3)
                        grow(t);
                    return {won, true};
                }
                // Lost the slot. Re-examine it without advancing: the
                // winner may have published these very coordinates.
                --walked;
                --i; // undone by the loop increment
                i &= mask;
            }
            if (frozen)
                waitForGrowth(t);
        }
    }

    /** Bins carved so far (upper bound on published bins). */
    std::size_t
    binCount() const
    {
        return carveNext_.load(std::memory_order_relaxed);
    }

    /**
     * The bin at arena @p index (< binCount()), or nullptr while the
     * segment holding it is not installed: carve() bumps the count
     * before CAS-publishing a fresh segment, so a concurrent sweep
     * can reach an index whose segment is still in flight (or, after
     * a failed segment allocation, will never arrive) — callers must
     * skip a null return. Iteration visits spare, never-published
     * bins too — they have totalThreads == 0 and a zero tail, so
     * seal/report sweeps skip them naturally.
     */
    StreamBin *
    binAt(std::size_t index) const
    {
        Segment seg = segments_[index / kSegmentBins].load(
            std::memory_order_acquire);
        return seg ? &seg[index % kSegmentBins] : nullptr;
    }

    /** Number of slots in the live probe array. */
    std::size_t
    bucketCount() const
    {
        return current_.load(std::memory_order_acquire)->mask + 1;
    }

  private:
    using Segment = StreamBin *;

    struct Table
    {
        std::size_t mask = 0;
        std::unique_ptr<std::atomic<StreamBin *>[]> slots;
        /** Retired predecessor, reclaimed by the destructor. */
        Table *older = nullptr;
    };

    /** Sentinel marking a frozen (growth-claimed) null slot. */
    static StreamBin *
    frozenSlot()
    {
        return reinterpret_cast<StreamBin *>(
            static_cast<std::uintptr_t>(1));
    }

    static Table *
    makeTable(std::size_t slots)
    {
        Table *t = new Table;
        t->mask = slots - 1;
        t->slots =
            std::make_unique<std::atomic<StreamBin *>[]>(slots);
        for (std::size_t i = 0; i < slots; ++i)
            t->slots[i].store(nullptr, std::memory_order_relaxed);
        return t;
    }

    bool
    sameCoords(const BlockCoords &a, const BlockCoords &b) const
    {
        for (unsigned d = 0; d < dims_; ++d)
            if (a[d] != b[d])
                return false;
        return true;
    }

    /** Carve the next never-used bin out of the segment directory. */
    StreamBin *
    carve()
    {
        const std::uint32_t index =
            carveNext_.fetch_add(1, std::memory_order_relaxed);
        if (index >= kMaxSegments * kSegmentBins)
            throw std::bad_alloc();
        const std::uint32_t segIndex = index / kSegmentBins;
        Segment seg =
            segments_[segIndex].load(std::memory_order_acquire);
        if (!seg) {
            Segment fresh = new StreamBin[kSegmentBins];
            Segment expected = nullptr;
            if (segments_[segIndex].compare_exchange_strong(
                    expected, fresh, std::memory_order_acq_rel,
                    std::memory_order_acquire))
                seg = fresh;
            else {
                delete[] fresh; // a racing carver installed it first
                seg = expected;
            }
        }
        StreamBin *b = &seg[index % kSegmentBins];
        b->id = idBase_ + index;
        return b;
    }

    /** Recycle a create-race loser's speculative bin. */
    void
    pushSpare(StreamBin *b)
    {
        const std::uint32_t index = b->id - idBase_;
        std::uint64_t head =
            spareHead_.load(std::memory_order_relaxed);
        for (;;) {
            b->spareNext.store(static_cast<std::uint32_t>(head),
                               std::memory_order_relaxed);
            const std::uint64_t tagged =
                ((head >> 32) + 1) << 32 | (index + 1);
            if (spareHead_.compare_exchange_weak(
                    head, tagged, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return;
        }
    }

    StreamBin *
    takeSpare()
    {
        std::uint64_t head =
            spareHead_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t slot =
                static_cast<std::uint32_t>(head);
            if (slot == 0)
                return nullptr;
            StreamBin *b = binAt(slot - 1);
            // A pushed spare was fully carved first; the push's
            // release edge makes its segment visible here.
            LSCHED_ASSERT(b, "spare-stack entry precedes its segment");
            const std::uint32_t next =
                b->spareNext.load(std::memory_order_relaxed);
            const std::uint64_t tagged =
                ((head >> 32) + 1) << 32 | next;
            // The tag forbids the ABA unlink (see the group pool).
            if (spareHead_.compare_exchange_weak(
                    head, tagged, std::memory_order_acq_rel,
                    std::memory_order_acquire))
                return b;
        }
    }

    /**
     * Spin-yield until the grower replaces @p old — or gives up: a
     * growth that failed to allocate thaws its frozen slots and
     * clears growing_, after which retrying the probe in the still-
     * live old array is correct.
     */
    void
    waitForGrowth(const Table *old)
    {
        while (current_.load(std::memory_order_acquire) == old &&
               growing_.load(std::memory_order_acquire))
            std::this_thread::yield();
    }

    /**
     * Replace @p t with a double-size table. One caller becomes the
     * grower; everyone else returns (and, if they need the result,
     * waits via waitForGrowth).
     */
    void
    grow(Table *t)
    {
        if (growing_.exchange(true, std::memory_order_acq_rel))
            return;
        if (current_.load(std::memory_order_acquire) != t) {
            // Someone already replaced it between our trigger and the
            // flag: nothing to do for this generation.
            growing_.store(false, std::memory_order_release);
            return;
        }
        // Freeze: claim every remaining null slot so no insert can
        // land in the old array once the sweep has passed it.
        for (std::size_t i = 0; i <= t->mask; ++i) {
            StreamBin *expected = nullptr;
            t->slots[i].compare_exchange_strong(
                expected, frozenSlot(), std::memory_order_acq_rel,
                std::memory_order_acquire);
        }
        Table *bigger = nullptr;
        try {
            // Fail point standing in for the doubled-array OOM below
            // (same site name as the probe-path carve, so chaos specs
            // reach the unwind too).
            if (LSCHED_FAILPOINT_HIT("bintable.grow"))
                throw std::bad_alloc();
            bigger = makeTable((t->mask + 1) * 2);
        } catch (...) {
            // Unwind to a live table: thaw the slots this freeze
            // claimed and hand the grower role back, so the failure
            // propagates as a recoverable bad_alloc instead of
            // wedging every prober in waitForGrowth() forever.
            for (std::size_t i = 0; i <= t->mask; ++i) {
                StreamBin *expected = frozenSlot();
                t->slots[i].compare_exchange_strong(
                    expected, nullptr, std::memory_order_acq_rel,
                    std::memory_order_acquire);
            }
            growing_.store(false, std::memory_order_release);
            throw;
        }
        for (std::size_t i = 0; i <= t->mask; ++i) {
            StreamBin *b =
                t->slots[i].load(std::memory_order_acquire);
            if (b && b != frozenSlot())
                robinHoodInsert(*bigger, b);
        }
        bigger->older = t;
        current_.store(bigger, std::memory_order_release);
        growing_.store(false, std::memory_order_release);
    }

    /**
     * Single-threaded robin-hood insert used during migration: evict
     * richer residents (shorter probe distance) in favor of poorer
     * arrivals, bounding the variance of probe sequences in a way the
     * lock-free fast path cannot maintain online.
     */
    static void
    robinHoodInsert(Table &t, StreamBin *b)
    {
        std::size_t dist = 0;
        for (std::size_t i = b->hashVal & t.mask;;
             i = (i + 1) & t.mask, ++dist) {
            StreamBin *resident =
                t.slots[i].load(std::memory_order_relaxed);
            if (!resident) {
                t.slots[i].store(b, std::memory_order_relaxed);
                return;
            }
            const std::size_t residentDist =
                (i - (resident->hashVal & t.mask)) & t.mask;
            if (residentDist < dist) {
                t.slots[i].store(b, std::memory_order_relaxed);
                b = resident;
                dist = residentDist;
            }
        }
    }

    const unsigned dims_;
    const std::uint32_t idBase_;
    std::atomic<Table *> current_{nullptr};
    std::atomic<bool> growing_{false};
    /** Bins published into slots (load-factor trigger). */
    std::atomic<std::size_t> published_{0};
    std::atomic<std::uint32_t> carveNext_{0};
    /** Tagged spare-stack head: (ABA tag << 32) | (arena index + 1). */
    std::atomic<std::uint64_t> spareHead_{0};
    /** Segment directory; slots install once via CAS and stay put. */
    std::unique_ptr<std::atomic<Segment>[]> segments_ =
        std::make_unique<std::atomic<Segment>[]>(kMaxSegments);
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_CONCURRENT_BIN_TABLE_HH
