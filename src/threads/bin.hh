/**
 * @file
 * The scheduling bin (paper Section 3.2): carries a search key (the
 * block coordinates, plus its cached hash for the open-addressing
 * table) and two links — the chain of thread groups scheduled into
 * the bin, and the ready-list link used for run-time traversal.
 */

#ifndef LSCHED_THREADS_BIN_HH
#define LSCHED_THREADS_BIN_HH

#include <cstdint>

#include "threads/hints.hh"
#include "threads/thread_group.hh"

namespace lsched::threads
{

/** Super-bin id of bins placed by a non-hierarchical policy. */
constexpr std::uint32_t kNoSuperBin = 0xffffffffu;

/** One bin of the scheduling space. */
struct Bin
{
    /** Search key: block coordinates in the scheduling space. */
    BlockCoords coords{};

    /** Stable allocation index, used as the bin's trace identity. */
    std::uint32_t id = 0;

    /**
     * Second-level placement group (TopologyPlacement): bins of
     * one super-bin are toured contiguously and handed to a parallel
     * worker as a unit. kNoSuperBin under flat placements.
     */
    std::uint32_t superBin = kNoSuperBin;

    /** Cached hash of coords (avoids re-mixing on probe and rehash). */
    std::uint64_t hashVal = 0;

    /** Link 1: chain of thread groups, in fork order. */
    ThreadGroup *groupsHead = nullptr;
    ThreadGroup *groupsTail = nullptr;

    /** Link 2: next bin on the ready list (allocation order). */
    Bin *readyNext = nullptr;

    /** Threads currently scheduled in this bin. */
    std::uint64_t threadCount = 0;

    /**
     * Streaming intake: how many times this bin has been sealed this
     * stream (each seal detaches the group chain and re-opens the
     * bin for new forks), and total threads admitted across epochs.
     */
    std::uint32_t streamEpoch = 0;
    std::uint64_t streamTotalThreads = 0;

    /** True while the bin is linked on the ready list. */
    bool onReadyList = false;

    /** Detach all thread groups (they go back to the pool). */
    void
    clearGroups()
    {
        groupsHead = nullptr;
        groupsTail = nullptr;
        threadCount = 0;
    }
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_BIN_HH
