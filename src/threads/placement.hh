/**
 * @file
 * The placement layer: *where* a forked thread goes.
 *
 * The paper marries a placement policy (hash address hints into
 * cache-sized blocks) to an execution mechanism (run each bin to
 * completion). This interface makes the policy half first-class and
 * swappable — BubbleSched-style — so a new placement is one class, not
 * a cross-cutting change to fork()/BinTable:
 *
 *  - BlockHashPlacement — the paper's algorithm: hints divide into
 *    block coordinates (block_map.hh), with optional symmetric-hint
 *    folding. The default, and the only policy that uses the hints'
 *    *values*.
 *  - RoundRobinPlacement — the locality-oblivious baseline: forks
 *    cycle over a fixed set of bins regardless of hints, giving the
 *    same bin count and occupancy as a hashed placement but scrambled
 *    membership. Benches previously faked this by zeroing hints.
 *  - HierarchicalPlacement — two-level: hints map to an L2 block as
 *    in BlockHash, and blocks additionally group into worker-sized
 *    super-bins (a bubble at bin granularity). The parallel tour
 *    keeps a super-bin's bins contiguous and the partitioner hands
 *    whole super-bins to one worker.
 *
 * A policy may be stateful (RoundRobin's cursor, Hierarchical's
 * super-bin ids); place() is therefore non-const. The scheduler calls
 * it only from fork(), which is single-threaded by construction.
 */

#ifndef LSCHED_THREADS_PLACEMENT_HH
#define LSCHED_THREADS_PLACEMENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "threads/bin.hh"
#include "threads/block_map.hh"
#include "threads/hints.hh"

namespace lsched::threads
{

/** Selectable placement policies (SchedulerConfig::placement). */
enum class PlacementKind : std::uint8_t
{
    /** The paper's hint→block hash (block_map.hh). */
    BlockHash,
    /** Locality-oblivious round-robin over a fixed bin count. */
    RoundRobin,
    /** Block hash plus worker-sized super-bin grouping. */
    Hierarchical,
};

/** Printable name of a placement ("blockhash", ...). */
const char *placementName(PlacementKind kind);

/** Parse a placement name; false (and *out untouched) when unknown. */
bool tryPlacementFromName(const std::string &name, PlacementKind *out);

/** Parse a placement name; fatal on an unknown one (CLI path). */
PlacementKind placementFromName(const std::string &name);

/** Where one fork lands. */
struct PlacementDecision
{
    /** Block coordinates — the bin's search key. */
    BlockCoords coords{};
    /** Super-bin group; kNoSuperBin under flat placements. */
    std::uint32_t superBin = kNoSuperBin;
};

/** Hint vector → bin decision (the policy half of the scheduler). */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy();

    /** Decide the bin for a fork with the given hints. */
    virtual PlacementDecision place(std::span<const Hint> hints) = 0;

    /**
     * Answer where a fork with these hints *would* land without
     * committing any policy state: RoundRobin's cursor stays put and
     * Hierarchical assigns no new super-bin id (reporting kNoSuperBin
     * for a super-bin not yet created by a real place()). Inspection
     * paths — coordsFor(), stats, tests — must use this, never
     * place().
     */
    virtual PlacementDecision peek(std::span<const Hint> hints) const = 0;

    /** Which policy this is. */
    virtual PlacementKind kind() const = 0;

    /**
     * True when place() touches no mutable policy state, i.e. it is
     * safe to call concurrently from streaming producers without the
     * session's placement lock.
     */
    virtual bool stateless() const { return false; }

    /** True when place() assigns super-bins. */
    virtual bool hierarchical() const { return false; }

    /** Printable policy name. */
    const char *name() const { return placementName(kind()); }
};

/** The paper's placement: block-hash the hints (+ symmetric fold). */
class BlockHashPlacement final : public PlacementPolicy
{
  public:
    BlockHashPlacement(unsigned dims, std::uint64_t blockBytes,
                       bool symmetric)
        : map_(dims, blockBytes, symmetric)
    {
    }

    PlacementDecision
    place(std::span<const Hint> hints) override
    {
        return {map_.coordsFor(hints), kNoSuperBin};
    }

    PlacementDecision
    peek(std::span<const Hint> hints) const override
    {
        return {map_.coordsFor(hints), kNoSuperBin};
    }

    PlacementKind kind() const override
    {
        return PlacementKind::BlockHash;
    }

    bool stateless() const override { return true; }

    /** The underlying hint→block map (tests, fiber scheduler). */
    const BlockMap &blockMap() const { return map_; }

  private:
    BlockMap map_;
};

/** Locality-oblivious baseline: forks cycle over @p bins bins. */
class RoundRobinPlacement final : public PlacementPolicy
{
  public:
    /** Bins cycled over when the config leaves the count at 0. */
    static constexpr std::uint64_t kDefaultBins = 64;

    explicit RoundRobinPlacement(std::uint64_t bins)
        : bins_(bins ? bins : kDefaultBins)
    {
    }

    PlacementDecision
    place(std::span<const Hint>) override
    {
        PlacementDecision d;
        d.coords[0] = next_++ % bins_;
        return d;
    }

    /** Where the *next* fork will land; the cursor does not move. */
    PlacementDecision
    peek(std::span<const Hint>) const override
    {
        PlacementDecision d;
        d.coords[0] = next_ % bins_;
        return d;
    }

    PlacementKind kind() const override
    {
        return PlacementKind::RoundRobin;
    }

  private:
    std::uint64_t bins_;
    std::uint64_t next_ = 0;
};

/**
 * Two-level placement: the paper's block hash for the bin, plus a
 * coarser super-bin — @p fan adjacent blocks per dimension — that the
 * parallel partitioner keeps on one worker. Super-bin ids are assigned
 * in creation order, so grouping the tour by id is deterministic.
 */
class HierarchicalPlacement final : public PlacementPolicy
{
  public:
    /** Blocks per super-bin per dimension when the config says 0. */
    static constexpr std::uint64_t kDefaultFan = 4;

    HierarchicalPlacement(unsigned dims, std::uint64_t blockBytes,
                          bool symmetric, std::uint64_t fan)
        : map_(dims, blockBytes, symmetric), fan_(fan ? fan : kDefaultFan)
    {
    }

    PlacementDecision place(std::span<const Hint> hints) override;

    PlacementDecision peek(std::span<const Hint> hints) const override;

    PlacementKind kind() const override
    {
        return PlacementKind::Hierarchical;
    }

    bool hierarchical() const override { return true; }

    /** Super-bins created so far. */
    std::size_t superBinCount() const { return superIds_.size(); }

  private:
    BlockMap map_;
    std::uint64_t fan_;
    /** Super-bin coordinates → creation-order id. */
    std::map<BlockCoords, std::uint32_t> superIds_;
};

/**
 * Build the placement a SchedulerConfig selects. @p roundRobinBins
 * and @p superBinFan are the policy parameters (0 = policy default);
 * policies that do not use them ignore them.
 */
std::unique_ptr<PlacementPolicy>
makePlacement(PlacementKind kind, unsigned dims,
              std::uint64_t blockBytes, bool symmetricHints,
              std::uint64_t roundRobinBins, std::uint64_t superBinFan);

} // namespace lsched::threads

#endif // LSCHED_THREADS_PLACEMENT_HH
