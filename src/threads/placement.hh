/**
 * @file
 * The placement layer: *where* a forked thread goes.
 *
 * The paper marries a placement policy (hash address hints into
 * cache-sized blocks) to an execution mechanism (run each bin to
 * completion). This interface makes the policy half first-class and
 * swappable — BubbleSched-style — so a new placement is one class, not
 * a cross-cutting change to fork()/BinTable:
 *
 *  - BlockHashPlacement — the paper's algorithm: hints divide into
 *    block coordinates (block_map.hh), with optional symmetric-hint
 *    folding. The default, and the only policy that uses the hints'
 *    *values*.
 *  - RoundRobinPlacement — the locality-oblivious baseline: forks
 *    cycle over a fixed set of bins regardless of hints, giving the
 *    same bin count and occupancy as a hashed placement but scrambled
 *    membership. Benches previously faked this by zeroing hints.
 *  - TopologyPlacement — two-level: hints map to an L2 block as in
 *    BlockHash, and blocks additionally group into super-bins (a
 *    bubble at bin granularity) sized to the machine's cache-domain
 *    tree: with topology=auto the block bytes come from the
 *    discovered L2 size and the fan from the L2-groups-per-L3-cluster
 *    ratio (machine/topology.hh), with the blockBytes/superBinFan
 *    knobs kept as overrides. The parallel tour keeps a super-bin's
 *    bins contiguous, the partitioner hands whole super-bins to one
 *    worker, and domainOf() maps each super-bin onto an L2 domain so
 *    the workers pinned into that domain execute it.
 *  - AdaptivePlacement (threads/adapt.hh) — wraps any of the above
 *    and re-derives its parameters (blockBytes, superBinFan, bin
 *    count) from the online miss attribution the continuous profiler
 *    collects. Retuning happens only at safe boundaries — the owner
 *    calls maybeRetune() between tours / at stream epoch ticks, never
 *    mid-tour.
 *
 * A policy may be stateful (RoundRobin's cursor, Hierarchical's
 * super-bin ids); place() is therefore non-const. The scheduler calls
 * it only from fork(), which is single-threaded by construction.
 */

#ifndef LSCHED_THREADS_PLACEMENT_HH
#define LSCHED_THREADS_PLACEMENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "threads/bin.hh"
#include "threads/block_map.hh"
#include "threads/hints.hh"

namespace lsched::threads
{

/** Selectable placement policies (SchedulerConfig::placement). */
enum class PlacementKind : std::uint8_t
{
    /** The paper's hint→block hash (block_map.hh). */
    BlockHash,
    /** Locality-oblivious round-robin over a fixed bin count. */
    RoundRobin,
    /** Block hash plus worker-sized super-bin grouping. */
    Hierarchical,
    /** Self-tuning wrapper over a base policy (threads/adapt.hh). */
    Adaptive,
};

/** Printable name of a placement ("blockhash", ...). */
const char *placementName(PlacementKind kind);

/** Parse a placement name; false (and *out untouched) when unknown. */
bool tryPlacementFromName(const std::string &name, PlacementKind *out);

/** Parse a placement name; fatal on an unknown one (CLI path). */
PlacementKind placementFromName(const std::string &name);

/** Where one fork lands. */
struct PlacementDecision
{
    /** Block coordinates — the bin's search key. */
    BlockCoords coords{};
    /** Super-bin group; kNoSuperBin under flat placements. */
    std::uint32_t superBin = kNoSuperBin;
};

/**
 * What the adaptive tuner thinks the workload's cache behavior is.
 * Numeric values are ABI (th_stats_t::adapt_regime, the
 * sched.adapt.regime gauge) — append only.
 */
enum class AdaptRegime : std::uint8_t
{
    /** Not enough observations yet (or the placement isn't adaptive). */
    Warmup = 0,
    /** Miss rate at or below the target: the compulsory floor. */
    Floor = 1,
    /** Between the target and the capacity threshold; holding. */
    Neutral = 2,
    /** Miss rate above the capacity threshold: blocks overflow L2. */
    Capacity = 3,
    /** Dwell-only mode: a probe retune is in flight, being judged. */
    Probing = 4,
};

/** Printable regime name ("warmup", "floor", ...). */
const char *adaptRegimeName(AdaptRegime regime);

/** State of an AdaptivePlacement (all-zero for other policies). */
struct AdaptSnapshot
{
    /** True when the reporting policy is adaptive. */
    bool active = false;
    /** Current regime classification. */
    AdaptRegime regime = AdaptRegime::Warmup;
    /** Block dimension currently in force. */
    std::uint64_t blockBytes = 0;
    /** Super-bin fan currently in force (hierarchical base only). */
    std::uint64_t superBinFan = 0;
    /** Bin count currently in force (round-robin base only). */
    std::uint64_t roundRobinBins = 0;
    /** Profiler epochs the tuner consumed. */
    std::uint64_t observations = 0;
    /** Parameter swaps applied (shrinks + grows + reverts). */
    std::uint64_t retunes = 0;
    /** Block halvings (or round-robin bin doublings). */
    std::uint64_t shrinks = 0;
    /** Block doublings back toward the configured maximum. */
    std::uint64_t grows = 0;
    /** Dwell-only probes rolled back for not improving. */
    std::uint64_t reverts = 0;
};

/** Hint vector → bin decision (the policy half of the scheduler). */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy();

    /** Decide the bin for a fork with the given hints. */
    virtual PlacementDecision place(std::span<const Hint> hints) = 0;

    /**
     * Answer where a fork with these hints *would* land without
     * committing any policy state: RoundRobin's cursor stays put and
     * Hierarchical assigns no new super-bin id (reporting kNoSuperBin
     * for a super-bin not yet created by a real place()). Inspection
     * paths — coordsFor(), stats, tests — must use this, never
     * place().
     */
    virtual PlacementDecision peek(std::span<const Hint> hints) const = 0;

    /** Which policy this is. */
    virtual PlacementKind kind() const = 0;

    /**
     * True when place() touches no mutable policy state, i.e. it is
     * safe to call concurrently from streaming producers without the
     * session's placement lock.
     */
    virtual bool stateless() const { return false; }

    /** True when place() assigns super-bins. */
    virtual bool hierarchical() const { return false; }

    /**
     * Give the policy a chance to retune itself from online feedback.
     * Only the adaptive policy does anything; the owner must call this
     * exclusively at safe boundaries (between tours, at stream epoch
     * ticks), never while a tour is placing against fixed block dims.
     * Returns true when the placement parameters changed.
     */
    virtual bool maybeRetune() { return false; }

    /** Adaptive-tuner state; all-zero for non-adaptive policies. */
    virtual AdaptSnapshot adaptSnapshot() const { return {}; }

    /**
     * The policy place() should dispatch to right now. The adaptive
     * wrapper returns its current inner generation so the batch fork
     * path skips the wrapper's indirection entirely; everything else
     * returns itself. Only stable until the next maybeRetune(), so
     * callers must re-fetch wherever they call that.
     */
    virtual PlacementPolicy *hotPolicy() { return this; }

    /** Printable policy name. */
    const char *name() const { return placementName(kind()); }
};

/** The paper's placement: block-hash the hints (+ symmetric fold). */
class BlockHashPlacement final : public PlacementPolicy
{
  public:
    BlockHashPlacement(unsigned dims, std::uint64_t blockBytes,
                       bool symmetric)
        : map_(dims, blockBytes, symmetric)
    {
    }

    PlacementDecision
    place(std::span<const Hint> hints) override
    {
        return {map_.coordsFor(hints), kNoSuperBin};
    }

    PlacementDecision
    peek(std::span<const Hint> hints) const override
    {
        return {map_.coordsFor(hints), kNoSuperBin};
    }

    PlacementKind kind() const override
    {
        return PlacementKind::BlockHash;
    }

    bool stateless() const override { return true; }

    /** The underlying hint→block map (tests, fiber scheduler). */
    const BlockMap &blockMap() const { return map_; }

  private:
    BlockMap map_;
};

/** Locality-oblivious baseline: forks cycle over @p bins bins. */
class RoundRobinPlacement final : public PlacementPolicy
{
  public:
    /** Bins cycled over when the config leaves the count at 0. */
    static constexpr std::uint64_t kDefaultBins = 64;

    explicit RoundRobinPlacement(std::uint64_t bins)
        : bins_(bins ? bins : kDefaultBins)
    {
    }

    PlacementDecision
    place(std::span<const Hint>) override
    {
        PlacementDecision d;
        d.coords[0] = next_++ % bins_;
        return d;
    }

    /** Where the *next* fork will land; the cursor does not move. */
    PlacementDecision
    peek(std::span<const Hint>) const override
    {
        PlacementDecision d;
        d.coords[0] = next_ % bins_;
        return d;
    }

    PlacementKind kind() const override
    {
        return PlacementKind::RoundRobin;
    }

  private:
    std::uint64_t bins_;
    std::uint64_t next_ = 0;
};

/**
 * Two-level placement: the paper's block hash for the bin, plus a
 * coarser super-bin — @p fan adjacent blocks per dimension — that the
 * parallel partitioner keeps on one worker. Super-bin ids are assigned
 * in creation order, so grouping the tour by id is deterministic.
 * Under topology=auto the constructor parameters arrive pre-derived
 * from the discovered cache tree (validated() materializes blockBytes
 * from the L2 size and fan from the groups-per-cluster ratio); the
 * policy itself stays hardware-agnostic. Config/ABI name remains
 * "hierarchical" (PlacementKind::Hierarchical).
 */
class TopologyPlacement final : public PlacementPolicy
{
  public:
    /** Blocks per super-bin per dimension when the config says 0 and
     *  no topology ratio applies. */
    static constexpr std::uint64_t kDefaultFan = 4;

    TopologyPlacement(unsigned dims, std::uint64_t blockBytes,
                      bool symmetric, std::uint64_t fan)
        : map_(dims, blockBytes, symmetric), fan_(fan ? fan : kDefaultFan)
    {
    }

    /**
     * The L2 domain a bin executes in when @p domains cache domains
     * are active: super-bins spread round-robin, flat bins fall back
     * to their tour id. The partitioner and the pin plan agree on this
     * map, which is what makes cluster-aware pinning line up.
     */
    static std::uint32_t domainOf(std::uint32_t superBin,
                                  std::uint32_t binId,
                                  std::uint32_t domains)
    {
        const std::uint32_t key = superBin == kNoSuperBin ? binId : superBin;
        return domains == 0 ? 0 : key % domains;
    }

    PlacementDecision place(std::span<const Hint> hints) override;

    PlacementDecision peek(std::span<const Hint> hints) const override;

    PlacementKind kind() const override
    {
        return PlacementKind::Hierarchical;
    }

    bool hierarchical() const override { return true; }

    /** Super-bins created so far. */
    std::size_t superBinCount() const { return superIds_.size(); }

  private:
    BlockMap map_;
    std::uint64_t fan_;
    /** Super-bin coordinates → creation-order id. */
    std::map<BlockCoords, std::uint32_t> superIds_;
};

/**
 * Build the placement a SchedulerConfig selects. @p roundRobinBins
 * and @p superBinFan are the policy parameters (0 = policy default);
 * policies that do not use them ignore them.
 */
std::unique_ptr<PlacementPolicy>
makePlacement(PlacementKind kind, unsigned dims,
              std::uint64_t blockBytes, bool symmetricHints,
              std::uint64_t roundRobinBins, std::uint64_t superBinFan);

} // namespace lsched::threads

#endif // LSCHED_THREADS_PLACEMENT_HH
