/**
 * @file
 * The paper's user interface, verbatim (Section 3.1):
 *
 *   th_init(blocksize, hashsize)  — set block size and hash table
 *       size; may be called more than once; 0 selects the
 *       configuration-dependent default.
 *   th_fork(f, arg1, arg2, hint1, hint2, hint3) — create and schedule
 *       a thread to call f(arg1, arg2); hints are memory addresses;
 *       hint3 == 0 gives the two-dimensional case, hint2 == hint3 == 0
 *       the one-dimensional case.
 *   th_run(keep) — run all scheduled threads and return; thread
 *       specifications are destroyed if keep is 0, saved for
 *       re-execution otherwise.
 *
 * The functions return no values; there are no thread handles and no
 * per-thread operations. State lives in one process-global scheduler;
 * th_default_scheduler() exposes it for inspection and statistics.
 *
 * Beyond the paper's surface, configuration goes through one
 * string-keyed pair — th_configure(key, value) / th_config_get() —
 * that reaches every SchedulerConfig knob (th_init and the
 * th_set_placement/th_set_backend selectors are shims over it), and
 * th_stream_begin()/th_stream_end() open a streaming admission
 * session in which th_fork is safe from any OS thread while sealed
 * bins drain concurrently.
 *
 * Error model at this boundary: C callers cannot catch C++
 * exceptions, so every recoverable error (bad configuration, API
 * misuse, a StopTour fault, an injected allocation failure) is caught
 * here, recorded per-thread, and reported through th_last_error();
 * an optional process-wide handler (th_set_error_handler) is invoked
 * at the point of failure. Library invariant violations still
 * panic/abort.
 */

#ifndef LSCHED_THREADS_C_API_HH
#define LSCHED_THREADS_C_API_HH

#include <cstddef>

#include "threads/scheduler.hh"

/**
 * Set block size and hash table size (0 = default).
 *
 * @deprecated Legacy shim, kept for source and ABI compatibility with
 * the paper's interface. New code should call
 * th_configure("block_bytes", ...) / th_configure("hash_buckets", ...)
 * — the one surface that reaches every knob and reports errors
 * through th_last_error(). See the README deprecation table.
 */
void th_init(std::size_t blocksize, std::size_t hashsize);

/** Create and schedule a thread to call f(arg1, arg2). */
void th_fork(void (*f)(void *, void *), void *arg1, void *arg2,
             const void *hint1, const void *hint2, const void *hint3);

/** Run all scheduled threads; keep != 0 preserves them for re-runs. */
void th_run(int keep);

/**
 * Run all scheduled threads across @p workers CPUs (Section 7);
 * workers == 0 uses the hardware concurrency, workers <= 1 falls back
 * to the serial th_run. The worker pool persists between calls (see
 * SchedulerConfig::persistentPool), so repeat tours pay no thread
 * creation cost.
 */
void th_run_parallel(int workers, int keep);

/** The global scheduler behind the C interface. */
lsched::threads::LocalityScheduler &th_default_scheduler();

extern "C" {

/**
 * Snapshot of the global scheduler's occupancy statistics, as a plain
 * C struct so C and Fortran callers can report the paper's
 * threads-per-bin numbers without touching the C++ types.
 *
 * ABI rule: this struct is append-only. New fields go at the END,
 * never between existing ones and never replacing them, so a caller
 * compiled against an older header keeps reading the offsets it knows
 * about from the (larger) struct a newer library returns by value.
 * The Fortran mirror th_stats_() indexes the same fields in the same
 * order; extend both together.
 *
 * FROZEN (v1): after five releases of appended fields this struct is
 * the legacy snapshot — it keeps working exactly as documented, but
 * no further fields will be added. New and future counters are
 * published through the named-metric surface instead:
 * th_metric_count() / th_metric_name() / th_metric_get().
 */
typedef struct th_stats_t
{
    unsigned long long pending_threads;
    unsigned long long executed_threads;
    unsigned long long bins;
    unsigned long long occupied_bins;
    unsigned long long max_hash_chain;
    unsigned long long tour_length;
    /** Parallel worker pool: OS threads ever spawned, bins stolen
     *  across segments, and worker park episodes (th_run_parallel). */
    unsigned long long pool_threads_spawned;
    unsigned long long pool_steals;
    unsigned long long pool_parks;
    /** Active placement policy: 0 blockhash, 1 roundrobin,
     *  2 hierarchical (see th_set_placement). */
    int placement;
    /** Active execution backend: 0 serial, 1 pooled, 2 coldspawn
     *  (see th_set_backend). */
    int backend;
    /** Distribution over non-empty bins; all 0 when no bin is. */
    double threads_per_bin_mean;
    double threads_per_bin_min;
    double threads_per_bin_max;
    double threads_per_bin_stddev;
    /* -- appended fields below; see the ABI rule above -- */
    /** User threads whose exception was contained (lifetime). */
    unsigned long long faulted_threads;
    /** Faults contained by the most recent run/stream (total, not
     *  just the collected sample). */
    unsigned long long last_fault_count;
    /** Streaming admission (th_stream_begin/th_stream_end): threads
     *  admitted, threads drained, sealed-bin work items produced. */
    unsigned long long stream_forked;
    unsigned long long stream_executed;
    unsigned long long stream_seals;
    /** Producer blocks at the stream_max_pending bound, and sealed
     *  bins producers drained inline instead of blocking. */
    unsigned long long stream_backpressure_waits;
    unsigned long long stream_inline_drains;
    /** Live stream backlog (admitted, not yet executed) and the
     *  highest backlog observed. */
    unsigned long long stream_backlog;
    unsigned long long stream_peak_backlog;
    /** Recovery layer (threads/recovery.hh): deadline expiries and
     *  watchdog-escalated cancellations (lifetime). */
    unsigned long long recover_deadlines;
    unsigned long long recover_watchdog_cancels;
    /** Bins and threads dropped by cooperative cancellation. */
    unsigned long long recover_cancelled_bins;
    unsigned long long recover_cancelled_threads;
    /** Streaming admission backoff rounds that made no progress, and
     *  admissions that exhausted stream_admit_retries. */
    unsigned long long recover_admission_retries;
    unsigned long long recover_admission_timeouts;
    /** Overload governor: load-shedding episodes (force-sealed stream
     *  shards), tours stepped down to the serial path, and completed
     *  Degraded -> Recovered transitions. */
    unsigned long long recover_load_sheds;
    unsigned long long recover_degraded_tours;
    unsigned long long recover_recoveries;
    /** Governor state now: 0 healthy, 1 backoff, 2 degraded,
     *  3 recovered. */
    int recover_state;
    /** Adaptive placement (placement "adaptive"): parameter swaps
     *  applied and profiler epochs consumed; 0 when not adaptive. */
    unsigned long long adapt_retunes;
    unsigned long long adapt_observations;
    /** Block dims / super-bin fan currently in force (adaptive). */
    unsigned long long adapt_block_bytes;
    unsigned long long adapt_super_bin_fan;
    /** Tuner regime: 0 warmup, 1 floor, 2 neutral, 3 capacity,
     *  4 probing (dwell-only probe in flight). */
    int adapt_regime;
    /** Workers whose CPU-affinity pin failed (they run unpinned), and
     *  pool steals that crossed a cache-domain boundary under
     *  topology-aware placement. */
    unsigned long long pool_pin_failed;
    unsigned long long pool_cross_domain_steals;
} th_stats_t;

/** Statistics of the scheduler behind th_fork/th_run. */
th_stats_t th_stats(void);

/**
 * Snapshot of the cache topology driving the global scheduler's
 * placement (the "topology" config key; threads/scheduler.hh's
 * TopologySnapshot). Append-only like th_stats_t. All counts are zero
 * when placement is flat — topology "flat", or "auto" on a host whose
 * sysfs exposes no cache tree.
 */
typedef struct th_topology_t
{
    /** 1 when a cache tree is active, 0 for flat placement. */
    int active;
    /** Where the tree came from: 0 flat, 1 sysfs, 2 spec string. */
    int source;
    unsigned packages;
    unsigned l3_clusters;
    unsigned l2_groups;
    unsigned cpus;
    unsigned smt_per_core;
    unsigned long long l2_bytes;
    unsigned long long l3_bytes;
    /** super_bin_fan the tree derives when that knob is left 0. */
    unsigned long long derived_fan;
    /** Cache-domain teams of the most recent parallel tour (0 until a
     *  topology-partitioned tour has run). */
    unsigned domains;
    unsigned domain_workers;
} th_topology_t;

/** Topology snapshot of the scheduler behind th_fork/th_run. */
th_topology_t th_topology(void);

/**
 * Write the human-readable one-line topology summary (source, shape,
 * cache sizes) into @p buf, NUL-terminated and truncated to @p len
 * bytes. Returns the full summary length (excluding the NUL, à la
 * snprintf), or -1 on NULL buf with len > 0.
 */
int th_topology_summary(char *buf, std::size_t len);

/**
 * The unified configuration surface: set one scheduler config knob by
 * its string key ("placement", "backend", "tour", "stream_max_pending",
 * ... — every SchedulerConfig field in snake_case; see
 * threads/config_keys.hh for the table and README for the key list).
 * Reconfigures the global scheduler like th_init, so it requires no
 * threads pending or running. Returns 0 on success, -1 on an unknown
 * key, an unparsable value, or a rejected reconfiguration (the reason
 * lands in th_last_error()). th_init, th_set_placement, and
 * th_set_backend are thin shims over this call.
 */
int th_configure(const char *key, const char *value);

/**
 * Read one config knob back. Writes the value (formatted so feeding
 * it to th_configure reproduces the setting) into @p buf,
 * NUL-terminated and truncated to @p len bytes. Returns the full
 * value length (excluding the NUL, à la snprintf) so callers can size
 * a retry, or -1 on an unknown key or NULL buf with len > 0.
 */
int th_config_get(const char *key, char *buf, std::size_t len);

/**
 * Number of canonical configuration keys th_configure understands
 * (the "profile.*" family included), so clients can discover the
 * surface programmatically instead of hard-coding the key list.
 * Enumerate them with th_config_key().
 */
int th_config_keys(void);

/**
 * Write the canonical name of configuration key @p index
 * (0 <= index < th_config_keys(), documentation order) into @p buf,
 * NUL-terminated and truncated to @p len bytes. Returns the full name
 * length (excluding the NUL, à la snprintf), or -1 on an
 * out-of-range index or NULL buf with len > 0. Legacy camelCase
 * spellings are accepted as aliases by th_configure/th_config_get but
 * are not enumerated here.
 */
int th_config_key(int index, char *buf, std::size_t len);

/**
 * Named-metric surface over the scheduler's observability registry —
 * the replacement for growing th_stats_t (which is frozen as the v1
 * snapshot; no new fields will be appended). Every "sched.*" counter
 * and gauge th_stats_t carries is available here under its registry
 * name ("sched.threads.forked", "sched.stream.backlog", ...), plus
 * whatever instruments are live when metrics collection is on
 * (histograms surface as name.count / name.sum). Values the scheduler
 * synthesizes from its own statistics are always available, metrics
 * collection on or off.
 *
 * Number of metrics currently visible. Enumerate with
 * th_metric_name(); read with th_metric_get(). The count (and the
 * index order) can change when instruments appear — e.g. after the
 * first traced run — so enumerate by name, not by cached index.
 */
int th_metric_count(void);

/**
 * Write the name of metric @p index (0 <= index < th_metric_count())
 * into @p buf, NUL-terminated and truncated to @p len bytes. Returns
 * the full name length (excluding the NUL, à la snprintf), or -1 on
 * an out-of-range index or NULL buf with len > 0.
 */
int th_metric_name(int index, char *buf, std::size_t len);

/**
 * Read one metric by name into @p value (counters and integer gauges
 * verbatim; floating-point gauges rounded to the nearest integer).
 * Returns 0 on success, -1 on an unknown name or NULL argument (the
 * reason lands in th_last_error()).
 */
int th_metric_get(const char *name, unsigned long long *value);

/**
 * Select the placement policy of the global scheduler by name
 * ("blockhash", "roundrobin", "hierarchical", "adaptive"). Shim over
 * th_configure("placement", name); same contract. Returns 0 on
 * success, -1 on an unknown name or a rejected reconfiguration (the
 * reason lands in th_last_error()).
 *
 * @deprecated Call th_configure("placement", name) directly; the shim
 * survives for compatibility only. See the README deprecation table.
 */
int th_set_placement(const char *name);

/**
 * Select the execution backend of the global scheduler by name
 * ("serial", "pooled", "coldspawn"). Shim over
 * th_configure("backend", name). Returns 0 on success, -1 on error.
 *
 * @deprecated Call th_configure("backend", name) directly; the shim
 * survives for compatibility only. See the README deprecation table.
 */
int th_set_backend(const char *name);

/**
 * Arm (or disarm, with 0) the tour/epoch deadline of the global
 * scheduler: after @p millis milliseconds a running tour — or a
 * streaming epoch that retires nothing while a backlog stands — is
 * cooperatively cancelled at the next bin boundary and surfaced as a
 * recoverable deadline error (see SchedulerConfig::deadlineMillis).
 * Shim over th_configure("deadline_millis", ...); same contract.
 * Returns 0 on success, -1 on a negative value or a rejected
 * reconfiguration (the reason lands in th_last_error()).
 *
 * @deprecated Call th_configure("deadline_millis", ...) directly; the
 * shim survives for compatibility only. See the README deprecation
 * table.
 */
int th_set_deadline(long long millis);

/**
 * Begin a streaming admission session on the global scheduler
 * (LocalityScheduler::streamBegin): th_fork becomes safe from any OS
 * thread, and sealed bins are drained concurrently while producers
 * keep forking. @p workers is the drain-helper count (0 = hardware
 * concurrency; ignored by the serial backend, which drains inline).
 * Returns 0 on success, -1 on error (threads already pending, a run
 * in progress, or a stream already open).
 */
int th_stream_begin(int workers);

/**
 * End the streaming session: seal every open bin, drain to empty,
 * and tear the session down. Returns the number of threads executed
 * by the whole stream, or -1 on error (no stream open, or a fault
 * under ErrorPolicy::Abort/StopTour — the message lands in
 * th_last_error()).
 */
long long th_stream_end(void);

/**
 * Enable continuous profiling (per-bin/per-worker PMU and dwell
 * attribution; obs/profile.hh). @p interval_ms > 0 also starts the
 * background snapshot flusher at that period; 0 keeps snapshots
 * manual (th_profile_snapshot / th_profile_report). Sinks and the
 * other knobs come from the profile.* config keys (th_configure).
 * Returns 0 on success, -1 when instrumentation is compiled out or
 * interval_ms is negative (the reason lands in th_last_error()).
 */
int th_profile_enable(long long interval_ms);

/** Stop profiling (and the snapshot flusher); data is kept for
 *  th_profile_report. */
void th_profile_disable(void);

/**
 * Take one snapshot into the engine's ring now. Returns its sequence
 * number, or -1 when profiling was never enabled (nothing to attribute)
 * or instrumentation is compiled out.
 */
long long th_profile_snapshot(void);

/**
 * Take a final snapshot and write a profiling report to @p path:
 * ".om"/".prom"/".txt" get OpenMetrics text, anything else JSONL of
 * the snapshot ring; "fd:N" writes JSONL to a file descriptor.
 * Returns 0 on success, -1 on a NULL path, I/O error, or when
 * instrumentation is compiled out.
 */
int th_profile_report(const char *path);

/** Turn event tracing and metrics collection on. */
void th_trace_enable(void);

/** Turn event tracing and metrics collection off. */
void th_trace_disable(void);

/**
 * Write the recorded event timeline as Chrome trace-event JSON
 * (load with Perfetto / chrome://tracing). Returns 0 on success,
 * -1 on I/O error or when tracing is compiled out.
 */
int th_trace_write(const char *path);

/**
 * Write the metrics registry to @p path (.json / .csv by extension,
 * text otherwise). Returns 0 on success, -1 on error.
 */
int th_metrics_write(const char *path);

/**
 * Message of the last recoverable error hit by the calling thread in
 * a th_* call, or NULL when none since the last th_clear_error().
 * The storage is thread-local and overwritten by the next error.
 */
const char *th_last_error(void);

/** Forget the calling thread's last error. */
void th_clear_error(void);

/**
 * Error handler hook: called (from the failing thread, at the point
 * of failure) with the message and @p user for every recoverable
 * error a th_* call contains. Pass NULL to remove. One process-wide
 * handler; th_last_error() works with or without it.
 */
typedef void (*th_error_handler_t)(const char *message, void *user);
void th_set_error_handler(th_error_handler_t handler, void *user);

/**
 * Arm the named fail point with a spec ("always", "once", "hit=N",
 * "every=N", "prob=P@seed", "off" — see support/failpoint.hh).
 * Returns 0 on success, -1 on a malformed spec or when fail points
 * are compiled out (the reason lands in th_last_error()).
 */
int th_failpoint_arm(const char *name, const char *spec);

/** Disarm one fail point (no-op when not armed). */
void th_failpoint_disarm(const char *name);

/** Disarm every fail point. */
void th_failpoint_disarm_all(void);

} // extern "C"

// Fortran-callable bindings (the paper's package shipped both C and
// Fortran interfaces). Fortran passes every argument by reference and
// appends a trailing underscore to external names; hints arrive as
// array elements, whose addresses are exactly the hint values.
extern "C" {

/** Fortran: CALL TH_INIT(BLOCKSIZE, HASHSIZE) — 0 selects defaults. */
void th_init_(const long *blocksize, const long *hashsize);

/**
 * Fortran: CALL TH_FORK(F, ARG1, ARG2, HINT1, HINT2, HINT3) — F is an
 * EXTERNAL subroutine taking two by-reference arguments; HINTn are
 * array elements (their addresses are the hints).
 */
void th_fork_(void (*f)(void *, void *), void *arg1, void *arg2,
              const void *hint1, const void *hint2, const void *hint3);

/** Fortran: CALL TH_RUN(KEEP). */
void th_run_(const int *keep);

/** Fortran: CALL TH_RUN_PARALLEL(WORKERS, KEEP). */
void th_run_parallel_(const int *workers, const int *keep);

/** Fortran: CALL TH_SET_PLACEMENT(KIND) — 0 blockhash, 1 roundrobin,
 *  2 hierarchical, 3 adaptive (numeric, avoiding Fortran hidden
 *  string lengths). */
void th_set_placement_(const int *kind);

/** Fortran: CALL TH_SET_BACKEND(KIND) — 0 serial, 1 pooled,
 *  2 coldspawn. */
void th_set_backend_(const int *kind);

/** Fortran: CALL TH_SET_DEADLINE(MILLIS) — MILLIS is INTEGER*8;
 *  0 disarms (see th_set_deadline). */
void th_set_deadline_(const long long *millis);

/** Fortran: CALL TH_STREAM_BEGIN(WORKERS) — see th_stream_begin. */
void th_stream_begin_(const int *workers);

/** Fortran: CALL TH_STREAM_END(EXECUTED) — EXECUTED receives the
 *  thread count, or -1 on error (INTEGER*8). */
void th_stream_end_(long long *executed);

/** Fortran: CALL TH_PROFILE_ENABLE(INTERVAL_MS, STATUS) — STATUS
 *  receives 0 or -1 (see th_profile_enable). */
void th_profile_enable_(const int *interval_ms, int *status);

/** Fortran: CALL TH_PROFILE_DISABLE(). */
void th_profile_disable_(void);

/** Fortran: CALL TH_PROFILE_SNAPSHOT(SEQ) — SEQ (INTEGER*8) receives
 *  the snapshot sequence number, or -1. */
void th_profile_snapshot_(long long *seq);

/**
 * Fortran: CALL TH_PROFILE_REPORT(STATUS) — writes the report to the
 * configured profile.output path ("lsched_profile.jsonl" when unset);
 * STATUS receives 0 or -1. Numeric-only, like every Fortran shim
 * (no hidden string lengths).
 */
void th_profile_report_(int *status);

/**
 * Fortran: CALL TH_STATS(VALUES, COUNT) — numeric mirror of
 * th_stats(): VALUES is an INTEGER*8 array of capacity COUNT, filled
 * with the th_stats_t fields in declaration order (doubles rounded to
 * the nearest integer), then COUNT-capped. Like the struct, the order
 * is append-only, so an index that works keeps working.
 */
void th_stats_(long long *values, const int *count);

/**
 * Fortran: CALL TH_METRIC_COUNT(COUNT) — COUNT (INTEGER) receives
 * th_metric_count().
 */
void th_metric_count_(int *count);

/**
 * Fortran: CALL TH_METRIC_VALUE(INDEX, VALUE) — VALUE (INTEGER*8)
 * receives the value of metric INDEX (0-based, th_metric_name order),
 * or -1 on an out-of-range index. Numeric-only, like every Fortran
 * shim (no hidden string lengths); resolve names on the C side when
 * needed.
 */
void th_metric_value_(const int *index, long long *value);

/**
 * Fortran: CALL TH_TOPOLOGY(VALUES, COUNT) — numeric mirror of
 * th_topology(): VALUES is an INTEGER*8 array of capacity COUNT,
 * filled with the th_topology_t fields in declaration order, then
 * COUNT-capped. Append-only, like every stats shim.
 */
void th_topology_(long long *values, const int *count);

} // extern "C"

#endif // LSCHED_THREADS_C_API_HH
