/**
 * @file
 * Scheduling hints: the memory addresses a thread will reference most,
 * supplied at fork time (paper Section 2.2). Up to kMaxDims hints are
 * supported; the paper's package implements the three-dimensional
 * case and notes the extension to k dimensions is straightforward.
 */

#ifndef LSCHED_THREADS_HINTS_HH
#define LSCHED_THREADS_HINTS_HH

#include <array>
#include <cstdint>

namespace lsched::threads
{

/** An address hint; 0 means "dimension unused" as in the paper. */
using Hint = std::uintptr_t;

/** Maximum scheduling-space dimensionality supported. */
constexpr unsigned kMaxDims = 8;

/** Block coordinates of a thread in the scheduling space. */
using BlockCoords = std::array<std::uint64_t, kMaxDims>;

/** Convert a pointer to a Hint. */
inline Hint
hintOf(const void *p)
{
    return reinterpret_cast<Hint>(p);
}

} // namespace lsched::threads

#endif // LSCHED_THREADS_HINTS_HH
