/**
 * @file
 * Bin tour strategies.
 *
 * The paper traverses bins "along some path, preferably the shortest
 * one" but implements creation order (the ready list). The alternative
 * tours here quantify how much the traversal order matters — an
 * ablation on the paper's design choice. All tours visit every ready
 * bin exactly once.
 */

#ifndef LSCHED_THREADS_TOUR_HH
#define LSCHED_THREADS_TOUR_HH

#include <string>
#include <vector>

#include "threads/bin.hh"

namespace lsched::threads
{

/** Order in which ready bins are executed. */
enum class TourPolicy
{
    /** Ready-list order — the paper's implementation. */
    CreationOrder,
    /** Lexicographic sort with alternating direction (boustrophedon). */
    SortedSnake,
    /** Greedy nearest-neighbour walk in block-coordinate space. */
    NearestNeighbor,
    /** Hilbert space-filling curve (2-D; other dims fall back to
     *  SortedSnake). */
    Hilbert,
};

/** Parse a tour name ("creation", "snake", "nearest", "hilbert"). */
TourPolicy tourPolicyFromName(const std::string &name);

/** Printable name of a policy. */
const char *tourPolicyName(TourPolicy policy);

/**
 * Order @p bins (the ready list in creation order) according to
 * @p policy for a @p dims-dimensional scheduling space.
 */
std::vector<Bin *> orderBins(TourPolicy policy,
                             std::vector<Bin *> bins, unsigned dims);

/**
 * Total tour length under the L1 (Manhattan) metric in block
 * coordinates — the quantity a "shortest tour" would minimize.
 */
std::uint64_t tourLength(const std::vector<Bin *> &bins, unsigned dims);

/**
 * Regroup an ordered tour so every super-bin's bins are contiguous
 * (TopologyPlacement): stable sort by super-bin id, so the tour
 * order within each super-bin — and among bins without one, which
 * sort last — is preserved. The parallel partitioner can then hand
 * whole super-bins to one worker (PoolJob::honorSuperBins).
 */
std::vector<Bin *> groupBySuperBins(std::vector<Bin *> bins);

} // namespace lsched::threads

#endif // LSCHED_THREADS_TOUR_HH
