/**
 * @file
 * StreamSession implementation: sharded intake, seal/epoch hand-off,
 * backpressure, and the drain loops. See stream.hh for the design.
 */

#include "threads/stream.hh"

#include <chrono>
#include <string>

#include "support/error.hh"
#include "support/panic.hh"
#include "support/prng.hh"
#include "threads/bin_exec.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

/** Backpressure backoff: first wait, doubling per no-progress round. */
constexpr std::uint64_t kBackoffBaseUs = 500;
/** Backoff ceiling, so a long stall still polls for liveness. */
constexpr std::uint64_t kBackoffCapUs = 50'000;
/** Governor tick when no deadline sets the epoch length. */
constexpr std::uint32_t kGovernorTickMillis = 20;
/** Warn every this many no-progress rounds when retries are ∞. */
constexpr unsigned kStallWarnPeriod = 32;

/**
 * True while this producer thread is draining a sealed bin inline
 * (backpressure help). Nested forks from the user threads it runs
 * bypass the maxPending bound — blocking would deadlock the one
 * thread doing the draining.
 */
thread_local bool t_inInlineDrain = false;

struct InlineDrainScope
{
    InlineDrainScope() { t_inInlineDrain = true; }
    ~InlineDrainScope() { t_inInlineDrain = false; }
};

} // namespace

StreamSession::StreamSession(const SchedulerConfig &config,
                             PlacementPolicy &placement,
                             WorkerPool *pool, unsigned drainWorkers,
                             detail::RecoveryStats *recovery,
                             OverloadGovernor *governor)
    : dims_(config.dims),
      sealThreshold_(config.streamSealThreshold),
      maxPending_(config.streamMaxPending),
      deadlineMillis_(config.deadlineMillis),
      admitRetries_(config.streamAdmitRetries),
      placement_(placement),
      placementStateless_(placement.stateless()),
      placementAdaptive_(placement.kind() == PlacementKind::Adaptive),
      fault_(config.onError, &faults_),
      pool_(pool),
      recovery_(recovery),
      governor_(governor)
{
    fault_.recovery = recovery_;
    if (deadlineMillis_ > 0)
        fault_.cancel = &cancel_;
    const unsigned shardCount =
        config.streamShards ? config.streamShards : kDefaultShards;
    // Split the configured bucket budget over the shards; each shard
    // still grows independently past 3/4 load.
    const std::size_t bucketsPerShard =
        std::max<std::size_t>(BinTable::kMinSlots,
                              config.hashBuckets / shardCount);
    shards_.reserve(shardCount);
    for (unsigned i = 0; i < shardCount; ++i) {
        // Disjoint id spaces per shard (and away from the batch
        // table's 0-based ids) keep trace/fault bin ids unambiguous.
        shards_.push_back(std::make_unique<Shard>(
            config.dims, bucketsPerShard, (i + 1u) << 24,
            config.groupCapacity));
    }
    if (pool_) {
        job_.body = &StreamSession::drainMain;
        job_.ctx = this;
        job_.workers = std::max(1u, drainWorkers);
        pool_->beginStream(job_);
        helpersRunning_ = true;
    }
    if (deadlineMillis_ > 0 || (governor_ && governor_->enabled()) ||
        placementAdaptive_)
        monitor_ = std::thread(&StreamSession::monitorMain, this);
}

StreamSession::~StreamSession()
{
    try {
        finish();
    } catch (...) {
        // Teardown without a streamEnd(): there is nobody left to
        // rethrow a final inline-drain fault to.
    }
}

unsigned
StreamSession::shardOf(std::uint64_t hash) const
{
    // Top bits pick the shard; the table uses the low bits for its
    // slot, so the two selections stay independent.
    return static_cast<unsigned>((hash >> 48) % shards_.size());
}

void
StreamSession::admitThread()
{
    if (!maxPending_ || t_inInlineDrain) {
        const std::uint64_t now =
            pending_.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t peak = peak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed))
            ;
        return;
    }
    std::uint64_t cur = pending_.load(std::memory_order_relaxed);
    unsigned noProgress = 0;
    std::uint64_t waitUs = kBackoffBaseUs;
    Prng jitter(0x5bd1e995u +
                jitterSeed_.fetch_add(1, std::memory_order_relaxed));
    for (;;) {
        if (fault_.stopRequested()) {
            // Stopping: drainers are discarding, so holding producers
            // at the bound could wait on progress that never comes.
            pending_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (cur < maxPending_) {
            // Admission is the CAS itself, so concurrent producers
            // cannot collectively overshoot the bound.
            if (pending_.compare_exchange_weak(
                    cur, cur + 1, std::memory_order_relaxed))
                break;
            continue;
        }
        LSCHED_TRACE_EVENT(obs::EventType::Backpressure, cur,
                           maxPending_);
        if (obs::metricsOn())
            detail::schedInstruments().streamBackpressure->add();
        // First choice: help. An inline drain or a force-seal is
        // forward progress this producer made itself.
        if (tryHelp()) {
            noProgress = 0;
            waitUs = kBackoffBaseUs;
            cur = pending_.load(std::memory_order_relaxed);
            continue;
        }
        if (degraded_.load(std::memory_order_relaxed)) {
            // Load shedding: a degraded session never blocks its
            // producers — admission overshoots the bound (soft) and
            // the governor's force-seals keep the drain fed.
            cur = pending_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        // The backlog is entirely in flight on the drain workers: park
        // with a timed, jittered exponential backoff instead of the
        // historic unbounded wait, so a wedged pool surfaces as a
        // diagnosable timeout rather than a hang.
        bpWaits_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t retiredBefore =
            retired_.load(std::memory_order_relaxed);
        const std::uint64_t sleepUs =
            waitUs / 2 + jitter.nextBelow(waitUs / 2 + 1);
        {
            std::unique_lock<std::mutex> lock(bpMutex_);
            bpCv_.wait_for(lock, std::chrono::microseconds(sleepUs),
                           [&] {
                               return pending_.load(
                                          std::memory_order_relaxed) <
                                          maxPending_ ||
                                      fault_.stopRequested();
                           });
        }
        cur = pending_.load(std::memory_order_relaxed);
        if (cur < maxPending_ ||
            retired_.load(std::memory_order_relaxed) != retiredBefore) {
            // The drain moved; reset the retry budget and the backoff.
            noProgress = 0;
            waitUs = kBackoffBaseUs;
            continue;
        }
        ++noProgress;
        if (recovery_) {
            recovery_->admissionRetries.fetch_add(
                1, std::memory_order_relaxed);
        }
        if (obs::metricsOn())
            detail::schedInstruments().recoverAdmissionRetries->add();
        if (admitRetries_ && noProgress >= admitRetries_) {
            if (recovery_) {
                recovery_->admissionTimeouts.fetch_add(
                    1, std::memory_order_relaxed);
            }
            if (obs::metricsOn()) {
                detail::schedInstruments()
                    .recoverAdmissionTimeouts->add();
            }
            LSCHED_TRACE_EVENT(obs::EventType::AdmissionTimeout, cur,
                               maxPending_, noProgress);
            throw AdmissionTimeout(lsched::detail::concatMessage(
                "stream admission timed out after ", noProgress,
                " no-progress backoff round(s): ", cur,
                " thread(s) pending at bound ", maxPending_));
        }
        if (!admitRetries_ && noProgress % kStallWarnPeriod == 0) {
            LSCHED_WARN("stream admission stalled: ", noProgress,
                        " no-progress wait(s) at bound ", maxPending_,
                        " (streamAdmitRetries == 0 retries forever)");
        }
        waitUs = std::min(waitUs * 2, kBackoffCapUs);
    }
    const std::uint64_t now = cur + 1;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed))
        ;
}

bool
StreamSession::tryHelp()
{
    // Become the drain: one sealed bin run inline frees at least one
    // admission slot without waiting on anyone.
    detail::SealedBin item;
    if (queue_.tryPop(item)) {
        inlineDrains_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsOn())
            detail::schedInstruments().streamInline->add();
        InlineDrainScope inDrain;
        drainOne(item, 0);
        return true;
    }
    // Nothing sealed yet: the backlog is sitting in open bins. Seal
    // one so the drain (pool or our next pass) has work.
    return forceSealOne();
}

detail::SealedBin
StreamSession::sealLocked(Shard &, unsigned shardIndex, Bin *bin)
{
    detail::SealedBin s;
    s.binId = bin->id;
    s.epoch = ++bin->streamEpoch;
    s.shard = shardIndex;
    s.superBin = bin->superBin;
    s.threads = bin->threadCount;
    s.groups = bin->groupsHead;
    // The bin stays open (and listed in Shard::open): the next fork
    // with the same coordinates starts the bin's next epoch.
    bin->clearGroups();
    return s;
}

void
StreamSession::enqueue(const detail::SealedBin &item)
{
    seals_.fetch_add(1, std::memory_order_relaxed);
    LSCHED_TRACE_EVENT(obs::EventType::StreamSeal, item.binId,
                       item.epoch, item.threads);
    if (obs::metricsOn())
        detail::schedInstruments().streamSeals->add();
    queue_.push(item);
}

bool
StreamSession::forceSealOne()
{
    const unsigned n = static_cast<unsigned>(shards_.size());
    const unsigned start =
        sealCursor_.fetch_add(1, std::memory_order_relaxed);
    for (unsigned i = 0; i < n; ++i) {
        const unsigned index = (start + i) % n;
        Shard &shard = *shards_[index];
        detail::SealedBin sealed;
        bool found = false;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (Bin *bin : shard.open) {
                if (bin->threadCount) {
                    sealed = sealLocked(shard, index, bin);
                    found = true;
                    break;
                }
            }
        }
        if (found) {
            enqueue(sealed);
            return true;
        }
    }
    return false;
}

void
StreamSession::fork(ThreadFn fn, void *arg1, void *arg2,
                    std::span<const Hint> hints)
{
    LSCHED_ASSERT(fn != nullptr, "fork of a null thread function");
    admitThread();

    PlacementDecision where;
    if (placementStateless_) {
        where = placement_.place(hints);
    } else {
        std::lock_guard<std::mutex> lock(placementMutex_);
        where = placement_.place(hints);
    }

    const std::uint64_t h = hashCoords(where.coords, dims_);
    const unsigned shardIndex = shardOf(h);
    Shard &shard = *shards_[shardIndex];

    detail::SealedBin sealed;
    bool doSeal = false;
    bool created = false;
    std::uint32_t binId = 0;
    try {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto [bin, fresh] =
            shard.table.findOrCreateHashed(where.coords, h);
        created = fresh;
        if (fresh)
            bin->superBin = where.superBin;
        binId = bin->id;
        ThreadGroup *group = bin->groupsTail;
        if (!group || group->full()) {
            group = shard.pool.allocate();
            if (bin->groupsTail)
                bin->groupsTail->next = group;
            else
                bin->groupsHead = group;
            bin->groupsTail = group;
        }
        group->push(fn, arg1, arg2);
        ++bin->threadCount;
        ++bin->streamTotalThreads;
        if (!bin->onReadyList) {
            bin->onReadyList = true;
            shard.open.push_back(bin);
        }
        if (sealThreshold_ && bin->threadCount >= sealThreshold_) {
            sealed = sealLocked(shard, shardIndex, bin);
            doSeal = true;
        }
    } catch (...) {
        // The admission slot was reserved up front; hand it back so an
        // allocation failure cannot wedge the bound.
        pending_.fetch_sub(1, std::memory_order_relaxed);
        throw;
    }

    forked_.fetch_add(1, std::memory_order_relaxed);
    if (obs::anyOn()) [[unlikely]] {
        if (obs::metricsOn()) {
            const detail::SchedInstruments &ins =
                detail::schedInstruments();
            ins.forked->add();
            ins.streamForked->add();
            if (created)
                ins.binsCreated->add();
        }
        if (created) {
            LSCHED_TRACE_EVENT(obs::EventType::BinCreate, binId,
                               where.coords[0], where.coords[1]);
        }
        LSCHED_TRACE_EVENT(obs::EventType::ThreadFork, binId,
                           where.coords[0], where.coords[1]);
    }
    if (doSeal)
        enqueue(sealed);
}

void
StreamSession::drainOne(const detail::SealedBin &item, unsigned worker)
{
    detail::GroupCursor cursor(item.groups);
    std::uint64_t done = 0;
    try {
        done = detail::executeBin(item.binId, item.threads, fault_,
                                  worker, cursor, item.superBin,
                                  item.epoch);
    } catch (...) {
        // ErrorPolicy::Abort: still retire the chain so the backlog
        // accounting (and any producer blocked on it) stays sane
        // while the exception unwinds.
        retire(item);
        throw;
    }
    executed_.fetch_add(done, std::memory_order_relaxed);
    retire(item);
}

void
StreamSession::discard(const detail::SealedBin &item)
{
    if (fault_.cancelRequested() && item.threads > 0) {
        // Cancellation (not a StopTour fault) dropped this chain:
        // account it like any cancelled bin.
        detail::noteCancelledBin(fault_, item.binId, 0, item.threads);
    }
    retire(item);
}

void
StreamSession::retire(const detail::SealedBin &item)
{
    {
        Shard &shard = *shards_[item.shard];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.pool.recycleChain(item.groups);
    }
    retired_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_sub(item.threads, std::memory_order_relaxed);
    if (maxPending_) {
        // Pass through the lock empty-handed so a producer between
        // its predicate check and its wait cannot miss this wakeup.
        { std::lock_guard<std::mutex> lock(bpMutex_); }
        bpCv_.notify_all();
    }
}

void
StreamSession::drainMain(unsigned worker, void *ctx)
{
    auto *self = static_cast<StreamSession *>(ctx);
    if (obs::traceOn()) {
        obs::TraceSession::global().setLaneName(
            "stream drain " + std::to_string(worker));
    }
    obs::profileWorkerAttach(worker);
    // Same marker as tour workers: fork() from a user thread running
    // on a drain helper is the unsupported (fatal) case; producers
    // fork from their own threads.
    detail::ParallelWorkerScope inWorker;
    detail::SealedBin item;
    while (self->queue_.waitPop(item)) {
        if (self->fault_.stopRequested())
            self->discard(item);
        else
            self->drainOne(item, worker);
    }
}

void
StreamSession::monitorMain()
{
    if (obs::traceOn())
        obs::TraceSession::global().setLaneName("stream monitor");
    const auto tick = std::chrono::milliseconds(
        deadlineMillis_ > 0 ? deadlineMillis_ : kGovernorTickMillis);
    std::uint64_t lastRetired = retired_.load(std::memory_order_relaxed);
    bool sawBacklog = false;
    std::unique_lock<std::mutex> lock(monMutex_);
    while (!monCv_.wait_for(lock, tick, [&] { return monDone_; })) {
        const std::uint64_t pend =
            pending_.load(std::memory_order_relaxed);
        const std::uint64_t ret =
            retired_.load(std::memory_order_relaxed);
        if (deadlineMillis_ > 0 && !cancel_.requested()) {
            if (sawBacklog && pend > 0 && ret == lastRetired) {
                // A standing backlog retired nothing for a whole
                // deadline period: the epoch is wedged. Cancel
                // cooperatively; drains discard, blocked producers
                // wake through stopRequested().
                LSCHED_WARN("stream deadline: backlog of ", pend,
                            " thread(s) made no progress for ",
                            deadlineMillis_,
                            " ms; cancelling the stream");
                LSCHED_TRACE_EVENT(
                    obs::EventType::DeadlineExpire, deadlineMillis_,
                    static_cast<std::uint64_t>(CancelReason::Deadline),
                    pend);
                if (recovery_) {
                    recovery_->deadlines.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (obs::metricsOn())
                    detail::schedInstruments().recoverDeadlines->add();
                cancel_.request(CancelReason::Deadline);
                {
                    std::lock_guard<std::mutex> bpLock(bpMutex_);
                }
                bpCv_.notify_all();
            }
            sawBacklog = pend > 0;
        }
        lastRetired = ret;
        if (governor_ && governor_->enabled()) {
            const bool overloaded =
                cancel_.requested() ||
                (maxPending_ > 0 && pend >= maxPending_);
            const RecoveryState state = governor_->observe(overloaded);
            const bool nowDegraded =
                state == RecoveryState::Degraded;
            if (nowDegraded &&
                !degraded_.load(std::memory_order_relaxed)) {
                degraded_.store(true, std::memory_order_relaxed);
                shedLoad();
                // Unblock producers parked at the bound: degraded
                // admission stops blocking.
                {
                    std::lock_guard<std::mutex> bpLock(bpMutex_);
                }
                bpCv_.notify_all();
            } else if (!nowDegraded &&
                       degraded_.load(std::memory_order_relaxed)) {
                degraded_.store(false, std::memory_order_relaxed);
            }
        }
        if (placementAdaptive_) {
            // Stream epoch tick: a safe retune boundary. The adaptive
            // placement serializes against concurrent producers on its
            // own internal mutex; already-placed bins keep their
            // coordinates, so only subsequent forks land in the new
            // geometry.
            placement_.maybeRetune();
        }
    }
}

void
StreamSession::stopMonitor()
{
    if (!monitor_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(monMutex_);
        monDone_ = true;
    }
    monCv_.notify_one();
    monitor_.join();
}

void
StreamSession::shedLoad()
{
    std::uint64_t shedBins = 0;
    for (unsigned i = 0; i < shards_.size(); ++i) {
        Shard &shard = *shards_[i];
        std::vector<detail::SealedBin> tail;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (Bin *bin : shard.open)
                if (bin->threadCount)
                    tail.push_back(sealLocked(shard, i, bin));
        }
        for (const detail::SealedBin &item : tail)
            enqueue(item);
        shedBins += tail.size();
    }
    if (recovery_)
        recovery_->loadSheds.fetch_add(1, std::memory_order_relaxed);
    if (obs::metricsOn())
        detail::schedInstruments().recoverLoadSheds->add();
    LSCHED_WARN("stream overload: degraded; force-sealed ", shedBins,
                " open bin(s) for the drain");
    LSCHED_TRACE_EVENT(obs::EventType::LoadShed, shedBins,
                       pending_.load(std::memory_order_relaxed),
                       maxPending_);
}

void
StreamSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // The monitor must stop before the tail drain: finish()'s own
    // sealing and draining would otherwise read as one more wedged
    // (or overloaded) epoch.
    stopMonitor();

    // Producers have stopped (the owner's contract): seal every open
    // chain so the tail of the stream drains like any other epoch.
    for (unsigned i = 0; i < shards_.size(); ++i) {
        Shard &shard = *shards_[i];
        std::vector<detail::SealedBin> tail;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (Bin *bin : shard.open)
                if (bin->threadCount)
                    tail.push_back(sealLocked(shard, i, bin));
        }
        for (const detail::SealedBin &item : tail)
            enqueue(item);
    }

    queue_.finish();
    if (helpersRunning_) {
        pool_->endStream();
        helpersRunning_ = false;
    }
    // Inline-only mode (no pool): the caller drains the whole tail as
    // worker 0. With helpers the queue is already empty — they only
    // exit waitPop once it is.
    detail::SealedBin item;
    while (queue_.tryPop(item)) {
        if (fault_.stopRequested())
            discard(item);
        else
            drainOne(item, 0);
    }

    for (const auto &shardPtr : shards_) {
        for (const Bin *bin : shardPtr->open) {
            if (!bin->streamTotalThreads)
                continue;
            StreamBinReport r;
            r.coords = bin->coords;
            r.epochs = bin->streamEpoch;
            r.threads = bin->streamTotalThreads;
            bins_.push_back(r);
        }
    }
}

StreamStats
StreamSession::stats() const
{
    StreamStats s;
    s.forked = forked_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.seals = seals_.load(std::memory_order_relaxed);
    s.backpressureWaits = bpWaits_.load(std::memory_order_relaxed);
    s.inlineDrains = inlineDrains_.load(std::memory_order_relaxed);
    s.backlog = pending_.load(std::memory_order_relaxed);
    s.peakBacklog = peak_.load(std::memory_order_relaxed);
    return s;
}

} // namespace lsched::threads
