/**
 * @file
 * StreamSession implementation: sharded intake, seal/epoch hand-off,
 * backpressure, and the drain loops. See stream.hh for the design.
 */

#include "threads/stream.hh"

#include <string>

#include "support/panic.hh"
#include "threads/bin_exec.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

/**
 * True while this producer thread is draining a sealed bin inline
 * (backpressure help). Nested forks from the user threads it runs
 * bypass the maxPending bound — blocking would deadlock the one
 * thread doing the draining.
 */
thread_local bool t_inInlineDrain = false;

struct InlineDrainScope
{
    InlineDrainScope() { t_inInlineDrain = true; }
    ~InlineDrainScope() { t_inInlineDrain = false; }
};

} // namespace

StreamSession::StreamSession(const SchedulerConfig &config,
                             PlacementPolicy &placement,
                             WorkerPool *pool, unsigned drainWorkers)
    : dims_(config.dims),
      sealThreshold_(config.streamSealThreshold),
      maxPending_(config.streamMaxPending),
      placement_(placement),
      placementStateless_(placement.stateless()),
      fault_(config.onError, &faults_),
      pool_(pool)
{
    const unsigned shardCount =
        config.streamShards ? config.streamShards : kDefaultShards;
    // Split the configured bucket budget over the shards; each shard
    // still grows independently past 3/4 load.
    const std::size_t bucketsPerShard =
        std::max<std::size_t>(BinTable::kMinSlots,
                              config.hashBuckets / shardCount);
    shards_.reserve(shardCount);
    for (unsigned i = 0; i < shardCount; ++i) {
        // Disjoint id spaces per shard (and away from the batch
        // table's 0-based ids) keep trace/fault bin ids unambiguous.
        shards_.push_back(std::make_unique<Shard>(
            config.dims, bucketsPerShard, (i + 1u) << 24,
            config.groupCapacity));
    }
    if (pool_) {
        job_.body = &StreamSession::drainMain;
        job_.ctx = this;
        job_.workers = std::max(1u, drainWorkers);
        pool_->beginStream(job_);
        helpersRunning_ = true;
    }
}

StreamSession::~StreamSession()
{
    try {
        finish();
    } catch (...) {
        // Teardown without a streamEnd(): there is nobody left to
        // rethrow a final inline-drain fault to.
    }
}

unsigned
StreamSession::shardOf(std::uint64_t hash) const
{
    // Top bits pick the shard; the table uses the low bits for its
    // slot, so the two selections stay independent.
    return static_cast<unsigned>((hash >> 48) % shards_.size());
}

void
StreamSession::admitThread()
{
    if (!maxPending_ || t_inInlineDrain) {
        const std::uint64_t now =
            pending_.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t peak = peak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed))
            ;
        return;
    }
    std::uint64_t cur = pending_.load(std::memory_order_relaxed);
    for (;;) {
        if (fault_.stopRequested()) {
            // Stopping: drainers are discarding, so holding producers
            // at the bound could wait on progress that never comes.
            pending_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (cur < maxPending_) {
            // Admission is the CAS itself, so concurrent producers
            // cannot collectively overshoot the bound.
            if (pending_.compare_exchange_weak(
                    cur, cur + 1, std::memory_order_relaxed))
                break;
            continue;
        }
        onBackpressure();
        cur = pending_.load(std::memory_order_relaxed);
    }
    const std::uint64_t now = cur + 1;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed))
        ;
}

void
StreamSession::onBackpressure()
{
    LSCHED_TRACE_EVENT(obs::EventType::Backpressure,
                       pending_.load(std::memory_order_relaxed),
                       maxPending_);
    if (obs::metricsOn())
        detail::schedInstruments().streamBackpressure->add();

    // First choice: become the drain. One sealed bin run inline frees
    // at least one admission slot without waiting on anyone.
    detail::SealedBin item;
    if (queue_.tryPop(item)) {
        inlineDrains_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsOn())
            detail::schedInstruments().streamInline->add();
        InlineDrainScope inDrain;
        drainOne(item, 0);
        return;
    }
    // Nothing sealed yet: the backlog is sitting in open bins. Seal
    // one so the drain (pool or our next pass) has work.
    if (forceSealOne())
        return;
    // The backlog is entirely in flight on the drain workers; park
    // until one of them retires a chain.
    bpWaits_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(bpMutex_);
    bpCv_.wait(lock, [&] {
        return pending_.load(std::memory_order_relaxed) < maxPending_ ||
               fault_.stopRequested();
    });
}

detail::SealedBin
StreamSession::sealLocked(Shard &, unsigned shardIndex, Bin *bin)
{
    detail::SealedBin s;
    s.binId = bin->id;
    s.epoch = ++bin->streamEpoch;
    s.shard = shardIndex;
    s.superBin = bin->superBin;
    s.threads = bin->threadCount;
    s.groups = bin->groupsHead;
    // The bin stays open (and listed in Shard::open): the next fork
    // with the same coordinates starts the bin's next epoch.
    bin->clearGroups();
    return s;
}

void
StreamSession::enqueue(const detail::SealedBin &item)
{
    seals_.fetch_add(1, std::memory_order_relaxed);
    LSCHED_TRACE_EVENT(obs::EventType::StreamSeal, item.binId,
                       item.epoch, item.threads);
    if (obs::metricsOn())
        detail::schedInstruments().streamSeals->add();
    queue_.push(item);
}

bool
StreamSession::forceSealOne()
{
    const unsigned n = static_cast<unsigned>(shards_.size());
    const unsigned start =
        sealCursor_.fetch_add(1, std::memory_order_relaxed);
    for (unsigned i = 0; i < n; ++i) {
        const unsigned index = (start + i) % n;
        Shard &shard = *shards_[index];
        detail::SealedBin sealed;
        bool found = false;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (Bin *bin : shard.open) {
                if (bin->threadCount) {
                    sealed = sealLocked(shard, index, bin);
                    found = true;
                    break;
                }
            }
        }
        if (found) {
            enqueue(sealed);
            return true;
        }
    }
    return false;
}

void
StreamSession::fork(ThreadFn fn, void *arg1, void *arg2,
                    std::span<const Hint> hints)
{
    LSCHED_ASSERT(fn != nullptr, "fork of a null thread function");
    admitThread();

    PlacementDecision where;
    if (placementStateless_) {
        where = placement_.place(hints);
    } else {
        std::lock_guard<std::mutex> lock(placementMutex_);
        where = placement_.place(hints);
    }

    const std::uint64_t h = hashCoords(where.coords, dims_);
    const unsigned shardIndex = shardOf(h);
    Shard &shard = *shards_[shardIndex];

    detail::SealedBin sealed;
    bool doSeal = false;
    bool created = false;
    std::uint32_t binId = 0;
    try {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto [bin, fresh] =
            shard.table.findOrCreateHashed(where.coords, h);
        created = fresh;
        if (fresh)
            bin->superBin = where.superBin;
        binId = bin->id;
        ThreadGroup *group = bin->groupsTail;
        if (!group || group->full()) {
            group = shard.pool.allocate();
            if (bin->groupsTail)
                bin->groupsTail->next = group;
            else
                bin->groupsHead = group;
            bin->groupsTail = group;
        }
        group->push(fn, arg1, arg2);
        ++bin->threadCount;
        ++bin->streamTotalThreads;
        if (!bin->onReadyList) {
            bin->onReadyList = true;
            shard.open.push_back(bin);
        }
        if (sealThreshold_ && bin->threadCount >= sealThreshold_) {
            sealed = sealLocked(shard, shardIndex, bin);
            doSeal = true;
        }
    } catch (...) {
        // The admission slot was reserved up front; hand it back so an
        // allocation failure cannot wedge the bound.
        pending_.fetch_sub(1, std::memory_order_relaxed);
        throw;
    }

    forked_.fetch_add(1, std::memory_order_relaxed);
    if (obs::anyOn()) [[unlikely]] {
        if (obs::metricsOn()) {
            const detail::SchedInstruments &ins =
                detail::schedInstruments();
            ins.forked->add();
            ins.streamForked->add();
            if (created)
                ins.binsCreated->add();
        }
        if (created) {
            LSCHED_TRACE_EVENT(obs::EventType::BinCreate, binId,
                               where.coords[0], where.coords[1]);
        }
        LSCHED_TRACE_EVENT(obs::EventType::ThreadFork, binId,
                           where.coords[0], where.coords[1]);
    }
    if (doSeal)
        enqueue(sealed);
}

void
StreamSession::drainOne(const detail::SealedBin &item, unsigned worker)
{
    detail::GroupCursor cursor(item.groups);
    std::uint64_t done = 0;
    try {
        done = detail::executeBin(item.binId, item.threads, fault_,
                                  worker, cursor, item.superBin,
                                  item.epoch);
    } catch (...) {
        // ErrorPolicy::Abort: still retire the chain so the backlog
        // accounting (and any producer blocked on it) stays sane
        // while the exception unwinds.
        retire(item);
        throw;
    }
    executed_.fetch_add(done, std::memory_order_relaxed);
    retire(item);
}

void
StreamSession::discard(const detail::SealedBin &item)
{
    retire(item);
}

void
StreamSession::retire(const detail::SealedBin &item)
{
    {
        Shard &shard = *shards_[item.shard];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.pool.recycleChain(item.groups);
    }
    pending_.fetch_sub(item.threads, std::memory_order_relaxed);
    if (maxPending_) {
        // Pass through the lock empty-handed so a producer between
        // its predicate check and its wait cannot miss this wakeup.
        { std::lock_guard<std::mutex> lock(bpMutex_); }
        bpCv_.notify_all();
    }
}

void
StreamSession::drainMain(unsigned worker, void *ctx)
{
    auto *self = static_cast<StreamSession *>(ctx);
    if (obs::traceOn()) {
        obs::TraceSession::global().setLaneName(
            "stream drain " + std::to_string(worker));
    }
    obs::profileWorkerAttach(worker);
    // Same marker as tour workers: fork() from a user thread running
    // on a drain helper is the unsupported (fatal) case; producers
    // fork from their own threads.
    detail::ParallelWorkerScope inWorker;
    detail::SealedBin item;
    while (self->queue_.waitPop(item)) {
        if (self->fault_.stopRequested())
            self->discard(item);
        else
            self->drainOne(item, worker);
    }
}

void
StreamSession::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // Producers have stopped (the owner's contract): seal every open
    // chain so the tail of the stream drains like any other epoch.
    for (unsigned i = 0; i < shards_.size(); ++i) {
        Shard &shard = *shards_[i];
        std::vector<detail::SealedBin> tail;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (Bin *bin : shard.open)
                if (bin->threadCount)
                    tail.push_back(sealLocked(shard, i, bin));
        }
        for (const detail::SealedBin &item : tail)
            enqueue(item);
    }

    queue_.finish();
    if (helpersRunning_) {
        pool_->endStream();
        helpersRunning_ = false;
    }
    // Inline-only mode (no pool): the caller drains the whole tail as
    // worker 0. With helpers the queue is already empty — they only
    // exit waitPop once it is.
    detail::SealedBin item;
    while (queue_.tryPop(item)) {
        if (fault_.stopRequested())
            discard(item);
        else
            drainOne(item, 0);
    }

    for (const auto &shardPtr : shards_) {
        for (const Bin *bin : shardPtr->open) {
            if (!bin->streamTotalThreads)
                continue;
            StreamBinReport r;
            r.coords = bin->coords;
            r.epochs = bin->streamEpoch;
            r.threads = bin->streamTotalThreads;
            bins_.push_back(r);
        }
    }
}

StreamStats
StreamSession::stats() const
{
    StreamStats s;
    s.forked = forked_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.seals = seals_.load(std::memory_order_relaxed);
    s.backpressureWaits = bpWaits_.load(std::memory_order_relaxed);
    s.inlineDrains = inlineDrains_.load(std::memory_order_relaxed);
    s.backlog = pending_.load(std::memory_order_relaxed);
    s.peakBacklog = peak_.load(std::memory_order_relaxed);
    return s;
}

} // namespace lsched::threads
