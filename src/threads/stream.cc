/**
 * @file
 * StreamSession implementation: lock-free sharded intake, seal/epoch
 * hand-off, ticket backpressure, and the drain loops. See stream.hh
 * and DESIGN.md §16 for the design.
 */

#include "threads/stream.hh"

#include <chrono>
#include <string>

#include "support/error.hh"
#include "support/panic.hh"
#include "support/prng.hh"
#include "threads/bin_exec.hh"
#include "threads/hash_table.hh"
#include "threads/sched_obs.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

/** Backpressure backoff: first wait, doubling per no-progress round. */
constexpr std::uint64_t kBackoffBaseUs = 500;
/** Backoff ceiling, so a long stall still polls for liveness. */
constexpr std::uint64_t kBackoffCapUs = 50'000;
/** Governor tick when no deadline sets the epoch length. */
constexpr std::uint32_t kGovernorTickMillis = 20;
/** Warn every this many no-progress rounds when retries are ∞. */
constexpr unsigned kStallWarnPeriod = 32;

/**
 * True while this producer thread is draining a sealed bin inline
 * (backpressure help or queue-full relief). Nested forks from the
 * user threads it runs bypass the maxPending bound — blocking would
 * deadlock the one thread doing the draining.
 */
thread_local bool t_inInlineDrain = false;

struct InlineDrainScope
{
    InlineDrainScope() { t_inInlineDrain = true; }
    ~InlineDrainScope() { t_inInlineDrain = false; }
};

} // namespace

StreamSession::StreamSession(const SchedulerConfig &config,
                             PlacementPolicy &placement,
                             WorkerPool *pool, unsigned drainWorkers,
                             detail::RecoveryStats *recovery,
                             OverloadGovernor *governor)
    : dims_(config.dims),
      sealThreshold_(config.streamSealThreshold),
      maxPending_(config.streamMaxPending),
      deadlineMillis_(config.deadlineMillis),
      admitRetries_(config.streamAdmitRetries),
      placement_(placement),
      placementStateless_(placement.stateless()),
      placementAdaptive_(placement.kind() == PlacementKind::Adaptive),
      groupPool_(config.groupCapacity),
      fault_(config.onError, &faults_),
      pool_(pool),
      recovery_(recovery),
      governor_(governor)
{
    fault_.recovery = recovery_;
    if (deadlineMillis_ > 0)
        fault_.cancel = &cancel_;
    const unsigned shardCount =
        config.streamShards ? config.streamShards : kDefaultShards;
    // Split the configured bucket budget over the shards; each shard
    // still grows independently past 3/4 load.
    const std::size_t bucketsPerShard =
        std::max<std::size_t>(ConcurrentBinTable::kMinSlots,
                              config.hashBuckets / shardCount);
    shards_.reserve(shardCount);
    for (unsigned i = 0; i < shardCount; ++i) {
        // Disjoint id spaces per shard (and away from the batch
        // table's 0-based ids) keep trace/fault bin ids unambiguous.
        shards_.push_back(std::make_unique<Shard>(
            config.dims, bucketsPerShard, (i + 1u) << 24));
    }
    if (pool_) {
        job_.body = &StreamSession::drainMain;
        job_.ctx = this;
        job_.workers = std::max(1u, drainWorkers);
        pool_->beginStream(job_);
        helpersRunning_ = true;
    }
    if (deadlineMillis_ > 0 || (governor_ && governor_->enabled()) ||
        placementAdaptive_)
        monitor_ = std::thread(&StreamSession::monitorMain, this);
}

StreamSession::~StreamSession()
{
    try {
        finish();
    } catch (...) {
        // Teardown without a streamEnd(): there is nobody left to
        // rethrow a final inline-drain fault to.
    }
}

unsigned
StreamSession::shardOf(std::uint64_t hash) const
{
    // Top bits pick the shard; the table uses the low bits for its
    // slot, so the two selections stay independent.
    return static_cast<unsigned>((hash >> 48) % shards_.size());
}

void
StreamSession::notePending()
{
    const std::uint64_t now =
        pending_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed))
        ;
}

void
StreamSession::admitThread()
{
    // Every admission takes a ticket, bypass or not: bypassed
    // admissions then count against the gate arithmetic, so gated
    // producers automatically absorb any overshoot they caused.
    const std::uint64_t ticket =
        tickets_.fetch_add(1, std::memory_order_relaxed);
    if (!maxPending_ || t_inInlineDrain) {
        notePending();
        return;
    }
    unsigned noProgress = 0;
    std::uint64_t waitUs = kBackoffBaseUs;
    Prng jitter(0x5bd1e995u +
                jitterSeed_.fetch_add(1, std::memory_order_relaxed));
    for (;;) {
        if (fault_.stopRequested()) {
            // Stopping: drainers are discarding, so holding producers
            // at the gate could wait on progress that never comes.
            break;
        }
        // The gate: this ticket fits under the bound once the drain
        // has retired enough threads. Tickets pass in FIFO order and
        // the admitted-unretired backlog can never exceed the bound.
        if (ticket < retiredThreads_.load(std::memory_order_acquire) +
                         maxPending_)
            break;
        LSCHED_TRACE_EVENT(obs::EventType::Backpressure,
                           pending_.load(std::memory_order_relaxed),
                           maxPending_);
        if (obs::metricsOn())
            detail::schedInstruments().streamBackpressure->add();
        // First choice: help. An inline drain or a force-seal is
        // forward progress this producer made itself.
        if (tryHelp()) {
            noProgress = 0;
            waitUs = kBackoffBaseUs;
            continue;
        }
        if (degraded_.load(std::memory_order_relaxed)) {
            // Load shedding: a degraded session never blocks its
            // producers — admission overshoots the bound (soft) and
            // the governor's force-seals keep the drain fed.
            break;
        }
        // The backlog is entirely in flight on the drain workers: back
        // off with a timed, jittered exponential sleep instead of the
        // historic unbounded condvar wait, so a wedged pool surfaces
        // as a diagnosable timeout rather than a hang — and no lock is
        // shared with the admission fast path.
        bpWaits_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t retiredBefore =
            retiredThreads_.load(std::memory_order_relaxed);
        const std::uint64_t sleepUs =
            waitUs / 2 + jitter.nextBelow(waitUs / 2 + 1);
        std::this_thread::sleep_for(
            std::chrono::microseconds(sleepUs));
        if (retiredThreads_.load(std::memory_order_relaxed) !=
            retiredBefore) {
            // The drain moved; reset the retry budget and the backoff.
            noProgress = 0;
            waitUs = kBackoffBaseUs;
            continue;
        }
        ++noProgress;
        if (recovery_) {
            recovery_->admissionRetries.fetch_add(
                1, std::memory_order_relaxed);
        }
        if (obs::metricsOn())
            detail::schedInstruments().recoverAdmissionRetries->add();
        if (admitRetries_ && noProgress >= admitRetries_) {
            if (recovery_) {
                recovery_->admissionTimeouts.fetch_add(
                    1, std::memory_order_relaxed);
            }
            if (obs::metricsOn()) {
                detail::schedInstruments()
                    .recoverAdmissionTimeouts->add();
            }
            const std::uint64_t cur =
                pending_.load(std::memory_order_relaxed);
            LSCHED_TRACE_EVENT(obs::EventType::AdmissionTimeout, cur,
                               maxPending_, noProgress);
            // The ticket this admission took never retires on its
            // own; refund it so the gate stays consistent.
            retiredThreads_.fetch_add(1, std::memory_order_release);
            throw AdmissionTimeout(lsched::detail::concatMessage(
                "stream admission timed out after ", noProgress,
                " no-progress backoff round(s): ", cur,
                " thread(s) pending at bound ", maxPending_));
        }
        if (!admitRetries_ && noProgress % kStallWarnPeriod == 0) {
            LSCHED_WARN("stream admission stalled: ", noProgress,
                        " no-progress wait(s) at bound ", maxPending_,
                        " (streamAdmitRetries == 0 retries forever)");
        }
        waitUs = std::min(waitUs * 2, kBackoffCapUs);
    }
    notePending();
}

bool
StreamSession::tryHelp()
{
    // Become the drain: one sealed bin run inline frees at least one
    // admission slot without waiting on anyone.
    detail::SealedBin item;
    if (queue_.tryPop(item)) {
        inlineDrains_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsOn())
            detail::schedInstruments().streamInline->add();
        InlineDrainScope inDrain;
        drainOne(item, 0);
        return true;
    }
    // Nothing sealed yet: the backlog is sitting in open bins. Seal
    // one so the drain (pool or our next pass) has work.
    return forceSealOne();
}

detail::SealedBin
StreamSession::makeItem(const StreamBin &bin,
                        const SealedChain &chain) const
{
    detail::SealedBin s;
    s.binId = bin.id;
    s.epoch = chain.epoch;
    s.superBin = bin.superBin;
    s.threads = chain.threads;
    s.groups = chain.head;
    return s;
}

void
StreamSession::enqueue(const detail::SealedBin &item)
{
    seals_.fetch_add(1, std::memory_order_relaxed);
    LSCHED_TRACE_EVENT(obs::EventType::StreamSeal, item.binId,
                       item.epoch, item.threads);
    if (obs::metricsOn())
        detail::schedInstruments().streamSeals->add();
    while (!queue_.tryPush(item)) {
        // Ring full: relieve it ourselves instead of spinning — in
        // the inline-only mode (no pool) nobody else ever would.
        detail::SealedBin victim;
        if (!queue_.tryPop(victim))
            continue; // racing consumers made room already
        try {
            if (fault_.stopRequested()) {
                discard(victim);
            } else {
                InlineDrainScope inDrain;
                drainOne(victim, 0);
            }
        } catch (...) {
            // Abort unwinding: retire our own chain too so the
            // backlog accounting stays sane.
            discard(item);
            throw;
        }
    }
}

bool
StreamSession::forceSealOne()
{
    const unsigned n = static_cast<unsigned>(shards_.size());
    const unsigned start =
        sealCursor_.fetch_add(1, std::memory_order_relaxed);
    for (unsigned i = 0; i < n; ++i) {
        const unsigned index = (start + i) % n;
        ConcurrentBinTable &table = shards_[index]->table;
        const std::size_t bins = table.binCount();
        for (std::size_t b = 0; b < bins; ++b) {
            StreamBin *bin = table.binAt(b);
            if (!bin) // segment install still in flight
                continue;
            if (!bin->epochThreads.load(std::memory_order_relaxed))
                continue;
            const SealedChain chain = sealStreamBin(*bin, groupPool_);
            if (!chain.head)
                continue; // a racing sealer beat us to it
            enqueue(makeItem(*bin, chain));
            return true;
        }
    }
    return false;
}

void
StreamSession::fork(ThreadFn fn, void *arg1, void *arg2,
                    std::span<const Hint> hints)
{
    LSCHED_ASSERT(fn != nullptr, "fork of a null thread function");
    admitThread();

    PlacementDecision where;
    bool doSeal = false;
    bool created = false;
    std::uint32_t binId = 0;
    detail::SealedBin sealed;
    try {
        if (placementStateless_) {
            where = placement_.place(hints);
        } else {
            std::lock_guard<std::mutex> lock(placementMutex_);
            where = placement_.place(hints);
        }

        const std::uint64_t h = hashCoords(where.coords, dims_);
        Shard &shard = *shards_[shardOf(h)];

        const auto [bin, fresh] =
            shard.table.findOrCreate(where.coords, h, where.superBin);
        created = fresh;
        binId = bin->id;
        const std::uint64_t epochCount =
            appendStreamSpec(*bin, groupPool_, fn, arg1, arg2);
        if (sealThreshold_ && epochCount >= sealThreshold_) {
            const SealedChain chain = sealStreamBin(*bin, groupPool_);
            if (chain.head) {
                sealed = makeItem(*bin, chain);
                doSeal = true;
            }
        }
    } catch (...) {
        // The admission slot was reserved up front; hand it back so an
        // allocation failure cannot wedge the gate or the backlog.
        pending_.fetch_sub(1, std::memory_order_relaxed);
        retiredThreads_.fetch_add(1, std::memory_order_release);
        throw;
    }

    forked_.fetch_add(1, std::memory_order_relaxed);
    if (obs::anyOn()) [[unlikely]] {
        if (obs::metricsOn()) {
            const detail::SchedInstruments &ins =
                detail::schedInstruments();
            ins.forked->add();
            ins.streamForked->add();
            if (created)
                ins.binsCreated->add();
        }
        if (created) {
            LSCHED_TRACE_EVENT(obs::EventType::BinCreate, binId,
                               where.coords[0], where.coords[1]);
        }
        LSCHED_TRACE_EVENT(obs::EventType::ThreadFork, binId,
                           where.coords[0], where.coords[1]);
    }
    if (doSeal)
        enqueue(sealed);
}

void
StreamSession::drainOne(const detail::SealedBin &item, unsigned worker)
{
    detail::GroupCursor cursor(item.groups);
    std::uint64_t done = 0;
    try {
        done = detail::executeBin(item.binId, item.threads, fault_,
                                  worker, cursor, item.superBin,
                                  item.epoch);
    } catch (...) {
        // ErrorPolicy::Abort: still retire the chain so the backlog
        // accounting (and any producer backed off on it) stays sane
        // while the exception unwinds.
        retire(item);
        throw;
    }
    executed_.fetch_add(done, std::memory_order_relaxed);
    retire(item);
}

void
StreamSession::discard(const detail::SealedBin &item)
{
    if (fault_.cancelRequested() && item.threads > 0) {
        // Cancellation (not a StopTour fault) dropped this chain:
        // account it like any cancelled bin.
        detail::noteCancelledBin(fault_, item.binId, 0, item.threads);
    }
    retire(item);
}

void
StreamSession::retire(const detail::SealedBin &item)
{
    groupPool_.recycleChain(item.groups);
    retired_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_sub(item.threads, std::memory_order_relaxed);
    // The release pairs with the gate's acquire: a producer that
    // passes on these retirements also sees the recycled groups'
    // state reach the free tiers coherently.
    retiredThreads_.fetch_add(item.threads, std::memory_order_release);
}

void
StreamSession::drainMain(unsigned worker, void *ctx)
{
    auto *self = static_cast<StreamSession *>(ctx);
    if (obs::traceOn()) {
        obs::TraceSession::global().setLaneName(
            "stream drain " + std::to_string(worker));
    }
    obs::profileWorkerAttach(worker);
    // Same marker as tour workers: fork() from a user thread running
    // on a drain helper is the unsupported (fatal) case; producers
    // fork from their own threads.
    detail::ParallelWorkerScope inWorker;
    detail::SealedBin item;
    while (self->queue_.waitPop(item)) {
        if (self->fault_.stopRequested())
            self->discard(item);
        else
            self->drainOne(item, worker);
    }
}

void
StreamSession::monitorMain()
{
    if (obs::traceOn())
        obs::TraceSession::global().setLaneName("stream monitor");
    const auto tick = std::chrono::milliseconds(
        deadlineMillis_ > 0 ? deadlineMillis_ : kGovernorTickMillis);
    std::uint64_t lastRetired = retired_.load(std::memory_order_relaxed);
    bool sawBacklog = false;
    std::unique_lock<std::mutex> lock(monMutex_);
    while (!monCv_.wait_for(lock, tick, [&] { return monDone_; })) {
        const std::uint64_t pend =
            pending_.load(std::memory_order_relaxed);
        const std::uint64_t ret =
            retired_.load(std::memory_order_relaxed);
        if (deadlineMillis_ > 0 && !cancel_.requested()) {
            if (sawBacklog && pend > 0 && ret == lastRetired) {
                // A standing backlog retired nothing for a whole
                // deadline period: the epoch is wedged. Cancel
                // cooperatively; drains discard, backed-off producers
                // notice through stopRequested() within one backoff.
                LSCHED_WARN("stream deadline: backlog of ", pend,
                            " thread(s) made no progress for ",
                            deadlineMillis_,
                            " ms; cancelling the stream");
                LSCHED_TRACE_EVENT(
                    obs::EventType::DeadlineExpire, deadlineMillis_,
                    static_cast<std::uint64_t>(CancelReason::Deadline),
                    pend);
                if (recovery_) {
                    recovery_->deadlines.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (obs::metricsOn())
                    detail::schedInstruments().recoverDeadlines->add();
                cancel_.request(CancelReason::Deadline);
            }
            sawBacklog = pend > 0;
        }
        lastRetired = ret;
        if (governor_ && governor_->enabled()) {
            const bool overloaded =
                cancel_.requested() ||
                (maxPending_ > 0 && pend >= maxPending_);
            const RecoveryState state = governor_->observe(overloaded);
            const bool nowDegraded =
                state == RecoveryState::Degraded;
            if (nowDegraded &&
                !degraded_.load(std::memory_order_relaxed)) {
                // Backed-off producers poll degraded_ each round, so
                // the flag alone unblocks them within one backoff.
                degraded_.store(true, std::memory_order_relaxed);
                shedLoad();
            } else if (!nowDegraded &&
                       degraded_.load(std::memory_order_relaxed)) {
                degraded_.store(false, std::memory_order_relaxed);
            }
        }
        if (placementAdaptive_) {
            // Stream epoch tick: a safe retune boundary. The adaptive
            // placement serializes against concurrent producers on its
            // own internal mutex; already-placed bins keep their
            // coordinates, so only subsequent forks land in the new
            // geometry.
            placement_.maybeRetune();
        }
    }
}

void
StreamSession::stopMonitor()
{
    if (!monitor_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(monMutex_);
        monDone_ = true;
    }
    monCv_.notify_one();
    monitor_.join();
}

void
StreamSession::shedLoad()
{
    std::uint64_t shedBins = 0;
    for (unsigned i = 0; i < shards_.size(); ++i) {
        ConcurrentBinTable &table = shards_[i]->table;
        const std::size_t bins = table.binCount();
        for (std::size_t b = 0; b < bins; ++b) {
            StreamBin *bin = table.binAt(b);
            if (!bin) // segment install still in flight
                continue;
            if (!bin->epochThreads.load(std::memory_order_relaxed))
                continue;
            const SealedChain chain = sealStreamBin(*bin, groupPool_);
            if (!chain.head)
                continue;
            enqueue(makeItem(*bin, chain));
            ++shedBins;
        }
    }
    if (recovery_)
        recovery_->loadSheds.fetch_add(1, std::memory_order_relaxed);
    if (obs::metricsOn())
        detail::schedInstruments().recoverLoadSheds->add();
    LSCHED_WARN("stream overload: degraded; force-sealed ", shedBins,
                " open bin(s) for the drain");
    LSCHED_TRACE_EVENT(obs::EventType::LoadShed, shedBins,
                       pending_.load(std::memory_order_relaxed),
                       maxPending_);
}

void
StreamSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // The monitor must stop before the tail drain: finish()'s own
    // sealing and draining would otherwise read as one more wedged
    // (or overloaded) epoch.
    stopMonitor();

    // Producers have stopped (the owner's contract): seal every open
    // chain so the tail of the stream drains like any other epoch.
    for (unsigned i = 0; i < shards_.size(); ++i) {
        ConcurrentBinTable &table = shards_[i]->table;
        const std::size_t bins = table.binCount();
        for (std::size_t b = 0; b < bins; ++b) {
            StreamBin *bin = table.binAt(b);
            if (!bin) // a failed carve left a permanent gap
                continue;
            const SealedChain chain = sealStreamBin(*bin, groupPool_);
            if (chain.head)
                enqueue(makeItem(*bin, chain));
        }
    }

    queue_.finish();
    if (helpersRunning_) {
        pool_->endStream();
        helpersRunning_ = false;
    }
    // Inline-only mode (no pool): the caller drains the whole tail as
    // worker 0. With helpers the queue is already empty — they only
    // exit waitPop once it is.
    detail::SealedBin item;
    while (queue_.tryPop(item)) {
        if (fault_.stopRequested())
            discard(item);
        else
            drainOne(item, 0);
    }

    for (const auto &shardPtr : shards_) {
        const ConcurrentBinTable &table = shardPtr->table;
        const std::size_t bins = table.binCount();
        for (std::size_t b = 0; b < bins; ++b) {
            const StreamBin *bin = table.binAt(b);
            if (!bin)
                continue;
            const std::uint64_t threads =
                bin->totalThreads.load(std::memory_order_relaxed);
            if (!threads)
                continue; // spare or never-forked bin
            StreamBinReport r;
            r.coords = bin->coords;
            r.epochs = bin->epochs.load(std::memory_order_relaxed);
            r.threads = threads;
            bins_.push_back(r);
        }
    }
}

StreamStats
StreamSession::stats() const
{
    StreamStats s;
    s.forked = forked_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.seals = seals_.load(std::memory_order_relaxed);
    s.backpressureWaits = bpWaits_.load(std::memory_order_relaxed);
    s.inlineDrains = inlineDrains_.load(std::memory_order_relaxed);
    s.backlog = pending_.load(std::memory_order_relaxed);
    s.peakBacklog = peak_.load(std::memory_order_relaxed);
    return s;
}

} // namespace lsched::threads
