/**
 * @file
 * The bin hash table (paper Section 3.2): organizes bins by hashing
 * their block coordinates; collisions are resolved by chaining. The
 * table size is configurable via th_init / SchedulerConfig.
 */

#ifndef LSCHED_THREADS_HASH_TABLE_HH
#define LSCHED_THREADS_HASH_TABLE_HH

#include <cstdint>
#include <deque>
#include <new>
#include <vector>

#include "support/align.hh"
#include "support/failpoint.hh"
#include "support/panic.hh"
#include "threads/bin.hh"
#include "threads/hints.hh"

namespace lsched::threads
{

/** Owns all bins and finds them by block coordinates. */
class BinTable
{
  public:
    /**
     * @param dims scheduling-space dimensionality.
     * @param buckets hash bucket count (rounded up to a power of two).
     */
    BinTable(unsigned dims, std::size_t buckets)
        : dims_(dims),
          mask_(roundUpPowerOfTwo(buckets ? buckets : 1) - 1),
          table_(mask_ + 1, nullptr)
    {
        LSCHED_ASSERT(dims_ >= 1 && dims_ <= kMaxDims,
                      "bad dimensionality ", dims_);
    }

    /**
     * Find the bin with coordinates @p coords, creating it on first
     * use (the scheduler "does not allocate a bin ... until it
     * schedules the first thread in it", Section 3.2). Returns the bin
     * and whether it was newly created. When @p probes is non-null it
     * receives the number of chained bins inspected — the collision
     * statistic the metrics registry histograms.
     */
    std::pair<Bin *, bool>
    findOrCreate(const BlockCoords &coords,
                 std::uint32_t *probes = nullptr)
    {
        const std::size_t bucket = hash(coords) & mask_;
        std::uint32_t walked = 0;
        for (Bin *b = table_[bucket]; b; b = b->hashNext) {
            ++walked;
            if (sameCoords(b->coords, coords)) {
                if (probes)
                    *probes = walked;
                return {b, false};
            }
        }
        // Fail point standing in for a real out-of-memory from the bin
        // growth below.
        if (LSCHED_FAILPOINT_HIT("bintable.grow"))
            throw std::bad_alloc();
        bins_.emplace_back();
        Bin *b = &bins_.back();
        b->coords = coords;
        b->id = static_cast<std::uint32_t>(bins_.size() - 1);
        b->hashNext = table_[bucket];
        table_[bucket] = b;
        if (probes)
            *probes = walked + 1;
        return {b, true};
    }

    /** Find without creating; nullptr when absent. */
    Bin *
    find(const BlockCoords &coords)
    {
        const std::size_t bucket = hash(coords) & mask_;
        for (Bin *b = table_[bucket]; b; b = b->hashNext)
            if (sameCoords(b->coords, coords))
                return b;
        return nullptr;
    }

    /** Number of bins ever allocated. */
    std::size_t binCount() const { return bins_.size(); }

    /** Number of hash buckets. */
    std::size_t bucketCount() const { return mask_ + 1; }

    /**
     * Longest bucket chain — the collision statistic the hash-size
     * ablation reports.
     */
    std::size_t
    maxChainLength() const
    {
        std::size_t longest = 0;
        for (Bin *b : table_) {
            std::size_t len = 0;
            for (; b; b = b->hashNext)
                ++len;
            longest = std::max(longest, len);
        }
        return longest;
    }

    /** Drop every bin. */
    void
    clear()
    {
        bins_.clear();
        std::fill(table_.begin(), table_.end(), nullptr);
    }

  private:
    bool
    sameCoords(const BlockCoords &a, const BlockCoords &b) const
    {
        for (unsigned d = 0; d < dims_; ++d)
            if (a[d] != b[d])
                return false;
        return true;
    }

    std::size_t
    hash(const BlockCoords &coords) const
    {
        // splitmix64-style mixing of each coordinate.
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        for (unsigned d = 0; d < dims_; ++d) {
            std::uint64_t z = coords[d] + 0x9e3779b97f4a7c15ull * (d + 1);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            h ^= z ^ (z >> 31);
            h *= 0xff51afd7ed558ccdull;
        }
        return static_cast<std::size_t>(h ^ (h >> 33));
    }

    unsigned dims_;
    std::size_t mask_;
    std::vector<Bin *> table_;
    std::deque<Bin> bins_;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_HASH_TABLE_HH
