/**
 * @file
 * The bin hash table (paper Section 3.2): organizes bins by hashing
 * their block coordinates. The paper's implementation chained
 * collisions off fixed buckets; here the table is open-addressing
 * with linear probing over a power-of-two slot array — one cache line
 * usually covers the whole probe sequence, where a chain walk paid a
 * dependent load per collision on the hot th_fork path. The table
 * grows (and rehashes) past 3/4 load, so the configured size
 * (th_init / SchedulerConfig) is a starting point, not a ceiling.
 */

#ifndef LSCHED_THREADS_HASH_TABLE_HH
#define LSCHED_THREADS_HASH_TABLE_HH

#include <cstdint>
#include <deque>
#include <new>
#include <vector>

#include "support/align.hh"
#include "support/failpoint.hh"
#include "support/panic.hh"
#include "threads/bin.hh"
#include "threads/hints.hh"

namespace lsched::threads
{

/**
 * Mix @p coords into a 64-bit hash (splitmix64-style per coordinate).
 * Exposed as a free function so the streaming intake can shard a fork
 * by coordinate hash *before* picking which shard's BinTable to lock.
 */
inline std::uint64_t
hashCoords(const BlockCoords &coords, unsigned dims)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (unsigned d = 0; d < dims; ++d) {
        std::uint64_t z = coords[d] + 0x9e3779b97f4a7c15ull * (d + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        h ^= z ^ (z >> 31);
        h *= 0xff51afd7ed558ccdull;
    }
    return h ^ (h >> 33);
}

/** Owns all bins and finds them by block coordinates. */
class BinTable
{
  public:
    /** Slots below this are rounded up (headroom for early growth). */
    static constexpr std::size_t kMinSlots = 16;

    /**
     * @param dims scheduling-space dimensionality.
     * @param buckets initial slot count (rounded up to a power of
     *        two, minimum kMinSlots).
     * @param idBase offset added to every bin id, so bins from several
     *        tables (the streaming intake shards) stay distinguishable
     *        in traces and fault reports.
     */
    BinTable(unsigned dims, std::size_t buckets,
             std::uint32_t idBase = 0)
        : dims_(dims), idBase_(idBase),
          mask_(roundUpPowerOfTwo(
                    buckets < kMinSlots ? kMinSlots : buckets) -
                1),
          slots_(mask_ + 1, nullptr)
    {
        LSCHED_ASSERT(dims_ >= 1 && dims_ <= kMaxDims,
                      "bad dimensionality ", dims_);
    }

    /**
     * Find the bin with coordinates @p coords, creating it on first
     * use (the scheduler "does not allocate a bin ... until it
     * schedules the first thread in it", Section 3.2). Returns the bin
     * and whether it was newly created. When @p probes is non-null it
     * receives the number of slots inspected — the collision statistic
     * the metrics registry histograms.
     */
    std::pair<Bin *, bool>
    findOrCreate(const BlockCoords &coords,
                 std::uint32_t *probes = nullptr)
    {
        return findOrCreateHashed(coords, hash(coords), probes);
    }

    /**
     * findOrCreate() with the hash precomputed by the caller (via
     * hashCoords()) — the streaming intake hashes once to pick a
     * shard, then reuses the value here instead of re-mixing.
     */
    std::pair<Bin *, bool>
    findOrCreateHashed(const BlockCoords &coords, std::uint64_t h,
                       std::uint32_t *probes = nullptr)
    {
        std::size_t i = h & mask_;
        std::uint32_t walked = 1;
        for (; slots_[i]; i = (i + 1) & mask_, ++walked) {
            Bin *b = slots_[i];
            if (b->hashVal == h && sameCoords(b->coords, coords)) {
                if (probes)
                    *probes = walked;
                return {b, false};
            }
        }
        // Fail point standing in for a real out-of-memory from the bin
        // growth below.
        if (LSCHED_FAILPOINT_HIT("bintable.grow"))
            throw std::bad_alloc();
        bins_.emplace_back();
        Bin *b = &bins_.back();
        b->coords = coords;
        b->hashVal = h;
        b->id = idBase_ + static_cast<std::uint32_t>(bins_.size() - 1);
        slots_[i] = b;
        if (probes)
            *probes = walked;
        // Keep load under 3/4 so probe sequences stay short and an
        // empty slot always terminates the loop above.
        if ((bins_.size() + 1) * 4 > (mask_ + 1) * 3)
            grow();
        return {b, true};
    }

    /** Find without creating; nullptr when absent. */
    Bin *
    find(const BlockCoords &coords)
    {
        const std::uint64_t h = hash(coords);
        for (std::size_t i = h & mask_; slots_[i];
             i = (i + 1) & mask_) {
            Bin *b = slots_[i];
            if (b->hashVal == h && sameCoords(b->coords, coords))
                return b;
        }
        return nullptr;
    }

    /** Number of bins ever allocated. */
    std::size_t binCount() const { return bins_.size(); }

    /** Number of slots in the probe table. */
    std::size_t bucketCount() const { return mask_ + 1; }

    /**
     * Longest probe sequence needed to reach a bin — the collision
     * statistic the hash-size ablation reports (the open-addressing
     * successor of the chained table's longest bucket chain).
     */
    std::size_t
    maxChainLength() const
    {
        std::size_t longest = 0;
        for (std::size_t i = 0; i <= mask_; ++i) {
            const Bin *b = slots_[i];
            if (!b)
                continue;
            const std::size_t home = b->hashVal & mask_;
            const std::size_t dist = (i - home) & mask_;
            longest = std::max(longest, dist + 1);
        }
        return longest;
    }

    /** Drop every bin (slot capacity is retained). */
    void
    clear()
    {
        bins_.clear();
        std::fill(slots_.begin(), slots_.end(), nullptr);
    }

  private:
    bool
    sameCoords(const BlockCoords &a, const BlockCoords &b) const
    {
        for (unsigned d = 0; d < dims_; ++d)
            if (a[d] != b[d])
                return false;
        return true;
    }

    std::uint64_t
    hash(const BlockCoords &coords) const
    {
        return hashCoords(coords, dims_);
    }

    /** Double the slot array and reinsert by cached hash. */
    void
    grow()
    {
        mask_ = (mask_ + 1) * 2 - 1;
        slots_.assign(mask_ + 1, nullptr);
        for (Bin &b : bins_) {
            std::size_t i = b.hashVal & mask_;
            while (slots_[i])
                i = (i + 1) & mask_;
            slots_[i] = &b;
        }
    }

    unsigned dims_;
    std::uint32_t idBase_ = 0;
    std::size_t mask_;
    std::vector<Bin *> slots_;
    std::deque<Bin> bins_;
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_HASH_TABLE_HH
