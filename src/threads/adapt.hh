/**
 * @file
 * Adaptive self-tuning placement: close the loop from the continuous
 * profiler's per-bin miss attribution (obs/profile.hh) back to the
 * placement parameters the paper hand-tunes — block dimensions,
 * super-bin fan, and bin count.
 *
 * Two pieces:
 *
 *  - AdaptiveTuner — the pure state machine. It consumes per-epoch
 *    deltas of the profiler's totals (AdaptSample) and decides whether
 *    the placement parameters should change. Two operating modes:
 *
 *     PMU mode (counter-valid samples present): classify each epoch by
 *     LLC miss rate. Above adaptHighMiss for adaptEpochs consecutive
 *     epochs means the blocks overflow the cache (capacity-dominated):
 *     halve the block (double the bin count under a round-robin base)
 *     and mark the overflowing size *bad*. At or below adaptTargetMiss
 *     (the compulsory floor) for adaptEpochs epochs, grow the block
 *     back toward adaptMaxBlock — but never into a size ever marked
 *     bad. That bad-set is the hysteresis: once a size is known to
 *     overflow, the tuner can never oscillate back into it.
 *
 *     Dwell-only mode (no PMU — containers, perf_event_paranoid): no
 *     miss rates, so the tuner hill-climbs on dwell-per-thread. After
 *     adaptEpochs stable epochs it *probes* a shrink, then judges the
 *     probe against the pre-probe dwell: kept when it improved by
 *     adaptDwellImprove, reverted (and the probed size marked bad)
 *     otherwise. Guarantees the tuner never stalls at mis-tuned
 *     initial parameters just because the PMU is unavailable.
 *
 *    After any parameter change the tuner holds for adaptHold epochs
 *    so a half-old epoch cannot trigger a reaction to its own change.
 *
 *  - AdaptivePlacement — the PlacementPolicy wrapper. It owns an inner
 *    base policy (blockhash / roundrobin / hierarchical) built from
 *    the tuner's current parameters. The hot path is lock-free:
 *    place()/peek() load the current policy through one atomic
 *    pointer, so quiescent adaptation costs a single acquire load on
 *    top of the base policy. maybeRetune() — called by the scheduler
 *    only at safe boundaries: end of run()/runParallel(), streamBegin/
 *    streamEnd, and the stream monitor's tick — polls the profiler,
 *    feeds the delta to the tuner, and on a decision builds a new
 *    inner policy and publishes it with a release store; retired
 *    generations stay alive (their count is bounded by the bad-set)
 *    so a fork racing the swap finishes on the old geometry. Already-
 *    placed bins keep their coordinates (bins are keyed by coords, so
 *    exactly-once is untouched); only threads forked after the swap
 *    land in the new geometry.
 *
 * With instrumentation compiled out (LSCHED_TRACE_ENABLED=0) the
 * profiler records nothing, so the tuner sees no deltas and holds the
 * initial parameters — adaptive placement degrades to its base policy.
 * This translation unit is the one placement-layer file allowed to
 * reference profiler symbols (scripts/check-all.sh's notrace nm guard
 * covers the hot TUs, not this cold retune surface).
 */

#ifndef LSCHED_THREADS_ADAPT_HH
#define LSCHED_THREADS_ADAPT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "threads/placement.hh"

namespace lsched::threads
{

struct SchedulerConfig;

/** One epoch's profiler deltas, as the tuner consumes them. */
struct AdaptSample
{
    /** recordSample() calls (any kind). */
    std::uint64_t samples = 0;
    /** ... of which carried valid hardware counters. */
    std::uint64_t pmuSamples = 0;
    std::uint64_t llcRefs = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t dwellNs = 0;
    std::uint64_t threads = 0;
};

/** Tuner thresholds — the adapt.* SchedulerConfig fields. */
struct AdaptTunerConfig
{
    double targetMiss = 0.05;
    double highMiss = 0.10;
    double converge = 1.5;
    unsigned epochs = 2;
    unsigned hold = 4;
    std::uint64_t minBlock = 4096;
    /** Resolved by the caller (0 is not legal here). */
    std::uint64_t maxBlock = 2 * 1024 * 1024;
    std::uint64_t minRefs = 1024;
    double dwellImprove = 0.05;
};

/** The parameter set the tuner drives. */
struct AdaptParams
{
    std::uint64_t blockBytes = 0;
    /** Hierarchical base only; 0 otherwise. */
    std::uint64_t superBinFan = 0;
    /** Round-robin base only; 0 otherwise. */
    std::uint64_t roundRobinBins = 0;
};

/**
 * The regime-classification / retune state machine. Deterministic and
 * profiler-free, so tests can drive it with synthetic samples. Not
 * thread-safe — AdaptivePlacement serializes access on its mutex.
 */
class AdaptiveTuner
{
  public:
    AdaptiveTuner(const AdaptTunerConfig &config, PlacementKind base,
                  const AdaptParams &initial);

    /**
     * Consume one epoch's deltas. Returns true when params() changed
     * (the caller must rebuild its placement). A sample with
     * pmuSamples > 0 takes the PMU path; one with only dwell data the
     * dwell path; an all-zero delta is ignored entirely.
     */
    bool observe(const AdaptSample &delta);

    const AdaptParams &params() const { return params_; }
    AdaptRegime regime() const { return regime_; }

    std::uint64_t observations() const { return observations_; }
    std::uint64_t retunes() const { return retunes_; }
    std::uint64_t shrinks() const { return shrinks_; }
    std::uint64_t grows() const { return grows_; }
    std::uint64_t reverts() const { return reverts_; }

  private:
    /** The one knob the base policy sizes bins with. */
    std::uint64_t primary() const;
    void setPrimary(std::uint64_t value);
    /** Next shrink/grow value for the primary knob; 0 = none legal. */
    std::uint64_t shrinkTarget() const;
    std::uint64_t growTarget() const;
    /** Super-bin fan preserving the initial super-bin byte span. */
    std::uint64_t fanFor(std::uint64_t blockBytes) const;
    /** Apply a new primary value + shared post-retune bookkeeping. */
    void apply(std::uint64_t value);

    bool observePmu(const AdaptSample &delta);
    bool observeDwell(const AdaptSample &delta);

    const AdaptTunerConfig config_;
    const PlacementKind base_;
    const AdaptParams initial_;
    AdaptParams params_;
    AdaptRegime regime_ = AdaptRegime::Warmup;

    /** Primary-knob values ever classified capacity-dominated (or
     *  probed without improvement): never entered again. */
    std::set<std::uint64_t> bad_;
    unsigned capacityStreak_ = 0;
    unsigned floorStreak_ = 0;
    unsigned holdRemaining_ = 0;

    /** Dwell-mode accumulators (stable window / probe window). */
    std::uint64_t stableDwell_ = 0;
    std::uint64_t stableThreads_ = 0;
    unsigned stableObs_ = 0;
    bool probing_ = false;
    AdaptParams preProbe_;
    double preProbeMetric_ = 0.0;
    std::uint64_t probeDwell_ = 0;
    std::uint64_t probeThreads_ = 0;
    unsigned probeObs_ = 0;

    std::uint64_t observations_ = 0;
    std::uint64_t retunes_ = 0;
    std::uint64_t shrinks_ = 0;
    std::uint64_t grows_ = 0;
    std::uint64_t reverts_ = 0;
};

/**
 * PlacementPolicy wrapper: the tuner plus the inner base policy it
 * re-parameterizes. place()/peek() read the current policy through an
 * atomic pointer (no lock); maybeRetune() serializes the tuner and
 * the generation swap on an internal mutex, so the stream monitor may
 * retune while producers fork.
 */
class AdaptivePlacement final : public PlacementPolicy
{
  public:
    AdaptivePlacement(PlacementKind base, unsigned dims, bool symmetric,
                      const AdaptTunerConfig &tunerConfig,
                      const AdaptParams &initial);

    PlacementDecision place(std::span<const Hint> hints) override;
    PlacementDecision peek(std::span<const Hint> hints) const override;

    PlacementKind kind() const override
    {
        return PlacementKind::Adaptive;
    }

    /** Inherited from the base policy: the generation swap itself is
     *  lock-free, so only a stateful base (round-robin's cursor)
     *  needs the session to serialize producers. */
    bool stateless() const override { return innerStateless_; }

    bool hierarchical() const override
    {
        return base_ == PlacementKind::Hierarchical;
    }

    bool maybeRetune() override;

    AdaptSnapshot adaptSnapshot() const override;

    PlacementPolicy *hotPolicy() override
    {
        return inner_.load(std::memory_order_acquire);
    }

    /** The wrapped base policy's kind (inspection). */
    PlacementKind baseKind() const { return base_; }

    /** Parameters currently in force (tests). */
    AdaptParams currentParams() const;

  private:
    std::unique_ptr<PlacementPolicy> buildInner() const;

    const PlacementKind base_;
    const unsigned dims_;
    const bool symmetric_;
    bool innerStateless_ = false;

    /** Every generation ever built, oldest first; the count is
     *  bounded by the bad-set (each retune burns a knob value), so
     *  keeping retired generations alive is cheap and lets a place()
     *  racing the swap finish on the old geometry. */
    std::vector<std::unique_ptr<PlacementPolicy>> generations_;
    /** The current generation; place()/peek() acquire-load it. */
    std::atomic<PlacementPolicy *> inner_{nullptr};

    /** Guards the tuner and the generation swap, not the read path. */
    mutable std::mutex mutex_;
    AdaptiveTuner tuner_;
    /** Absolute profiler totals at the previous poll. */
    AdaptSample lastTotals_;
};

/**
 * Build the adaptive placement a SchedulerConfig selects: base policy
 * from adaptBase, initial parameters from the config's blockBytes/
 * superBinFan/roundRobinBins, thresholds from the adapt.* fields
 * (adaptMaxBlock == 0 resolves to cacheBytes). The config must
 * already be validated (adaptBase != Adaptive).
 */
std::unique_ptr<PlacementPolicy>
makeAdaptivePlacement(const SchedulerConfig &config);

} // namespace lsched::threads

#endif // LSCHED_THREADS_ADAPT_HH
