/**
 * @file
 * Execution backends (execution.hh) and the selection-layer glue: the
 * worker thread-local marker fork() checks, the shared pool callback
 * every parallel backend routes through, and the --placement/
 * --backend/--sched CLI hook.
 */

#include "threads/execution.hh"

#include "support/cli.hh"
#include "support/panic.hh"
#include "threads/bin_exec.hh"
#include "threads/config_keys.hh"
#include "threads/scheduler.hh"

namespace lsched::threads
{

namespace
{

thread_local bool t_inParallelWorker = false;

/**
 * The one pool callback (PoolJob::execute) behind every parallel
 * backend. The thread-local marker covers exactly the span where user
 * threads run, so fork() can reject the unsynchronized-ready-list
 * race from any pool worker, persistent or cold. Under
 * ErrorPolicy::Abort executeBin() does not contain: an escaped
 * exception hits the worker-thread boundary (std::terminate on a
 * helper; rethrown on the caller for worker 0).
 */
std::uint64_t
poolExecute(Bin *bin, unsigned worker, void *ctxRaw)
{
    auto *fault = static_cast<detail::FaultCtx *>(ctxRaw);
    detail::ParallelWorkerScope in_worker;
    return detail::executeBin(bin, *fault, worker);
}

/** PoolJob::cancelledBin — account a bin the cancellation dropped. */
void
poolCancelled(Bin *bin, void *ctxRaw)
{
    auto *fault = static_cast<detail::FaultCtx *>(ctxRaw);
    if (bin->threadCount > 0)
        detail::noteCancelledBin(*fault, bin->id, 0, bin->threadCount);
}

/** Translate a TourSpec into the pool's job structure. */
void
initJob(detail::PoolJob &job, TourSpec &spec)
{
    job.tour = spec.tour;
    job.bins = spec.bins;
    job.workers = spec.workers;
    job.execute = &poolExecute;
    job.ctx = spec.fault;
    job.stop = spec.fault->policy == ErrorPolicy::StopTour
                   ? &spec.fault->stop
                   : nullptr;
    job.cancel = spec.fault->cancel;
    job.cancelledBin = &poolCancelled;
    job.currentBin = spec.currentBin;
    job.honorSuperBins = spec.honorSuperBins;
    job.binDomain = spec.binDomain;
    job.workerDomain = spec.workerDomain;
    job.domains = spec.domains;
}

/** The caller walks the tour alone, in order. */
class SerialBackend final : public ExecutionBackend
{
  public:
    std::uint64_t
    runTour(TourSpec &spec) override
    {
        // No ParallelWorkerScope: a serial tour runs on the caller,
        // where nested fork() is a recoverable UsageError (or legal,
        // in run()'s streaming mode) — not the parallel data race the
        // marker exists to make fatal.
        std::uint64_t executed = 0;
        std::size_t next = 0;
        for (; next < spec.bins; ++next) {
            if (spec.fault->stopRequested())
                break;
            Bin *bin = spec.tour[next];
            if (spec.currentBin) {
                spec.currentBin[0].store(bin->id,
                                         std::memory_order_relaxed);
            }
            executed += detail::executeBin(bin, *spec.fault, 0);
            if (spec.currentBin) {
                spec.currentBin[0].store(detail::kWorkerIdle,
                                         std::memory_order_relaxed);
            }
        }
        if (spec.fault->cancelRequested()) {
            // Account the un-walked tail; the parallel backends do the
            // same with their post-join deque sweep.
            for (; next < spec.bins; ++next)
                poolCancelled(spec.tour[next], spec.fault);
        }
        if (spec.currentBin) {
            spec.currentBin[0].store(detail::kWorkerDone,
                                     std::memory_order_relaxed);
        }
        return executed;
    }

    BackendKind kind() const override { return BackendKind::Serial; }
};

/** The persistent work-stealing pool (worker_pool.hh). */
class PooledBackend final : public ExecutionBackend
{
  public:
    std::uint64_t
    runTour(TourSpec &spec) override
    {
        LSCHED_ASSERT(spec.pool != nullptr,
                      "pooled tour without a worker pool");
        detail::PoolJob job;
        initJob(job, spec);
        spec.pool->runTour(job);
        return job.executed.load(std::memory_order_relaxed);
    }

    BackendKind kind() const override { return BackendKind::Pooled; }
};

/**
 * Historic cold path: a throwaway pool, so every tour pays thread
 * creation/join — the baseline ablation_smp compares the warm pool
 * against. The pool's lifetime counters fold into the scheduler's
 * retired-pool statistics, success or throw.
 */
class ColdSpawnBackend final : public ExecutionBackend
{
  public:
    std::uint64_t
    runTour(TourSpec &spec) override
    {
        LSCHED_ASSERT(spec.retiredStats != nullptr,
                      "cold-spawn tour without a stats sink");
        detail::PoolJob job;
        initJob(job, spec);
        WorkerPool cold(spec.pinWorkers, spec.pinPlan);
        try {
            cold.runTour(job);
        } catch (...) {
            *spec.retiredStats += cold.stats();
            throw;
        }
        *spec.retiredStats += cold.stats();
        return job.executed.load(std::memory_order_relaxed);
    }

    BackendKind kind() const override { return BackendKind::ColdSpawn; }
};

std::vector<std::pair<std::string, std::string>> g_schedOverrides;

/**
 * Validate and record one (key, value) override. All three flags
 * funnel through here so a typo dies at the command line — against a
 * scratch config, since the real ones don't exist yet — instead of
 * surfacing as a ConfigError from whichever scheduler is configured
 * first.
 */
void
addSchedOverride(const char *flag, const std::string &key,
                 const std::string &value)
{
    SchedulerConfig scratch;
    std::string error;
    if (!applyConfigKey(scratch, key, value, &error))
        LSCHED_FATAL(flag, ": ", error);
    g_schedOverrides.emplace_back(key, value);
}

/** Receiver for the built-in --placement/--backend/--sched values. */
void
applyCliSched(const std::string &placement, const std::string &backend,
              const std::string &sched)
{
    if (!placement.empty())
        addSchedOverride("--placement", "placement", placement);
    if (!backend.empty())
        addSchedOverride("--backend", "backend", backend);
    // --sched is comma-separated key=value pairs, later pairs winning
    // (they replay in order).
    std::size_t pos = 0;
    while (pos < sched.size()) {
        std::size_t comma = sched.find(',', pos);
        if (comma == std::string::npos)
            comma = sched.size();
        const std::string pair = sched.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            LSCHED_FATAL("--sched: expected key=value, got '", pair,
                         "'");
        }
        addSchedOverride("--sched", pair.substr(0, eq),
                         pair.substr(eq + 1));
    }
}

/**
 * Install the hook at static-initialization time, mirroring the obs
 * library's --trace/--metrics registration: any binary linking the
 * scheduler honours --placement/--backend with no per-program code.
 */
[[maybe_unused]] const bool g_cliSchedHookInstalled =
    (lsched::setCliSchedHook(&applyCliSched), true);

} // namespace

namespace detail
{

bool
inParallelWorker()
{
    return t_inParallelWorker;
}

ParallelWorkerScope::ParallelWorkerScope()
{
    t_inParallelWorker = true;
}

ParallelWorkerScope::~ParallelWorkerScope()
{
    t_inParallelWorker = false;
}

const std::vector<std::pair<std::string, std::string>> &
schedOverrides()
{
    return g_schedOverrides;
}

} // namespace detail

ExecutionBackend::~ExecutionBackend() = default;

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Serial:
        return "serial";
      case BackendKind::Pooled:
        return "pooled";
      case BackendKind::ColdSpawn:
        return "coldspawn";
    }
    return "?";
}

bool
tryBackendFromName(const std::string &name, BackendKind *out)
{
    if (name == "serial")
        *out = BackendKind::Serial;
    else if (name == "pooled")
        *out = BackendKind::Pooled;
    else if (name == "coldspawn")
        *out = BackendKind::ColdSpawn;
    else
        return false;
    return true;
}

BackendKind
backendFromName(const std::string &name)
{
    BackendKind kind;
    if (!tryBackendFromName(name, &kind)) {
        LSCHED_FATAL("unknown execution backend '", name,
                     "' (want serial|pooled|coldspawn)");
    }
    return kind;
}

ExecutionBackend &
executionBackend(BackendKind kind)
{
    static SerialBackend serial;
    static PooledBackend pooled;
    static ColdSpawnBackend coldSpawn;
    switch (kind) {
      case BackendKind::Serial:
        return serial;
      case BackendKind::Pooled:
        return pooled;
      case BackendKind::ColdSpawn:
        return coldSpawn;
    }
    LSCHED_PANIC("unhandled BackendKind ", static_cast<int>(kind));
}

} // namespace lsched::threads
