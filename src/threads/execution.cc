/**
 * @file
 * Execution backends (execution.hh) and the selection-layer glue: the
 * worker thread-local marker fork() checks, the shared pool callback
 * every parallel backend routes through, and the --placement/
 * --backend CLI hook.
 */

#include "threads/execution.hh"

#include "support/cli.hh"
#include "support/panic.hh"
#include "threads/bin_exec.hh"

namespace lsched::threads
{

namespace
{

thread_local bool t_inParallelWorker = false;

/** Scoped thread-local marker for parallel worker bodies. */
struct ParallelWorkerScope
{
    ParallelWorkerScope() { t_inParallelWorker = true; }
    ~ParallelWorkerScope() { t_inParallelWorker = false; }
};

/**
 * The one pool callback (PoolJob::execute) behind every parallel
 * backend. The thread-local marker covers exactly the span where user
 * threads run, so fork() can reject the unsynchronized-ready-list
 * race from any pool worker, persistent or cold. Under
 * ErrorPolicy::Abort executeBin() does not contain: an escaped
 * exception hits the worker-thread boundary (std::terminate on a
 * helper; rethrown on the caller for worker 0).
 */
std::uint64_t
poolExecute(Bin *bin, unsigned worker, void *ctxRaw)
{
    auto *fault = static_cast<detail::FaultCtx *>(ctxRaw);
    ParallelWorkerScope in_worker;
    return detail::executeBin(bin, *fault, worker);
}

/** Translate a TourSpec into the pool's job structure. */
void
initJob(detail::PoolJob &job, TourSpec &spec)
{
    job.tour = spec.tour;
    job.bins = spec.bins;
    job.workers = spec.workers;
    job.execute = &poolExecute;
    job.ctx = spec.fault;
    job.stop = spec.fault->policy == ErrorPolicy::StopTour
                   ? &spec.fault->stop
                   : nullptr;
    job.currentBin = spec.currentBin;
    job.honorSuperBins = spec.honorSuperBins;
}

/** The caller walks the tour alone, in order. */
class SerialBackend final : public ExecutionBackend
{
  public:
    std::uint64_t
    runTour(TourSpec &spec) override
    {
        // No ParallelWorkerScope: a serial tour runs on the caller,
        // where nested fork() is a recoverable UsageError (or legal,
        // in run()'s streaming mode) — not the parallel data race the
        // marker exists to make fatal.
        std::uint64_t executed = 0;
        for (std::size_t i = 0; i < spec.bins; ++i) {
            if (spec.fault->stopRequested())
                break;
            Bin *bin = spec.tour[i];
            if (spec.currentBin) {
                spec.currentBin[0].store(bin->id,
                                         std::memory_order_relaxed);
            }
            executed += detail::executeBin(bin, *spec.fault, 0);
            if (spec.currentBin) {
                spec.currentBin[0].store(detail::kWorkerIdle,
                                         std::memory_order_relaxed);
            }
        }
        if (spec.currentBin) {
            spec.currentBin[0].store(detail::kWorkerDone,
                                     std::memory_order_relaxed);
        }
        return executed;
    }

    BackendKind kind() const override { return BackendKind::Serial; }
};

/** The persistent work-stealing pool (worker_pool.hh). */
class PooledBackend final : public ExecutionBackend
{
  public:
    std::uint64_t
    runTour(TourSpec &spec) override
    {
        LSCHED_ASSERT(spec.pool != nullptr,
                      "pooled tour without a worker pool");
        detail::PoolJob job;
        initJob(job, spec);
        spec.pool->runTour(job);
        return job.executed.load(std::memory_order_relaxed);
    }

    BackendKind kind() const override { return BackendKind::Pooled; }
};

/**
 * Historic cold path: a throwaway pool, so every tour pays thread
 * creation/join — the baseline ablation_smp compares the warm pool
 * against. The pool's lifetime counters fold into the scheduler's
 * retired-pool statistics, success or throw.
 */
class ColdSpawnBackend final : public ExecutionBackend
{
  public:
    std::uint64_t
    runTour(TourSpec &spec) override
    {
        LSCHED_ASSERT(spec.retiredStats != nullptr,
                      "cold-spawn tour without a stats sink");
        detail::PoolJob job;
        initJob(job, spec);
        WorkerPool cold(spec.pinWorkers);
        try {
            cold.runTour(job);
        } catch (...) {
            *spec.retiredStats += cold.stats();
            throw;
        }
        *spec.retiredStats += cold.stats();
        return job.executed.load(std::memory_order_relaxed);
    }

    BackendKind kind() const override { return BackendKind::ColdSpawn; }
};

PlacementKind g_placementOverride{};
bool g_hasPlacementOverride = false;
BackendKind g_backendOverride{};
bool g_hasBackendOverride = false;

/** Receiver for the built-in --placement/--backend CLI values. */
void
applyCliSched(const std::string &placement, const std::string &backend)
{
    if (!placement.empty()) {
        PlacementKind kind;
        if (!tryPlacementFromName(placement, &kind)) {
            LSCHED_FATAL("--placement: unknown policy '", placement,
                         "' (want blockhash|roundrobin|hierarchical)");
        }
        g_placementOverride = kind;
        g_hasPlacementOverride = true;
    }
    if (!backend.empty()) {
        BackendKind kind;
        if (!tryBackendFromName(backend, &kind)) {
            LSCHED_FATAL("--backend: unknown backend '", backend,
                         "' (want serial|pooled|coldspawn)");
        }
        g_backendOverride = kind;
        g_hasBackendOverride = true;
    }
}

/**
 * Install the hook at static-initialization time, mirroring the obs
 * library's --trace/--metrics registration: any binary linking the
 * scheduler honours --placement/--backend with no per-program code.
 */
[[maybe_unused]] const bool g_cliSchedHookInstalled =
    (lsched::setCliSchedHook(&applyCliSched), true);

} // namespace

namespace detail
{

bool
inParallelWorker()
{
    return t_inParallelWorker;
}

const PlacementKind *
placementOverride()
{
    return g_hasPlacementOverride ? &g_placementOverride : nullptr;
}

const BackendKind *
backendOverride()
{
    return g_hasBackendOverride ? &g_backendOverride : nullptr;
}

} // namespace detail

ExecutionBackend::~ExecutionBackend() = default;

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Serial:
        return "serial";
      case BackendKind::Pooled:
        return "pooled";
      case BackendKind::ColdSpawn:
        return "coldspawn";
    }
    return "?";
}

bool
tryBackendFromName(const std::string &name, BackendKind *out)
{
    if (name == "serial")
        *out = BackendKind::Serial;
    else if (name == "pooled")
        *out = BackendKind::Pooled;
    else if (name == "coldspawn")
        *out = BackendKind::ColdSpawn;
    else
        return false;
    return true;
}

BackendKind
backendFromName(const std::string &name)
{
    BackendKind kind;
    if (!tryBackendFromName(name, &kind)) {
        LSCHED_FATAL("unknown execution backend '", name,
                     "' (want serial|pooled|coldspawn)");
    }
    return kind;
}

ExecutionBackend &
executionBackend(BackendKind kind)
{
    static SerialBackend serial;
    static PooledBackend pooled;
    static ColdSpawnBackend coldSpawn;
    switch (kind) {
      case BackendKind::Serial:
        return serial;
      case BackendKind::Pooled:
        return pooled;
      case BackendKind::ColdSpawn:
        return coldSpawn;
    }
    LSCHED_PANIC("unhandled BackendKind ", static_cast<int>(kind));
}

} // namespace lsched::threads
