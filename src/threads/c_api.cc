#include "c_api.hh"

#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace
{

/** Lazily constructed global scheduler. */
lsched::threads::LocalityScheduler &
instance()
{
    static lsched::threads::LocalityScheduler scheduler;
    return scheduler;
}

} // namespace

lsched::threads::LocalityScheduler &
th_default_scheduler()
{
    return instance();
}

void
th_init(std::size_t blocksize, std::size_t hashsize)
{
    lsched::threads::SchedulerConfig config = instance().config();
    config.blockBytes = blocksize; // 0 selects cacheBytes / dims
    config.hashBuckets = hashsize; // 0 selects the default
    instance().configure(config);
}

void
th_fork(void (*f)(void *, void *), void *arg1, void *arg2,
        const void *hint1, const void *hint2, const void *hint3)
{
    instance().fork(f, arg1, arg2, lsched::threads::hintOf(hint1),
                    lsched::threads::hintOf(hint2),
                    lsched::threads::hintOf(hint3));
}

void
th_run(int keep)
{
    instance().run(keep != 0);
}

extern "C" {

th_stats_t
th_stats(void)
{
    const lsched::threads::SchedulerStats s = instance().stats();
    th_stats_t out;
    out.pending_threads = s.pendingThreads;
    out.executed_threads = s.executedThreads;
    out.bins = s.bins;
    out.occupied_bins = s.occupiedBins;
    out.max_hash_chain = s.maxHashChain;
    out.tour_length = s.tourLength;
    const bool any = s.threadsPerBin.count() > 0;
    out.threads_per_bin_mean = any ? s.threadsPerBin.mean() : 0;
    out.threads_per_bin_min = any ? s.threadsPerBin.min() : 0;
    out.threads_per_bin_max = any ? s.threadsPerBin.max() : 0;
    out.threads_per_bin_stddev = any ? s.threadsPerBin.stddev() : 0;
    return out;
}

void
th_trace_enable(void)
{
    lsched::obs::setTraceEnabled(true);
    lsched::obs::setMetricsEnabled(true);
}

void
th_trace_disable(void)
{
    lsched::obs::setTraceEnabled(false);
    lsched::obs::setMetricsEnabled(false);
}

int
th_trace_write(const char *path)
{
    if (!path || !lsched::obs::kTraceCompiled)
        return -1;
    return lsched::obs::writeChromeTrace(path) ? 0 : -1;
}

int
th_metrics_write(const char *path)
{
    if (!path)
        return -1;
    return lsched::obs::writeMetricsFile(path) ? 0 : -1;
}

void
th_init_(const long *blocksize, const long *hashsize)
{
    th_init(blocksize ? static_cast<std::size_t>(*blocksize) : 0,
            hashsize ? static_cast<std::size_t>(*hashsize) : 0);
}

void
th_fork_(void (*f)(void *, void *), void *arg1, void *arg2,
         const void *hint1, const void *hint2, const void *hint3)
{
    th_fork(f, arg1, arg2, hint1, hint2, hint3);
}

void
th_run_(const int *keep)
{
    th_run(keep ? *keep : 0);
}

} // extern "C"
