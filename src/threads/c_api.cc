#include "c_api.hh"

#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/snapshot.hh"
#include "obs/trace.hh"
#include "support/error.hh"
#include "support/failpoint.hh"
#include "threads/config_keys.hh"

namespace
{

/** Lazily constructed global scheduler. */
lsched::threads::LocalityScheduler &
instance()
{
    static lsched::threads::LocalityScheduler scheduler;
    return scheduler;
}

thread_local std::string t_lastError;
thread_local bool t_hasError = false;

std::mutex g_handlerMutex;
th_error_handler_t g_handler = nullptr;
void *g_handlerUser = nullptr;

void
recordError(std::string message)
{
    t_lastError = std::move(message);
    t_hasError = true;
    th_error_handler_t handler;
    void *user;
    {
        std::lock_guard<std::mutex> lock(g_handlerMutex);
        handler = g_handler;
        user = g_handlerUser;
    }
    if (handler)
        handler(t_lastError.c_str(), user);
}

/**
 * Run @p fn, translating every exception a th_* call can legally
 * produce into a recorded error. Exceptions here are always
 * recoverable by construction — panics abort before unwinding.
 */
template <typename Fn>
bool
guarded(Fn &&fn)
{
    try {
        fn();
        return true;
    } catch (const std::bad_alloc &) {
        recordError("out of memory");
    } catch (const std::exception &e) {
        recordError(e.what());
    } catch (...) {
        recordError("unknown error");
    }
    return false;
}

/**
 * Copy @p value into the caller's buffer with the th_config_get
 * protocol: truncate to len-1, always NUL-terminate when len > 0,
 * return the full (untruncated) length.
 */
int
copyOut(const std::string &value, char *buf, std::size_t len)
{
    if (len > 0) {
        const std::size_t n =
            value.size() < len - 1 ? value.size() : len - 1;
        std::memcpy(buf, value.data(), n);
        buf[n] = '\0';
    }
    return static_cast<int>(value.size());
}

/**
 * The merged name -> value table behind th_metric_*, sorted by name.
 *
 * Two sources, synthesized rows winning on a name collision so the
 * stats snapshot and the metric surface can never disagree:
 *
 *  - every obs Registry instrument: counters and gauges under their
 *    own names, histograms flattened to name.count / name.sum;
 *  - every th_stats_t field, synthesized from the scheduler's live
 *    SchedulerStats under its established registry name. These rows
 *    exist even when metrics are disabled or compiled out, so the
 *    named surface is never weaker than the frozen struct.
 */
std::vector<std::pair<std::string, unsigned long long>>
metricTable()
{
    std::map<std::string, unsigned long long> table;
    for (const lsched::obs::Registry::Row &row :
         lsched::obs::Registry::global().rows()) {
        if (row.kind == "histogram") {
            table[row.name + ".count"] = row.value;
            table[row.name + ".sum"] = row.sum;
        } else {
            table[row.name] = row.value;
        }
    }
    const th_stats_t s = th_stats();
    const auto put = [&table](const char *name,
                              unsigned long long value) {
        table[name] = value;
    };
    put("sched.pending_threads", s.pending_threads);
    put("sched.executed_threads", s.executed_threads);
    put("sched.bins", s.bins);
    put("sched.bins.occupied", s.occupied_bins);
    put("sched.hash.max_chain", s.max_hash_chain);
    put("sched.tour.length", s.tour_length);
    put("sched.pool.threads", s.pool_threads_spawned);
    put("sched.pool.steals", s.pool_steals);
    put("sched.pool.parks", s.pool_parks);
    put("sched.placement",
        static_cast<unsigned long long>(s.placement));
    put("sched.backend", static_cast<unsigned long long>(s.backend));
    put("sched.bin.threads.mean", static_cast<unsigned long long>(
                                      std::llround(s.threads_per_bin_mean)));
    put("sched.bin.threads.min", static_cast<unsigned long long>(
                                     std::llround(s.threads_per_bin_min)));
    put("sched.bin.threads.max", static_cast<unsigned long long>(
                                     std::llround(s.threads_per_bin_max)));
    put("sched.bin.threads.stddev",
        static_cast<unsigned long long>(
            std::llround(s.threads_per_bin_stddev)));
    put("sched.faulted_threads", s.faulted_threads);
    put("sched.last_fault_count", s.last_fault_count);
    put("sched.stream.forked", s.stream_forked);
    put("sched.stream.executed", s.stream_executed);
    put("sched.stream.seals", s.stream_seals);
    put("sched.stream.backpressure", s.stream_backpressure_waits);
    put("sched.stream.inline_drains", s.stream_inline_drains);
    put("sched.stream.backlog", s.stream_backlog);
    put("sched.stream.peak_backlog", s.stream_peak_backlog);
    put("sched.recover.deadlines", s.recover_deadlines);
    put("sched.recover.watchdog_cancels", s.recover_watchdog_cancels);
    put("sched.recover.cancelled_bins", s.recover_cancelled_bins);
    put("sched.recover.cancelled_threads",
        s.recover_cancelled_threads);
    put("sched.recover.admission_retries",
        s.recover_admission_retries);
    put("sched.recover.admission_timeouts",
        s.recover_admission_timeouts);
    put("sched.recover.load_sheds", s.recover_load_sheds);
    put("sched.recover.degraded_tours", s.recover_degraded_tours);
    put("sched.recover.recoveries", s.recover_recoveries);
    put("sched.recover.state",
        static_cast<unsigned long long>(s.recover_state));
    put("sched.adapt.retunes", s.adapt_retunes);
    put("sched.adapt.observations", s.adapt_observations);
    put("sched.adapt.block_bytes", s.adapt_block_bytes);
    put("sched.adapt.super_bin_fan", s.adapt_super_bin_fan);
    put("sched.adapt.regime",
        static_cast<unsigned long long>(s.adapt_regime));
    put("sched.pool.pin_failed", s.pool_pin_failed);
    put("sched.pool.cross_steals", s.pool_cross_domain_steals);
    return {table.begin(), table.end()};
}

} // namespace

lsched::threads::LocalityScheduler &
th_default_scheduler()
{
    return instance();
}

void
th_init(std::size_t blocksize, std::size_t hashsize)
{
    // Shim over the unified config surface: one reconfiguration with
    // both keys applied, same semantics the dedicated code had
    // (0 selects the default for either size).
    guarded([&] {
        lsched::threads::SchedulerConfig config = instance().config();
        std::string error;
        if (!lsched::threads::applyConfigKey(
                config, "block_bytes", std::to_string(blocksize),
                &error) ||
            !lsched::threads::applyConfigKey(
                config, "hash_buckets", std::to_string(hashsize),
                &error)) {
            throw lsched::ConfigError(error);
        }
        instance().configure(config);
    });
}

void
th_fork(void (*f)(void *, void *), void *arg1, void *arg2,
        const void *hint1, const void *hint2, const void *hint3)
{
    if (!f) {
        // The C++ API treats a null body as a library-invariant panic;
        // at the C boundary it is a reportable caller error.
        recordError("th_fork: NULL thread function");
        return;
    }
    guarded([&] {
        instance().fork(f, arg1, arg2, lsched::threads::hintOf(hint1),
                        lsched::threads::hintOf(hint2),
                        lsched::threads::hintOf(hint3));
    });
}

void
th_run(int keep)
{
    guarded([&] { instance().run(keep != 0); });
}

void
th_run_parallel(int workers, int keep)
{
    guarded([&] {
        instance().runParallel(
            workers < 0 ? 0u : static_cast<unsigned>(workers),
            keep != 0);
    });
}

extern "C" {

th_stats_t
th_stats(void)
{
    const lsched::threads::SchedulerStats s = instance().stats();
    th_stats_t out;
    out.pending_threads = s.pendingThreads;
    out.executed_threads = s.executedThreads;
    out.bins = s.bins;
    out.occupied_bins = s.occupiedBins;
    out.max_hash_chain = s.maxHashChain;
    out.tour_length = s.tourLength;
    out.pool_threads_spawned = s.pool.threadsSpawned;
    out.pool_steals = s.pool.steals;
    out.pool_parks = s.pool.parks;
    out.placement = static_cast<int>(instance().config().placement);
    out.backend = static_cast<int>(instance().config().backend);
    const bool any = s.threadsPerBin.count() > 0;
    out.threads_per_bin_mean = any ? s.threadsPerBin.mean() : 0;
    out.threads_per_bin_min = any ? s.threadsPerBin.min() : 0;
    out.threads_per_bin_max = any ? s.threadsPerBin.max() : 0;
    out.threads_per_bin_stddev = any ? s.threadsPerBin.stddev() : 0;
    out.faulted_threads = s.faultedThreads;
    out.last_fault_count = instance().lastFaultCount();
    out.stream_forked = s.stream.forked;
    out.stream_executed = s.stream.executed;
    out.stream_seals = s.stream.seals;
    out.stream_backpressure_waits = s.stream.backpressureWaits;
    out.stream_inline_drains = s.stream.inlineDrains;
    out.stream_backlog = s.stream.backlog;
    out.stream_peak_backlog = s.stream.peakBacklog;
    out.recover_deadlines = s.recover.deadlines;
    out.recover_watchdog_cancels = s.recover.watchdogCancels;
    out.recover_cancelled_bins = s.recover.cancelledBins;
    out.recover_cancelled_threads = s.recover.cancelledThreads;
    out.recover_admission_retries = s.recover.admissionRetries;
    out.recover_admission_timeouts = s.recover.admissionTimeouts;
    out.recover_load_sheds = s.recover.loadSheds;
    out.recover_degraded_tours = s.recover.degradedTours;
    out.recover_recoveries = s.recover.recoveries;
    out.recover_state = static_cast<int>(s.recover.state);
    out.adapt_retunes = s.adapt.retunes;
    out.adapt_observations = s.adapt.observations;
    out.adapt_block_bytes = s.adapt.blockBytes;
    out.adapt_super_bin_fan = s.adapt.superBinFan;
    out.adapt_regime = static_cast<int>(s.adapt.regime);
    out.pool_pin_failed = s.pool.pinFailed;
    out.pool_cross_domain_steals = s.pool.crossSteals;
    return out;
}

th_topology_t
th_topology(void)
{
    const lsched::threads::TopologySnapshot t =
        instance().stats().topology;
    th_topology_t out;
    out.active = t.active ? 1 : 0;
    out.source = static_cast<int>(t.source);
    out.packages = t.packages;
    out.l3_clusters = t.l3Clusters;
    out.l2_groups = t.l2Groups;
    out.cpus = t.cpus;
    out.smt_per_core = t.smtPerCore;
    out.l2_bytes = t.l2Bytes;
    out.l3_bytes = t.l3Bytes;
    out.derived_fan = t.derivedFan;
    out.domains = t.domains;
    out.domain_workers = t.domainWorkers;
    return out;
}

int
th_topology_summary(char *buf, std::size_t len)
{
    if (!buf && len > 0) {
        recordError("th_topology_summary: NULL buffer");
        return -1;
    }
    const std::string summary = instance().stats().topology.summary;
    if (len > 0) {
        const std::size_t n =
            summary.size() < len - 1 ? summary.size() : len - 1;
        std::memcpy(buf, summary.data(), n);
        buf[n] = '\0';
    }
    return static_cast<int>(summary.size());
}

int
th_set_deadline(long long millis)
{
    if (millis < 0) {
        recordError("th_set_deadline: negative deadline");
        return -1;
    }
    // Shim over the unified config surface, like th_set_backend.
    return th_configure("deadline_millis",
                        std::to_string(millis).c_str());
}

int
th_configure(const char *key, const char *value)
{
    if (!key || !value) {
        recordError("th_configure: NULL key or value");
        return -1;
    }
    return guarded([&] {
               lsched::threads::SchedulerConfig config =
                   instance().config();
               std::string error;
               if (!lsched::threads::applyConfigKey(config, key, value,
                                                    &error)) {
                   throw lsched::ConfigError("th_configure: " +
                                                      error);
               }
               instance().configure(config);
           })
               ? 0
               : -1;
}

int
th_config_get(const char *key, char *buf, std::size_t len)
{
    if (!key || (!buf && len > 0)) {
        recordError("th_config_get: NULL key or buffer");
        return -1;
    }
    std::string value;
    if (!lsched::threads::configKeyValue(instance().config(), key,
                                         &value)) {
        recordError(std::string("th_config_get: unknown config key '") +
                    key + "'");
        return -1;
    }
    if (len > 0) {
        const std::size_t n = value.size() < len - 1 ? value.size()
                                                     : len - 1;
        std::memcpy(buf, value.data(), n);
        buf[n] = '\0';
    }
    return static_cast<int>(value.size());
}

int
th_config_keys(void)
{
    return static_cast<int>(lsched::threads::configKeys().size());
}

int
th_config_key(int index, char *buf, std::size_t len)
{
    if (!buf && len > 0) {
        recordError("th_config_key: NULL buffer");
        return -1;
    }
    const std::vector<std::string> &keys =
        lsched::threads::configKeys();
    if (index < 0 || index >= static_cast<int>(keys.size())) {
        recordError("th_config_key: index " + std::to_string(index) +
                    " out of range [0, " +
                    std::to_string(keys.size()) + ")");
        return -1;
    }
    return copyOut(keys[static_cast<std::size_t>(index)], buf, len);
}

int
th_metric_count(void)
{
    int count = -1;
    guarded([&] {
        count = static_cast<int>(metricTable().size());
    });
    return count;
}

int
th_metric_name(int index, char *buf, std::size_t len)
{
    if (!buf && len > 0) {
        recordError("th_metric_name: NULL buffer");
        return -1;
    }
    int size = -1;
    if (!guarded([&] {
            const auto table = metricTable();
            if (index < 0 ||
                index >= static_cast<int>(table.size())) {
                throw lsched::ConfigError(
                    "th_metric_name: index " + std::to_string(index) +
                    " out of range [0, " +
                    std::to_string(table.size()) + ")");
            }
            size = copyOut(table[static_cast<std::size_t>(index)].first,
                           buf, len);
        }))
        return -1;
    return size;
}

int
th_metric_get(const char *name, unsigned long long *value)
{
    if (!name || !value) {
        recordError("th_metric_get: NULL name or value");
        return -1;
    }
    return guarded([&] {
               const auto table = metricTable();
               const std::string key(name);
               // The table is sorted by name; binary search.
               std::size_t lo = 0, hi = table.size();
               while (lo < hi) {
                   const std::size_t mid = lo + (hi - lo) / 2;
                   if (table[mid].first < key)
                       lo = mid + 1;
                   else
                       hi = mid;
               }
               if (lo == table.size() || table[lo].first != key) {
                   throw lsched::ConfigError(
                       std::string(
                           "th_metric_get: unknown metric '") +
                       name + "'");
               }
               *value = table[lo].second;
           })
               ? 0
               : -1;
}

int
th_set_placement(const char *name)
{
    if (!name) {
        recordError("th_set_placement: NULL name");
        return -1;
    }
    // Shim: the key table rejects unknown names with the same
    // token-list message the dedicated parser used to emit.
    return th_configure("placement", name);
}

int
th_set_backend(const char *name)
{
    if (!name) {
        recordError("th_set_backend: NULL name");
        return -1;
    }
    // Shim: the key table also keeps persistentPool consistent, as
    // the dedicated setter always did.
    return th_configure("backend", name);
}

int
th_stream_begin(int workers)
{
    return guarded([&] {
               instance().streamBegin(
                   workers < 0 ? 0u : static_cast<unsigned>(workers));
           })
               ? 0
               : -1;
}

long long
th_stream_end(void)
{
    long long executed = -1;
    guarded([&] {
        executed = static_cast<long long>(instance().streamEnd());
    });
    return executed;
}

int
th_profile_enable(long long interval_ms)
{
    if (!lsched::obs::kTraceCompiled) {
        recordError("th_profile_enable: instrumentation compiled out "
                    "(LSCHED_TRACE_ENABLED=OFF)");
        return -1;
    }
    if (interval_ms < 0) {
        recordError("th_profile_enable: negative interval");
        return -1;
    }
    lsched::obs::Profiler &profiler = lsched::obs::Profiler::global();
    lsched::obs::ProfileConfig config = profiler.config();
    config.intervalMs = static_cast<std::uint64_t>(interval_ms);
    std::string error;
    if (!profiler.configure(config, &error)) {
        recordError("th_profile_enable: " + error);
        return -1;
    }
    return profiler.setEnabled(true) ? 0 : -1;
}

void
th_profile_disable(void)
{
    lsched::obs::Profiler::global().setEnabled(false);
}

long long
th_profile_snapshot(void)
{
    if (!lsched::obs::Profiler::global().enabled())
        return -1;
    return static_cast<long long>(
        lsched::obs::SnapshotEngine::global().take().seq);
}

int
th_profile_report(const char *path)
{
    if (!path) {
        recordError("th_profile_report: NULL path");
        return -1;
    }
    if (!lsched::obs::kTraceCompiled) {
        recordError("th_profile_report: instrumentation compiled out");
        return -1;
    }
    if (!lsched::obs::SnapshotEngine::global().writeReport(path)) {
        recordError(std::string("th_profile_report: cannot write '") +
                    path + "'");
        return -1;
    }
    return 0;
}

void
th_trace_enable(void)
{
    lsched::obs::setTraceEnabled(true);
    lsched::obs::setMetricsEnabled(true);
}

void
th_trace_disable(void)
{
    lsched::obs::setTraceEnabled(false);
    lsched::obs::setMetricsEnabled(false);
}

int
th_trace_write(const char *path)
{
    if (!path || !lsched::obs::kTraceCompiled)
        return -1;
    return lsched::obs::writeChromeTrace(path) ? 0 : -1;
}

int
th_metrics_write(const char *path)
{
    if (!path)
        return -1;
    return lsched::obs::writeMetricsFile(path) ? 0 : -1;
}

const char *
th_last_error(void)
{
    return t_hasError ? t_lastError.c_str() : nullptr;
}

void
th_clear_error(void)
{
    t_hasError = false;
    t_lastError.clear();
}

void
th_set_error_handler(th_error_handler_t handler, void *user)
{
    std::lock_guard<std::mutex> lock(g_handlerMutex);
    g_handler = handler;
    g_handlerUser = user;
}

int
th_failpoint_arm(const char *name, const char *spec)
{
    if (!name || !spec) {
        recordError("th_failpoint_arm: NULL name or spec");
        return -1;
    }
    std::string error;
    if (!lsched::failpoint::arm(name, spec, &error)) {
        recordError(error);
        return -1;
    }
    return 0;
}

void
th_failpoint_disarm(const char *name)
{
    if (name)
        lsched::failpoint::disarm(name);
}

void
th_failpoint_disarm_all(void)
{
    lsched::failpoint::disarmAll();
}

void
th_init_(const long *blocksize, const long *hashsize)
{
    th_init(blocksize ? static_cast<std::size_t>(*blocksize) : 0,
            hashsize ? static_cast<std::size_t>(*hashsize) : 0);
}

void
th_fork_(void (*f)(void *, void *), void *arg1, void *arg2,
         const void *hint1, const void *hint2, const void *hint3)
{
    th_fork(f, arg1, arg2, hint1, hint2, hint3);
}

void
th_run_(const int *keep)
{
    th_run(keep ? *keep : 0);
}

void
th_run_parallel_(const int *workers, const int *keep)
{
    th_run_parallel(workers ? *workers : 0, keep ? *keep : 0);
}

void
th_set_placement_(const int *kind)
{
    static const char *const names[] = {"blockhash", "roundrobin",
                                        "hierarchical", "adaptive"};
    if (!kind || *kind < 0 || *kind > 3) {
        recordError("th_set_placement: kind must be 0..3");
        return;
    }
    th_set_placement(names[*kind]);
}

void
th_set_backend_(const int *kind)
{
    static const char *const names[] = {"serial", "pooled",
                                        "coldspawn"};
    if (!kind || *kind < 0 || *kind > 2) {
        recordError("th_set_backend: kind must be 0..2");
        return;
    }
    th_set_backend(names[*kind]);
}

void
th_set_deadline_(const long long *millis)
{
    th_set_deadline(millis ? *millis : 0);
}

void
th_stream_begin_(const int *workers)
{
    th_stream_begin(workers ? *workers : 0);
}

void
th_stream_end_(long long *executed)
{
    const long long result = th_stream_end();
    if (executed)
        *executed = result;
}

void
th_profile_enable_(const int *interval_ms, int *status)
{
    const int result =
        th_profile_enable(interval_ms ? *interval_ms : 0);
    if (status)
        *status = result;
}

void
th_profile_disable_(void)
{
    th_profile_disable();
}

void
th_profile_snapshot_(long long *seq)
{
    const long long result = th_profile_snapshot();
    if (seq)
        *seq = result;
}

void
th_profile_report_(int *status)
{
    // Numeric-only shim: the path comes from the profile.output key,
    // defaulting to the same file the --profile flag uses.
    std::string path =
        lsched::obs::Profiler::global().config().output;
    if (path.empty())
        path = "lsched_profile.jsonl";
    const int result = th_profile_report(path.c_str());
    if (status)
        *status = result;
}

void
th_stats_(long long *values, const int *count)
{
    if (!values || !count || *count <= 0)
        return;
    const th_stats_t s = th_stats();
    // Field order mirrors th_stats_t exactly; both are append-only.
    const long long fields[] = {
        static_cast<long long>(s.pending_threads),
        static_cast<long long>(s.executed_threads),
        static_cast<long long>(s.bins),
        static_cast<long long>(s.occupied_bins),
        static_cast<long long>(s.max_hash_chain),
        static_cast<long long>(s.tour_length),
        static_cast<long long>(s.pool_threads_spawned),
        static_cast<long long>(s.pool_steals),
        static_cast<long long>(s.pool_parks),
        s.placement,
        s.backend,
        std::llround(s.threads_per_bin_mean),
        std::llround(s.threads_per_bin_min),
        std::llround(s.threads_per_bin_max),
        std::llround(s.threads_per_bin_stddev),
        static_cast<long long>(s.faulted_threads),
        static_cast<long long>(s.last_fault_count),
        static_cast<long long>(s.stream_forked),
        static_cast<long long>(s.stream_executed),
        static_cast<long long>(s.stream_seals),
        static_cast<long long>(s.stream_backpressure_waits),
        static_cast<long long>(s.stream_inline_drains),
        static_cast<long long>(s.stream_backlog),
        static_cast<long long>(s.stream_peak_backlog),
        static_cast<long long>(s.recover_deadlines),
        static_cast<long long>(s.recover_watchdog_cancels),
        static_cast<long long>(s.recover_cancelled_bins),
        static_cast<long long>(s.recover_cancelled_threads),
        static_cast<long long>(s.recover_admission_retries),
        static_cast<long long>(s.recover_admission_timeouts),
        static_cast<long long>(s.recover_load_sheds),
        static_cast<long long>(s.recover_degraded_tours),
        static_cast<long long>(s.recover_recoveries),
        s.recover_state,
        static_cast<long long>(s.adapt_retunes),
        static_cast<long long>(s.adapt_observations),
        static_cast<long long>(s.adapt_block_bytes),
        static_cast<long long>(s.adapt_super_bin_fan),
        s.adapt_regime,
        static_cast<long long>(s.pool_pin_failed),
        static_cast<long long>(s.pool_cross_domain_steals),
    };
    const int have = static_cast<int>(sizeof(fields) / sizeof(fields[0]));
    const int n = *count < have ? *count : have;
    for (int i = 0; i < n; ++i)
        values[i] = fields[i];
}

void
th_metric_count_(int *count)
{
    if (count)
        *count = th_metric_count();
}

void
th_metric_value_(const int *index, long long *value)
{
    if (!value)
        return;
    *value = -1;
    if (!index)
        return;
    guarded([&] {
        const auto table = metricTable();
        if (*index >= 0 && *index < static_cast<int>(table.size()))
            *value = static_cast<long long>(
                table[static_cast<std::size_t>(*index)].second);
    });
}

void
th_topology_(long long *values, const int *count)
{
    if (!values || !count || *count <= 0)
        return;
    const th_topology_t t = th_topology();
    // Field order mirrors th_topology_t exactly; both are append-only.
    const long long fields[] = {
        t.active,
        t.source,
        static_cast<long long>(t.packages),
        static_cast<long long>(t.l3_clusters),
        static_cast<long long>(t.l2_groups),
        static_cast<long long>(t.cpus),
        static_cast<long long>(t.smt_per_core),
        static_cast<long long>(t.l2_bytes),
        static_cast<long long>(t.l3_bytes),
        static_cast<long long>(t.derived_fan),
        static_cast<long long>(t.domains),
        static_cast<long long>(t.domain_workers),
    };
    const int have = static_cast<int>(sizeof(fields) / sizeof(fields[0]));
    const int n = *count < have ? *count : have;
    for (int i = 0; i < n; ++i)
        values[i] = fields[i];
}

} // extern "C"
