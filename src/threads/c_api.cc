#include "c_api.hh"

namespace
{

/** Lazily constructed global scheduler. */
lsched::threads::LocalityScheduler &
instance()
{
    static lsched::threads::LocalityScheduler scheduler;
    return scheduler;
}

} // namespace

lsched::threads::LocalityScheduler &
th_default_scheduler()
{
    return instance();
}

void
th_init(std::size_t blocksize, std::size_t hashsize)
{
    lsched::threads::SchedulerConfig config = instance().config();
    config.blockBytes = blocksize; // 0 selects cacheBytes / dims
    config.hashBuckets = hashsize; // 0 selects the default
    instance().configure(config);
}

void
th_fork(void (*f)(void *, void *), void *arg1, void *arg2,
        const void *hint1, const void *hint2, const void *hint3)
{
    instance().fork(f, arg1, arg2, lsched::threads::hintOf(hint1),
                    lsched::threads::hintOf(hint2),
                    lsched::threads::hintOf(hint3));
}

void
th_run(int keep)
{
    instance().run(keep != 0);
}

extern "C" {

void
th_init_(const long *blocksize, const long *hashsize)
{
    th_init(blocksize ? static_cast<std::size_t>(*blocksize) : 0,
            hashsize ? static_cast<std::size_t>(*hashsize) : 0);
}

void
th_fork_(void (*f)(void *, void *), void *arg1, void *arg2,
         const void *hint1, const void *hint2, const void *hint3)
{
    th_fork(f, arg1, arg2, hint1, hint2, hint3);
}

void
th_run_(const int *keep)
{
    th_run(keep ? *keep : 0);
}

} // extern "C"
