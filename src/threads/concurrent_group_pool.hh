/**
 * @file
 * Lock-free ThreadGroup allocation for the streaming intake.
 *
 * The batch GroupPool (thread_group.hh) hands out groups under its
 * owner's lock; the lock-striped stream paid that lock on every fork
 * that crossed a group boundary. Here allocation is split in two:
 *
 *  - a per-producer *thread-local cache* of free groups, so the steady
 *    state (allocate on one thread, recycle on a drain helper, flow
 *    back) touches no shared state at all on the producer side;
 *
 *  - a lock-free *global tier* behind the caches: a Treiber free stack
 *    plus an atomic-bump slab directory for fresh carves. The stack
 *    head packs a 32-bit ABA tag with a 32-bit group *index* (groups
 *    are addressed through the slab directory, never raw pointers in
 *    the head word), so a pop that races a re-push of the same group
 *    fails its CAS instead of unlinking through a stale next pointer.
 *
 * Slabs have stable addresses for the pool's lifetime and are only
 * freed by the destructor, after the owning StreamSession has joined
 * every helper — the quiescent point that makes reclamation safe.
 * Thread-local caches are validated against the owning pool's identity
 * *and generation* before use: a cache left over from a finished
 * session (its memory possibly reused by a new pool at the same
 * address) is discarded without being dereferenced.
 */

#ifndef LSCHED_THREADS_CONCURRENT_GROUP_POOL_HH
#define LSCHED_THREADS_CONCURRENT_GROUP_POOL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>

#include "support/failpoint.hh"
#include "support/panic.hh"
#include "threads/thread_group.hh"

namespace lsched::threads
{

/** Lock-free allocator/recycler of ThreadGroups (streaming intake). */
class ConcurrentGroupPool
{
  public:
    /** Groups carved per slab allocation. */
    static constexpr std::uint32_t kSlabGroups = 64;
    /** Slab-directory capacity: kMaxSlabs * kSlabGroups groups. */
    static constexpr std::uint32_t kMaxSlabs = 1u << 16;
    /** Free groups a thread caches before overflowing to the stack. */
    static constexpr unsigned kCacheMax = 32;

    /** @param capacity threads per group (> 0). */
    explicit ConcurrentGroupPool(std::uint32_t capacity)
        : capacity_(capacity), generation_(nextGeneration())
    {
        LSCHED_ASSERT(capacity_ > 0, "group capacity must be positive");
    }

    ~ConcurrentGroupPool()
    {
        const std::uint32_t carved =
            carveNext_.load(std::memory_order_relaxed);
        const std::uint32_t slabs =
            (carved + kSlabGroups - 1) / kSlabGroups;
        for (std::uint32_t s = 0; s < slabs && s < kMaxSlabs; ++s) {
            Slab *slab = slabs_[s].load(std::memory_order_relaxed);
            delete slab;
        }
    }

    ConcurrentGroupPool(const ConcurrentGroupPool &) = delete;
    ConcurrentGroupPool &operator=(const ConcurrentGroupPool &) = delete;

    /**
     * Obtain an empty group: thread-local cache, then the global free
     * stack, then a fresh carve. Lock-free on every tier.
     */
    ThreadGroup *
    allocate()
    {
        TlCache &cache = tlCache();
        ThreadGroup *g = nullptr;
        if (cache.owner == this && cache.generation == generation_ &&
            cache.head) {
            g = cache.head;
            cache.head = g->next;
            --cache.cached;
        } else {
            if (cache.owner != this ||
                cache.generation != generation_) {
                // A stale cache belongs to a dead pool: forget it
                // without dereferencing (its slabs are gone).
                cache.owner = this;
                cache.generation = generation_;
                cache.head = nullptr;
                cache.cached = 0;
            }
            g = popGlobal();
            if (!g)
                g = carve();
        }
        g->count = 0;
        g->next = nullptr;
        g->prev = nullptr;
        // Start a new life: bump the generation half of the claim word
        // and zero the slot half. A producer still holding a tail word
        // from this group's previous life can never reserve a slot —
        // its claim CAS carries the old generation and must fail
        // (appendStreamSpec). 32-bit generations wrap after 2^32 lives
        // of one group, the same tagging assumption the free stacks
        // already make.
        const std::uint64_t gen =
            ((g->claim.load(std::memory_order_relaxed) >> 32) + 1) &
            0xffffffffu;
        g->claim.store(gen << 32, std::memory_order_relaxed);
        g->ready.store(0, std::memory_order_relaxed);
        return g;
    }

    /**
     * Return a drained chain (linked by next, fork order) to the
     * calling thread's cache, overflowing to the global stack.
     */
    void
    recycleChain(ThreadGroup *head)
    {
        TlCache &cache = tlCache();
        if (cache.owner != this || cache.generation != generation_) {
            cache.owner = this;
            cache.generation = generation_;
            cache.head = nullptr;
            cache.cached = 0;
        }
        while (head) {
            ThreadGroup *next = head->next;
            if (cache.cached < kCacheMax) {
                head->next = cache.head;
                cache.head = head;
                ++cache.cached;
            } else {
                pushGlobal(head);
            }
            head = next;
        }
    }

    /** Threads per group. */
    std::uint32_t capacity() const { return capacity_; }

    /** Groups ever carved from slabs (capacity planning statistic). */
    std::size_t
    allocatedGroups() const
    {
        return carveNext_.load(std::memory_order_relaxed);
    }

    /** Slab allocations performed (each covers kSlabGroups groups). */
    std::size_t
    slabCount() const
    {
        const std::uint32_t carved =
            carveNext_.load(std::memory_order_relaxed);
        return (carved + kSlabGroups - 1) / kSlabGroups;
    }

    /**
     * The group at slab-directory @p index. Valid for any index a
     * published tail word or free-stack entry names: both are written
     * after carve() installed the slab, with a release edge the
     * reader's acquire pairs with.
     */
    ThreadGroup *
    groupAt(std::uint32_t index) const
    {
        Slab *slab =
            slabs_[index / kSlabGroups].load(std::memory_order_acquire);
        return &slab->groups[index % kSlabGroups];
    }

  private:
    /** One slab: group descriptors plus their shared spec storage. */
    struct Slab
    {
        std::unique_ptr<ThreadGroup[]> groups;
        std::unique_ptr<ThreadSpec[]> specs;
    };

    /** Per-thread free list, keyed to one pool instance+generation. */
    struct TlCache
    {
        const void *owner = nullptr;
        std::uint64_t generation = 0;
        ThreadGroup *head = nullptr;
        unsigned cached = 0;
    };

    static TlCache &
    tlCache()
    {
        thread_local TlCache cache;
        return cache;
    }

    static std::uint64_t
    nextGeneration()
    {
        static std::atomic<std::uint64_t> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /** Pop one group off the tagged free stack; null when empty. */
    ThreadGroup *
    popGlobal()
    {
        std::uint64_t head = freeHead_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t slot =
                static_cast<std::uint32_t>(head);
            if (slot == 0)
                return nullptr;
            ThreadGroup *g = groupAt(slot - 1);
            const std::uint32_t next =
                g->freeNext.load(std::memory_order_relaxed);
            const std::uint64_t tagged =
                ((head >> 32) + 1) << 32 | next;
            // The tag in the high word forbids the ABA unlink: if g
            // was popped and re-pushed meanwhile, the tag moved and
            // this CAS fails even though the slot index matches.
            if (freeHead_.compare_exchange_weak(
                    head, tagged, std::memory_order_acq_rel,
                    std::memory_order_acquire))
                return g;
        }
    }

    void
    pushGlobal(ThreadGroup *g)
    {
        std::uint64_t head = freeHead_.load(std::memory_order_relaxed);
        for (;;) {
            g->freeNext.store(static_cast<std::uint32_t>(head),
                              std::memory_order_relaxed);
            const std::uint64_t tagged =
                ((head >> 32) + 1) << 32 | (g->poolIndex + 1);
            if (freeHead_.compare_exchange_weak(
                    head, tagged, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return;
        }
    }

    /** Carve the next never-used group out of the slab directory. */
    ThreadGroup *
    carve()
    {
        const std::uint32_t index =
            carveNext_.fetch_add(1, std::memory_order_relaxed);
        if (index >= kMaxSlabs * kSlabGroups)
            throw std::bad_alloc();
        const std::uint32_t slabIndex = index / kSlabGroups;
        Slab *slab =
            slabs_[slabIndex].load(std::memory_order_acquire);
        if (!slab) {
            // Fail point standing in for a real out-of-memory from the
            // slab allocations below (same site name as the batch
            // pool, so existing chaos specs reach this path too).
            if (LSCHED_FAILPOINT_HIT("grouppool.allocate"))
                throw std::bad_alloc();
            auto fresh = std::make_unique<Slab>();
            fresh->groups = std::make_unique<ThreadGroup[]>(kSlabGroups);
            fresh->specs = std::make_unique<ThreadSpec[]>(
                static_cast<std::size_t>(kSlabGroups) * capacity_);
            Slab *expected = nullptr;
            if (slabs_[slabIndex].compare_exchange_strong(
                    expected, fresh.get(), std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                slab = fresh.release();
            } else {
                slab = expected; // a racing carver installed it first
            }
        }
        ThreadGroup *g = &slab->groups[index % kSlabGroups];
        g->specs = slab->specs.get() +
                   static_cast<std::size_t>(index % kSlabGroups) *
                       capacity_;
        g->capacity = capacity_;
        g->poolIndex = index;
        return g;
    }

    const std::uint32_t capacity_;
    const std::uint64_t generation_;
    /** Tagged free-stack head: (ABA tag << 32) | (group index + 1). */
    std::atomic<std::uint64_t> freeHead_{0};
    std::atomic<std::uint32_t> carveNext_{0};
    /** Slab directory; slots install once via CAS and stay put. */
    std::unique_ptr<std::atomic<Slab *>[]> slabs_ =
        std::make_unique<std::atomic<Slab *>[]>(kMaxSlabs);
};

} // namespace lsched::threads

#endif // LSCHED_THREADS_CONCURRENT_GROUP_POOL_HH
