/**
 * @file
 * Paper-style table rendering: given per-variant outcomes, produce
 * tables with exactly the rows of the paper's Tables 2-9 (memory
 * references and cache misses in thousands, miss rates, and the
 * compulsory / capacity / conflict split) plus the estimated-seconds
 * performance tables.
 */

#ifndef LSCHED_HARNESS_REPORT_HH
#define LSCHED_HARNESS_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "machine/machine_config.hh"
#include "machine/topology.hh"
#include "support/table.hh"

namespace lsched::harness
{

/** A named variant outcome. */
using NamedOutcome = std::pair<std::string, SimOutcome>;

/**
 * The paper's cache-simulation table layout (Tables 3, 5, 7, 9):
 * I fetches, D references, L1 misses + rate, L2 misses + rate,
 * L2 compulsory / capacity / conflict; counts in thousands.
 */
TextTable cacheTable(const std::string &title,
                     const std::vector<NamedOutcome> &outcomes);

/**
 * A performance table (Tables 2, 4, 6, 8): per variant the estimated
 * seconds on each machine (crude timing model over the simulated
 * counts) and, when provided, measured host CPU seconds.
 */
struct PerfRow
{
    std::string name;
    /** Estimated seconds per machine, aligned with the header list. */
    std::vector<double> estimatedSeconds;
    /** Host CPU seconds of the uninstrumented run; < 0 when absent. */
    double hostSeconds = -1;
};

TextTable perfTable(const std::string &title,
                    const std::vector<std::string> &machines,
                    const std::vector<PerfRow> &rows);

/**
 * One "TopologySummary: ..." report line for the cache tree a
 * scheduler resolved (LocalityScheduler::topologyTree()); a null tree
 * reports flat legacy placement.
 */
std::string topologySummaryLine(const machine::CacheTopology *topo);

/**
 * Machine-readable companion to the text tables: collects the same
 * TextTable objects (via their JSON form), optional named scalar
 * values (sweep results, recorded baselines), plus, optionally, the
 * global metrics registry, and renders one JSON document
 * `{"tables":[...],"values":{...},"metrics":{...}}`.
 */
class JsonReport
{
  public:
    /** Append a table (same object handed to the text renderer). */
    void addTable(const TextTable &table);

    /**
     * Record one named scalar under the document's "values" object —
     * the machine-readable channel for sweep points and recorded
     * baselines that have no natural table cell. Repeated names keep
     * the last value.
     */
    void addValue(const std::string &name, double value);

    /** Include a snapshot of the global metrics registry. */
    void includeMetrics();

    /** Render the collected document. */
    std::string str() const;

    /** Write the document to @p path. Returns false on I/O error. */
    bool writeTo(const std::string &path) const;

  private:
    std::vector<std::string> tables_;
    std::vector<std::pair<std::string, double>> values_;
    std::string metrics_;
};

/**
 * Harness sink over the continuous-profiling snapshot engine
 * (obs/snapshot.hh): capture snapshots at experiment boundaries, then
 * render the retained ring — JSONL with chained deltas/rates, or
 * OpenMetrics when the path says so. Harmless when profiling is
 * disabled or compiled out (writes an empty report).
 */
class ProfileReport
{
  public:
    /** Snapshot now; returns the snapshot's sequence number. */
    std::uint64_t capture();

    /** JSONL rendering of the retained snapshot ring. */
    std::string str() const;

    /**
     * Take a final snapshot and write the report to @p path
     * (".om"/".prom"/".txt" → OpenMetrics, else JSONL; "fd:N" ok).
     * Returns false on I/O error.
     */
    bool writeTo(const std::string &path);
};

} // namespace lsched::harness

#endif // LSCHED_HARNESS_REPORT_HH
