/**
 * @file
 * Shared experiment plumbing for the paper-reproduction benches:
 * running a kernel under the cache simulator of a given machine,
 * snapshotting the statistics the paper's tables report, and
 * estimating execution time with the crude timing model.
 */

#ifndef LSCHED_HARNESS_EXPERIMENT_HH
#define LSCHED_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <utility>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "machine/timing_model.hh"
#include "obs/trace.hh"
#include "workloads/memmodel.hh"

namespace lsched::harness
{

/** Everything a paper-style cache table row needs. */
struct SimOutcome
{
    std::uint64_t ifetches = 0;
    std::uint64_t dataRefs = 0;
    cachesim::CacheStats l1;
    cachesim::CacheStats l2;
    /** L1 misses / (I-fetches + data refs), percent. */
    double l1RatePercent = 0;
    /** L2 misses / L2 accesses, percent. */
    double l2RatePercent = 0;

    /** Crude-model estimated seconds on @p machine. */
    double
    estimatedSeconds(const machine::MachineConfig &machine) const
    {
        machine::ExecutionProfile p;
        p.instructions = ifetches;
        p.l1Misses = l1.misses;
        p.l2Misses = l2.misses;
        return machine::estimateSeconds(machine, p);
    }
};

/** Capture the current statistics of @p hierarchy. */
inline SimOutcome
snapshot(const cachesim::Hierarchy &hierarchy)
{
    SimOutcome o;
    o.ifetches = hierarchy.ifetches();
    o.dataRefs = hierarchy.dataRefs();
    o.l1 = hierarchy.l1Stats();
    o.l2 = hierarchy.l2Stats();
    o.l1RatePercent = hierarchy.l1MissRatePercent();
    o.l2RatePercent = o.l2.missRatePercent();
    if (obs::metricsOn())
        hierarchy.publishMetrics();
    return o;
}

/**
 * Run @p kernel (a callable taking workloads::SimModel&) against a
 * fresh simulated hierarchy configured from @p machine and return the
 * outcome. @p ifetch_mode selects the synthetic instruction-fetch
 * model (analytic by default; Full streams one fetch per instruction
 * for fidelity checks — roughly 10x slower).
 */
template <typename Kernel>
SimOutcome
simulateOn(const machine::MachineConfig &machine, Kernel &&kernel,
           trace::SynthIFetch::Mode ifetch_mode =
               trace::SynthIFetch::Mode::Analytic)
{
    cachesim::Hierarchy hierarchy(machine.caches);
    workloads::SimModel model(hierarchy, ifetch_mode);
    std::forward<Kernel>(kernel)(model);
    return snapshot(hierarchy);
}

} // namespace lsched::harness

#endif // LSCHED_HARNESS_EXPERIMENT_HH
