#include "report.hh"

#include <fstream>
#include <sstream>

#include "obs/registry.hh"
#include "obs/snapshot.hh"

namespace lsched::harness
{

TextTable
cacheTable(const std::string &title,
           const std::vector<NamedOutcome> &outcomes)
{
    std::vector<std::string> headers{"(thousands)"};
    for (const auto &[name, outcome] : outcomes)
        headers.push_back(name);
    TextTable table(title, headers);

    auto row = [&](const std::string &label, auto getter,
                   bool as_thousands = true, int precision = 1) {
        std::vector<std::string> cells{label};
        for (const auto &[name, outcome] : outcomes) {
            const auto v = getter(outcome);
            if constexpr (std::is_integral_v<decltype(v)>) {
                cells.push_back(as_thousands
                                    ? TextTable::thousands(v)
                                    : TextTable::count(v));
            } else {
                cells.push_back(TextTable::num(v, precision));
            }
        }
        table.addRow(std::move(cells));
    };

    row("I fetches", [](const SimOutcome &o) { return o.ifetches; });
    row("D references", [](const SimOutcome &o) { return o.dataRefs; });
    row("L1 misses", [](const SimOutcome &o) { return o.l1.misses; });
    row("  rate %", [](const SimOutcome &o) { return o.l1RatePercent; });
    row("L2 misses", [](const SimOutcome &o) { return o.l2.misses; });
    row("  rate %", [](const SimOutcome &o) { return o.l2RatePercent; });
    row("L2 compulsory",
        [](const SimOutcome &o) { return o.l2.compulsoryMisses; });
    row("L2 capacity",
        [](const SimOutcome &o) { return o.l2.capacityMisses; });
    row("L2 conflict",
        [](const SimOutcome &o) { return o.l2.conflictMisses; });
    return table;
}

TextTable
perfTable(const std::string &title,
          const std::vector<std::string> &machines,
          const std::vector<PerfRow> &rows)
{
    std::vector<std::string> headers{"version"};
    for (const auto &m : machines)
        headers.push_back(m + " est. s");
    bool any_host = false;
    for (const auto &r : rows)
        any_host = any_host || r.hostSeconds >= 0;
    if (any_host)
        headers.push_back("host CPU s");

    TextTable table(title, headers);
    for (const auto &r : rows) {
        std::vector<std::string> cells{r.name};
        for (double s : r.estimatedSeconds)
            cells.push_back(TextTable::num(s, 2));
        if (any_host) {
            cells.push_back(r.hostSeconds >= 0
                                ? TextTable::num(r.hostSeconds, 2)
                                : "-");
        }
        table.addRow(std::move(cells));
    }
    return table;
}

std::string
topologySummaryLine(const machine::CacheTopology *topo)
{
    std::string line = "TopologySummary: ";
    line += topo ? topo->summary() : "flat (no cache tree)";
    return line;
}

void
JsonReport::addTable(const TextTable &table)
{
    tables_.push_back(table.toJson());
}

void
JsonReport::addValue(const std::string &name, double value)
{
    for (auto &[existing, v] : values_) {
        if (existing == name) {
            v = value;
            return;
        }
    }
    values_.emplace_back(name, value);
}

void
JsonReport::includeMetrics()
{
    metrics_ = obs::Registry::global().toJson();
}

std::string
JsonReport::str() const
{
    std::ostringstream os;
    os << "{\"tables\":[";
    for (std::size_t i = 0; i < tables_.size(); ++i)
        os << (i ? "," : "") << tables_[i];
    os << "]";
    if (!values_.empty()) {
        os << ",\"values\":{";
        for (std::size_t i = 0; i < values_.size(); ++i) {
            os << (i ? "," : "") << '"' << values_[i].first
               << "\":" << values_[i].second;
        }
        os << "}";
    }
    if (!metrics_.empty())
        os << ",\"metrics\":" << metrics_;
    os << "}\n";
    return os.str();
}

bool
JsonReport::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << str();
    return static_cast<bool>(out);
}

std::uint64_t
ProfileReport::capture()
{
    return obs::SnapshotEngine::global().take().seq;
}

std::string
ProfileReport::str() const
{
    std::ostringstream os;
    const obs::ProfileSnapshot *prev = nullptr;
    const std::vector<obs::ProfileSnapshot> ring =
        obs::SnapshotEngine::global().ring();
    for (const obs::ProfileSnapshot &snap : ring) {
        os << obs::SnapshotEngine::toJsonl(snap, prev);
        prev = &snap;
    }
    return os.str();
}

bool
ProfileReport::writeTo(const std::string &path)
{
    return obs::SnapshotEngine::global().writeReport(path);
}

} // namespace lsched::harness
