#include "timing_model.hh"

namespace lsched::machine
{

double
estimateSeconds(const MachineConfig &machine,
                const ExecutionProfile &profile)
{
    const double cycle = machine.cycleSeconds();
    const double instr_s = static_cast<double>(profile.instructions) *
                           machine.cyclesPerInstruction * cycle;
    const double l1_s = static_cast<double>(profile.l1Misses) *
                        machine.l1MissCycles * cycle;
    const double l2_s = static_cast<double>(profile.l2Misses) *
                        machine.l2MissSeconds;
    return instr_s + l1_s + l2_s;
}

ExecutionProfile
profileOf(const cachesim::Hierarchy &hierarchy)
{
    ExecutionProfile p;
    p.instructions = hierarchy.ifetches();
    p.l1Misses = hierarchy.l1Stats().misses;
    p.l2Misses = hierarchy.l2Stats().misses;
    return p;
}

double
estimateSeconds(const MachineConfig &machine,
                const cachesim::Hierarchy &hierarchy)
{
    return estimateSeconds(machine, profileOf(hierarchy));
}

} // namespace lsched::machine
