/**
 * @file
 * The paper's "crude analysis" as a reusable timing model.
 *
 * Sections 4.2-4.4 repeatedly estimate execution time as
 *
 *     t = I * cpi / clock  +  miss_L1 * 7 / clock  +  miss_L2 * t_mem
 *
 * and validate it against measured time ("the difference ... is only
 * about 4 seconds", "close to the actual time saved"). We use the same
 * model to turn simulated reference counts into machine-independent
 * estimated seconds for the wall-clock tables (2, 4, 6, 8).
 */

#ifndef LSCHED_MACHINE_TIMING_MODEL_HH
#define LSCHED_MACHINE_TIMING_MODEL_HH

#include <cstdint>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"

namespace lsched::machine
{

/** Inputs to the crude timing estimate. */
struct ExecutionProfile
{
    std::uint64_t instructions = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
};

/** Estimated seconds for @p profile on @p machine (crude analysis). */
double estimateSeconds(const MachineConfig &machine,
                       const ExecutionProfile &profile);

/**
 * Extract an ExecutionProfile from a simulated hierarchy:
 * instructions = total I-fetches, L1 misses = I + D L1 misses,
 * L2 misses = unified L2 misses.
 */
ExecutionProfile profileOf(const cachesim::Hierarchy &hierarchy);

/** estimateSeconds(machine, profileOf(hierarchy)). */
double estimateSeconds(const MachineConfig &machine,
                       const cachesim::Hierarchy &hierarchy);

} // namespace lsched::machine

#endif // LSCHED_MACHINE_TIMING_MODEL_HH
