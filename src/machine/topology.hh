/**
 * @file
 * Cache-hierarchy topology discovery (package → L3 cluster → L2 group
 * → SMT core), the hardware tree the topology-aware placement maps
 * super-bins onto.
 *
 * The paper's scheduler assumes one shared L2; real machines have
 * per-core L2s, clustered L3s, and NUMA packages. A CacheTopology
 * describes that tree three ways:
 *
 *  - fromSysfs(root) — discovered from a Linux sysfs cpu directory
 *    (/sys/devices/system/cpu): cpu* / cache/index* {level, type,
 *    shared_cpu_list, size} give the L2/L3 sharing sets, topology/
 *    {core_id, physical_package_id} the SMT and package structure, and
 *    node* directories (when present under @p root, as NUMA fixtures
 *    lay them out) override the package assignment. The root is a
 *    parameter so golden-file tests can point it at fixture trees.
 *  - fromSpec("PxCxGxS[/l2=N][/l3=N]") — a synthetic, fully regular
 *    tree: P packages × C L3 clusters × G L2 groups × S SMT threads,
 *    with optional L2/L3 byte sizes (K/M suffixes). Deterministic on
 *    any host, which is what tests, the chaos harness, and the 1-CPU
 *    CI machine need. Commas are deliberately absent from the grammar:
 *    the spec must survive --sched's comma-separated key=value list.
 *  - flat(cpus, l2Bytes) — the degenerate single-domain tree: one
 *    package, one cluster, one L2 group over every CPU. The fallback
 *    when sysfs discovery fails, and the shape that makes every
 *    topology-derived decision collapse to the legacy behavior.
 *
 * The scheduler derives from the tree: block bytes from l2Bytes(),
 * super-bin fan from groupsPerCluster(), the worker pin plan from
 * pinPlan(), and the super-bin → domain map from l2Groups().
 */

#ifndef LSCHED_MACHINE_TOPOLOGY_HH
#define LSCHED_MACHINE_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lsched::machine
{

/** How a CacheTopology was obtained (numeric: th_topology ABI). */
enum class TopologySource : std::uint8_t
{
    /** Single-domain fallback; carries no real hierarchy. */
    Flat = 0,
    /** Discovered from a sysfs cpu directory. */
    Sysfs = 1,
    /** Built from a "PxCxGxS[/l2=N][/l3=N]" spec string. */
    Spec = 2,
};

/** Printable source name ("flat", "sysfs", "spec"). */
const char *topologySourceName(TopologySource source);

/**
 * The discovered cache-domain tree, flattened to per-CPU maps. CPUs
 * are dense 0..cpus()-1; L2 groups, L3 clusters, and packages are
 * dense ids in discovery order (sysfs: ascending lowest member CPU).
 * Immutable once built — the scheduler shares one instance across
 * tours via shared_ptr.
 */
class CacheTopology
{
  public:
    /** Degenerate tree: one L2 group over @p cpus CPUs (>= 1). */
    static CacheTopology flat(unsigned cpus, std::uint64_t l2Bytes = 0);

    /**
     * Parse a synthetic spec "PxCxGxS[/l2=N][/l3=N]" (sizes accept
     * K/M suffixes; defaults 256K / l2 * G * 4). Returns false and
     * sets *error on a malformed spec.
     */
    static bool fromSpec(const std::string &spec, CacheTopology *out,
                         std::string *error);

    /**
     * Discover from a sysfs-shaped directory holding cpu<N> entries
     * (and optionally node<N> NUMA entries). Returns false when @p
     * root holds no parsable cpu directory — the caller falls back to
     * flat().
     */
    static bool fromSysfs(const std::string &root, CacheTopology *out);

    /** fromSysfs("/sys/devices/system/cpu"), flat() fallback; cached
     *  process-wide (discovery cost paid once). Never null. */
    static std::shared_ptr<const CacheTopology> host();

    CacheTopology() = default;

    TopologySource source() const { return source_; }
    unsigned cpus() const { return static_cast<unsigned>(cpuL2_.size()); }
    unsigned packages() const { return packages_; }
    unsigned l3Clusters() const { return clusters_; }
    /** L2 sharing domains — the scheduler's placement domains. */
    unsigned l2Groups() const { return groups_; }
    /** Largest SMT way count of any core (1 = no SMT). */
    unsigned smtPerCore() const { return smtPerCore_; }
    /** Per-core L2 capacity in bytes (0 = unknown). */
    std::uint64_t l2Bytes() const { return l2Bytes_; }
    /** Per-cluster L3 capacity in bytes (0 = none/unknown). */
    std::uint64_t l3Bytes() const { return l3Bytes_; }

    /** Largest L2-groups-per-L3-cluster ratio — the derived super-bin
     *  fan of the topology placement (>= 1). */
    unsigned groupsPerCluster() const;

    /** L2 group a CPU belongs to. */
    unsigned l2GroupOf(unsigned cpu) const { return cpuL2_[cpu]; }
    /** L3 cluster a CPU belongs to. */
    unsigned l3ClusterOf(unsigned cpu) const { return cpuL3_[cpu]; }
    /** Package a CPU belongs to. */
    unsigned packageOf(unsigned cpu) const { return cpuPackage_[cpu]; }

    /**
     * Domain-major CPU order for worker pinning: position i holds a
     * CPU of L2 group i % l2Groups(), rotating over the groups with
     * each group's distinct physical cores before their SMT siblings.
     * Pinning worker w to plan[w % plan.size()] therefore lands worker
     * w in cache domain w % l2Groups() — exactly the domain the
     * partitioner assigns it. Empty when cpus() <= 1 (nothing to plan).
     */
    std::vector<unsigned> pinPlan() const;

    /** One-line human summary (the harness TopologySummary row). */
    std::string summary() const;

    /**
     * Regular spec string reproducing this tree's shape
     * ("PxCxGxS/l2=N/l3=N"). Heterogeneous sysfs trees round up to
     * their largest per-level counts (an approximation, flagged by
     * source() staying Sysfs).
     */
    std::string specString() const;

  private:
    TopologySource source_ = TopologySource::Flat;
    unsigned packages_ = 0;
    unsigned clusters_ = 0;
    unsigned groups_ = 0;
    unsigned smtPerCore_ = 1;
    std::uint64_t l2Bytes_ = 0;
    std::uint64_t l3Bytes_ = 0;
    /** Per-CPU dense ids (index = CPU). */
    std::vector<unsigned> cpuL2_;
    std::vector<unsigned> cpuL3_;
    std::vector<unsigned> cpuPackage_;
    /** Per-CPU physical core id (SMT siblings share one). */
    std::vector<unsigned> cpuCore_;

    void finalize();
};

/** Parse "0-3,8,10-11" into ascending CPU ids; false on garbage. */
bool parseCpuList(const std::string &list, std::vector<unsigned> *out);

/** Parse "32768", "256K", "2M" into bytes; false on garbage. */
bool parseSizeString(const std::string &text, std::uint64_t *out);

} // namespace lsched::machine

#endif // LSCHED_MACHINE_TOPOLOGY_HH
