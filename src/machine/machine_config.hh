/**
 * @file
 * Descriptions of the machines the paper evaluates on — the SGI Power
 * Indigo2 (75 MHz MIPS R8000) and the SGI Indigo2 IMPACT (195 MHz MIPS
 * R10000) — plus proportionally scaled variants used so benches can
 * run paper-shaped experiments at laptop-friendly sizes.
 */

#ifndef LSCHED_MACHINE_MACHINE_CONFIG_HH
#define LSCHED_MACHINE_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cachesim/hierarchy.hh"

namespace lsched::machine
{

/** Everything the simulator and timing model need about a machine. */
struct MachineConfig
{
    std::string name;
    /** Core clock in Hz. */
    double clockHz = 0;
    /** Cache geometry fed to the simulator. */
    cachesim::HierarchyConfig caches;
    /** Crude per-instruction cost in cycles (the paper assumes 1). */
    double cyclesPerInstruction = 1.0;
    /** L1 miss penalty in cycles (paper cites 7 for the R8000). */
    double l1MissCycles = 7.0;
    /** L2 miss (main memory) penalty in seconds (Table 1 bottom row). */
    double l2MissSeconds = 0;

    /** L2 capacity in bytes — the scheduler's default plane size. */
    std::uint64_t l2Size() const { return caches.l2.sizeBytes; }

    /** Seconds per clock cycle. */
    double cycleSeconds() const { return 1.0 / clockHz; }
};

/**
 * SGI Power Indigo2: 75 MHz R8000, split 16 KB L1 I/D (32 B lines),
 * unified 2 MB 4-way L2 (128 B lines), 1.06 us L2 miss.
 */
MachineConfig powerIndigo2R8000();

/**
 * SGI Indigo2 IMPACT: 195 MHz R10000, 32 KB 2-way L1 I (64 B lines)
 * and D (32 B lines), unified 1 MB 2-way L2 (128 B lines), 0.85 us
 * L2 miss.
 */
MachineConfig indigo2ImpactR10000();

/**
 * Shrink a machine's caches by @p factor (a power of two), keeping
 * line sizes, associativities, clock, and miss penalties. Experiments
 * that also shrink their data sets by the same factor preserve the
 * data-size : cache-size ratio — and hence the paper's miss behaviour
 * — while running orders of magnitude faster.
 */
MachineConfig scaled(const MachineConfig &base, unsigned factor);

} // namespace lsched::machine

#endif // LSCHED_MACHINE_MACHINE_CONFIG_HH
