#include "machine_config.hh"

#include <algorithm>

#include "support/align.hh"
#include "support/panic.hh"

namespace lsched::machine
{

MachineConfig
powerIndigo2R8000()
{
    MachineConfig m;
    m.name = "SGI Power Indigo2 (R8000, 75 MHz)";
    m.clockHz = 75e6;
    m.caches.l1i = {"L1I", 16 * 1024, 32, 1};
    m.caches.l1d = {"L1D", 16 * 1024, 32, 1};
    m.caches.l2 = {"L2", 2 * 1024 * 1024, 128, 4};
    m.cyclesPerInstruction = 1.0;
    m.l1MissCycles = 7.0;
    m.l2MissSeconds = 1.06e-6;
    return m;
}

MachineConfig
indigo2ImpactR10000()
{
    MachineConfig m;
    m.name = "SGI Indigo2 IMPACT (R10000, 195 MHz)";
    m.clockHz = 195e6;
    m.caches.l1i = {"L1I", 32 * 1024, 64, 2};
    m.caches.l1d = {"L1D", 32 * 1024, 32, 2};
    m.caches.l2 = {"L2", 1024 * 1024, 128, 2};
    m.cyclesPerInstruction = 1.0;
    m.l1MissCycles = 7.0;
    m.l2MissSeconds = 0.85e-6;
    return m;
}

namespace
{

cachesim::CacheConfig
shrink(cachesim::CacheConfig c, unsigned factor,
       std::uint64_t floor_bytes)
{
    // Never shrink below associativity * line (one line per way) and
    // keep the geometry a power of two.
    floor_bytes = std::max<std::uint64_t>(
        floor_bytes,
        static_cast<std::uint64_t>(c.ways()) * c.lineBytes);
    c.sizeBytes = std::max<std::uint64_t>(c.sizeBytes / factor,
                                          floor_bytes);
    c.sizeBytes = roundUpPowerOfTwo(c.sizeBytes);
    return c;
}

} // namespace

MachineConfig
scaled(const MachineConfig &base, unsigned factor)
{
    LSCHED_ASSERT(factor > 0 && isPowerOfTwo(factor),
                  "scale factor must be a power of two, got ", factor);
    MachineConfig m = base;
    if (factor == 1)
        return m;
    m.name = base.name + " [caches / " + std::to_string(factor) + "]";
    m.caches.l2 = shrink(m.caches.l2, factor, 0);
    // The L1 caches shrink with a floor of min(8 KB, L2/2): the scaled
    // experiments exist to preserve *L2* behaviour, and an L1 of a few
    // hundred bytes would make L1 misses dominate the timing model and
    // mask exactly the effect the paper measures (see DESIGN.md,
    // substitution 5).
    const std::uint64_t l1_floor =
        std::min<std::uint64_t>(8 * 1024, m.caches.l2.sizeBytes / 2);
    m.caches.l1i = shrink(m.caches.l1i, factor, l1_floor);
    m.caches.l1d = shrink(m.caches.l1d, factor, l1_floor);
    return m;
}

} // namespace lsched::machine
