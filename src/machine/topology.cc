#include "machine/topology.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace lsched::machine
{

namespace fs = std::filesystem;

namespace
{

/** Sanity cap: a spec asking for more logical CPUs than this is a
 *  typo, not a machine. */
constexpr unsigned kMaxSpecCpus = 4096;

std::string trimmed(const std::string &text)
{
    std::size_t first = 0;
    std::size_t last = text.size();
    while (first < last &&
           std::isspace(static_cast<unsigned char>(text[first])) != 0)
        ++first;
    while (last > first &&
           std::isspace(static_cast<unsigned char>(text[last - 1])) != 0)
        --last;
    return text.substr(first, last - first);
}

bool parseUnsigned(const std::string &text, std::uint64_t *out)
{
    const std::string t = trimmed(text);
    if (t.empty())
        return false;
    std::uint64_t value = 0;
    for (const char ch : t)
    {
        if (ch < '0' || ch > '9')
            return false;
        if (value > (UINT64_MAX - 9) / 10)
            return false;
        value = value * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    *out = value;
    return true;
}

/** Read a one-line sysfs attribute; false when absent/unreadable. */
bool readLine(const fs::path &path, std::string *out)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;
    std::string line;
    std::getline(in, line);
    *out = trimmed(line);
    return !out->empty();
}

bool readUnsigned(const fs::path &path, std::uint64_t *out)
{
    std::string line;
    return readLine(path, &line) && parseUnsigned(line, out);
}

std::string formatBytes(std::uint64_t bytes)
{
    std::ostringstream out;
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        out << (bytes >> 20) << "M";
    else if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
        out << (bytes >> 10) << "K";
    else
        out << bytes;
    return out.str();
}

/** Raw per-CPU facts gathered from one cpu<N> directory before the
 *  ids are densified. Keys are "lowest CPU sharing the cache", the
 *  stable identity sysfs gives a sharing set. */
struct CpuFacts
{
    unsigned id = 0;
    /** Lowest member of the L2 sharing set (or own id when absent). */
    unsigned l2Key = 0;
    /** Lowest member of the L3 set; kNoCache when the CPU has no L3. */
    unsigned l3Key = 0;
    unsigned package = 0;
    unsigned coreId = 0;
    bool hasL3 = false;
};

} // namespace

const char *topologySourceName(TopologySource source)
{
    switch (source)
    {
    case TopologySource::Flat:
        return "flat";
    case TopologySource::Sysfs:
        return "sysfs";
    case TopologySource::Spec:
        return "spec";
    }
    return "unknown";
}

bool parseCpuList(const std::string &list, std::vector<unsigned> *out)
{
    out->clear();
    const std::string t = trimmed(list);
    if (t.empty())
        return false;
    std::size_t pos = 0;
    while (pos < t.size())
    {
        std::size_t end = t.find(',', pos);
        if (end == std::string::npos)
            end = t.size();
        const std::string item = t.substr(pos, end - pos);
        const std::size_t dash = item.find('-');
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        if (dash == std::string::npos)
        {
            if (!parseUnsigned(item, &lo))
                return false;
            hi = lo;
        }
        else
        {
            if (!parseUnsigned(item.substr(0, dash), &lo) ||
                !parseUnsigned(item.substr(dash + 1), &hi) || hi < lo)
                return false;
        }
        if (hi - lo >= kMaxSpecCpus)
            return false;
        for (std::uint64_t cpu = lo; cpu <= hi; ++cpu)
            out->push_back(static_cast<unsigned>(cpu));
        pos = end + 1;
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
    return !out->empty();
}

bool parseSizeString(const std::string &text, std::uint64_t *out)
{
    std::string t = trimmed(text);
    if (t.empty())
        return false;
    std::uint64_t multiplier = 1;
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(t.back())));
    if (suffix == 'K' || suffix == 'M' || suffix == 'G')
    {
        multiplier = suffix == 'K'   ? (1ull << 10)
                     : suffix == 'M' ? (1ull << 20)
                                     : (1ull << 30);
        t.pop_back();
    }
    std::uint64_t value = 0;
    if (!parseUnsigned(t, &value) || value > UINT64_MAX / multiplier)
        return false;
    *out = value * multiplier;
    return true;
}

CacheTopology CacheTopology::flat(unsigned cpus, std::uint64_t l2Bytes)
{
    CacheTopology topo;
    topo.source_ = TopologySource::Flat;
    const unsigned n = cpus == 0 ? 1 : cpus;
    topo.cpuL2_.assign(n, 0);
    topo.cpuL3_.assign(n, 0);
    topo.cpuPackage_.assign(n, 0);
    topo.cpuCore_.resize(n);
    for (unsigned cpu = 0; cpu < n; ++cpu)
        topo.cpuCore_[cpu] = cpu;
    topo.l2Bytes_ = l2Bytes;
    topo.l3Bytes_ = 0;
    topo.finalize();
    return topo;
}

bool CacheTopology::fromSpec(const std::string &spec, CacheTopology *out,
                             std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    // Split "PxCxGxS[/l2=N][/l3=N]" on '/': shape first, sizes after.
    std::vector<std::string> parts;
    std::size_t pos = 0;
    const std::string t = trimmed(spec);
    while (pos <= t.size())
    {
        std::size_t end = t.find('/', pos);
        if (end == std::string::npos)
            end = t.size();
        parts.push_back(t.substr(pos, end - pos));
        pos = end + 1;
    }
    if (parts.empty() || parts[0].empty())
        return fail("topology spec is empty");

    std::uint64_t dims[4];
    std::size_t dim = 0;
    pos = 0;
    const std::string &shape = parts[0];
    while (pos <= shape.size() && dim < 4)
    {
        std::size_t end = shape.find('x', pos);
        if (end == std::string::npos)
            end = shape.size();
        if (!parseUnsigned(shape.substr(pos, end - pos), &dims[dim]) ||
            dims[dim] == 0)
            return fail("topology spec shape must be PxCxGxS with positive "
                        "counts: '" +
                        shape + "'");
        ++dim;
        pos = end + 1;
        if (end == shape.size())
            break;
    }
    if (dim != 4 || pos <= shape.size())
        return fail("topology spec shape must have exactly four "
                    "x-separated counts: '" +
                    shape + "'");
    const std::uint64_t packages = dims[0];
    const std::uint64_t clustersPer = dims[1];
    const std::uint64_t groupsPer = dims[2];
    const std::uint64_t smt = dims[3];
    const std::uint64_t cpus = packages * clustersPer * groupsPer * smt;
    if (cpus > kMaxSpecCpus)
        return fail("topology spec asks for " + std::to_string(cpus) +
                    " cpus (max " + std::to_string(kMaxSpecCpus) + ")");

    std::uint64_t l2Bytes = 256 * 1024;
    std::uint64_t l3Bytes = 0;
    bool l3Given = false;
    for (std::size_t i = 1; i < parts.size(); ++i)
    {
        const std::string &part = parts[i];
        if (part.rfind("l2=", 0) == 0)
        {
            if (!parseSizeString(part.substr(3), &l2Bytes) || l2Bytes == 0)
                return fail("bad topology l2 size: '" + part + "'");
        }
        else if (part.rfind("l3=", 0) == 0)
        {
            if (!parseSizeString(part.substr(3), &l3Bytes))
                return fail("bad topology l3 size: '" + part + "'");
            l3Given = true;
        }
        else
        {
            return fail("unknown topology spec field: '" + part + "'");
        }
    }
    if (!l3Given)
        l3Bytes = l2Bytes * groupsPer * 4;

    CacheTopology topo;
    topo.source_ = TopologySource::Spec;
    topo.l2Bytes_ = l2Bytes;
    topo.l3Bytes_ = l3Bytes;
    topo.cpuL2_.reserve(cpus);
    // One physical core per L2 group: CPU ids are assigned
    // package-major, so SMT siblings are adjacent.
    for (std::uint64_t p = 0; p < packages; ++p)
        for (std::uint64_t c = 0; c < clustersPer; ++c)
            for (std::uint64_t g = 0; g < groupsPer; ++g)
                for (std::uint64_t s = 0; s < smt; ++s)
                {
                    (void)s;
                    const unsigned group =
                        static_cast<unsigned>((p * clustersPer + c) *
                                                  groupsPer +
                                              g);
                    topo.cpuL2_.push_back(group);
                    topo.cpuL3_.push_back(
                        static_cast<unsigned>(p * clustersPer + c));
                    topo.cpuPackage_.push_back(static_cast<unsigned>(p));
                    topo.cpuCore_.push_back(group);
                }
    topo.finalize();
    *out = topo;
    return true;
}

bool CacheTopology::fromSysfs(const std::string &root, CacheTopology *out)
{
    std::error_code ec;
    if (!fs::is_directory(root, ec) || ec)
        return false;

    constexpr unsigned kNoCache = ~0u;
    std::uint64_t l2SizeSeen = 0;
    std::uint64_t l3SizeSeen = 0;
    std::map<unsigned, CpuFacts> cpus;
    for (const auto &entry : fs::directory_iterator(root, ec))
    {
        if (ec)
            return false;
        const std::string name = entry.path().filename().string();
        if (name.rfind("cpu", 0) != 0)
            continue;
        std::uint64_t id = 0;
        if (!parseUnsigned(name.substr(3), &id) || id >= kMaxSpecCpus)
            continue;
        if (!fs::is_directory(entry.path(), ec) || ec)
            continue;

        CpuFacts facts;
        facts.id = static_cast<unsigned>(id);
        facts.l2Key = facts.id;
        facts.l3Key = kNoCache;
        facts.coreId = facts.id;

        std::uint64_t value = 0;
        if (readUnsigned(entry.path() / "topology" / "physical_package_id",
                         &value))
            facts.package = static_cast<unsigned>(value);
        if (readUnsigned(entry.path() / "topology" / "core_id", &value))
            facts.coreId = static_cast<unsigned>(value);

        const fs::path cacheDir = entry.path() / "cache";
        if (fs::is_directory(cacheDir, ec) && !ec)
        {
            for (const auto &cache : fs::directory_iterator(cacheDir, ec))
            {
                if (ec)
                    break;
                const std::string cacheName =
                    cache.path().filename().string();
                if (cacheName.rfind("index", 0) != 0)
                    continue;
                std::uint64_t level = 0;
                if (!readUnsigned(cache.path() / "level", &level))
                    continue;
                std::string type;
                if (readLine(cache.path() / "type", &type) &&
                    type == "Instruction")
                    continue;
                std::string shared;
                std::vector<unsigned> members;
                if (!readLine(cache.path() / "shared_cpu_list", &shared) ||
                    !parseCpuList(shared, &members))
                    members = {facts.id};
                std::string sizeText;
                std::uint64_t sizeBytes = 0;
                if (readLine(cache.path() / "size", &sizeText))
                    (void)parseSizeString(sizeText, &sizeBytes);
                if (level == 2)
                {
                    facts.l2Key = members.front();
                    l2SizeSeen = std::max(l2SizeSeen, sizeBytes);
                }
                else if (level == 3)
                {
                    facts.hasL3 = true;
                    facts.l3Key = members.front();
                    l3SizeSeen = std::max(l3SizeSeen, sizeBytes);
                }
            }
        }
        cpus[facts.id] = facts;
    }
    if (cpus.empty())
        return false;

    // NUMA node directories (fixture layout: <root>/node<N>/cpulist)
    // override the package assignment when present.
    for (const auto &entry : fs::directory_iterator(root, ec))
    {
        if (ec)
            break;
        const std::string name = entry.path().filename().string();
        if (name.rfind("node", 0) != 0)
            continue;
        std::uint64_t node = 0;
        if (!parseUnsigned(name.substr(4), &node))
            continue;
        std::string list;
        std::vector<unsigned> members;
        if (!readLine(entry.path() / "cpulist", &list) ||
            !parseCpuList(list, &members))
            continue;
        for (const unsigned cpu : members)
        {
            auto it = cpus.find(cpu);
            if (it != cpus.end())
                it->second.package = static_cast<unsigned>(node);
        }
    }

    CacheTopology topo;
    topo.source_ = TopologySource::Sysfs;
    topo.l2Bytes_ = l2SizeSeen;
    topo.l3Bytes_ = l3SizeSeen;

    // Densify: sysfs CPU ids may be sparse; sharing keys become dense
    // group/cluster/package ids in ascending-lowest-member order.
    std::map<unsigned, unsigned> groupIds;
    std::map<std::pair<unsigned, unsigned>, unsigned> clusterIds;
    std::map<unsigned, unsigned> packageIds;
    std::map<std::pair<unsigned, unsigned>, unsigned> coreIds;
    for (const auto &[id, facts] : cpus)
    {
        (void)id;
        const unsigned package = static_cast<unsigned>(
            packageIds.try_emplace(facts.package, packageIds.size())
                .first->second);
        topo.cpuPackage_.push_back(package);
        topo.cpuL2_.push_back(static_cast<unsigned>(
            groupIds.try_emplace(facts.l2Key, groupIds.size())
                .first->second));
        // CPUs with no L3 fall back to one cluster per package.
        const std::pair<unsigned, unsigned> clusterKey =
            facts.hasL3 ? std::make_pair(0u, facts.l3Key)
                        : std::make_pair(1u, facts.package);
        topo.cpuL3_.push_back(static_cast<unsigned>(
            clusterIds.try_emplace(clusterKey, clusterIds.size())
                .first->second));
        topo.cpuCore_.push_back(static_cast<unsigned>(
            coreIds
                .try_emplace(std::make_pair(facts.package, facts.coreId),
                             coreIds.size())
                .first->second));
    }
    topo.finalize();
    *out = topo;
    return true;
}

std::shared_ptr<const CacheTopology> CacheTopology::host()
{
    static const std::shared_ptr<const CacheTopology> cached = [] {
        auto topo = std::make_shared<CacheTopology>();
        if (!fromSysfs("/sys/devices/system/cpu", topo.get()))
            *topo = flat(std::max(1u, std::thread::hardware_concurrency()));
        return std::shared_ptr<const CacheTopology>(std::move(topo));
    }();
    return cached;
}

void CacheTopology::finalize()
{
    packages_ = 0;
    clusters_ = 0;
    groups_ = 0;
    for (std::size_t cpu = 0; cpu < cpuL2_.size(); ++cpu)
    {
        packages_ = std::max(packages_, cpuPackage_[cpu] + 1);
        clusters_ = std::max(clusters_, cpuL3_[cpu] + 1);
        groups_ = std::max(groups_, cpuL2_[cpu] + 1);
    }
    std::map<unsigned, unsigned> threadsPerCore;
    for (const unsigned core : cpuCore_)
        ++threadsPerCore[core];
    smtPerCore_ = 1;
    for (const auto &[core, threads] : threadsPerCore)
    {
        (void)core;
        smtPerCore_ = std::max(smtPerCore_, threads);
    }
}

unsigned CacheTopology::groupsPerCluster() const
{
    if (clusters_ == 0 || groups_ == 0)
        return 1;
    std::map<unsigned, std::vector<bool>> groupsIn;
    for (std::size_t cpu = 0; cpu < cpuL2_.size(); ++cpu)
    {
        auto &seen = groupsIn[cpuL3_[cpu]];
        if (seen.size() < groups_)
            seen.resize(groups_, false);
        seen[cpuL2_[cpu]] = true;
    }
    unsigned best = 1;
    for (const auto &[cluster, seen] : groupsIn)
    {
        (void)cluster;
        unsigned count = 0;
        for (const bool present : seen)
            count += present ? 1u : 0u;
        best = std::max(best, count);
    }
    return best;
}

std::vector<unsigned> CacheTopology::pinPlan() const
{
    if (cpus() <= 1)
        return {};
    // Per-group CPU lists ordered distinct-cores-first: round-robin
    // over the group's cores so SMT siblings come after every core has
    // one thread in the list.
    std::vector<std::vector<unsigned>> byGroup(groups_);
    {
        std::vector<std::map<unsigned, std::vector<unsigned>>> cores(groups_);
        for (unsigned cpu = 0; cpu < cpus(); ++cpu)
            cores[cpuL2_[cpu]][cpuCore_[cpu]].push_back(cpu);
        for (unsigned g = 0; g < groups_; ++g)
        {
            bool more = true;
            for (std::size_t round = 0; more; ++round)
            {
                more = false;
                for (auto &[core, threads] : cores[g])
                {
                    (void)core;
                    if (round < threads.size())
                    {
                        byGroup[g].push_back(threads[round]);
                        more = round + 1 < threads.size() || more;
                    }
                }
            }
        }
    }
    // Domain-major interleave; small groups wrap so plan[i] is always
    // a CPU of group i % groups_ (workers pin by plan[w % size]).
    std::size_t rounds = 0;
    for (const auto &group : byGroup)
        rounds = std::max(rounds, group.size());
    std::vector<unsigned> plan;
    plan.reserve(rounds * groups_);
    for (std::size_t round = 0; round < rounds; ++round)
        for (unsigned g = 0; g < groups_; ++g)
            if (!byGroup[g].empty())
                plan.push_back(byGroup[g][round % byGroup[g].size()]);
    return plan;
}

std::string CacheTopology::summary() const
{
    std::ostringstream out;
    out << topologySourceName(source_) << ": " << packages_ << " package"
        << (packages_ == 1 ? "" : "s") << ", " << clusters_ << " L3 cluster"
        << (clusters_ == 1 ? "" : "s") << ", " << groups_ << " L2 group"
        << (groups_ == 1 ? "" : "s") << ", " << cpus() << " cpu"
        << (cpus() == 1 ? "" : "s");
    if (smtPerCore_ > 1)
        out << " (SMT" << smtPerCore_ << ")";
    if (l2Bytes_ > 0)
        out << ", L2 " << formatBytes(l2Bytes_);
    if (l3Bytes_ > 0)
        out << ", L3 " << formatBytes(l3Bytes_);
    return out.str();
}

std::string CacheTopology::specString() const
{
    const unsigned packages = std::max(1u, packages_);
    const unsigned clustersPer =
        std::max(1u, (clusters_ + packages - 1) / packages);
    std::ostringstream out;
    out << packages << "x" << clustersPer << "x" << groupsPerCluster() << "x"
        << smtPerCore_ << "/l2=" << formatBytes(l2Bytes_)
        << "/l3=" << formatBytes(l3Bytes_);
    return out.str();
}

} // namespace lsched::machine
