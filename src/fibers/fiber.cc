#include "fiber.hh"

#include "support/panic.hh"

namespace lsched::fibers
{

namespace
{

thread_local Fiber *t_current = nullptr;

} // namespace

Fiber *
Fiber::current()
{
    return t_current;
}

Fiber::Fiber(std::size_t stack_bytes)
    : stack_(std::make_unique<char[]>(stack_bytes)),
      stackBytes_(stack_bytes)
{
    LSCHED_ASSERT(stack_bytes >= 16 * 1024,
                  "fiber stack too small: ", stack_bytes);
}

void
Fiber::bind(EntryFn entry, void *arg)
{
    LSCHED_ASSERT(state_ == FiberState::Finished,
                  "bind() on a live fiber");
    entry_ = entry;
    arg_ = arg;
    exception_ = nullptr;
    if (getcontext(&context_) != 0)
        LSCHED_PANIC("getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stackBytes_;
    context_.uc_link = &returnContext_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline),
                0);
    state_ = FiberState::Ready;
}

void
Fiber::trampoline()
{
    Fiber *self = t_current;
    try {
        self->entry_(self->arg_);
    } catch (...) {
        // Unwinding across the ucontext switch below is undefined
        // behavior, so the exception is parked here for the scheduler
        // to collect (takeException) after the switch back.
        self->exception_ = std::current_exception();
    }
    self->state_ = FiberState::Finished;
    // uc_link returns control to returnContext_ when the body falls
    // off the end of the trampoline.
}

void
Fiber::resume()
{
    LSCHED_ASSERT(state_ == FiberState::Ready,
                  "resume() of a fiber that is not Ready");
    LSCHED_ASSERT(t_current == nullptr,
                  "resume() from inside another fiber");
    state_ = FiberState::Running;
    t_current = this;
    if (swapcontext(&returnContext_, &context_) != 0)
        LSCHED_PANIC("swapcontext into fiber failed");
    t_current = nullptr;
}

std::exception_ptr
Fiber::takeException()
{
    std::exception_ptr e = exception_;
    exception_ = nullptr;
    return e;
}

void
Fiber::markReady()
{
    LSCHED_ASSERT(state_ == FiberState::Blocked,
                  "markReady() on a fiber that is not Blocked");
    state_ = FiberState::Ready;
}

void
Fiber::suspend(FiberState next_state)
{
    LSCHED_ASSERT(t_current == this,
                  "suspend() of a fiber that is not running");
    LSCHED_ASSERT(next_state == FiberState::Ready ||
                      next_state == FiberState::Blocked,
                  "suspend() target state must be Ready or Blocked");
    state_ = next_state;
    if (swapcontext(&context_, &returnContext_) != 0)
        LSCHED_PANIC("swapcontext out of fiber failed");
    // Resumed: we are running again.
    state_ = FiberState::Running;
}

} // namespace lsched::fibers
