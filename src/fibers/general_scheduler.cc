#include "general_scheduler.hh"

#include "obs/registry.hh"
#include "obs/trace.hh"
#include "support/error.hh"
#include "support/panic.hh"
#include "threads/bin_exec.hh"

namespace lsched::fibers
{

namespace
{

thread_local GeneralScheduler *t_scheduler = nullptr;

/** what() of @p e, or a placeholder for non-std exceptions. */
std::string
faultMessage(const std::exception_ptr &e)
{
    try {
        std::rethrow_exception(e);
    } catch (const std::exception &ex) {
        return ex.what();
    } catch (...) {
        return "unknown exception";
    }
}

/** Process-global fiber instruments, resolved once. */
struct FiberInstruments
{
    obs::Counter *forked;
    obs::Counter *finished;
    obs::Counter *requeues;
    obs::Counter *runs;
};

const FiberInstruments &
fiberInstruments()
{
    static const FiberInstruments ins = [] {
        obs::Registry &r = obs::Registry::global();
        return FiberInstruments{
            &r.counter("fibers.forked"),
            &r.counter("fibers.finished"),
            &r.counter("fibers.requeues"),
            &r.counter("fibers.runs"),
        };
    }();
    return ins;
}

} // namespace

GeneralScheduler *
GeneralScheduler::current()
{
    return t_scheduler;
}

GeneralScheduler::GeneralScheduler(const GeneralSchedulerConfig &config)
    : config_(config),
      blockMap_(config.dims,
                config.blockBytes ? config.blockBytes
                                  : config.cacheBytes / config.dims),
      pool_(config.stackBytes)
{
    if (!config_.locality)
        queues_.emplace_back(); // the single FIFO queue
}

std::size_t
GeneralScheduler::queueIndexFor(std::span<const threads::Hint> hints)
{
    if (!config_.locality)
        return 0;
    const threads::BlockCoords coords = blockMap_.coordsFor(hints);
    auto [it, created] = binIndex_.try_emplace(coords, queues_.size());
    if (created) {
        queues_.emplace_back();
        LSCHED_TRACE_EVENT(obs::EventType::BinCreate, it->second,
                           coords[0], coords[1]);
    }
    return it->second;
}

void
GeneralScheduler::fork(EntryFn entry, void *arg, threads::Hint hint1,
                       threads::Hint hint2, threads::Hint hint3)
{
    LSCHED_ASSERT(entry != nullptr, "fork of a null fiber body");
    const threads::Hint hints[3] = {hint1, hint2, hint3};
    const std::size_t index =
        queueIndexFor(std::span<const threads::Hint>(hints, 3));
    queues_[index].push_back(Task{entry, arg, nullptr});
    ++live_;
    LSCHED_TRACE_EVENT(obs::EventType::ThreadFork, index);
    if (obs::metricsOn())
        fiberInstruments().forked->add();
}

void
GeneralScheduler::requeue(Fiber *fiber)
{
    const auto it = home_.find(fiber);
    LSCHED_ASSERT(it != home_.end(), "requeue of an unknown fiber");
    queues_[it->second].push_back(Task{nullptr, nullptr, fiber});
}

std::uint64_t
GeneralScheduler::run()
{
    LSCHED_ASSERT(!running_, "recursive run()");
    LSCHED_ASSERT(t_scheduler == nullptr,
                  "run() from inside a fiber of another scheduler");
    running_ = true;
    t_scheduler = this;
    lastFaults_.clear();
    lastFaultsTotal_ = 0;
    std::uint64_t finished = 0;

    // Unwind protection: a rethrown fiber fault or the deadlock error
    // below must not leave running_ stuck or half a tour queued.
    struct RunReset
    {
        GeneralScheduler &s;
        bool committed = false;
        ~RunReset()
        {
            t_scheduler = nullptr;
            s.running_ = false;
            if (!committed)
                s.abandon();
        }
    } reset{*this};

    LSCHED_TRACE_EVENT(obs::EventType::RunBegin, live_,
                       queues_.size(), 1);
    if (obs::metricsOn())
        fiberInstruments().runs->add();

    while (live_ > 0) {
        // Bins in creation order; within a bin, queue order. A
        // yielded fiber rejoins its own bin's tail, so one pass over
        // a bin drains it unless fibers keep yielding.
        bool progressed = false;
        for (std::size_t q = 0; q < queues_.size(); ++q) {
            if (queues_[q].empty())
                continue;
            // Each queue drain goes through the one shared bin
            // execution routine (threads/bin_exec.hh): this cursor is
            // the fiber-specific work source. run() returns 1 only
            // for a cleanly finished fiber — yields, blocks, and
            // contained faults count 0 — so executeBin's return is
            // the finished count. Fault policy is the fiber
            // scheduler's own (resume() never throws; faults surface
            // via takeException()), so executeBin runs uncontained
            // (Abort) and a rethrown fault propagates to the caller,
            // where RunReset abandons the remaining work.
            struct QueueCursor
            {
                GeneralScheduler &s;
                std::size_t q;
                bool &progressed;
                Fiber *fiber = nullptr;

                bool
                next()
                {
                    if (s.queues_[q].empty())
                        return false;
                    const Task task = s.queues_[q].front();
                    s.queues_[q].pop_front();
                    fiber = task.fiber;
                    if (!fiber) {
                        fiber = s.pool_.acquire(task.entry, task.arg);
                        s.home_[fiber] = q;
                    }
                    return true;
                }

                std::uint64_t
                run()
                {
                    fiber->resume();
                    progressed = true;
                    switch (fiber->state()) {
                      case FiberState::Finished: {
                        const std::exception_ptr fault =
                            fiber->takeException();
                        s.home_.erase(fiber);
                        s.pool_.release(fiber);
                        --s.live_;
                        if (fault) {
                            s.noteFiberFault(q, fault);
                            if (s.config_.onError !=
                                threads::ErrorPolicy::
                                    ContinueAndCollect) {
                                // Abort/StopTour: first fault ends
                                // the run on the caller.
                                std::rethrow_exception(fault);
                            }
                            return 0;
                        }
                        if (obs::metricsOn())
                            fiberInstruments().finished->add();
                        return 1;
                      }
                      case FiberState::Ready:
                        s.requeue(fiber);
                        if (obs::metricsOn())
                            fiberInstruments().requeues->add();
                        return 0;
                      case FiberState::Blocked:
                        return 0; // the Event holds it
                      case FiberState::Running:
                        LSCHED_PANIC(
                            "fiber returned in Running state");
                    }
                    return 0;
                }
            } cursor{*this, q, progressed};
            threads::detail::FaultCtx binCtx(
                threads::ErrorPolicy::Abort, nullptr);
            finished += threads::detail::executeBin(
                static_cast<std::uint32_t>(q), queues_[q].size(),
                binCtx, 0, cursor);
        }
        if (!progressed && live_ > 0) {
            throw UsageError(lsched::detail::concatMessage(
                "fiber deadlock: ", live_,
                " live fibers, none runnable"));
        }
    }

    reset.committed = true;
    LSCHED_TRACE_EVENT(obs::EventType::RunEnd, finished);
    return finished;
}

void
GeneralScheduler::abandon() noexcept
{
    queues_.clear();
    if (!config_.locality)
        queues_.emplace_back(); // the single FIFO queue
    binIndex_.clear();
    home_.clear();
    live_ = 0;
}

void
GeneralScheduler::noteFiberFault(std::size_t queue,
                                 const std::exception_ptr &e)
{
    ++lastFaultsTotal_;
    ++faultedFibers_;
    if (lastFaults_.size() <
        threads::detail::FaultCtx::kMaxRecordedFaults) {
        lastFaults_.push_back({static_cast<std::uint32_t>(queue), 0,
                               faultMessage(e)});
    }
    LSCHED_TRACE_EVENT(obs::EventType::ThreadFault, queue, 0);
    if (obs::metricsOn())
        obs::Registry::global().counter("fibers.faulted").add();
}

void
GeneralScheduler::yield()
{
    Fiber *fiber = Fiber::current();
    LSCHED_ASSERT(fiber != nullptr, "yield() outside a fiber");
    fiber->suspend(FiberState::Ready);
}

void
GeneralScheduler::blockCurrentOn(Event &event)
{
    Fiber *fiber = Fiber::current();
    LSCHED_ASSERT(fiber != nullptr, "wait() outside a fiber");
    event.waiters_.push_back(fiber);
    fiber->suspend(FiberState::Blocked);
}

void
GeneralScheduler::unblock(Fiber *fiber)
{
    fiber->markReady();
    requeue(fiber);
}

void
Event::wait()
{
    if (signalled_)
        return;
    GeneralScheduler *sched = GeneralScheduler::current();
    LSCHED_ASSERT(sched != nullptr,
                  "Event::wait() outside a running scheduler");
    sched->blockCurrentOn(*this);
}

void
Event::signal()
{
    signalled_ = true;
    GeneralScheduler *sched = GeneralScheduler::current();
    if (waiters_.empty())
        return;
    LSCHED_ASSERT(sched != nullptr,
                  "Event::signal() with waiters outside a scheduler");
    for (Fiber *fiber : waiters_)
        sched->unblock(fiber);
    waiters_.clear();
}

void
Event::reset()
{
    LSCHED_ASSERT(waiters_.empty(), "reset() with waiting fibers");
    signalled_ = false;
}

} // namespace lsched::fibers
