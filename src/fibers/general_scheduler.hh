/**
 * @file
 * A general-purpose fiber scheduler driven by the paper's locality
 * algorithm — the experiment Section 7 calls for.
 *
 * Unlike the run-to-completion package (threads/scheduler.hh), every
 * task here is a real fiber with its own stack: it may yield(), block
 * on an Event, and resume later. Tasks are still binned by address
 * hints (the same block map), bins still run in creation order, and a
 * yielded fiber re-queues at the tail of its own bin so locality is
 * preserved across suspensions. A FIFO mode (locality off) provides
 * the conventional-thread-package baseline.
 *
 * The cost of this generality — stack allocation, two context
 * switches per task, per-task bookkeeping — versus the
 * run-to-completion design is measured by bench/ablation_package.
 */

#ifndef LSCHED_FIBERS_GENERAL_SCHEDULER_HH
#define LSCHED_FIBERS_GENERAL_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "fibers/fiber.hh"
#include "threads/block_map.hh"
#include "threads/hints.hh"

namespace lsched::fibers
{

class Event;

/** Tunables for the general-purpose scheduler. */
struct GeneralSchedulerConfig
{
    /** Bin tasks by hints (false = plain FIFO). */
    bool locality = true;
    /** Scheduling-space dimensionality. */
    unsigned dims = 3;
    /** Block dimension size in bytes; 0 selects cache/dims. */
    std::uint64_t blockBytes = 0;
    /** Cache capacity the block map targets. */
    std::uint64_t cacheBytes = 2 * 1024 * 1024;
    /** Stack size per fiber. */
    std::size_t stackBytes = 64 * 1024;
};

/** Fiber scheduler with optional locality binning. */
class GeneralScheduler
{
  public:
    using EntryFn = void (*)(void *);

    explicit GeneralScheduler(const GeneralSchedulerConfig &config = {});

    GeneralScheduler(const GeneralScheduler &) = delete;
    GeneralScheduler &operator=(const GeneralScheduler &) = delete;

    /**
     * Create a fiber to call entry(arg), binned by the given address
     * hints (ignored in FIFO mode).
     */
    void fork(EntryFn entry, void *arg, threads::Hint hint1 = 0,
              threads::Hint hint2 = 0, threads::Hint hint3 = 0);

    /**
     * Run until every forked fiber has finished. Returns the number
     * of fibers completed by this call. Fatal on deadlock (all live
     * fibers blocked on events nobody can signal).
     */
    std::uint64_t run();

    /**
     * Re-queue the calling fiber at the tail of its bin and switch
     * back to the scheduler. Must be called from inside a fiber.
     */
    static void yield();

    /** The scheduler driving the currently running fiber. */
    static GeneralScheduler *current();

    /** Fibers forked and not yet finished. */
    std::uint64_t liveFibers() const { return live_; }

    /** Bins created so far (locality mode). */
    std::size_t binCount() const { return queues_.size(); }

    /** Stacks ever allocated (recycling statistic). */
    std::size_t stacksAllocated() const { return pool_.createdCount(); }

  private:
    friend class Event;

    /**
     * A schedulable unit: the body is materialized as a fiber (stack
     * and all) only when first dispatched, so run-to-completion
     * workloads recycle a single stack.
     */
    struct Task
    {
        EntryFn entry = nullptr;
        void *arg = nullptr;
        Fiber *fiber = nullptr; ///< null until first dispatched
    };

    /** Block the calling fiber on @p event. */
    void blockCurrentOn(Event &event);
    /** Make a previously blocked fiber runnable again. */
    void unblock(Fiber *fiber);

    std::size_t queueIndexFor(std::span<const threads::Hint> hints);
    void requeue(Fiber *fiber);

    GeneralSchedulerConfig config_;
    threads::BlockMap blockMap_;
    FiberPool pool_;

    /** Ready queues: one per bin (index 0 = the FIFO queue). */
    std::vector<std::deque<Task>> queues_;
    std::map<threads::BlockCoords, std::size_t> binIndex_;
    std::unordered_map<Fiber *, std::size_t> home_;

    std::uint64_t live_ = 0;
    bool running_ = false;
};

/**
 * A one-shot broadcast event: fibers wait() until some other fiber
 * (or the code between runs) calls signal(), which wakes all current
 * waiters. wait() after signal() does not block (the event latches).
 */
class Event
{
  public:
    /** Block the calling fiber until the event is signalled. */
    void wait();

    /** Wake all waiting fibers and latch the event. */
    void signal();

    /** True once signal() has been called. */
    bool signalled() const { return signalled_; }

    /** Reset the latch (no fibers may be waiting). */
    void reset();

  private:
    friend class GeneralScheduler;

    std::vector<Fiber *> waiters_;
    bool signalled_ = false;
};

} // namespace lsched::fibers

#endif // LSCHED_FIBERS_GENERAL_SCHEDULER_HH
