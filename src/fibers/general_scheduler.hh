/**
 * @file
 * A general-purpose fiber scheduler driven by the paper's locality
 * algorithm — the experiment Section 7 calls for.
 *
 * Unlike the run-to-completion package (threads/scheduler.hh), every
 * task here is a real fiber with its own stack: it may yield(), block
 * on an Event, and resume later. Tasks are still binned by address
 * hints (the same block map), bins still run in creation order, and a
 * yielded fiber re-queues at the tail of its own bin so locality is
 * preserved across suspensions. A FIFO mode (locality off) provides
 * the conventional-thread-package baseline.
 *
 * The cost of this generality — stack allocation, two context
 * switches per task, per-task bookkeeping — versus the
 * run-to-completion design is measured by bench/ablation_package.
 */

#ifndef LSCHED_FIBERS_GENERAL_SCHEDULER_HH
#define LSCHED_FIBERS_GENERAL_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "fibers/fiber.hh"
#include "threads/block_map.hh"
#include "threads/fault.hh"
#include "threads/hints.hh"

namespace lsched::fibers
{

class Event;

/** Tunables for the general-purpose scheduler. */
struct GeneralSchedulerConfig
{
    /** Bin tasks by hints (false = plain FIFO). */
    bool locality = true;
    /** Scheduling-space dimensionality. */
    unsigned dims = 3;
    /** Block dimension size in bytes; 0 selects cache/dims. */
    std::uint64_t blockBytes = 0;
    /** Cache capacity the block map targets. */
    std::uint64_t cacheBytes = 2 * 1024 * 1024;
    /** Stack size per fiber. */
    std::size_t stackBytes = 64 * 1024;
    /**
     * What run() does with an exception escaping a fiber body.
     * Abort and StopTour both rethrow the first exception on the
     * caller and drop all remaining work (the tour is sequential
     * here, so there is nothing to drain); ContinueAndCollect records
     * the fault and keeps scheduling. The trampoline always catches —
     * unwinding across a context switch is undefined behavior.
     */
    threads::ErrorPolicy onError = threads::ErrorPolicy::Abort;
};

/** Fiber scheduler with optional locality binning. */
class GeneralScheduler
{
  public:
    using EntryFn = void (*)(void *);

    explicit GeneralScheduler(const GeneralSchedulerConfig &config = {});

    GeneralScheduler(const GeneralScheduler &) = delete;
    GeneralScheduler &operator=(const GeneralScheduler &) = delete;

    /**
     * Create a fiber to call entry(arg), binned by the given address
     * hints (ignored in FIFO mode).
     */
    void fork(EntryFn entry, void *arg, threads::Hint hint1 = 0,
              threads::Hint hint2 = 0, threads::Hint hint3 = 0);

    /**
     * Run until every forked fiber has finished. Returns the number
     * of fibers that completed without faulting. Throws UsageError on
     * deadlock (all live fibers blocked on events nobody can signal);
     * fiber exceptions are handled per config onError. After any
     * throw the scheduler is reset to an empty, reusable state —
     * outstanding Events must not be reused across such a reset.
     */
    std::uint64_t run();

    /**
     * Re-queue the calling fiber at the tail of its bin and switch
     * back to the scheduler. Must be called from inside a fiber.
     */
    static void yield();

    /** The scheduler driving the currently running fiber. */
    static GeneralScheduler *current();

    /** Fibers forked and not yet finished. */
    std::uint64_t liveFibers() const { return live_; }

    /** Bins created so far (locality mode). */
    std::size_t binCount() const { return queues_.size(); }

    /** Stacks ever allocated (recycling statistic). */
    std::size_t stacksAllocated() const { return pool_.createdCount(); }

    /** Faults contained during the most recent run() (capped). */
    const std::vector<threads::ThreadFault> &lastFaults() const
    {
        return lastFaults_;
    }

    /** Total faults in the most recent run, including past the cap. */
    std::uint64_t lastFaultCount() const { return lastFaultsTotal_; }

    /** Fibers whose exception was contained (lifetime). */
    std::uint64_t faultedFibers() const { return faultedFibers_; }

  private:
    friend class Event;

    /**
     * A schedulable unit: the body is materialized as a fiber (stack
     * and all) only when first dispatched, so run-to-completion
     * workloads recycle a single stack.
     */
    struct Task
    {
        EntryFn entry = nullptr;
        void *arg = nullptr;
        Fiber *fiber = nullptr; ///< null until first dispatched
    };

    /** Block the calling fiber on @p event. */
    void blockCurrentOn(Event &event);
    /** Make a previously blocked fiber runnable again. */
    void unblock(Fiber *fiber);
    /**
     * Reset to an empty, reusable state after a faulted run: drop all
     * queued tasks, home bins, and live-fiber accounting. Suspended
     * fibers' stacks stay owned by the pool and are reclaimed with
     * the scheduler.
     */
    void abandon() noexcept;
    /** Record a contained fiber fault (call from a catch/with ptr). */
    void noteFiberFault(std::size_t queue, const std::exception_ptr &e);

    std::size_t queueIndexFor(std::span<const threads::Hint> hints);
    void requeue(Fiber *fiber);

    GeneralSchedulerConfig config_;
    threads::BlockMap blockMap_;
    FiberPool pool_;

    /** Ready queues: one per bin (index 0 = the FIFO queue). */
    std::vector<std::deque<Task>> queues_;
    std::map<threads::BlockCoords, std::size_t> binIndex_;
    std::unordered_map<Fiber *, std::size_t> home_;

    std::uint64_t live_ = 0;
    std::vector<threads::ThreadFault> lastFaults_;
    std::uint64_t lastFaultsTotal_ = 0;
    std::uint64_t faultedFibers_ = 0;
    bool running_ = false;
};

/**
 * A one-shot broadcast event: fibers wait() until some other fiber
 * (or the code between runs) calls signal(), which wakes all current
 * waiters. wait() after signal() does not block (the event latches).
 */
class Event
{
  public:
    /** Block the calling fiber until the event is signalled. */
    void wait();

    /** Wake all waiting fibers and latch the event. */
    void signal();

    /** True once signal() has been called. */
    bool signalled() const { return signalled_; }

    /** Reset the latch (no fibers may be waiting). */
    void reset();

  private:
    friend class GeneralScheduler;

    std::vector<Fiber *> waiters_;
    bool signalled_ = false;
};

} // namespace lsched::fibers

#endif // LSCHED_FIBERS_GENERAL_SCHEDULER_HH
