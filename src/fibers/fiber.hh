/**
 * @file
 * Stack-switching fibers (ucontext-based coroutines).
 *
 * The locality thread package deliberately supports only
 * run-to-completion threads with no blocking, which is why it needs
 * no assembly and a single stack (paper Section 3). Section 7 leaves
 * open "whether the scheduling algorithm can be efficiently
 * implemented with a general-purpose thread package that supports
 * synchronization and preemptive scheduling". This substrate answers
 * the synchronization half: real suspendable fibers, each with its
 * own stack, that a general-purpose scheduler (fiber_scheduler.hh)
 * can drive with the same locality-bin algorithm — so the overhead
 * gap between the two designs can be measured directly
 * (bench/ablation_package).
 */

#ifndef LSCHED_FIBERS_FIBER_HH
#define LSCHED_FIBERS_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

namespace lsched::fibers
{

/** Execution states of a fiber. */
enum class FiberState : std::uint8_t
{
    Ready,    ///< created or yielded, can be resumed
    Running,  ///< currently on the CPU
    Blocked,  ///< waiting on an event
    Finished, ///< body returned
};

/** A suspendable unit of execution with its own stack. */
class Fiber
{
  public:
    using EntryFn = void (*)(void *);

    /**
     * @param stack_bytes stack size for this fiber.
     * Construct an unstarted fiber; bind() must be called before the
     * first resume().
     */
    explicit Fiber(std::size_t stack_bytes);

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** (Re)bind the fiber to a body; resets it to Ready. */
    void bind(EntryFn entry, void *arg);

    /**
     * Switch from the caller (the scheduler context) into the fiber;
     * returns when the fiber yields, blocks, or finishes.
     */
    void resume();

    /**
     * Switch from inside the fiber back to the scheduler, leaving the
     * fiber in @p next_state (Ready or Blocked). Must be called on
     * the currently running fiber.
     */
    void suspend(FiberState next_state);

    /** Current state. */
    FiberState state() const { return state_; }

    /** Transition Blocked -> Ready (event signalled). */
    void markReady();

    /**
     * The exception that escaped the fiber body, if any; non-null
     * only once the fiber is Finished. Ownership transfers to the
     * caller (subsequent calls return null). An exception cannot be
     * allowed to unwind through the ucontext switch — that is
     * undefined behavior — so the trampoline captures it here and
     * the scheduler decides its fate (fibers/general_scheduler.hh).
     */
    std::exception_ptr takeException();

    /** The fiber currently running on this thread (null = scheduler). */
    static Fiber *current();

  private:
    static void trampoline();

    ucontext_t context_;
    ucontext_t returnContext_;
    std::unique_ptr<char[]> stack_;
    std::size_t stackBytes_;
    EntryFn entry_ = nullptr;
    void *arg_ = nullptr;
    std::exception_ptr exception_;
    FiberState state_ = FiberState::Finished;
};

/** Recycling allocator for fibers (stacks are expensive to create). */
class FiberPool
{
  public:
    explicit FiberPool(std::size_t stack_bytes)
        : stackBytes_(stack_bytes)
    {
    }

    /** Obtain a fiber bound to @p entry/@p arg (recycled if possible). */
    Fiber *
    acquire(Fiber::EntryFn entry, void *arg)
    {
        Fiber *f;
        if (!free_.empty()) {
            f = free_.back();
            free_.pop_back();
        } else {
            owned_.push_back(std::make_unique<Fiber>(stackBytes_));
            f = owned_.back().get();
        }
        f->bind(entry, arg);
        return f;
    }

    /** Return a finished fiber for reuse. */
    void release(Fiber *fiber) { free_.push_back(fiber); }

    /** Fibers ever created (stack-allocation statistic). */
    std::size_t createdCount() const { return owned_.size(); }

  private:
    std::size_t stackBytes_;
    std::vector<std::unique_ptr<Fiber>> owned_;
    std::vector<Fiber *> free_;
};

} // namespace lsched::fibers

#endif // LSCHED_FIBERS_FIBER_HH
