#include "trace.hh"

#include <cstdio>
#include <cstdlib>

#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "support/cli.hh"

namespace lsched::obs
{

namespace detail
{
std::atomic<bool> g_traceOn{false};
std::atomic<bool> g_metricsOn{false};
std::atomic<bool> g_anyOn{false};
} // namespace detail

namespace
{

void
refreshAnyOn()
{
    detail::g_anyOn.store(
        detail::g_traceOn.load(std::memory_order_relaxed) ||
            detail::g_metricsOn.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
}

} // namespace

void
setTraceEnabled(bool on)
{
    detail::g_traceOn.store(on, std::memory_order_relaxed);
    refreshAnyOn();
}

void
setMetricsEnabled(bool on)
{
    detail::g_metricsOn.store(on, std::memory_order_relaxed);
    refreshAnyOn();
}

TraceSession &
TraceSession::global()
{
    // Deliberately leaked: the --trace atexit hook snapshots the
    // session during process teardown, after function-local statics
    // constructed later in main() would already have been destroyed.
    static TraceSession &session = *new TraceSession;
    return session;
}

namespace
{

/** The calling thread's lane, revalidated against clear() epochs. */
struct TlsLaneRef
{
    void *lane = nullptr;
    std::uint64_t generation = 0;
};

thread_local TlsLaneRef t_lane;

} // namespace

TraceSession::Lane &
TraceSession::currentLane()
{
    if (t_lane.lane &&
        t_lane.generation ==
            generation_.load(std::memory_order_acquire))
        return *static_cast<Lane *>(t_lane.lane);
    return registerLane();
}

TraceSession::Lane &
TraceSession::registerLane()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto id = static_cast<std::uint32_t>(lanes_.size());
    lanes_.push_back(std::make_unique<Lane>(
        id, "thread " + std::to_string(id), laneCapacity_));
    t_lane.lane = lanes_.back().get();
    t_lane.generation = generation_.load(std::memory_order_acquire);
    return *lanes_.back();
}

void
TraceSession::setLaneName(const std::string &name)
{
    Lane &lane = currentLane();
    std::lock_guard<std::mutex> lock(mutex_);
    lane.name = name;
}

void
TraceSession::setLaneCapacity(std::size_t events)
{
    std::lock_guard<std::mutex> lock(mutex_);
    laneCapacity_ = events ? events : 1;
}

std::size_t
TraceSession::laneCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_.size();
}

std::vector<LaneSnapshot>
TraceSession::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<LaneSnapshot> out;
    out.reserve(lanes_.size());
    for (const auto &lane : lanes_) {
        out.push_back({lane->id, lane->name, lane->ring.snapshot(),
                       lane->ring.dropped()});
    }
    return out;
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    lanes_.clear();
}

// ---------------------------------------------------------------------
// --trace/--metrics CLI plumbing. The hook is installed by a static
// initializer in this translation unit, which is linked into every
// binary that uses the schedulers, so any bench or example gets the
// flags without code changes; the files are written at process exit.
// ---------------------------------------------------------------------

namespace
{

std::string g_tracePath;
std::string g_metricsPath;

void
writeRequestedOutputs()
{
    if (!g_tracePath.empty()) {
        if (writeChromeTrace(g_tracePath)) {
            std::fprintf(stderr, "(trace written to %s%s)\n",
                         g_tracePath.c_str(),
                         kTraceCompiled
                             ? ""
                             : "; instrumentation compiled out");
        } else {
            std::fprintf(stderr, "(failed to write trace to %s)\n",
                         g_tracePath.c_str());
        }
    }
    if (!g_metricsPath.empty()) {
        if (writeMetricsFile(g_metricsPath)) {
            std::fprintf(stderr, "(metrics written to %s)\n",
                         g_metricsPath.c_str());
        } else {
            std::fprintf(stderr, "(failed to write metrics to %s)\n",
                         g_metricsPath.c_str());
        }
    }
}

void
applyCliObs(const std::string &trace_path,
            const std::string &metrics_path)
{
    static bool exit_hook_installed = false;
    if (!trace_path.empty()) {
        g_tracePath = trace_path;
        setTraceEnabled(true);
        setMetricsEnabled(true);
    }
    if (!metrics_path.empty()) {
        g_metricsPath = metrics_path;
        setMetricsEnabled(true);
    }
    if (!exit_hook_installed &&
        (!g_tracePath.empty() || !g_metricsPath.empty())) {
        std::atexit(&writeRequestedOutputs);
        exit_hook_installed = true;
    }
}

[[maybe_unused]] const bool g_cliHookInstalled =
    (lsched::setCliObsHook(&applyCliObs), true);

} // namespace

} // namespace lsched::obs
