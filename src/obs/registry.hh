/**
 * @file
 * Process-wide counter / gauge / histogram registry.
 *
 * Named instruments live forever once created (stable addresses), so
 * hot paths resolve a name once and keep the pointer; all mutation is
 * a relaxed atomic, safe from any thread. The registry renders itself
 * as text, CSV, and JSON — the metrics exporters (metrics.hh) and the
 * harness JSON report sink (harness/report.hh) both build on those.
 *
 * Instrument kinds:
 *  - Counter: monotonic event count (forks, runs, bins created);
 *  - Gauge: last-written value (occupancy snapshots, cachesim misses);
 *  - Histogram: power-of-two-bucket distribution with exact count /
 *    sum / min / max (bin dwell time, threads per bin, tour hop
 *    distance, hash-chain probes).
 */

#ifndef LSCHED_OBS_REGISTRY_HH
#define LSCHED_OBS_REGISTRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsched::obs
{

/** Monotonic counter. */
class Counter
{
  public:
    /** Add @p n (relaxed; callable from any thread). */
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current value. */
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter (registry reset). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge. */
class Gauge
{
  public:
    /** Overwrite the value (relaxed; callable from any thread). */
    void
    set(std::uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Current value. */
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the gauge (registry reset). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Concurrent histogram over unsigned samples: bucket i counts samples
 * whose bit width is i (bucket 0 holds the value 0), giving a
 * power-of-two resolution that needs no configuration, plus exact
 * count / sum / min / max for the summary rows.
 */
class Histogram
{
  public:
    /** One bucket per possible bit width of a uint64, plus zero. */
    static constexpr std::size_t kBuckets = 65;

    /** Record one sample (relaxed atomics; any thread). */
    void record(std::uint64_t v);

    /** Samples recorded. */
    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of all samples. */
    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Smallest sample (0 when empty). */
    std::uint64_t min() const;

    /** Largest sample (0 when empty). */
    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /** Mean sample (0 when empty). */
    double
    mean() const
    {
        const std::uint64_t n = count();
        return n ? static_cast<double>(sum()) / static_cast<double>(n)
                 : 0.0;
    }

    /** Count in bucket @p i (samples of bit width i). */
    std::uint64_t
    bucket(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Index of the bucket @p v falls into. */
    static std::size_t bucketOf(std::uint64_t v);

    /** Zero every cell (registry reset). */
    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~0ull};
    std::atomic<std::uint64_t> max_{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/** Named-instrument registry; see the file comment. */
class Registry
{
  public:
    /** The process-wide registry every subsystem publishes into. */
    static Registry &global();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find or create; the returned reference is valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** A flat scalar view of one instrument for export. */
    struct Row
    {
        std::string name;
        std::string kind; ///< "counter", "gauge", or "histogram"
        std::uint64_t value = 0; ///< counter/gauge value, histogram count
        /** Histogram summary; zeros for scalar instruments. */
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        double mean = 0;
        /** Power-of-two bucket counts (histograms only, else empty);
         *  feeds percentile estimation in obs/snapshot.hh. */
        std::vector<std::uint64_t> buckets;
    };

    /** Every instrument, sorted by name within kind. */
    std::vector<Row> rows() const;

    /** Aligned plain-text rendering. */
    std::string toText() const;

    /** CSV rendering (header + one line per instrument). */
    std::string toCsv() const;

    /** JSON object {"counters":{...},"gauges":{...},"histograms":[...]}. */
    std::string toJson() const;

    /** Zero every instrument's value; registrations survive. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace lsched::obs

#endif // LSCHED_OBS_REGISTRY_HH
