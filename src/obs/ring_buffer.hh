/**
 * @file
 * Fixed-capacity single-writer event ring buffer.
 *
 * Each traced thread owns one EventRing (see trace.hh); only that
 * thread pushes, so the write path is a plain store plus one released
 * atomic increment — no locks, no CAS, no allocation. On overflow the
 * ring overwrites the oldest slot (keep-the-newest semantics) and
 * counts the drop, so tracing a million-thread run costs bounded
 * memory and the tail of the timeline — the part an investigation
 * usually needs — survives.
 *
 * snapshot() is meant for the exporters, which run after the traced
 * threads have quiesced (run() returned, workers joined); a snapshot
 * taken while the writer is mid-push may miss the in-flight event but
 * never yields torn earlier slots, because the head is only advanced
 * after the slot write with release ordering.
 */

#ifndef LSCHED_OBS_RING_BUFFER_HH
#define LSCHED_OBS_RING_BUFFER_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/event.hh"
#include "support/align.hh"

namespace lsched::obs
{

/** Lock-free single-writer, snapshot-reader ring of trace events. */
class EventRing
{
  public:
    /** @param capacity slot count, rounded up to a power of two. */
    explicit EventRing(std::size_t capacity)
        : mask_(roundUpPowerOfTwo(capacity ? capacity : 1) - 1),
          slots_(mask_ + 1)
    {
    }

    /** Append one event (single writer only). */
    void
    push(const Event &e)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        slots_[h & mask_] = e;
        head_.store(h + 1, std::memory_order_release);
    }

    /** Slots available before the ring wraps. */
    std::size_t capacity() const { return mask_ + 1; }

    /** Events ever pushed (including overwritten ones). */
    std::uint64_t
    recorded() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events lost to wrap-around. */
    std::uint64_t
    dropped() const
    {
        const std::uint64_t h = recorded();
        return h > capacity() ? h - capacity() : 0;
    }

    /** Events currently retained. */
    std::size_t
    size() const
    {
        const std::uint64_t h = recorded();
        return h > capacity() ? capacity() : static_cast<std::size_t>(h);
    }

    /**
     * Copy the retained events, oldest first. Exact when the writer is
     * quiescent (the exporters' case).
     */
    std::vector<Event>
    snapshot() const
    {
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        const std::uint64_t first = h > capacity() ? h - capacity() : 0;
        std::vector<Event> out;
        out.reserve(static_cast<std::size_t>(h - first));
        for (std::uint64_t i = first; i < h; ++i)
            out.push_back(slots_[i & mask_]);
        return out;
    }

  private:
    std::size_t mask_;
    std::vector<Event> slots_;
    std::atomic<std::uint64_t> head_{0};
};

} // namespace lsched::obs

#endif // LSCHED_OBS_RING_BUFFER_HH
