#include "chrome_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "support/failpoint.hh"
#include "support/json.hh"

namespace lsched::obs
{

namespace
{

/** One trace-event row, pre-serialization. */
struct TraceRow
{
    std::uint64_t tsNs = 0;
    std::uint32_t tid = 0;
    char phase = 'i'; ///< 'X' (complete) or 'i' (instant)
    std::uint64_t durNs = 0;
    std::string name;
    std::string args; ///< rendered JSON object body, may be empty
};

std::string
sliceName(const Event &e)
{
    char buf[48];
    switch (e.type) {
      case EventType::RunBegin:
        std::snprintf(buf, sizeof buf, "run");
        break;
      case EventType::BinStart:
        std::snprintf(buf, sizeof buf, "bin %" PRIu64, e.a);
        break;
      case EventType::ThreadStart:
        std::snprintf(buf, sizeof buf, "thread");
        break;
      case EventType::ThreadFork:
        std::snprintf(buf, sizeof buf, "fork");
        break;
      case EventType::BinCreate:
        std::snprintf(buf, sizeof buf, "bin %" PRIu64 " create", e.a);
        break;
      case EventType::WorkerClaimBin:
        std::snprintf(buf, sizeof buf, "claim bin %" PRIu64, e.a);
        break;
      case EventType::StealBin:
        std::snprintf(buf, sizeof buf, "steal bin %" PRIu64, e.a);
        break;
      default:
        std::snprintf(buf, sizeof buf, "%s", eventTypeName(e.type));
        break;
    }
    return buf;
}

std::string
sliceArgs(const Event &e)
{
    char buf[128];
    switch (e.type) {
      case EventType::RunBegin:
        std::snprintf(buf, sizeof buf,
                      "\"pending\":%" PRIu64 ",\"bins\":%" PRIu64
                      ",\"workers\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::BinStart:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"threads\":%" PRIu64, e.a,
                      e.b);
        break;
      case EventType::ThreadFork:
      case EventType::ThreadStart:
        std::snprintf(buf, sizeof buf, "\"bin\":%" PRIu64, e.a);
        break;
      case EventType::BinCreate:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"coord0\":%" PRIu64
                      ",\"coord1\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::WorkerClaimBin:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"tour_index\":%" PRIu64
                      ",\"worker\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::ThreadFault:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"worker\":%" PRIu64, e.a,
                      e.b);
        break;
      case EventType::WatchdogStall:
        std::snprintf(buf, sizeof buf,
                      "\"stalled_workers\":%" PRIu64 ",\"bin\":%" PRIu64
                      ",\"deadline_ms\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::StealBin:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"victim\":%" PRIu64
                      ",\"thief\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::WorkerPark:
        std::snprintf(buf, sizeof buf,
                      "\"worker\":%" PRIu64 ",\"epoch\":%" PRIu64, e.a,
                      e.b);
        break;
      case EventType::StreamSeal:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"epoch\":%" PRIu64
                      ",\"threads\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::Backpressure:
        std::snprintf(buf, sizeof buf,
                      "\"pending\":%" PRIu64 ",\"bound\":%" PRIu64, e.a,
                      e.b);
        break;
      case EventType::BinMissRate:
        std::snprintf(buf, sizeof buf,
                      "\"bin\":%" PRIu64 ",\"llc_misses\":%" PRIu64
                      ",\"llc_refs\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      case EventType::SnapshotFlush:
        std::snprintf(buf, sizeof buf,
                      "\"seq\":%" PRIu64 ",\"bytes\":%" PRIu64
                      ",\"interval_ms\":%" PRIu64,
                      e.a, e.b, e.c);
        break;
      default:
        return "";
    }
    return buf;
}

/** The Begin type an End type closes, if any. */
std::optional<EventType>
beginTypeOf(EventType end)
{
    switch (end) {
      case EventType::RunEnd:    return EventType::RunBegin;
      case EventType::BinEnd:    return EventType::BinStart;
      case EventType::ThreadEnd: return EventType::ThreadStart;
      default:                   return std::nullopt;
    }
}

bool
isBeginType(EventType t)
{
    return t == EventType::RunBegin || t == EventType::BinStart ||
           t == EventType::ThreadStart;
}

/**
 * Turn one lane's event stream into rows: well-nested Begin/End pairs
 * become complete slices; Begins left open at the end of the lane are
 * closed at the lane's last timestamp; everything else is an instant.
 */
void
laneRows(const LaneSnapshot &lane, std::vector<TraceRow> &rows)
{
    const std::uint64_t lane_end =
        lane.events.empty() ? 0 : lane.events.back().ns;
    std::vector<Event> open;
    for (const Event &e : lane.events) {
        if (isBeginType(e.type)) {
            open.push_back(e);
            continue;
        }
        if (const auto begin = beginTypeOf(e.type); begin) {
            // Close the innermost matching Begin; instrumentation is
            // well-nested, so it is normally the stack top.
            auto it = std::find_if(
                open.rbegin(), open.rend(),
                [&](const Event &b) { return b.type == *begin; });
            if (it != open.rend()) {
                const Event b = *it;
                open.erase(std::next(it).base());
                rows.push_back({b.ns, lane.id, 'X', e.ns - b.ns,
                                sliceName(b), sliceArgs(b)});
            }
            continue;
        }
        rows.push_back(
            {e.ns, lane.id, 'i', 0, sliceName(e), sliceArgs(e)});
    }
    for (const Event &b : open) {
        rows.push_back({b.ns, lane.id, 'X',
                        lane_end > b.ns ? lane_end - b.ns : 0,
                        sliceName(b), sliceArgs(b)});
    }
}

} // namespace

std::string
chromeTraceJson(const std::vector<LaneSnapshot> &lanes)
{
    std::vector<TraceRow> rows;
    std::uint64_t base = ~0ull;
    for (const LaneSnapshot &lane : lanes) {
        laneRows(lane, rows);
        for (const Event &e : lane.events)
            base = std::min(base, e.ns);
    }
    if (base == ~0ull)
        base = 0;

    std::sort(rows.begin(), rows.end(),
              [](const TraceRow &x, const TraceRow &y) {
                  if (x.tid != y.tid)
                      return x.tid < y.tid;
                  if (x.tsNs != y.tsNs)
                      return x.tsNs < y.tsNs;
                  return x.durNs > y.durNs; // enclosing slice first
              });

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char buf[256];
    for (const LaneSnapshot &lane : lanes) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%u,\"args\":{\"name\":%s}}",
                      first ? "" : ",", lane.id,
                      jsonString(lane.name).c_str());
        out += buf;
        first = false;
    }
    for (const TraceRow &r : rows) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":%s,\"cat\":\"sched\",\"ph\":\"%c\","
                      "\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                      first ? "" : ",", jsonString(r.name).c_str(),
                      r.phase, r.tid,
                      static_cast<double>(r.tsNs - base) / 1000.0);
        out += buf;
        if (r.phase == 'X') {
            std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                          static_cast<double>(r.durNs) / 1000.0);
            out += buf;
        } else {
            out += ",\"s\":\"t\"";
        }
        if (!r.args.empty())
            out += ",\"args\":{" + r.args + "}";
        out += "}";
        first = false;
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    if (LSCHED_FAILPOINT_HIT("obs.trace.write"))
        return false;
    const std::string json =
        chromeTraceJson(TraceSession::global().snapshot());
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

} // namespace lsched::obs
