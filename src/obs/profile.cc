#include "profile.hh"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/snapshot.hh"
#include "perfcount/perf_counters.hh"
#include "support/cli.hh"

namespace lsched::obs
{

namespace detail
{
std::atomic<bool> g_profileOn{false};
} // namespace detail

namespace
{

/** Empty-slot marker; occupied slots hold binId + 1. */
constexpr std::uint64_t kEmptySlot = 0;

/** Lock-free accumulation cell (relaxed atomics, any thread). */
struct BinSlot
{
    std::atomic<std::uint64_t> key{kEmptySlot};
    std::atomic<std::uint32_t> superBin{kProfileNoSuperBin};
    std::atomic<std::uint32_t> lastEpoch{0};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> threads{0};
    std::atomic<std::uint64_t> dwellNs{0};
    std::atomic<std::uint64_t> instructions{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> llcRefs{0};
    std::atomic<std::uint64_t> llcMisses{0};
    std::atomic<std::uint64_t> pmuSamples{0};
};

struct WorkerSlot
{
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> dwellNs{0};
    std::atomic<std::uint64_t> llcRefs{0};
    std::atomic<std::uint64_t> llcMisses{0};
    std::atomic<std::uint64_t> pmuSamples{0};
};

/** The attribution table: open-addressed, insert-only, power-of-two
 *  sized so probing is a mask. */
struct Store
{
    explicit Store(std::size_t maxBins)
    {
        std::size_t cap = 1;
        while (cap < maxBins)
            cap <<= 1;
        capacity = cap;
        slots = std::make_unique<BinSlot[]>(capacity);
    }

    BinSlot *
    find(std::uint64_t binId)
    {
        const std::uint64_t key = binId + 1;
        std::size_t i = (binId * 0x9e3779b97f4a7c15ull) & (capacity - 1);
        for (std::size_t probes = 0; probes < capacity; ++probes) {
            BinSlot &slot = slots[i];
            std::uint64_t cur = slot.key.load(std::memory_order_acquire);
            if (cur == key)
                return &slot;
            if (cur == kEmptySlot) {
                if (slot.key.compare_exchange_strong(
                        cur, key, std::memory_order_acq_rel))
                    return &slot;
                if (cur == key)
                    return &slot;
            }
            i = (i + 1) & (capacity - 1);
        }
        return nullptr; // full
    }

    void
    reset()
    {
        for (std::size_t i = 0; i < capacity; ++i) {
            BinSlot &s = slots[i];
            s.key.store(kEmptySlot, std::memory_order_relaxed);
            s.superBin.store(kProfileNoSuperBin,
                             std::memory_order_relaxed);
            s.lastEpoch.store(0, std::memory_order_relaxed);
            s.executions.store(0, std::memory_order_relaxed);
            s.threads.store(0, std::memory_order_relaxed);
            s.dwellNs.store(0, std::memory_order_relaxed);
            s.instructions.store(0, std::memory_order_relaxed);
            s.cycles.store(0, std::memory_order_relaxed);
            s.llcRefs.store(0, std::memory_order_relaxed);
            s.llcMisses.store(0, std::memory_order_relaxed);
            s.pmuSamples.store(0, std::memory_order_relaxed);
        }
        for (auto &w : workers) {
            w.samples.store(0, std::memory_order_relaxed);
            w.dwellNs.store(0, std::memory_order_relaxed);
            w.llcRefs.store(0, std::memory_order_relaxed);
            w.llcMisses.store(0, std::memory_order_relaxed);
            w.pmuSamples.store(0, std::memory_order_relaxed);
        }
    }

    std::size_t capacity = 0;
    std::unique_ptr<BinSlot[]> slots;
    std::array<WorkerSlot, Profiler::kMaxWorkers> workers{};
};

std::mutex g_mutex; ///< configuration + enable/disable lifecycle
ProfileConfig g_config;

/**
 * The live store, plus every store ever published. Stores are never
 * freed: a worker that loaded profileOn() just before a disable may
 * still be writing a sample, so retired tables must stay valid (same
 * leak discipline as Registry::global()).
 */
std::atomic<Store *> g_store{nullptr};
std::vector<std::unique_ptr<Store>> &
storeGraveyard()
{
    static std::vector<std::unique_ptr<Store>> &v =
        *new std::vector<std::unique_ptr<Store>>;
    return v;
}

/** Bumped whenever the PMU policy changes; samplers re-open lazily. */
std::atomic<std::uint64_t> g_pmuGeneration{1};
std::atomic<bool> g_pmuForcedOff{false};
std::atomic<bool> g_pmuWarned{false};

std::atomic<std::uint32_t> g_epoch{0};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_pmuSamples{0};
std::atomic<std::uint64_t> g_dwellOnly{0};
std::atomic<std::uint64_t> g_dropped{0};

bool
envForcesNoPmu()
{
    static const bool forced =
        std::getenv("LSCHED_PROFILE_NO_PMU") != nullptr;
    return forced;
}

void
warnNoPmuOnce(const std::string &why)
{
    if (g_pmuWarned.exchange(true, std::memory_order_relaxed))
        return;
    std::fprintf(stderr,
                 "lsched: profiling: hardware counters unavailable "
                 "(%s); falling back to dwell-only samples\n",
                 why.empty() ? "perf_event_open failed" : why.c_str());
}

/** Per-thread counter group, revalidated against the generation. */
struct ThreadSampler
{
    std::unique_ptr<perfcount::PerfCounterGroup> group;
    std::uint64_t generation = 0;
};

thread_local ThreadSampler t_sampler;

/** PMU wanted right now by config and overrides (no probe). */
bool
pmuWanted()
{
    if (g_pmuForcedOff.load(std::memory_order_relaxed) ||
        envForcesNoPmu())
        return false;
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_config.pmu;
}

/**
 * The calling thread's armed counter group, opened on first use (and
 * re-opened after a PMU-policy change). Null means dwell-only.
 */
perfcount::PerfCounterGroup *
currentGroup()
{
    const std::uint64_t gen =
        g_pmuGeneration.load(std::memory_order_acquire);
    if (t_sampler.generation != gen) {
        t_sampler.generation = gen;
        t_sampler.group.reset();
        if (pmuWanted()) {
            auto group = std::make_unique<perfcount::PerfCounterGroup>(
                std::vector<perfcount::HwEvent>{
                    perfcount::HwEvent::Instructions,
                    perfcount::HwEvent::CpuCycles,
                    perfcount::HwEvent::CacheReferences,
                    perfcount::HwEvent::CacheMisses});
            if (group->usable())
                t_sampler.group = std::move(group);
            else
                warnNoPmuOnce(group->error());
        }
    }
    return t_sampler.group.get();
}

/** Registry mirrors so --metrics output carries the profile totals. */
struct ProfileCounters
{
    Counter *samples;
    Counter *pmuSamples;
    Counter *dwellOnly;
    Counter *dropped;
};

const ProfileCounters &
profileCounters()
{
    static const ProfileCounters counters = {
        &Registry::global().counter("profile.samples"),
        &Registry::global().counter("profile.samples.pmu"),
        &Registry::global().counter("profile.samples.dwell_only"),
        &Registry::global().counter("profile.bins.dropped"),
    };
    return counters;
}

} // namespace

Profiler &
Profiler::global()
{
    static Profiler &profiler = *new Profiler;
    return profiler;
}

bool
Profiler::configure(const ProfileConfig &config, std::string *error)
{
    if (config.maxBins == 0) {
        if (error)
            *error = "profile.max_bins must be positive";
        return false;
    }
    if (config.ringDepth == 0) {
        if (error)
            *error = "profile.ring must be positive";
        return false;
    }

    bool restartFlusher = false;
    std::uint64_t interval = 0;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        restartFlusher =
            profileOn() && (g_config.intervalMs != config.intervalMs ||
                            g_config.output != config.output ||
                            g_config.omOutput != config.omOutput);
        if (g_config.pmu != config.pmu)
            g_pmuGeneration.fetch_add(1, std::memory_order_acq_rel);
        g_config = config;
        interval = config.intervalMs;
    }
    // Engine calls happen outside g_mutex: the flusher thread reads
    // the profiler config, so holding the lock across a join would
    // deadlock.
    SnapshotEngine::global().setRingDepth(config.ringDepth);
    if (restartFlusher) {
        SnapshotEngine::global().stop();
        if (interval > 0)
            SnapshotEngine::global().start(interval);
    }
    return true;
}

ProfileConfig
Profiler::config() const
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_config;
}

bool
Profiler::setEnabled(bool on)
{
    if (!kTraceCompiled)
        return false;
    std::uint64_t interval = 0;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        if (on) {
            Store *store = g_store.load(std::memory_order_acquire);
            if (!store || store->capacity < g_config.maxBins) {
                auto fresh = std::make_unique<Store>(g_config.maxBins);
                storeGraveyard().push_back(std::move(fresh));
                g_store.store(storeGraveyard().back().get(),
                              std::memory_order_release);
            }
            interval = g_config.intervalMs;
        }
        detail::g_profileOn.store(on, std::memory_order_relaxed);
    }
    if (on && interval > 0)
        SnapshotEngine::global().start(interval);
    if (!on)
        SnapshotEngine::global().stop();
    return profileOn();
}

void
Profiler::reset()
{
    if (Store *store = g_store.load(std::memory_order_acquire))
        store->reset();
    g_epoch.store(0, std::memory_order_relaxed);
    g_samples.store(0, std::memory_order_relaxed);
    g_pmuSamples.store(0, std::memory_order_relaxed);
    g_dwellOnly.store(0, std::memory_order_relaxed);
    g_dropped.store(0, std::memory_order_relaxed);
}

void
Profiler::recordSample(std::uint64_t binId, std::uint32_t superBin,
                       unsigned worker, std::uint64_t threads,
                       std::uint64_t dwellNs,
                       std::uint64_t instructions, std::uint64_t cycles,
                       std::uint64_t llcRefs, std::uint64_t llcMisses,
                       bool pmuValid, std::uint32_t epoch)
{
    Store *store = g_store.load(std::memory_order_acquire);
    if (!store)
        return;
    if (epoch == kProfileCurrentEpoch)
        epoch = g_epoch.load(std::memory_order_relaxed);

    g_samples.fetch_add(1, std::memory_order_relaxed);
    if (pmuValid)
        g_pmuSamples.fetch_add(1, std::memory_order_relaxed);
    else
        g_dwellOnly.fetch_add(1, std::memory_order_relaxed);
    const ProfileCounters &counters = profileCounters();
    counters.samples->add();
    (pmuValid ? counters.pmuSamples : counters.dwellOnly)->add();

    WorkerSlot &w =
        store->workers[worker < kMaxWorkers ? worker : kMaxWorkers - 1];
    w.samples.fetch_add(1, std::memory_order_relaxed);
    w.dwellNs.fetch_add(dwellNs, std::memory_order_relaxed);
    w.llcRefs.fetch_add(llcRefs, std::memory_order_relaxed);
    w.llcMisses.fetch_add(llcMisses, std::memory_order_relaxed);
    if (pmuValid)
        w.pmuSamples.fetch_add(1, std::memory_order_relaxed);

    BinSlot *slot = store->find(binId);
    if (!slot) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        counters.dropped->add();
        return;
    }
    slot->superBin.store(superBin, std::memory_order_relaxed);
    slot->lastEpoch.store(epoch, std::memory_order_relaxed);
    slot->executions.fetch_add(1, std::memory_order_relaxed);
    slot->threads.fetch_add(threads, std::memory_order_relaxed);
    slot->dwellNs.fetch_add(dwellNs, std::memory_order_relaxed);
    slot->instructions.fetch_add(instructions,
                                 std::memory_order_relaxed);
    slot->cycles.fetch_add(cycles, std::memory_order_relaxed);
    slot->llcRefs.fetch_add(llcRefs, std::memory_order_relaxed);
    slot->llcMisses.fetch_add(llcMisses, std::memory_order_relaxed);
    if (pmuValid)
        slot->pmuSamples.fetch_add(1, std::memory_order_relaxed);

    if (llcRefs) {
        LSCHED_TRACE_EVENT(EventType::BinMissRate, binId, llcMisses,
                           llcRefs);
    }
}

std::vector<BinProfile>
Profiler::binProfiles() const
{
    std::vector<BinProfile> out;
    Store *store = g_store.load(std::memory_order_acquire);
    if (!store)
        return out;
    for (std::size_t i = 0; i < store->capacity; ++i) {
        const BinSlot &s = store->slots[i];
        const std::uint64_t key =
            s.key.load(std::memory_order_acquire);
        if (key == kEmptySlot)
            continue;
        BinProfile p;
        p.binId = key - 1;
        p.superBin = s.superBin.load(std::memory_order_relaxed);
        p.lastEpoch = s.lastEpoch.load(std::memory_order_relaxed);
        p.executions = s.executions.load(std::memory_order_relaxed);
        p.threads = s.threads.load(std::memory_order_relaxed);
        p.dwellNs = s.dwellNs.load(std::memory_order_relaxed);
        p.instructions =
            s.instructions.load(std::memory_order_relaxed);
        p.cycles = s.cycles.load(std::memory_order_relaxed);
        p.llcRefs = s.llcRefs.load(std::memory_order_relaxed);
        p.llcMisses = s.llcMisses.load(std::memory_order_relaxed);
        p.pmuSamples = s.pmuSamples.load(std::memory_order_relaxed);
        out.push_back(p);
    }
    return out;
}

std::vector<BinProfile>
Profiler::superBinProfiles() const
{
    std::unordered_map<std::uint32_t, BinProfile> agg;
    for (const BinProfile &p : binProfiles()) {
        BinProfile &s = agg[p.superBin];
        s.binId = p.superBin;
        s.superBin = p.superBin;
        s.lastEpoch = std::max(s.lastEpoch, p.lastEpoch);
        s.executions += p.executions;
        s.threads += p.threads;
        s.dwellNs += p.dwellNs;
        s.instructions += p.instructions;
        s.cycles += p.cycles;
        s.llcRefs += p.llcRefs;
        s.llcMisses += p.llcMisses;
        s.pmuSamples += p.pmuSamples;
    }
    std::vector<BinProfile> out;
    out.reserve(agg.size());
    for (auto &[id, p] : agg)
        out.push_back(p);
    return out;
}

std::vector<WorkerProfile>
Profiler::workerProfiles() const
{
    std::vector<WorkerProfile> out;
    Store *store = g_store.load(std::memory_order_acquire);
    if (!store)
        return out;
    for (unsigned i = 0; i < kMaxWorkers; ++i) {
        const WorkerSlot &w = store->workers[i];
        const std::uint64_t samples =
            w.samples.load(std::memory_order_relaxed);
        if (!samples)
            continue;
        WorkerProfile p;
        p.worker = i;
        p.samples = samples;
        p.dwellNs = w.dwellNs.load(std::memory_order_relaxed);
        p.llcRefs = w.llcRefs.load(std::memory_order_relaxed);
        p.llcMisses = w.llcMisses.load(std::memory_order_relaxed);
        p.pmuSamples = w.pmuSamples.load(std::memory_order_relaxed);
        out.push_back(p);
    }
    return out;
}

std::uint32_t
Profiler::epoch() const
{
    return g_epoch.load(std::memory_order_relaxed);
}

void
Profiler::noteEpochBegin()
{
    g_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Profiler::droppedBins() const
{
    return g_dropped.load(std::memory_order_relaxed);
}

std::uint64_t
Profiler::samples() const
{
    return g_samples.load(std::memory_order_relaxed);
}

std::uint64_t
Profiler::pmuSampleCount() const
{
    return g_pmuSamples.load(std::memory_order_relaxed);
}

std::uint64_t
Profiler::dwellOnlySamples() const
{
    return g_dwellOnly.load(std::memory_order_relaxed);
}

bool
Profiler::pmuUsable() const
{
    return kTraceCompiled && pmuWanted() &&
           perfcount::countersAvailable();
}

void
Profiler::forcePmuUnavailable(bool forced)
{
    g_pmuForcedOff.store(forced, std::memory_order_relaxed);
    g_pmuGeneration.fetch_add(1, std::memory_order_acq_rel);
}

namespace detail
{

ProfileToken
profileBinBeginImpl()
{
    ProfileToken token;
    token.active = true;
    token.t0 = nowNs();
    if (perfcount::PerfCounterGroup *group = currentGroup()) {
        group->start();
        token.pmu = true;
    } else {
        if (pmuWanted())
            warnNoPmuOnce("");
    }
    return token;
}

void
profileBinEndImpl(const ProfileToken &token, std::uint64_t binId,
                  std::uint32_t superBin, std::uint64_t threads,
                  unsigned worker, std::uint32_t epoch)
{
    const std::uint64_t dwell = nowNs() - token.t0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t llcRefs = 0;
    std::uint64_t llcMisses = 0;
    bool valid = false;
    if (token.pmu && t_sampler.group) {
        const perfcount::PerfSample sample = t_sampler.group->stop();
        if (sample.valid && sample.values.size() == 4) {
            instructions = sample.values[0];
            cycles = sample.values[1];
            llcRefs = sample.values[2];
            llcMisses = sample.values[3];
            valid = true;
        }
    }
    Profiler::global().recordSample(binId, superBin, worker, threads,
                                    dwell, instructions, cycles,
                                    llcRefs, llcMisses, valid, epoch);
}

void
profileWorkerAttachImpl(unsigned)
{
    currentGroup();
}

void
profileNoteEpochImpl()
{
    Profiler::global().noteEpochBegin();
}

} // namespace detail

// ---------------------------------------------------------------------
// --profile CLI plumbing, mirroring the --trace/--metrics hook in
// trace.cc: installed at static-initialization time by this TU (which
// every scheduler-linking binary carries), with an atexit writer for
// the final report.
// ---------------------------------------------------------------------

namespace
{

void
writeProfileAtExit()
{
    const ProfileConfig config = Profiler::global().config();
    Profiler::global().setEnabled(false); // joins the flusher
    SnapshotEngine &engine = SnapshotEngine::global();
    auto emit = [&](const std::string &path) {
        if (path.empty())
            return;
        if (engine.writeReport(path)) {
            std::fprintf(stderr, "(profile written to %s)\n",
                         path.c_str());
        } else {
            std::fprintf(stderr, "(failed to write profile to %s)\n",
                         path.c_str());
        }
    };
    emit(config.output);
    emit(config.omOutput);
}

void
applyCliProfile(const std::string &value)
{
    if (!kTraceCompiled) {
        std::fprintf(stderr, "(--profile ignored; instrumentation "
                             "compiled out)\n");
        return;
    }
    ProfileConfig config = Profiler::global().config();
    if (!(value.empty() || value == "on" || value == "1" ||
          value == "true" || value == "yes")) {
        char *end = nullptr;
        const unsigned long long ms =
            std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
            std::fprintf(stderr,
                         "--profile: '%s' is not an interval in "
                         "milliseconds\n",
                         value.c_str());
            std::exit(2);
        }
        config.intervalMs = ms;
    }
    if (config.output.empty() && config.omOutput.empty())
        config.output = "lsched_profile.jsonl";
    std::string error;
    if (!Profiler::global().configure(config, &error)) {
        std::fprintf(stderr, "--profile: %s\n", error.c_str());
        std::exit(2);
    }
    Profiler::global().setEnabled(true);
    static bool exit_hook_installed = false;
    if (!exit_hook_installed) {
        std::atexit(&writeProfileAtExit);
        exit_hook_installed = true;
    }
}

[[maybe_unused]] const bool g_cliProfileHookInstalled =
    (lsched::setCliProfileHook(&applyCliProfile), true);

} // namespace

} // namespace lsched::obs
