/**
 * @file
 * The process-wide trace session: per-thread event lanes behind a
 * two-level on/off gate.
 *
 * Gating:
 *  - compile time: the LSCHED_TRACE_ENABLED CMake option (default ON)
 *    defines the macro of the same name; when 0, traceOn()/metricsOn()
 *    are constant-false and every instrumentation site dead-codes
 *    away, so a disabled build pays literally nothing;
 *  - run time: setTraceEnabled()/setMetricsEnabled() flip process
 *    atomics; with instrumentation compiled in but switched off, a
 *    site costs one relaxed load and a predictable branch.
 *
 * Recording: each thread lazily registers a lane (an EventRing plus a
 * name) with the global session on its first event. Lanes are owned by
 * the session and survive thread exit, so the SMP workers' timelines
 * are still there to export after runParallel() joins them. Lane
 * writes are single-writer lock-free; the registration slow path takes
 * a mutex once per thread (per clear() generation).
 */

#ifndef LSCHED_OBS_TRACE_HH
#define LSCHED_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.hh"
#include "obs/ring_buffer.hh"

#ifndef LSCHED_TRACE_ENABLED
#define LSCHED_TRACE_ENABLED 1
#endif

namespace lsched::obs
{

/** True when instrumentation is compiled into this build. */
constexpr bool kTraceCompiled = LSCHED_TRACE_ENABLED != 0;

namespace detail
{
extern std::atomic<bool> g_traceOn;
extern std::atomic<bool> g_metricsOn;
extern std::atomic<bool> g_anyOn;
} // namespace detail

/** Is event tracing live right now? Hot-path check. */
inline bool
traceOn()
{
#if LSCHED_TRACE_ENABLED
    return detail::g_traceOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Is counter/histogram publishing live right now? Hot-path check. */
inline bool
metricsOn()
{
#if LSCHED_TRACE_ENABLED
    return detail::g_metricsOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/**
 * Is either tracing or metrics live? One load — the cheapest guard
 * for hot paths with several instrumentation sites (hoist this, then
 * check traceOn()/metricsOn() individually inside).
 */
inline bool
anyOn()
{
#if LSCHED_TRACE_ENABLED
    return detail::g_anyOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Turn event tracing on or off at run time. */
void setTraceEnabled(bool on);

/** Turn metrics publishing on or off at run time. */
void setMetricsEnabled(bool on);

/** One thread's exported timeline. */
struct LaneSnapshot
{
    std::uint32_t id = 0;
    std::string name;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
};

/** The per-process collection of trace lanes. */
class TraceSession
{
  public:
    /** Default events retained per lane (per thread). */
    static constexpr std::size_t kDefaultLaneCapacity = 1 << 16;

    /** The session every instrumentation site records into. */
    static TraceSession &global();

    TraceSession() = default;
    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Record one event into the calling thread's lane. */
    void
    record(EventType type, std::uint64_t a = 0, std::uint64_t b = 0,
           std::uint64_t c = 0)
    {
        currentLane().ring.push(Event{nowNs(), a, b, c, type});
    }

    /** Name the calling thread's lane (registers it if needed). */
    void setLaneName(const std::string &name);

    /** Ring capacity for lanes registered after this call. */
    void setLaneCapacity(std::size_t events);

    /** Lanes registered so far. */
    std::size_t laneCount() const;

    /**
     * Copy every lane's retained events. Call after traced threads
     * have quiesced (run() returned, workers joined) for exact data.
     */
    std::vector<LaneSnapshot> snapshot() const;

    /**
     * Drop all lanes and start a new registration generation. Only
     * legal while no traced code is running (lanes are freed).
     */
    void clear();

  private:
    struct Lane
    {
        Lane(std::uint32_t id_, std::string name_, std::size_t capacity)
            : id(id_), name(std::move(name_)), ring(capacity)
        {
        }

        std::uint32_t id;
        std::string name;
        EventRing ring;
    };

    Lane &currentLane();
    Lane &registerLane();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::atomic<std::uint64_t> generation_{1};
    std::size_t laneCapacity_ = kDefaultLaneCapacity;
};

/**
 * Instrumentation macro for one-off sites: compiles to nothing when
 * tracing is compiled out, and to a relaxed load + branch when
 * runtime-disabled. Loops should instead hoist `obs::traceOn()` into
 * a local (constant-false when compiled out) and call
 * `TraceSession::global().record(...)` under it.
 */
#if LSCHED_TRACE_ENABLED
#define LSCHED_TRACE_EVENT(...)                                        \
    do {                                                               \
        if (lsched::obs::traceOn())                                    \
            lsched::obs::TraceSession::global().record(__VA_ARGS__);   \
    } while (0)
#else
#define LSCHED_TRACE_EVENT(...) ((void)0)
#endif

} // namespace lsched::obs

#endif // LSCHED_OBS_TRACE_HH
