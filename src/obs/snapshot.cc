#include "snapshot.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unistd.h>

#include "obs/trace.hh"
#include "support/json.hh"

namespace lsched::obs
{

namespace
{

/** Lower bound of histogram bucket @p i (bit-width bucketing). */
std::uint64_t
bucketLo(std::size_t i)
{
    return i == 0 ? 0 : 1ull << (i - 1);
}

/** Upper bound (inclusive) of histogram bucket @p i. */
std::uint64_t
bucketHi(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~0ull;
    return (1ull << i) - 1;
}

/** OpenMetrics metric name: lowercase, [a-z0-9_], lsched_ prefix. */
std::string
omName(const std::string &name)
{
    std::string out = "lsched_";
    for (const char ch : name) {
        if (std::isalnum(static_cast<unsigned char>(ch)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        else
            out += '_';
    }
    return out;
}

void
appendBin(std::ostringstream &os, const BinProfile &b)
{
    os << "{\"bin\":" << b.binId << ",\"super_bin\":";
    if (b.superBin == kProfileNoSuperBin)
        os << "null";
    else
        os << b.superBin;
    os << ",\"epoch\":" << b.lastEpoch
       << ",\"executions\":" << b.executions
       << ",\"threads\":" << b.threads << ",\"dwell_ns\":" << b.dwellNs
       << ",\"instructions\":" << b.instructions
       << ",\"cycles\":" << b.cycles << ",\"llc_refs\":" << b.llcRefs
       << ",\"llc_misses\":" << b.llcMisses
       << ",\"pmu_samples\":" << b.pmuSamples
       << ",\"miss_rate\":" << b.missRate() << "}";
}

void
appendWorker(std::ostringstream &os, const WorkerProfile &w)
{
    os << "{\"worker\":" << w.worker << ",\"samples\":" << w.samples
       << ",\"dwell_ns\":" << w.dwellNs << ",\"llc_refs\":" << w.llcRefs
       << ",\"llc_misses\":" << w.llcMisses
       << ",\"pmu_samples\":" << w.pmuSamples << "}";
}

/** The previous snapshot's value of counter @p name, 0 when absent. */
std::uint64_t
prevCounter(const ProfileSnapshot *prev, const std::string &name)
{
    if (!prev)
        return 0;
    for (const Registry::Row &row : prev->rows)
        if (row.kind == "counter" && row.name == name)
            return row.value;
    return 0;
}

} // namespace

double
histogramPercentile(const Registry::Row &row, double q)
{
    const std::uint64_t n = row.value;
    if (n == 0 || row.buckets.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(n - 1);

    double cum = 0;
    for (std::size_t i = 0; i < row.buckets.size(); ++i) {
        const std::uint64_t inBucket = row.buckets[i];
        if (!inBucket)
            continue;
        if (rank < cum + static_cast<double>(inBucket)) {
            const double frac =
                inBucket > 1
                    ? (rank - cum) / static_cast<double>(inBucket - 1)
                    : 0.0;
            const double lo = static_cast<double>(bucketLo(i));
            const double hi = static_cast<double>(bucketHi(i));
            double v = lo + frac * (hi - lo);
            v = std::clamp(v, static_cast<double>(row.min),
                           static_cast<double>(row.max));
            return v;
        }
        cum += static_cast<double>(inBucket);
    }
    return static_cast<double>(row.max);
}

SnapshotEngine &
SnapshotEngine::global()
{
    // Leaked for the same reason as Registry::global(): the --profile
    // atexit writer must be able to use it arbitrarily late.
    static SnapshotEngine &engine = *new SnapshotEngine;
    return engine;
}

SnapshotEngine::SnapshotEngine(Registry &registry) : registry_(registry)
{
}

SnapshotEngine::~SnapshotEngine()
{
    stop();
}

ProfileSnapshot
SnapshotEngine::take()
{
    ProfileSnapshot snap;
    snap.ns = nowNs();
    snap.epoch = Profiler::global().epoch();
    snap.rows = registry_.rows();
    snap.bins = Profiler::global().binProfiles();
    snap.workers = Profiler::global().workerProfiles();
    std::sort(snap.bins.begin(), snap.bins.end(),
              [](const BinProfile &a, const BinProfile &b) {
                  return a.binId < b.binId;
              });

    std::lock_guard<std::mutex> lock(mutex_);
    snap.seq = nextSeq_++;
    ring_.push_back(snap);
    while (ring_.size() > ringDepth_)
        ring_.pop_front();
    return snap;
}

std::size_t
SnapshotEngine::ringSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::vector<ProfileSnapshot>
SnapshotEngine::ring() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<ProfileSnapshot>(ring_.begin(), ring_.end());
}

void
SnapshotEngine::setRingDepth(std::size_t depth)
{
    if (depth == 0)
        depth = 1;
    std::lock_guard<std::mutex> lock(mutex_);
    ringDepth_ = depth;
    while (ring_.size() > ringDepth_)
        ring_.pop_front();
}

void
SnapshotEngine::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    nextSeq_ = 1;
    haveLastFlushed_ = false;
    lastFlushed_ = ProfileSnapshot{};
}

std::string
SnapshotEngine::toJsonl(const ProfileSnapshot &cur,
                        const ProfileSnapshot *prev)
{
    std::ostringstream os;
    const double dtSec =
        prev && cur.ns > prev->ns
            ? static_cast<double>(cur.ns - prev->ns) / 1e9
            : 0.0;

    os << "{\"seq\":" << cur.seq << ",\"ns\":" << cur.ns
       << ",\"epoch\":" << cur.epoch << ",\"counters\":{";
    bool first = true;
    for (const Registry::Row &row : cur.rows) {
        if (row.kind != "counter")
            continue;
        const std::uint64_t before = prevCounter(prev, row.name);
        const std::uint64_t delta =
            row.value >= before ? row.value - before : row.value;
        const double rate =
            dtSec > 0 ? static_cast<double>(delta) / dtSec : 0.0;
        os << (first ? "" : ",") << jsonString(row.name)
           << ":{\"value\":" << row.value << ",\"delta\":" << delta
           << ",\"rate\":" << rate << "}";
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const Registry::Row &row : cur.rows) {
        if (row.kind != "gauge")
            continue;
        os << (first ? "" : ",") << jsonString(row.name) << ":"
           << row.value;
        first = false;
    }
    os << "},\"histograms\":[";
    first = true;
    for (const Registry::Row &row : cur.rows) {
        if (row.kind != "histogram")
            continue;
        os << (first ? "" : ",") << "{\"name\":" << jsonString(row.name)
           << ",\"count\":" << row.value << ",\"sum\":" << row.sum
           << ",\"min\":" << row.min << ",\"max\":" << row.max
           << ",\"mean\":" << row.mean
           << ",\"p50\":" << histogramPercentile(row, 0.50)
           << ",\"p90\":" << histogramPercentile(row, 0.90)
           << ",\"p99\":" << histogramPercentile(row, 0.99) << "}";
        first = false;
    }
    os << "],\"bins\":[";
    first = true;
    for (const BinProfile &b : cur.bins) {
        if (!first)
            os << ",";
        appendBin(os, b);
        first = false;
    }
    os << "],\"workers\":[";
    first = true;
    for (const WorkerProfile &w : cur.workers) {
        if (!first)
            os << ",";
        appendWorker(os, w);
        first = false;
    }
    os << "]}\n";
    return os.str();
}

std::string
SnapshotEngine::toOpenMetrics(const ProfileSnapshot &cur)
{
    std::ostringstream os;
    for (const Registry::Row &row : cur.rows) {
        const std::string name = omName(row.name);
        if (row.kind == "counter") {
            os << "# TYPE " << name << " counter\n";
            os << name << "_total " << row.value << "\n";
        } else if (row.kind == "gauge") {
            os << "# TYPE " << name << " gauge\n";
            os << name << " " << row.value << "\n";
        } else {
            os << "# TYPE " << name << " summary\n";
            os << name << "{quantile=\"0.5\"} "
               << histogramPercentile(row, 0.50) << "\n";
            os << name << "{quantile=\"0.9\"} "
               << histogramPercentile(row, 0.90) << "\n";
            os << name << "{quantile=\"0.99\"} "
               << histogramPercentile(row, 0.99) << "\n";
            os << name << "_count " << row.value << "\n";
            os << name << "_sum " << row.sum << "\n";
        }
    }
    if (!cur.bins.empty()) {
        os << "# TYPE lsched_profile_bin_llc_misses gauge\n";
        os << "# TYPE lsched_profile_bin_llc_refs gauge\n";
        os << "# TYPE lsched_profile_bin_dwell_ns gauge\n";
        for (const BinProfile &b : cur.bins) {
            std::ostringstream labels;
            labels << "{bin=\"" << b.binId << "\",super_bin=\"";
            if (b.superBin == kProfileNoSuperBin)
                labels << "none";
            else
                labels << b.superBin;
            labels << "\",epoch=\"" << b.lastEpoch << "\"}";
            os << "lsched_profile_bin_llc_misses" << labels.str() << " "
               << b.llcMisses << "\n";
            os << "lsched_profile_bin_llc_refs" << labels.str() << " "
               << b.llcRefs << "\n";
            os << "lsched_profile_bin_dwell_ns" << labels.str() << " "
               << b.dwellNs << "\n";
        }
    }
    if (!cur.workers.empty()) {
        os << "# TYPE lsched_profile_worker_llc_misses gauge\n";
        os << "# TYPE lsched_profile_worker_samples gauge\n";
        for (const WorkerProfile &w : cur.workers) {
            os << "lsched_profile_worker_llc_misses{worker=\""
               << w.worker << "\"} " << w.llcMisses << "\n";
            os << "lsched_profile_worker_samples{worker=\"" << w.worker
               << "\"} " << w.samples << "\n";
        }
    }
    os << "# EOF\n";
    return os.str();
}

namespace
{

/** Write @p text to @p path ("fd:N" supported). @p append for files. */
bool
writeSink(const std::string &path, const std::string &text, bool append)
{
    if (path.rfind("fd:", 0) == 0) {
        char *end = nullptr;
        const long fd = std::strtol(path.c_str() + 3, &end, 10);
        if (end == path.c_str() + 3 || *end != '\0' || fd < 0)
            return false;
        std::size_t off = 0;
        while (off < text.size()) {
            const ssize_t n =
                ::write(static_cast<int>(fd), text.data() + off,
                        text.size() - off);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

bool
isOpenMetricsPath(const std::string &path)
{
    const auto dot = path.rfind('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    return ext == ".om" || ext == ".prom" || ext == ".txt";
}

} // namespace

bool
SnapshotEngine::start(std::uint64_t intervalMs)
{
    if (intervalMs == 0)
        return false;
    std::lock_guard<std::mutex> lock(flushMutex_);
    if (running_)
        return false;
    if (flusher_.joinable())
        flusher_.join();
    stopRequested_ = false;
    running_ = true;
    intervalMs_ = intervalMs;
    flusher_ = std::thread([this, intervalMs] {
        std::unique_lock<std::mutex> lock(flushMutex_);
        while (!stopRequested_) {
            flushCv_.wait_for(lock,
                              std::chrono::milliseconds(intervalMs));
            if (stopRequested_)
                break;
            lock.unlock();
            flushOnce();
            lock.lock();
        }
    });
    return true;
}

void
SnapshotEngine::stop()
{
    std::thread toJoin;
    {
        std::lock_guard<std::mutex> lock(flushMutex_);
        if (!running_ && !flusher_.joinable())
            return;
        stopRequested_ = true;
        flushCv_.notify_all();
        toJoin = std::move(flusher_);
    }
    if (toJoin.joinable())
        toJoin.join();
    std::lock_guard<std::mutex> lock(flushMutex_);
    running_ = false;
    stopRequested_ = false;
}

bool
SnapshotEngine::running() const
{
    std::lock_guard<std::mutex> lock(flushMutex_);
    return running_;
}

bool
SnapshotEngine::flushOnce()
{
    const ProfileConfig config = Profiler::global().config();
    const ProfileSnapshot snap = take();

    std::string jsonl;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jsonl = toJsonl(snap, haveLastFlushed_ ? &lastFlushed_
                                               : nullptr);
        lastFlushed_ = snap;
        haveLastFlushed_ = true;
    }

    std::size_t bytes = 0;
    bool ok = true;
    if (!config.output.empty()) {
        ok = writeSink(config.output, jsonl, /*append=*/true) && ok;
        bytes += jsonl.size();
    }
    if (!config.omOutput.empty()) {
        const std::string om = toOpenMetrics(snap);
        ok = writeSink(config.omOutput, om, /*append=*/false) && ok;
        bytes += om.size();
    }
    LSCHED_TRACE_EVENT(EventType::SnapshotFlush, snap.seq, bytes,
                       intervalMs_);
    return ok;
}

bool
SnapshotEngine::writeReport(const std::string &path)
{
    if (path.empty())
        return false;
    const ProfileSnapshot snap = take();
    if (isOpenMetricsPath(path))
        return writeSink(path, toOpenMetrics(snap), /*append=*/false);

    const std::vector<ProfileSnapshot> all = ring();
    std::string text;
    const ProfileSnapshot *prev = nullptr;
    for (const ProfileSnapshot &s : all) {
        text += toJsonl(s, prev);
        prev = &s;
    }
    return writeSink(path, text, /*append=*/false);
}

} // namespace lsched::obs
