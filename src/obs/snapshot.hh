/**
 * @file
 * Periodic metrics snapshots over the Registry + the profiler's
 * attribution table: delta/rate computation between consecutive
 * snapshots, a bounded ring of the last N, and a background flusher
 * thread that renders each snapshot as JSON lines and/or OpenMetrics
 * text to a file or fd.
 *
 * The engine is deliberately cold-path: take() walks the registry
 * under its mutex and the profiler store with relaxed loads, so it
 * never blocks an executeBin() window; the flusher owns its sinks and
 * emits a SnapshotFlush trace event per flush. Percentiles are
 * estimated from the Histogram's power-of-two buckets, interpolated
 * within a bucket and clamped to the exact [min, max] — which makes a
 * single-sample histogram report that sample for every quantile.
 */

#ifndef LSCHED_OBS_SNAPSHOT_HH
#define LSCHED_OBS_SNAPSHOT_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.hh"
#include "obs/registry.hh"

namespace lsched::obs
{

/** One point-in-time capture of registry + attribution state. */
struct ProfileSnapshot
{
    /** 1-based sequence number within this engine. */
    std::uint64_t seq = 0;
    /** Steady-clock capture time in nanoseconds. */
    std::uint64_t ns = 0;
    /** The profiler's run/stream epoch at capture time. */
    std::uint32_t epoch = 0;
    std::vector<Registry::Row> rows;
    std::vector<BinProfile> bins;
    std::vector<WorkerProfile> workers;
};

/**
 * Estimate the @p q quantile (0..1) of a histogram Row from its
 * power-of-two buckets: linear interpolation inside the covering
 * bucket, clamped to the exact [min, max]. Returns 0 when empty.
 */
double histogramPercentile(const Registry::Row &row, double q);

/** Snapshot engine; one global instance serves the profile surface. */
class SnapshotEngine
{
  public:
    /** The engine behind the profile.* keys / --profile / C API. */
    static SnapshotEngine &global();

    /** An engine over @p registry (tests build private ones). */
    explicit SnapshotEngine(Registry &registry = Registry::global());
    ~SnapshotEngine();

    SnapshotEngine(const SnapshotEngine &) = delete;
    SnapshotEngine &operator=(const SnapshotEngine &) = delete;

    /** Capture a snapshot now, append it to the ring, return it. */
    ProfileSnapshot take();

    /** Snapshots currently retained. */
    std::size_t ringSize() const;

    /** Copy of the retained ring, oldest first. */
    std::vector<ProfileSnapshot> ring() const;

    /** Retention bound; trims immediately when shrunk. */
    void setRingDepth(std::size_t depth);

    /**
     * Start the background flusher: every @p intervalMs it takes a
     * snapshot and renders it to the profiler-configured sinks
     * (ProfileConfig::output as appended JSONL, ::omOutput rewritten
     * as OpenMetrics). Returns false when already running or
     * intervalMs == 0. The flusher also runs with no sinks configured
     * — the ring still populates for th_profile_report.
     */
    bool start(std::uint64_t intervalMs);

    /** Stop and join the flusher (no-op when not running). */
    void stop();

    /** Is the flusher thread running? */
    bool running() const;

    /** Drop every retained snapshot (flusher must be stopped). */
    void clear();

    /**
     * One JSON object (single line, '\n'-terminated) for @p cur:
     * counters with delta and per-second rate against @p prev (zeros
     * when prev is null), gauges, histogram summaries with p50/p90/
     * p99, and the per-bin / per-worker attribution rows.
     */
    static std::string toJsonl(const ProfileSnapshot &cur,
                               const ProfileSnapshot *prev);

    /** OpenMetrics text exposition of @p cur (ends with "# EOF"). */
    static std::string toOpenMetrics(const ProfileSnapshot &cur);

    /**
     * Take a fresh snapshot and write a report to @p path: an
     * ".om" / ".prom" / ".txt" extension gets the OpenMetrics
     * exposition of that snapshot, anything else the JSONL rendering
     * of the whole retained ring (rates chained between consecutive
     * entries). "fd:N" writes JSONL to that file descriptor.
     */
    bool writeReport(const std::string &path);

  private:
    bool flushOnce();

    Registry &registry_;
    mutable std::mutex mutex_;
    std::deque<ProfileSnapshot> ring_;
    std::size_t ringDepth_ = 64;
    std::uint64_t nextSeq_ = 1;
    /** Last flushed snapshot, for rate computation across flushes. */
    ProfileSnapshot lastFlushed_;
    bool haveLastFlushed_ = false;

    std::thread flusher_;
    mutable std::mutex flushMutex_;
    std::condition_variable flushCv_;
    bool stopRequested_ = false;
    bool running_ = false;
    std::uint64_t intervalMs_ = 0;
};

} // namespace lsched::obs

#endif // LSCHED_OBS_SNAPSHOT_HH
