#include "registry.hh"

#include <bit>
#include <sstream>

#include "support/json.hh"

namespace lsched::obs
{

std::size_t
Histogram::bucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

void
Histogram::record(std::uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);

    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::min() const
{
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == ~0ull ? 0 : v;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    // Deliberately leaked: exporters run from atexit handlers (the
    // --metrics hook) that may outlive any function-local static's
    // destructor, so the registry must never be destroyed.
    static Registry &registry = *new Registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<Registry::Row>
Registry::rows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Row> out;
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto &[name, c] : counters_)
        out.push_back({name, "counter", c->value(), 0, 0, 0, 0});
    for (const auto &[name, g] : gauges_)
        out.push_back({name, "gauge", g->value(), 0, 0, 0, 0});
    for (const auto &[name, h] : histograms_) {
        out.push_back({name, "histogram", h->count(), h->sum(), h->min(),
                       h->max(), h->mean()});
        out.back().buckets.resize(Histogram::kBuckets);
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            out.back().buckets[i] = h->bucket(i);
    }
    return out;
}

std::string
Registry::toText() const
{
    std::ostringstream os;
    os << "== metrics ==\n";
    for (const Row &r : rows()) {
        os << "  " << r.name << " (" << r.kind << "): " << r.value;
        if (r.kind == "histogram") {
            os << " samples, sum " << r.sum << ", min " << r.min
               << ", max " << r.max << ", mean " << r.mean;
        }
        os << "\n";
    }
    return os.str();
}

std::string
Registry::toCsv() const
{
    std::ostringstream os;
    os << "name,kind,value,sum,min,max,mean\n";
    for (const Row &r : rows()) {
        os << r.name << "," << r.kind << "," << r.value << "," << r.sum
           << "," << r.min << "," << r.max << "," << r.mean << "\n";
    }
    return os.str();
}

std::string
Registry::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    const std::vector<Row> all = rows();
    for (const Row &r : all) {
        if (r.kind != "counter")
            continue;
        os << (first ? "" : ",") << jsonString(r.name) << ":" << r.value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const Row &r : all) {
        if (r.kind != "gauge")
            continue;
        os << (first ? "" : ",") << jsonString(r.name) << ":" << r.value;
        first = false;
    }
    os << "},\"histograms\":[";
    first = true;
    for (const Row &r : all) {
        if (r.kind != "histogram")
            continue;
        os << (first ? "" : ",") << "{\"name\":" << jsonString(r.name)
           << ",\"count\":" << r.value << ",\"sum\":" << r.sum
           << ",\"min\":" << r.min << ",\"max\":" << r.max
           << ",\"mean\":" << r.mean << "}";
        first = false;
    }
    os << "]}";
    return os.str();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace lsched::obs
