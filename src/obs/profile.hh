/**
 * @file
 * Continuous profiling: per-worker hardware-counter sampling with
 * per-bin / per-super-bin / per-epoch miss attribution.
 *
 * The paper's central claim — block-hash scheduling cuts cache misses
 * — is measurable offline (cachesim, one-shot perfcount reads in the
 * benches); this subsystem makes it observable *online*, which is the
 * sensor layer adaptive placement needs. Each worker thread owns a
 * perf_event counter group (LLC references/misses, instructions,
 * cycles) that executeBin() samples around every bin execution, so
 * misses and dwell land in a lock-free attribution table keyed by bin
 * id, carrying the bin's super-bin and the tour/stream epoch the
 * sample belongs to.
 *
 * Gating mirrors trace.hh exactly:
 *  - compile time: with LSCHED_TRACE_ENABLED == 0 the inline hooks
 *    below are empty and reference no profiler symbol, so the
 *    scheduler's hot translation units carry nothing of this file
 *    (scripts/check-all.sh asserts that on the notrace preset);
 *  - run time: profileOn() is one relaxed load; Profiler::setEnabled()
 *    flips it.
 *
 * Degradation: perf_event_open is frequently unavailable (containers,
 * perf_event_paranoid, missing PMU virtualization). The first failed
 * open warns once and every subsequent sample degrades to dwell-only
 * — timing attribution still works, the LLC columns read zero. The
 * cache-simulator benches feed the same table through recordSample()
 * instead, so the attribution pipeline is identical either way.
 */

#ifndef LSCHED_OBS_PROFILE_HH
#define LSCHED_OBS_PROFILE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace lsched::obs
{

/** "No super-bin" marker (matches threads::Bin::kNoSuperBin). */
constexpr std::uint32_t kProfileNoSuperBin = 0xffffffffu;

/** "Use the profiler's current run/stream epoch" marker. */
constexpr std::uint32_t kProfileCurrentEpoch = 0xffffffffu;

/** Profiling knobs; all process-global (see the profile.* keys). */
struct ProfileConfig
{
    /** Try the hardware PMU; false forces dwell-only samples. */
    bool pmu = true;
    /** Periodic snapshot/flush interval; 0 = manual snapshots only. */
    std::uint64_t intervalMs = 0;
    /** JSONL sink the flusher appends to ("" = none; "fd:N" ok). */
    std::string output;
    /** OpenMetrics sink rewritten each flush ("" = none; "fd:N" ok). */
    std::string omOutput;
    /** Snapshots retained in the in-memory ring. */
    std::size_t ringDepth = 64;
    /** Attribution-table capacity (distinct bins). */
    std::size_t maxBins = 1024;
};

/** Accumulated attribution for one bin (or one super-bin). */
struct BinProfile
{
    std::uint64_t binId = 0;
    std::uint32_t superBin = kProfileNoSuperBin;
    /** Epoch of the most recent sample folded in. */
    std::uint32_t lastEpoch = 0;
    /** executeBin() windows (or recordSample calls) attributed. */
    std::uint64_t executions = 0;
    /** User threads those windows completed. */
    std::uint64_t threads = 0;
    std::uint64_t dwellNs = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t llcRefs = 0;
    std::uint64_t llcMisses = 0;
    /** Windows whose counter read was valid (0 = dwell-only bin). */
    std::uint64_t pmuSamples = 0;

    /** LLC miss ratio in [0,1]; 0 when no references were counted. */
    double
    missRate() const
    {
        return llcRefs ? static_cast<double>(llcMisses) /
                             static_cast<double>(llcRefs)
                       : 0.0;
    }
};

/** Accumulated attribution for one worker thread. */
struct WorkerProfile
{
    unsigned worker = 0;
    std::uint64_t samples = 0;
    std::uint64_t dwellNs = 0;
    std::uint64_t llcRefs = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t pmuSamples = 0;
};

namespace detail
{
extern std::atomic<bool> g_profileOn;
} // namespace detail

/** Is continuous profiling live right now? Hot-path check. */
inline bool
profileOn()
{
#if LSCHED_TRACE_ENABLED
    return detail::g_profileOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** One open sampling window around a bin execution. */
struct ProfileToken
{
    std::uint64_t t0 = 0;
    /** Window is live (profiling was on at begin). */
    bool active = false;
    /** The thread's counter group is armed for this window. */
    bool pmu = false;
};

/**
 * The process-wide profiler: configuration, the per-bin / per-worker
 * attribution store, and the PMU-availability policy. Worker threads
 * talk to it through the inline hooks at the bottom of this file;
 * everything here is safe from any thread.
 */
class Profiler
{
  public:
    /** Worker slots kept; higher worker ids share the last slot. */
    static constexpr unsigned kMaxWorkers = 64;

    static Profiler &global();

    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * Install @p config. Callable at any time: flusher-affecting
     * fields (interval, outputs) restart the running flusher; a
     * maxBins change takes effect at the next enable after reset().
     * Returns false (with a message in @p error) on a bad config.
     */
    bool configure(const ProfileConfig &config,
                   std::string *error = nullptr);

    /** Current configuration. */
    ProfileConfig config() const;

    /**
     * Turn sampling on or off. Enabling allocates the attribution
     * store and, when intervalMs > 0, starts the snapshot flusher;
     * disabling stops the flusher but keeps the store for reports.
     * Returns the resulting enabled state — always false when
     * instrumentation is compiled out (the call is then a no-op).
     */
    bool setEnabled(bool on);

    /** Is sampling enabled? */
    bool enabled() const { return profileOn(); }

    /** Zero the attribution store and the epoch counter. */
    void reset();

    /**
     * Feed one attributed sample. This is the one write path — the
     * executeBin() hook lands here with PMU (or dwell-only) deltas,
     * and simulator-driven benches (bench/ablation_profile) land here
     * with cachesim deltas — so both populate the same table.
     * @p epoch == kProfileCurrentEpoch uses the current run epoch.
     */
    void recordSample(std::uint64_t binId, std::uint32_t superBin,
                      unsigned worker, std::uint64_t threads,
                      std::uint64_t dwellNs, std::uint64_t instructions,
                      std::uint64_t cycles, std::uint64_t llcRefs,
                      std::uint64_t llcMisses, bool pmuValid,
                      std::uint32_t epoch = kProfileCurrentEpoch);

    /** Per-bin attribution rows (unordered). */
    std::vector<BinProfile> binProfiles() const;

    /** Per-super-bin aggregation of binProfiles() (binId = super-bin;
     *  bins without a super-bin aggregate under kProfileNoSuperBin). */
    std::vector<BinProfile> superBinProfiles() const;

    /** Per-worker totals (workers that recorded at least one sample). */
    std::vector<WorkerProfile> workerProfiles() const;

    /** The current tour/stream epoch. */
    std::uint32_t epoch() const;

    /** Start a new epoch (a run, a parallel tour, or a stream). */
    void noteEpochBegin();

    /** Samples dropped because the bin table was full. */
    std::uint64_t droppedBins() const;

    /** Total / PMU-valid / degraded sample counts. */
    std::uint64_t samples() const;
    std::uint64_t pmuSampleCount() const;
    std::uint64_t dwellOnlySamples() const;

    /**
     * Can sampling use hardware counters? False when the PMU probe
     * fails, when config().pmu is off, when forcePmuUnavailable(true)
     * is in effect, or when LSCHED_PROFILE_NO_PMU is set in the
     * environment.
     */
    bool pmuUsable() const;

    /**
     * Test hook: pretend perf_event_open is unavailable, forcing the
     * dwell-only degradation path.
     */
    void forcePmuUnavailable(bool forced);
};

namespace detail
{
/** Out-of-line hook bodies; only referenced from traced builds. */
ProfileToken profileBinBeginImpl();
void profileBinEndImpl(const ProfileToken &token, std::uint64_t binId,
                       std::uint32_t superBin, std::uint64_t threads,
                       unsigned worker, std::uint32_t epoch);
void profileWorkerAttachImpl(unsigned worker);
void profileNoteEpochImpl();
} // namespace detail

/**
 * Open a sampling window on the calling thread (arms its counter
 * group). Compiles to nothing when instrumentation is compiled out;
 * returns an inactive token when profiling is off.
 */
inline ProfileToken
profileBinBegin()
{
#if LSCHED_TRACE_ENABLED
    if (profileOn())
        return detail::profileBinBeginImpl();
#endif
    return ProfileToken{};
}

/** Close the window and attribute its deltas to @p binId. */
inline void
profileBinEnd([[maybe_unused]] const ProfileToken &token,
              [[maybe_unused]] std::uint64_t binId,
              [[maybe_unused]] std::uint32_t superBin,
              [[maybe_unused]] std::uint64_t threads,
              [[maybe_unused]] unsigned worker,
              [[maybe_unused]] std::uint32_t epoch =
                  kProfileCurrentEpoch)
{
#if LSCHED_TRACE_ENABLED
    if (token.active)
        detail::profileBinEndImpl(token, binId, superBin, threads,
                                  worker, epoch);
#endif
}

/**
 * Pre-open the calling worker thread's counter group (worker_pool /
 * stream drain entry), so the first bin's window doesn't pay the
 * perf_event_open cost.
 */
inline void
profileWorkerAttach([[maybe_unused]] unsigned worker)
{
#if LSCHED_TRACE_ENABLED
    if (profileOn())
        detail::profileWorkerAttachImpl(worker);
#endif
}

/** Mark the start of a run/tour/stream epoch. */
inline void
profileNoteEpoch()
{
#if LSCHED_TRACE_ENABLED
    if (profileOn())
        detail::profileNoteEpochImpl();
#endif
}

} // namespace lsched::obs

#endif // LSCHED_OBS_PROFILE_HH
