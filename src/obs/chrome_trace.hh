/**
 * @file
 * Chrome trace-event JSON export (chrome://tracing / Perfetto).
 *
 * Each lane (thread) becomes one timeline: Begin/End event pairs
 * (RunBegin/RunEnd, BinStart/BinEnd, ThreadStart/ThreadEnd) are
 * rendered as complete "X" duration slices, the remaining events as
 * instants, plus one metadata record naming the lane. Timestamps are
 * rebased to the earliest event and emitted in microseconds, ordered
 * chronologically within each lane, which is exactly what Perfetto's
 * legacy-JSON importer expects.
 */

#ifndef LSCHED_OBS_CHROME_TRACE_HH
#define LSCHED_OBS_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "obs/trace.hh"

namespace lsched::obs
{

/** Render lane snapshots as a Chrome trace-event JSON document. */
std::string chromeTraceJson(const std::vector<LaneSnapshot> &lanes);

/**
 * Snapshot the global session and write it to @p path. Returns false
 * when the file cannot be opened.
 */
bool writeChromeTrace(const std::string &path);

} // namespace lsched::obs

#endif // LSCHED_OBS_CHROME_TRACE_HH
