#include "metrics.hh"

#include <cstdio>

#include "support/failpoint.hh"

namespace lsched::obs
{

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

bool
writeMetricsFile(const std::string &path, const Registry &registry)
{
    if (LSCHED_FAILPOINT_HIT("obs.metrics.write"))
        return false;
    std::string body;
    if (endsWith(path, ".json"))
        body = registry.toJson();
    else if (endsWith(path, ".csv"))
        body = registry.toCsv();
    else
        body = registry.toText();

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(body.data(), 1, body.size(), f);
    if (body.empty() || body.back() != '\n')
        std::fputc('\n', f);
    std::fclose(f);
    return true;
}

bool
writeMetricsFile(const std::string &path)
{
    return writeMetricsFile(path, Registry::global());
}

} // namespace lsched::obs
