/**
 * @file
 * Metrics-registry file export: text, CSV, or JSON chosen by file
 * extension. This is the sink behind the --metrics CLI flag; the
 * harness JSON report (harness/report.hh) embeds the same JSON
 * rendering via Registry::toJson().
 */

#ifndef LSCHED_OBS_METRICS_HH
#define LSCHED_OBS_METRICS_HH

#include <string>

#include "obs/registry.hh"

namespace lsched::obs
{

/**
 * Write @p registry to @p path: ".json" renders Registry::toJson(),
 * ".csv" Registry::toCsv(), anything else Registry::toText().
 * Returns false when the file cannot be opened.
 */
bool writeMetricsFile(const std::string &path,
                      const Registry &registry);

/** Same, for the global registry. */
bool writeMetricsFile(const std::string &path);

} // namespace lsched::obs

#endif // LSCHED_OBS_METRICS_HH
