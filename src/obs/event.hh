/**
 * @file
 * Typed scheduler trace events.
 *
 * Every event is a fixed-size POD: a nanosecond timestamp, a type tag,
 * and three 64-bit payload words whose meaning depends on the type
 * (documented per enumerator). Events are recorded into per-thread
 * ring buffers (ring_buffer.hh) and rendered by the exporters
 * (chrome_trace.hh), so the hot path never formats strings.
 */

#ifndef LSCHED_OBS_EVENT_HH
#define LSCHED_OBS_EVENT_HH

#include <chrono>
#include <cstdint>

namespace lsched::obs
{

/** What happened. Payload word meaning is (a, b, c). */
enum class EventType : std::uint8_t
{
    /** A thread was forked: (bin id, block coord 0, block coord 1). */
    ThreadFork,
    /** A bin was allocated: (bin id, block coord 0, block coord 1). */
    BinCreate,
    /** A bin's threads start running: (bin id, thread count, 0). */
    BinStart,
    /** A bin finished: (bin id, threads executed, 0). */
    BinEnd,
    /** One user thread starts: (bin id, 0, 0). */
    ThreadStart,
    /** One user thread finished: (bin id, 0, 0). */
    ThreadEnd,
    /** run()/runParallel() entered: (pending threads, bins, workers). */
    RunBegin,
    /** run()/runParallel() returned: (threads executed, 0, 0). */
    RunEnd,
    /**
     * An SMP worker claimed a bin: (bin id, worker whose segment held
     * it, claiming worker id) — the first two differ on a steal.
     */
    WorkerClaimBin,
    /** A user thread faulted and was contained: (bin id, worker, 0). */
    ThreadFault,
    /**
     * The runParallel watchdog saw the deadline pass:
     * (stalled workers, bin id of the first stalled worker, deadline ms).
     */
    WatchdogStall,
    /**
     * An idle worker stole a bin from another worker's segment:
     * (bin id, victim worker, stealing worker).
     */
    StealBin,
    /** A pool worker parked between tours: (worker id, epoch, 0). */
    WorkerPark,
    /**
     * A streaming bin was sealed for draining:
     * (bin id, seal epoch of that bin, threads in the sealed chain).
     */
    StreamSeal,
    /**
     * A streaming producer hit the maxPendingThreads bound:
     * (pending threads at the time, configured bound, 0).
     */
    Backpressure,
    /**
     * A profiling window attributed LLC traffic to a bin:
     * (bin id, LLC misses in the window, LLC references in the window).
     */
    BinMissRate,
    /**
     * The snapshot flusher emitted a snapshot:
     * (snapshot seq, bytes written, flush interval ms).
     */
    SnapshotFlush,
    /**
     * A tour or stream-epoch deadline expired and cancellation was
     * requested: (deadline ms, cancel reason, pending/remaining work).
     */
    DeadlineExpire,
    /**
     * A bin (or its un-run tail) was dropped by a cancellation:
     * (bin id, worker, threads dropped).
     */
    BinCancelled,
    /**
     * A producer exhausted its admission retries at the backpressure
     * bound: (pending threads, configured bound, retries).
     */
    AdmissionTimeout,
    /**
     * The overload governor changed state:
     * (new state, previous state, consecutive-epoch streak).
     */
    RecoveryStep,
    /**
     * The governor shed streaming load by force-sealing every open
     * shard: (bins sealed, pending threads, configured bound).
     */
    LoadShed,
    /**
     * The adaptive placement tuner changed its parameters:
     * (new block bytes, new super-bin fan — or bin count under a
     * round-robin base —, regime after the change (AdaptRegime)).
     */
    AdaptRetune,
};

/** Printable name of an event type. */
inline const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::ThreadFork:     return "ThreadFork";
      case EventType::BinCreate:      return "BinCreate";
      case EventType::BinStart:       return "BinStart";
      case EventType::BinEnd:         return "BinEnd";
      case EventType::ThreadStart:    return "ThreadStart";
      case EventType::ThreadEnd:      return "ThreadEnd";
      case EventType::RunBegin:       return "RunBegin";
      case EventType::RunEnd:         return "RunEnd";
      case EventType::WorkerClaimBin: return "WorkerClaimBin";
      case EventType::ThreadFault:    return "ThreadFault";
      case EventType::WatchdogStall:  return "WatchdogStall";
      case EventType::StealBin:       return "StealBin";
      case EventType::WorkerPark:     return "WorkerPark";
      case EventType::StreamSeal:     return "StreamSeal";
      case EventType::Backpressure:   return "Backpressure";
      case EventType::BinMissRate:    return "BinMissRate";
      case EventType::SnapshotFlush:  return "SnapshotFlush";
      case EventType::DeadlineExpire:  return "DeadlineExpire";
      case EventType::BinCancelled:    return "BinCancelled";
      case EventType::AdmissionTimeout: return "AdmissionTimeout";
      case EventType::RecoveryStep:    return "RecoveryStep";
      case EventType::LoadShed:        return "LoadShed";
      case EventType::AdaptRetune:     return "AdaptRetune";
    }
    return "?";
}

/** One recorded trace event. */
struct Event
{
    /** Timestamp in nanoseconds (steady clock). */
    std::uint64_t ns = 0;
    /** Payload words; meaning depends on type. */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    EventType type = EventType::ThreadFork;
};

/** Monotonic timestamp in nanoseconds. */
inline std::uint64_t
nowNs()
{
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

} // namespace lsched::obs

#endif // LSCHED_OBS_EVENT_HH
