/**
 * @file
 * DineroIII "din" trace format interoperability.
 *
 * The classic din format is one ASCII record per reference:
 *
 *     <label> <hex-address>
 *
 * with label 0 = data read, 1 = data write, 2 = instruction fetch —
 * the format the paper's (modified) DineroIII consumed. Exporting our
 * reference streams as din lets results be cross-checked against any
 * dineroIII/dineroIV installation.
 */

#ifndef LSCHED_TRACE_DIN_HH
#define LSCHED_TRACE_DIN_HH

#include <cstdio>
#include <string>

#include "trace/record.hh"
#include "trace/recorder.hh"

namespace lsched::trace
{

/** Streaming din writer; usable as a TraceSink. */
class DinWriter final : public TraceSink
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit DinWriter(const std::string &path);
    ~DinWriter() override;

    DinWriter(const DinWriter &) = delete;
    DinWriter &operator=(const DinWriter &) = delete;

    void ref(RefType type, std::uint64_t addr,
             std::uint32_t size) override;

    /** Flush and close (idempotent). */
    void close();

    /** Records written. */
    std::uint64_t count() const { return count_; }

    /** The din label for a reference type. */
    static int
    label(RefType type)
    {
        switch (type) {
          case RefType::Load:
            return 0;
          case RefType::Store:
            return 1;
          case RefType::IFetch:
            return 2;
        }
        return 0;
    }

  private:
    std::FILE *file_;
    std::uint64_t count_ = 0;
};

/** Streaming din reader. */
class DinReader
{
  public:
    /** Open @p path; fatal on failure. */
    explicit DinReader(const std::string &path);
    ~DinReader();

    DinReader(const DinReader &) = delete;
    DinReader &operator=(const DinReader &) = delete;

    /**
     * Read the next record (size reported as 4 bytes, the din
     * convention of address-only traces); false at end of file.
     * Fatal on malformed lines.
     */
    bool next(TraceRecord &out);

    /** Pump the remaining records into @p sink. */
    std::uint64_t replay(TraceSink &sink);

  private:
    std::FILE *file_;
    std::uint64_t line_ = 0;
};

} // namespace lsched::trace

#endif // LSCHED_TRACE_DIN_HH
