/**
 * @file
 * Synthetic instruction-fetch model.
 *
 * Simulating one I-fetch per executed instruction costs ~10x the data
 * stream for almost no information: the paper's inner loops fit in the
 * L1 I-cache, so L2 instruction misses are compulsory only. This model
 * therefore (a) counts executed instructions analytically, using the
 * per-iteration instruction counts the paper itself reports for each
 * kernel (untiled 10, tiled 18, threaded 14 for matmul, Section 4.2),
 * and (b) touches every line of a synthetic code region once per
 * kernel entry so the compulsory I-misses appear in the simulation.
 * A full per-instruction mode exists for fidelity checks.
 */

#ifndef LSCHED_TRACE_SYNTH_IFETCH_HH
#define LSCHED_TRACE_SYNTH_IFETCH_HH

#include <cstdint>

#include "cachesim/hierarchy.hh"

namespace lsched::trace
{

/** Models the instruction stream of one kernel. */
class SynthIFetch
{
  public:
    /** How instruction fetches are fed to the simulator. */
    enum class Mode
    {
        /** Analytic counts + one touch per code line per entry. */
        Analytic,
        /** Simulate every 4-byte fetch (slow; for validation). */
        Full,
    };

    /**
     * @param hierarchy simulated memory hierarchy (may be null for a
     *        pure-native run; all calls become no-ops).
     * @param code_base synthetic virtual address of the kernel text.
     * @param body_bytes size of the kernel body in bytes.
     */
    SynthIFetch(cachesim::Hierarchy *hierarchy, std::uint64_t code_base,
                std::uint64_t body_bytes, Mode mode = Mode::Analytic)
        : hierarchy_(hierarchy), codeBase_(code_base),
          bodyBytes_(body_bytes), mode_(mode)
    {
    }

    /**
     * Mark entry into the kernel: in analytic mode, touch each code
     * line once so compulsory I-misses register.
     */
    void
    enter()
    {
        if (!hierarchy_ || mode_ != Mode::Analytic)
            return;
        const std::uint64_t line = 1ull
                                   << hierarchy_->l1i().lineShift();
        for (std::uint64_t off = 0; off < bodyBytes_; off += line)
            hierarchy_->ifetch(codeBase_ + off, 4);
    }

    /**
     * Account for @p count executed instructions. Analytic mode bumps
     * the instruction counter; full mode streams sequential fetches
     * through the body (wrapping), modelling a straight-line loop.
     */
    void
    execute(std::uint64_t count)
    {
        if (!hierarchy_)
            return;
        if (mode_ == Mode::Analytic) {
            hierarchy_->countIFetches(count);
            return;
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            hierarchy_->ifetch(codeBase_ + (cursor_ % bodyBytes_), 4);
            cursor_ += 4;
        }
    }

    /** Simulated-or-not flag for callers that branch on tracing. */
    bool active() const { return hierarchy_ != nullptr; }

  private:
    cachesim::Hierarchy *hierarchy_;
    std::uint64_t codeBase_;
    std::uint64_t bodyBytes_;
    Mode mode_;
    std::uint64_t cursor_ = 0;
};

} // namespace lsched::trace

#endif // LSCHED_TRACE_SYNTH_IFETCH_HH
