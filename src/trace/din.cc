#include "din.hh"

#include <cinttypes>

#include "support/panic.hh"

namespace lsched::trace
{

DinWriter::DinWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "w"))
{
    if (!file_)
        LSCHED_FATAL("cannot open din trace '", path, "' for writing");
}

DinWriter::~DinWriter()
{
    close();
}

void
DinWriter::ref(RefType type, std::uint64_t addr, std::uint32_t)
{
    LSCHED_ASSERT(file_, "write to closed din trace");
    std::fprintf(file_, "%d %" PRIx64 "\n", label(type), addr);
    ++count_;
}

void
DinWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

DinReader::DinReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "r"))
{
    if (!file_)
        LSCHED_FATAL("cannot open din trace '", path, "' for reading");
}

DinReader::~DinReader()
{
    if (file_)
        std::fclose(file_);
}

bool
DinReader::next(TraceRecord &out)
{
    int label = 0;
    std::uint64_t addr = 0;
    const int got =
        std::fscanf(file_, "%d %" SCNx64 "\n", &label, &addr);
    if (got == EOF)
        return false;
    ++line_;
    if (got != 2 || label < 0 || label > 2)
        LSCHED_FATAL("malformed din record at line ", line_);
    switch (label) {
      case 0:
        out.type = RefType::Load;
        break;
      case 1:
        out.type = RefType::Store;
        break;
      default:
        out.type = RefType::IFetch;
        break;
    }
    out.size = 4;
    out.addr = addr;
    return true;
}

std::uint64_t
DinReader::replay(TraceSink &sink)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.ref(rec.type, rec.addr, rec.size);
        ++n;
    }
    return n;
}

} // namespace lsched::trace
