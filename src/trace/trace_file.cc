#include "trace_file.hh"

#include <cstring>

#include "support/panic.hh"

namespace lsched::trace
{

namespace
{

constexpr char kMagic[4] = {'L', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb")), path_(path)
{
    if (!file_)
        LSCHED_FATAL("cannot open trace file '", path, "' for writing");
    buffer_.reserve(1 << 16);
    // Header with a placeholder count, patched in close().
    char header[16];
    std::memcpy(header, kMagic, 4);
    std::memcpy(header + 4, &kVersion, 4);
    std::uint64_t zero = 0;
    std::memcpy(header + 8, &zero, 8);
    std::fwrite(header, 1, sizeof(header), file_);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::putByte(std::uint8_t b)
{
    buffer_.push_back(static_cast<char>(b));
    if (buffer_.size() >= (1 << 16))
        flushBuffer();
}

void
TraceWriter::flushBuffer()
{
    if (!buffer_.empty()) {
        std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
        buffer_.clear();
    }
}

void
TraceWriter::ref(RefType type, std::uint64_t addr, std::uint32_t size)
{
    LSCHED_ASSERT(file_, "write to closed trace '", path_, "'");
    LSCHED_ASSERT(size < 64, "trace record size must be < 64 bytes");
    const auto t = static_cast<unsigned>(type);
    putByte(static_cast<std::uint8_t>((t << 6) | size));
    const std::int64_t delta =
        static_cast<std::int64_t>(addr - lastAddr_[t]);
    lastAddr_[t] = addr;
    std::uint64_t u = zigzag(delta);
    do {
        std::uint8_t b = u & 0x7f;
        u >>= 7;
        if (u)
            b |= 0x80;
        putByte(b);
    } while (u);
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    flushBuffer();
    std::fseek(file_, 8, SEEK_SET);
    std::fwrite(&count_, 8, 1, file_);
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        LSCHED_FATAL("cannot open trace file '", path, "' for reading");
    char header[16];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header))
        LSCHED_FATAL("trace file '", path, "' truncated header");
    if (std::memcmp(header, kMagic, 4) != 0)
        LSCHED_FATAL("trace file '", path, "' has bad magic");
    std::uint32_t version;
    std::memcpy(&version, header + 4, 4);
    if (version != kVersion)
        LSCHED_FATAL("trace file '", path, "' has unsupported version ",
                     version);
    std::memcpy(&count_, header + 8, 8);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

int
TraceReader::getByte()
{
    return std::fgetc(file_);
}

bool
TraceReader::next(TraceRecord &out)
{
    if (seen_ >= count_)
        return false;
    const int meta = getByte();
    if (meta == EOF)
        LSCHED_FATAL("trace truncated at record ", seen_);
    const unsigned t = static_cast<unsigned>(meta) >> 6;
    LSCHED_ASSERT(t <= 2, "corrupt trace record type");
    std::uint64_t u = 0;
    unsigned shift = 0;
    for (;;) {
        const int b = getByte();
        if (b == EOF)
            LSCHED_FATAL("trace truncated at record ", seen_);
        u |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
        LSCHED_ASSERT(shift < 64, "corrupt trace varint");
    }
    lastAddr_[t] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(lastAddr_[t]) + unzigzag(u));
    out.type = static_cast<RefType>(t);
    out.size = static_cast<std::uint8_t>(meta & 0x3f);
    out.addr = lastAddr_[t];
    ++seen_;
    return true;
}

std::uint64_t
TraceReader::replay(TraceSink &sink)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.ref(rec.type, rec.addr, rec.size);
        ++n;
    }
    return n;
}

} // namespace lsched::trace
