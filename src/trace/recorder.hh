/**
 * @file
 * Sinks that consume a reference stream.
 *
 * Workload kernels are templated on a memory-model policy
 * (workloads/memmodel.hh); in traced mode every load/store is
 * forwarded to one of these sinks — straight into the cache hierarchy
 * (the common case: online simulation without materializing a trace),
 * into a trace file, or into counting state for tests.
 */

#ifndef LSCHED_TRACE_RECORDER_HH
#define LSCHED_TRACE_RECORDER_HH

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hh"
#include "trace/record.hh"

namespace lsched::trace
{

/** Abstract consumer of a reference stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one reference. */
    virtual void ref(RefType type, std::uint64_t addr,
                     std::uint32_t size) = 0;

    /** Convenience wrappers. */
    void load(std::uint64_t a, std::uint32_t s) { ref(RefType::Load, a, s); }
    void store(std::uint64_t a, std::uint32_t s) { ref(RefType::Store, a, s); }
    void ifetch(std::uint64_t a, std::uint32_t s)
    {
        ref(RefType::IFetch, a, s);
    }
};

/** Feeds references directly into a simulated cache hierarchy. */
class HierarchySink final : public TraceSink
{
  public:
    explicit HierarchySink(cachesim::Hierarchy &hierarchy)
        : hierarchy_(hierarchy)
    {
    }

    void
    ref(RefType type, std::uint64_t addr, std::uint32_t size) override
    {
        switch (type) {
          case RefType::IFetch:
            hierarchy_.ifetch(addr, size);
            break;
          case RefType::Load:
            hierarchy_.load(addr, size);
            break;
          case RefType::Store:
            hierarchy_.store(addr, size);
            break;
        }
    }

  private:
    cachesim::Hierarchy &hierarchy_;
};

/** Buffers the full stream in memory; used by tests and small traces. */
class VectorSink final : public TraceSink
{
  public:
    void
    ref(RefType type, std::uint64_t addr, std::uint32_t size) override
    {
        records_.push_back(
            {type, static_cast<std::uint8_t>(size), addr});
    }

    /** The captured trace. */
    const std::vector<TraceRecord> &records() const { return records_; }

  private:
    std::vector<TraceRecord> records_;
};

/** Counts references by type without storing them. */
class CountingSink final : public TraceSink
{
  public:
    void
    ref(RefType type, std::uint64_t, std::uint32_t) override
    {
        switch (type) {
          case RefType::IFetch:
            ++ifetches_;
            break;
          case RefType::Load:
            ++loads_;
            break;
          case RefType::Store:
            ++stores_;
            break;
        }
    }

    std::uint64_t ifetches() const { return ifetches_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t dataRefs() const { return loads_ + stores_; }

  private:
    std::uint64_t ifetches_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace lsched::trace

#endif // LSCHED_TRACE_RECORDER_HH
