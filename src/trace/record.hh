/**
 * @file
 * Address-trace record types — the moral equivalent of a Pixie trace
 * entry (the paper generated traces with Pixie and fed them to a
 * modified DineroIII; we record references at source level instead).
 */

#ifndef LSCHED_TRACE_RECORD_HH
#define LSCHED_TRACE_RECORD_HH

#include <cstdint>

namespace lsched::trace
{

/** Kind of memory reference. */
enum class RefType : std::uint8_t
{
    IFetch = 0,
    Load = 1,
    Store = 2,
};

/** One reference: type, access size in bytes, byte address. */
struct TraceRecord
{
    RefType type = RefType::Load;
    std::uint8_t size = 8;
    std::uint64_t addr = 0;

    bool
    operator==(const TraceRecord &o) const
    {
        return type == o.type && size == o.size && addr == o.addr;
    }
};

} // namespace lsched::trace

#endif // LSCHED_TRACE_RECORD_HH
