/**
 * @file
 * Compact binary trace file format (".ltrc").
 *
 * Layout: 16-byte header (magic "LTRC", u32 version, u64 record
 * count), then one record per reference: a meta byte packing the
 * reference type (2 bits) and size (6 bits), followed by the address
 * as an unsigned LEB128 delta against the previous address of the same
 * type (zig-zag encoded), which compresses the strided streams these
 * workloads produce to 2-3 bytes per reference.
 */

#ifndef LSCHED_TRACE_TRACE_FILE_HH
#define LSCHED_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/record.hh"
#include "trace/recorder.hh"

namespace lsched::trace
{

/** Streaming writer; also usable as a TraceSink. */
class TraceWriter final : public TraceSink
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void ref(RefType type, std::uint64_t addr,
             std::uint32_t size) override;

    /** Finish the header and close the file (idempotent). */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    void putByte(std::uint8_t b);
    void flushBuffer();

    std::FILE *file_;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t lastAddr_[3] = {0, 0, 0};
    std::string buffer_;
};

/** Streaming reader for .ltrc files. */
class TraceReader
{
  public:
    /** Open @p path; fatal on bad magic/version. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Read the next record; false at end of trace. */
    bool next(TraceRecord &out);

    /** Total records promised by the header. */
    std::uint64_t count() const { return count_; }

    /** Pump the whole remaining trace into @p sink. */
    std::uint64_t replay(TraceSink &sink);

  private:
    int getByte();

    std::FILE *file_;
    std::uint64_t count_ = 0;
    std::uint64_t seen_ = 0;
    std::uint64_t lastAddr_[3] = {0, 0, 0};
};

} // namespace lsched::trace

#endif // LSCHED_TRACE_TRACE_FILE_HH
