/**
 * @file
 * Error-reporting primitives in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a library bug);
 *            prints location and aborts so a debugger or core dump can
 *            capture the state.
 * fatal()  — the caller asked for something impossible (bad
 *            configuration, invalid arguments); prints a message and
 *            exits with status 1.
 * warn()   — something suspicious but survivable happened.
 * inform() — plain status output.
 */

#ifndef LSCHED_SUPPORT_PANIC_HH
#define LSCHED_SUPPORT_PANIC_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace lsched
{

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace lsched

/** Abort with a message; use for violated internal invariants. */
#define LSCHED_PANIC(...)                                                   \
    ::lsched::detail::panicImpl(                                            \
        __FILE__, __LINE__, ::lsched::detail::concatMessage(__VA_ARGS__))

/** Exit(1) with a message; use for unusable user input/configuration. */
#define LSCHED_FATAL(...)                                                   \
    ::lsched::detail::fatalImpl(                                            \
        __FILE__, __LINE__, ::lsched::detail::concatMessage(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define LSCHED_WARN(...)                                                    \
    ::lsched::detail::warnImpl(::lsched::detail::concatMessage(__VA_ARGS__))

/** Status message to stderr. */
#define LSCHED_INFORM(...)                                                  \
    ::lsched::detail::informImpl(                                           \
        ::lsched::detail::concatMessage(__VA_ARGS__))

/** Panic unless a library invariant holds. */
#define LSCHED_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            LSCHED_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

#endif // LSCHED_SUPPORT_PANIC_HH
