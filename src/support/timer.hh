/**
 * @file
 * Wall-clock and CPU-time timers used by the benchmark harness.
 *
 * The paper reports CPU seconds; we expose both CPU time
 * (CLOCK_PROCESS_CPUTIME_ID) and wall time (steady_clock) and let each
 * bench choose.
 */

#ifndef LSCHED_SUPPORT_TIMER_HH
#define LSCHED_SUPPORT_TIMER_HH

#include <chrono>
#include <cstdint>

namespace lsched
{

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    seconds() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Per-process CPU-time stopwatch (what the paper's tables report). */
class CpuTimer
{
  public:
    CpuTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = now(); }

    /** CPU seconds since construction or the last reset(). */
    double seconds() const { return now() - start_; }

  private:
    static double now();

    double start_;
};

/**
 * Call a thunk repeatedly until at least @p min_seconds of wall time
 * has elapsed; return the mean seconds per call. Used by the Table-1
 * micro-benchmarks where a single call is too short to time.
 */
template <typename Fn>
double
measureSecondsPerCall(Fn &&fn, double min_seconds = 0.2)
{
    std::uint64_t calls = 0;
    WallTimer timer;
    do {
        fn();
        ++calls;
    } while (timer.seconds() < min_seconds);
    return timer.seconds() / static_cast<double>(calls);
}

} // namespace lsched

#endif // LSCHED_SUPPORT_TIMER_HH
