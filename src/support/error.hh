/**
 * @file
 * Recoverable error types — the third tier of the error model.
 *
 * The library distinguishes four failure classes (see DESIGN.md §8):
 *
 *  panic()            — a library invariant was violated; abort().
 *  fatal()            — unusable input in a context where unwinding is
 *                       unsafe (e.g. misuse detected on a worker
 *                       thread); exit(1) with a diagnostic.
 *  RecoverableError   — the caller asked for something impossible but
 *                       the library state is intact; thrown as an
 *                       exception so long-lived embedders can catch,
 *                       report, and keep running. The C API translates
 *                       these into th_last_error().
 *  contained faults   — exceptions escaping *user* thread bodies,
 *                       handled per ErrorPolicy (threads/fault.hh).
 */

#ifndef LSCHED_SUPPORT_ERROR_HH
#define LSCHED_SUPPORT_ERROR_HH

#include <stdexcept>
#include <string>

namespace lsched
{

/** Base of every error the library reports by throwing. */
class RecoverableError : public std::runtime_error
{
  public:
    explicit RecoverableError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** The supplied configuration is unusable; prior state is retained. */
class ConfigError : public RecoverableError
{
  public:
    using RecoverableError::RecoverableError;
};

/** An API call outside its contract that can be refused safely. */
class UsageError : public RecoverableError
{
  public:
    using RecoverableError::RecoverableError;
};

/**
 * A tour or stream epoch overran its configured deadline (or the
 * watchdog cancelled it) and was cooperatively cancelled. The
 * scheduler is back in a clean, reusable state; the un-run work was
 * dropped and accounted in the recovery statistics.
 */
class DeadlineError : public RecoverableError
{
  public:
    using RecoverableError::RecoverableError;
};

/**
 * A streaming producer exhausted its admission retries at the
 * backpressure bound without the drain making progress — the wedged-
 * pool diagnosis that replaces an unbounded producer hang. The stream
 * stays open; the caller may retry, shed the work, or end the stream.
 */
class AdmissionTimeout : public RecoverableError
{
  public:
    using RecoverableError::RecoverableError;
};

} // namespace lsched

#endif // LSCHED_SUPPORT_ERROR_HH
