/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic element of the library (N-body initial conditions,
 * randomized property tests, random replacement) draws from a seeded
 * Prng so results are reproducible run to run.
 */

#ifndef LSCHED_SUPPORT_PRNG_HH
#define LSCHED_SUPPORT_PRNG_HH

#include <cstdint>

namespace lsched
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded through
 * splitmix64 so any 64-bit seed gives a well-mixed state.
 */
class Prng
{
  public:
    /** Construct with a 64-bit seed; the same seed replays the stream. */
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Debiased modulo via rejection on the top range.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    // UniformRandomBitGenerator interface for <algorithm> shuffles.
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type operator()() { return next(); }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace lsched

#endif // LSCHED_SUPPORT_PRNG_HH
