/**
 * @file
 * Minimal JSON string escaping, shared by every JSON emitter in the
 * tree (support/table, obs exporters, harness report sink). We only
 * ever *emit* JSON; there is deliberately no parser here.
 */

#ifndef LSCHED_SUPPORT_JSON_HH
#define LSCHED_SUPPORT_JSON_HH

#include <cstdio>
#include <string>
#include <string_view>

namespace lsched
{

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** Quote and escape @p s as a JSON string literal. */
inline std::string
jsonString(std::string_view s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace lsched

#endif // LSCHED_SUPPORT_JSON_HH
