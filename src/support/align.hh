/**
 * @file
 * Power-of-two and alignment arithmetic used by the cache simulator and
 * the scheduler's block map.
 */

#ifndef LSCHED_SUPPORT_ALIGN_HH
#define LSCHED_SUPPORT_ALIGN_HH

#include <bit>
#include <cstdint>

namespace lsched
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2(@p v); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOfTwo(v) ? 0u : 1u);
}

/** Smallest power of two >= @p v (v == 0 maps to 1). */
constexpr std::uint64_t
roundUpPowerOfTwo(std::uint64_t v)
{
    return v <= 1 ? 1 : std::uint64_t{1} << ceilLog2(v);
}

/** Largest power of two <= @p v; @p v must be non-zero. */
constexpr std::uint64_t
roundDownPowerOfTwo(std::uint64_t v)
{
    return std::uint64_t{1} << floorLog2(v);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

} // namespace lsched

#endif // LSCHED_SUPPORT_ALIGN_HH
