#include "panic.hh"

#include <cstdio>

namespace lsched
{
namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace lsched
