#include "failpoint.hh"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "support/panic.hh"
#include "support/prng.hh"

namespace lsched::failpoint
{

namespace detail
{
std::atomic<int> g_armed{0};
} // namespace detail

#if LSCHED_FAILPOINTS_ENABLED

namespace
{

enum class Mode : std::uint8_t
{
    Always,
    Once,
    Nth,   ///< fire on exactly the param-th evaluation
    Every, ///< fire on every param-th evaluation
    Prob,  ///< fire with probability param / 2^32, seeded
    Stall, ///< sleep param ms every param2-th evaluation; no throw
};

struct Site
{
    Mode mode = Mode::Always;
    std::uint64_t param = 0;
    std::uint64_t param2 = 0;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    Prng prng{1};
};

struct Registry
{
    std::mutex mutex;
    std::unordered_map<std::string, Site> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

bool
parseUint(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

/** Parse one spec into a Site; false with reason on bad grammar. */
bool
parseSpec(const std::string &spec, Site *site, bool *off,
          std::string *error)
{
    *off = false;
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = "bad fail-point spec '" + spec + "': " + why;
        return false;
    };
    if (spec == "off") {
        *off = true;
        return true;
    }
    if (spec == "always") {
        site->mode = Mode::Always;
        return true;
    }
    if (spec == "once") {
        site->mode = Mode::Once;
        return true;
    }
    if (spec.rfind("hit=", 0) == 0 || spec.rfind("every=", 0) == 0) {
        const bool every = spec[0] == 'e';
        std::uint64_t n = 0;
        if (!parseUint(spec.substr(spec.find('=') + 1), &n) || n == 0)
            return fail("expected a positive integer");
        site->mode = every ? Mode::Every : Mode::Nth;
        site->param = n;
        return true;
    }
    if (spec.rfind("stall=", 0) == 0) {
        std::string body = spec.substr(6);
        std::uint64_t every = 1;
        if (const std::size_t at = body.find('@');
            at != std::string::npos) {
            if (!parseUint(body.substr(at + 1), &every) || every == 0)
                return fail("expected a positive period after '@'");
            body = body.substr(0, at);
        }
        std::uint64_t ms = 0;
        if (!parseUint(body, &ms) || ms == 0)
            return fail("expected positive stall milliseconds");
        site->mode = Mode::Stall;
        site->param = ms;
        site->param2 = every;
        return true;
    }
    if (spec.rfind("prob=", 0) == 0) {
        std::string body = spec.substr(5);
        std::uint64_t seed = 1;
        if (const std::size_t at = body.find('@');
            at != std::string::npos) {
            if (!parseUint(body.substr(at + 1), &seed))
                return fail("expected an integer seed after '@'");
            body = body.substr(0, at);
        }
        char *end = nullptr;
        const double p = std::strtod(body.c_str(), &end);
        if (end == body.c_str() || *end != '\0' || p < 0.0 || p > 1.0)
            return fail("expected a probability in [0, 1]");
        site->mode = Mode::Prob;
        site->param =
            static_cast<std::uint64_t>(p * 4294967296.0); // p * 2^32
        site->prng = Prng(seed);
        return true;
    }
    return fail("unknown form (want off|always|once|hit=N|every=N|"
                "prob=P[@seed]|stall=MS[@N])");
}

/**
 * Arm sites from LSCHED_FAILPOINTS before main() so env-driven runs
 * need no code changes. A malformed value cannot throw this early;
 * warn and ignore the rest of the list instead.
 */
const bool g_envArmed = [] {
    const char *env = std::getenv("LSCHED_FAILPOINTS");
    if (!env || !*env)
        return false;
    std::string error;
    if (!armList(env, &error))
        LSCHED_WARN("ignoring LSCHED_FAILPOINTS: ", error);
    return true;
}();

} // namespace

namespace detail
{

bool
evaluate(const char *name)
{
    std::uint64_t stallMs = 0;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.sites.find(name);
        if (it == r.sites.end())
            return false;
        Site &site = it->second;
        ++site.hits;
        bool fire = false;
        switch (site.mode) {
          case Mode::Always:
            fire = true;
            break;
          case Mode::Once:
            fire = site.fires == 0;
            break;
          case Mode::Nth:
            fire = site.hits == site.param;
            break;
          case Mode::Every:
            fire = site.hits % site.param == 0;
            break;
          case Mode::Prob:
            fire = (site.prng.next() >> 32) < site.param;
            break;
          case Mode::Stall:
            if (site.hits % site.param2 == 0) {
                ++site.fires;
                stallMs = site.param;
            }
            // Never reports true: a stall delays the caller, it does
            // not inject a thrown fault.
            break;
        }
        if (fire) {
            ++site.fires;
            return true;
        }
    }
    // Sleep outside the registry lock so one stalled site cannot
    // serialize evaluation of every other site in the process.
    if (stallMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stallMs));
    }
    return false;
}

} // namespace detail

bool
arm(const std::string &name, const std::string &spec, std::string *error)
{
    if (name.empty() || name.find_first_of(",:") != std::string::npos) {
        if (error)
            *error = "bad fail-point name '" + name + "'";
        return false;
    }
    Site site;
    bool off = false;
    if (!parseSpec(spec, &site, &off, error))
        return false;
    if (off) {
        disarm(name);
        return true;
    }
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto [it, created] = r.sites.insert_or_assign(name, site);
    (void)it;
    if (created)
        detail::g_armed.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
disarm(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (r.sites.erase(name) > 0)
        detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void
disarmAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    detail::g_armed.fetch_sub(static_cast<int>(r.sites.size()),
                              std::memory_order_relaxed);
    r.sites.clear();
}

std::uint64_t
hitCount(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(name);
    return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fireCount(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(name);
    return it == r.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string>
armedSites()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.sites.size());
    for (const auto &[name, site] : r.sites)
        names.push_back(name);
    return names;
}

bool
armList(const std::string &list, std::string *error)
{
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string entry = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0) {
            if (error)
                *error = "bad fail-point entry '" + entry +
                         "' (want <site>:<spec>)";
            return false;
        }
        if (!arm(entry.substr(0, colon), entry.substr(colon + 1), error))
            return false;
    }
    return true;
}

#else // !LSCHED_FAILPOINTS_ENABLED

// Compiled-out stubs: arming always fails so tests can detect the
// configuration, everything else is a no-op.

bool
arm(const std::string &, const std::string &spec, std::string *error)
{
    if (spec == "off")
        return true;
    if (error)
        *error = "fail points compiled out (LSCHED_FAILPOINTS_ENABLED=0)";
    return false;
}

void
disarm(const std::string &)
{
}

void
disarmAll()
{
}

std::uint64_t
hitCount(const std::string &)
{
    return 0;
}

std::uint64_t
fireCount(const std::string &)
{
    return 0;
}

std::vector<std::string>
armedSites()
{
    return {};
}

bool
armList(const std::string &, std::string *error)
{
    if (error)
        *error = "fail points compiled out (LSCHED_FAILPOINTS_ENABLED=0)";
    return false;
}

#endif // LSCHED_FAILPOINTS_ENABLED

} // namespace lsched::failpoint
