/**
 * @file
 * Small statistics helpers: running summaries and integer histograms.
 *
 * Used for the per-bin thread-distribution numbers the paper quotes
 * ("1,048,576 threads distributed in 81 bins for an average of 12,945
 * threads per bin ... quite uniform").
 */

#ifndef LSCHED_SUPPORT_STATS_HH
#define LSCHED_SUPPORT_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lsched
{

/** Running mean / min / max / stddev over double samples. */
class Summary
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        sumSq_ += x * x;
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return n_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean of samples (0 when empty). */
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0; }

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Population standard deviation (0 when fewer than 2 samples). */
    double
    stddev() const
    {
        if (n_ < 2)
            return 0;
        const double m = mean();
        const double var = sumSq_ / static_cast<double>(n_) - m * m;
        return var > 0 ? std::sqrt(var) : 0;
    }

    /**
     * Coefficient of variation (stddev / mean); 0 when the mean is 0.
     * Low values back the paper's "quite uniform" distribution claims.
     */
    double
    coefficientOfVariation() const
    {
        const double m = mean();
        return m != 0 ? stddev() / m : 0;
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0;
    double sumSq_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Summarize a vector of counts (e.g. threads per bin). */
inline Summary
summarize(const std::vector<std::uint64_t> &counts)
{
    Summary s;
    for (auto c : counts)
        s.add(static_cast<double>(c));
    return s;
}

} // namespace lsched

#endif // LSCHED_SUPPORT_STATS_HH
