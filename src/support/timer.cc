#include "timer.hh"

#include <ctime>

namespace lsched
{

double
CpuTimer::now()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

} // namespace lsched
