/**
 * @file
 * Deterministic fail points: named fault-injection sites.
 *
 * A fail point is a named site in library code that tests (or an
 * operator chasing a bug) can arm to inject a failure — on the Nth
 * hit, on every Nth hit, with seeded probability, once, or always.
 * Sites are armed programmatically (arm()/disarm()) or through the
 * environment:
 *
 *   LSCHED_FAILPOINTS="grouppool.allocate:hit=3,obs.trace.write:always"
 *
 * Spec grammar (one entry per site, entries comma-separated):
 *
 *   <entry> ::= <site> ':' <spec>
 *   <spec>  ::= 'off' | 'always' | 'once'
 *             | 'hit='  N          fire on exactly the Nth evaluation
 *             | 'every=' N         fire on every Nth evaluation
 *             | 'prob=' P ['@' S]  fire with probability P (seed S,
 *                                  default seed 1; deterministic)
 *             | 'stall=' MS ['@' N] sleep MS milliseconds on every Nth
 *                                  evaluation (default every one) and
 *                                  continue — a wedged-worker stall,
 *                                  not a thrown fault; counts as a
 *                                  fire but shouldFail stays false
 *
 * Gating mirrors the tracing layer's two levels:
 *  - compile time: the LSCHED_FAILPOINTS_ENABLED CMake option
 *    (default ON) defines the macro of the same name; when 0 every
 *    site compiles to nothing and the library carries zero cost;
 *  - run time: with the layer compiled in but no site armed, a site
 *    costs one relaxed atomic load and a predictable branch. Armed
 *    evaluation takes a mutex — fault injection is not a hot path.
 */

#ifndef LSCHED_SUPPORT_FAILPOINT_HH
#define LSCHED_SUPPORT_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#ifndef LSCHED_FAILPOINTS_ENABLED
#define LSCHED_FAILPOINTS_ENABLED 1
#endif

namespace lsched::failpoint
{

/** True when the fail-point layer is compiled into this build. */
constexpr bool kCompiled = LSCHED_FAILPOINTS_ENABLED != 0;

/** The exception LSCHED_FAILPOINT sites throw when they fire. */
class Injected : public std::runtime_error
{
  public:
    explicit Injected(const std::string &site)
        : std::runtime_error("injected fault at fail point '" + site +
                             "'"),
          site_(site)
    {
    }

    /** Name of the site that fired. */
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

namespace detail
{
/** Number of currently armed sites; 0 short-circuits every check. */
extern std::atomic<int> g_armed;
/** Slow path: count a hit at @p name and decide whether to fire. */
bool evaluate(const char *name);
} // namespace detail

/** Is any site armed? The one-load fast-path guard. */
inline bool
anyArmed()
{
#if LSCHED_FAILPOINTS_ENABLED
    return detail::g_armed.load(std::memory_order_relaxed) > 0;
#else
    return false;
#endif
}

/** Should the site @p name fire now? */
inline bool
shouldFail(const char *name)
{
#if LSCHED_FAILPOINTS_ENABLED
    return anyArmed() && detail::evaluate(name);
#else
    (void)name;
    return false;
#endif
}

/**
 * Arm @p name with @p spec (grammar above). Returns false (with the
 * reason in @p error when non-null) on a malformed spec or when the
 * layer is compiled out; 'off' disarms.
 */
bool arm(const std::string &name, const std::string &spec,
         std::string *error = nullptr);

/** Disarm one site (no-op when not armed). */
void disarm(const std::string &name);

/** Disarm every site and forget all hit counts. */
void disarmAll();

/** Evaluations of @p name since it was armed (0 when never armed). */
std::uint64_t hitCount(const std::string &name);

/** Times @p name actually fired since it was armed. */
std::uint64_t fireCount(const std::string &name);

/** Names of all currently armed sites. */
std::vector<std::string> armedSites();

/**
 * Arm every "<site>:<spec>" entry of a comma-separated list (the
 * LSCHED_FAILPOINTS format). Stops at the first malformed entry and
 * returns false with the reason in @p error.
 */
bool armList(const std::string &list, std::string *error = nullptr);

} // namespace lsched::failpoint

/**
 * A named injection site that fails by throwing failpoint::Injected.
 * Place where a real failure (allocation, I/O, a misbehaving callee)
 * would surface as an exception.
 */
#if LSCHED_FAILPOINTS_ENABLED
#define LSCHED_FAILPOINT(name)                                              \
    do {                                                                    \
        if (::lsched::failpoint::shouldFail(name)) [[unlikely]]             \
            throw ::lsched::failpoint::Injected(name);                      \
    } while (0)
#else
#define LSCHED_FAILPOINT(name) ((void)0)
#endif

/**
 * Expression form for sites with bespoke failure behaviour (return an
 * error code, throw std::bad_alloc, ...): true when the site fires.
 * Constant false when the layer is compiled out.
 */
#if LSCHED_FAILPOINTS_ENABLED
#define LSCHED_FAILPOINT_HIT(name) (::lsched::failpoint::shouldFail(name))
#else
#define LSCHED_FAILPOINT_HIT(name) false
#endif

#endif // LSCHED_SUPPORT_FAILPOINT_HH
