/**
 * @file
 * Minimal command-line parsing for benches and examples.
 *
 * Supports --name=value, --name value, and boolean --name flags, plus
 * automatic --help generated from the registered options.
 *
 * Every Cli additionally understands the observability flags
 * --trace=<file> (Chrome trace-event JSON of the run) and
 * --metrics=<file> (metrics-registry dump; .json/.csv/text by
 * extension), plus the scheduler flags --placement=<policy>,
 * --backend=<backend>, and the generic --sched key=value[,key=value...]
 * which reaches every string-keyed scheduler config knob. Each group is
 * forwarded to the hook its library installs at static-initialization
 * time (setCliObsHook from lsched_obs, setCliSchedHook from
 * lsched_threads), so any binary linking the schedulers honours them
 * with no per-program code.
 */

#ifndef LSCHED_SUPPORT_CLI_HH
#define LSCHED_SUPPORT_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lsched
{

/** Receiver for the built-in --trace/--metrics values. */
using CliObsHook = void (*)(const std::string &trace_path,
                            const std::string &metrics_path);

/**
 * Install the observability hook Cli::parse() calls when --trace or
 * --metrics was given. Registered by the obs library's static
 * initializer; a program that somehow lacks it fails fatally when the
 * flags are used rather than dropping them silently.
 */
void setCliObsHook(CliObsHook hook);

/** Receiver for the built-in --placement/--backend/--sched values. */
using CliSchedHook = void (*)(const std::string &placement,
                              const std::string &backend,
                              const std::string &sched);

/**
 * Install the scheduler-selection hook Cli::parse() calls when
 * --placement, --backend, or --sched was given, returning the hook
 * previously installed (so a test can capture and restore). Registered
 * by the scheduler library's static initializer; a program that lacks
 * it fails fatally when the flags are used rather than dropping them
 * silently.
 */
CliSchedHook setCliSchedHook(CliSchedHook hook);

/**
 * Receiver for the built-in --profile[=interval] value: "on" when the
 * flag was given bare, otherwise the text after '='.
 */
using CliProfileHook = void (*)(const std::string &value);

/**
 * Install the profiling hook Cli::parse() calls when --profile was
 * given, returning the previously installed hook (so a test can
 * capture and restore). Registered by the obs library's static
 * initializer; a program that lacks it fails fatally when the flag is
 * used rather than dropping it silently.
 */
CliProfileHook setCliProfileHook(CliProfileHook hook);

/** Declarative command-line parser. */
class Cli
{
  public:
    /** @param program short program name, @param blurb one-line help. */
    Cli(std::string program, std::string blurb);

    /** Register an integer option with a default. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);
    /** Register a floating-point option with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    /** Register a string option with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    /** Register a boolean flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Prints help and exits(0) on --help; calls
     * LSCHED_FATAL on unknown options or malformed values.
     */
    void parse(int argc, const char *const *argv);

    /** Look up parsed values (fatal if the name was never added). */
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** The generated help text. */
    std::string helpText() const;

  private:
    /** OptStr takes an optional =value ("on" when given bare) and
     *  never consumes the next argv word. */
    enum class Kind { Int, Double, String, Flag, OptStr };

    struct Option
    {
        std::string name;
        Kind kind;
        std::string help;
        std::string value; // textual; parsed on get
        std::string def;
    };

    const Option &find(const std::string &name, Kind kind) const;
    Option *lookup(const std::string &name);

    std::string program_;
    std::string blurb_;
    std::vector<Option> options_;
};

} // namespace lsched

#endif // LSCHED_SUPPORT_CLI_HH
