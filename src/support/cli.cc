#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "panic.hh"

namespace lsched
{

namespace
{

CliObsHook g_obsHook = nullptr;
CliSchedHook g_schedHook = nullptr;
CliProfileHook g_profileHook = nullptr;

} // namespace

void
setCliObsHook(CliObsHook hook)
{
    g_obsHook = hook;
}

CliSchedHook
setCliSchedHook(CliSchedHook hook)
{
    const CliSchedHook previous = g_schedHook;
    g_schedHook = hook;
    return previous;
}

CliProfileHook
setCliProfileHook(CliProfileHook hook)
{
    const CliProfileHook previous = g_profileHook;
    g_profileHook = hook;
    return previous;
}

Cli::Cli(std::string program, std::string blurb)
    : program_(std::move(program)), blurb_(std::move(blurb))
{
    addString("trace", "",
              "write a Chrome trace-event JSON (Perfetto-loadable) of "
              "this run to the given file");
    addString("metrics", "",
              "write the metrics registry to the given file "
              "(.json/.csv/plain text by extension)");
    addString("placement", "",
              "scheduler placement policy for every scheduler this "
              "program configures (blockhash|roundrobin|hierarchical)");
    addString("backend", "",
              "parallel execution backend for every scheduler this "
              "program configures (serial|pooled|coldspawn)");
    addString("sched", "",
              "comma-separated key=value scheduler config overrides "
              "applied to every scheduler this program configures "
              "(any SchedulerConfig key, e.g. "
              "tour=snake,stream_max_pending=4096)");
    options_.push_back(
        {"profile", Kind::OptStr,
         "enable continuous profiling (per-bin/per-worker PMU "
         "attribution); optional value is the snapshot-flush interval "
         "in milliseconds (sinks via --sched profile.output=...)",
         "", ""});
}

void
Cli::addInt(const std::string &name, std::int64_t def,
            const std::string &help)
{
    options_.push_back({name, Kind::Int, help, std::to_string(def),
                        std::to_string(def)});
}

void
Cli::addDouble(const std::string &name, double def, const std::string &help)
{
    std::ostringstream os;
    os << def;
    options_.push_back({name, Kind::Double, help, os.str(), os.str()});
}

void
Cli::addString(const std::string &name, const std::string &def,
               const std::string &help)
{
    options_.push_back({name, Kind::String, help, def, def});
}

void
Cli::addFlag(const std::string &name, const std::string &help)
{
    options_.push_back({name, Kind::Flag, help, "0", "0"});
}

Cli::Option *
Cli::lookup(const std::string &name)
{
    for (auto &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

void
Cli::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(helpText().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            LSCHED_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        Option *opt = lookup(arg);
        if (!opt)
            LSCHED_FATAL("unknown option '--", arg, "'; see --help");
        if (opt->kind == Kind::Flag) {
            if (has_value)
                LSCHED_FATAL("flag '--", arg, "' takes no value");
            opt->value = "1";
            continue;
        }
        if (opt->kind == Kind::OptStr) {
            opt->value = has_value ? value : "on";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                LSCHED_FATAL("option '--", arg, "' needs a value");
            value = argv[++i];
        }
        opt->value = value;
    }

    const std::string &trace_path = getString("trace");
    const std::string &metrics_path = getString("metrics");
    if (!trace_path.empty() || !metrics_path.empty()) {
        if (!g_obsHook) {
            LSCHED_FATAL("--trace/--metrics need the observability "
                         "library (lsched_obs) linked in");
        }
        g_obsHook(trace_path, metrics_path);
    }

    const std::string &placement = getString("placement");
    const std::string &backend = getString("backend");
    const std::string &sched = getString("sched");
    if (!placement.empty() || !backend.empty() || !sched.empty()) {
        if (!g_schedHook) {
            LSCHED_FATAL("--placement/--backend/--sched need the "
                         "scheduler library (lsched_threads) linked in");
        }
        g_schedHook(placement, backend, sched);
    }

    const Option *profile = nullptr;
    for (const auto &opt : options_)
        if (opt.name == "profile")
            profile = &opt;
    if (profile && !profile->value.empty()) {
        if (!g_profileHook) {
            LSCHED_FATAL("--profile needs the observability library "
                         "(lsched_obs) linked in");
        }
        g_profileHook(profile->value);
    }
}

const Cli::Option &
Cli::find(const std::string &name, Kind kind) const
{
    for (const auto &opt : options_) {
        if (opt.name == name) {
            LSCHED_ASSERT(opt.kind == kind,
                          "option '", name, "' queried with wrong type");
            return opt;
        }
    }
    LSCHED_PANIC("option '", name, "' was never registered");
}

std::int64_t
Cli::getInt(const std::string &name) const
{
    const auto &opt = find(name, Kind::Int);
    char *end = nullptr;
    const long long v = std::strtoll(opt.value.c_str(), &end, 0);
    if (end == opt.value.c_str() || *end != '\0')
        LSCHED_FATAL("option '--", name, "': '", opt.value,
                     "' is not an integer");
    return v;
}

double
Cli::getDouble(const std::string &name) const
{
    const auto &opt = find(name, Kind::Double);
    char *end = nullptr;
    const double v = std::strtod(opt.value.c_str(), &end);
    if (end == opt.value.c_str() || *end != '\0')
        LSCHED_FATAL("option '--", name, "': '", opt.value,
                     "' is not a number");
    return v;
}

const std::string &
Cli::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
Cli::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).value == "1";
}

std::string
Cli::helpText() const
{
    std::ostringstream os;
    os << program_ << " — " << blurb_ << "\n\noptions:\n";
    for (const auto &opt : options_) {
        os << "  --" << opt.name;
        if (opt.kind == Kind::OptStr)
            os << "[=<str>]";
        else if (opt.kind != Kind::Flag)
            os << "=<" << (opt.kind == Kind::Int      ? "int"
                           : opt.kind == Kind::Double ? "float"
                                                      : "str")
               << ">";
        os << "\n        " << opt.help;
        if (opt.kind != Kind::Flag && opt.kind != Kind::OptStr)
            os << " (default: " << opt.def << ")";
        os << "\n";
    }
    os << "  --help\n        show this message\n";
    return os.str();
}

} // namespace lsched
