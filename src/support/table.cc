#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "json.hh"
#include "panic.hh"

namespace lsched
{

TextTable::TextTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    LSCHED_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LSCHED_ASSERT(cells.size() == headers_.size(),
                  "row width ", cells.size(), " != header width ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    ruleBefore_.push_back(rows_.size());
}

std::string
TextTable::toText() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            // Left-align the label column, right-align the rest.
            if (c == 0) {
                os << row[c]
                   << std::string(width[c] - row[c].size(), ' ');
            } else {
                os << std::string(width[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << " |\n";
    };

    std::ostringstream os;
    std::size_t total = 1;
    for (auto w : width)
        total += w + 3;
    if (!title_.empty())
        os << title_ << "\n";
    const std::string rule(total, '-');
    os << rule << "\n";
    emit_row(os, headers_);
    os << rule << "\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(ruleBefore_.begin(), ruleBefore_.end(), r) !=
            ruleBefore_.end()) {
            os << rule << "\n";
        }
        emit_row(os, rows_[r]);
    }
    os << rule << "\n";
    return os.str();
}

std::string
TextTable::toCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << quote(headers_[c]);
    os << "\n";
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    }
    return os.str();
}

std::string
TextTable::toJson() const
{
    std::ostringstream os;
    os << "{\"title\":" << jsonString(title_) << ",\"headers\":[";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << jsonString(headers_[c]);
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? "," : "") << "[";
        for (std::size_t c = 0; c < rows_[r].size(); ++c)
            os << (c ? "," : "") << jsonString(rows_[r][c]);
        os << "]";
    }
    os << "]}";
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::count(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run && run % 3 == 0)
            out += ',';
        out += *it;
        ++run;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
TextTable::thousands(std::uint64_t v)
{
    return count((v + 500) / 1000);
}

} // namespace lsched
