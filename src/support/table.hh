/**
 * @file
 * Plain-text table formatting for the benchmark harness.
 *
 * Benches print their results in the same row/column layout as the
 * paper's Tables 1-9; TextTable right-aligns numeric columns and
 * left-aligns the label column, and can also emit CSV for scripting.
 */

#ifndef LSCHED_SUPPORT_TABLE_HH
#define LSCHED_SUPPORT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lsched
{

/** A simple text table with a header row and string cells. */
class TextTable
{
  public:
    /** Create a table titled @p title with the given column headers. */
    TextTable(std::string title, std::vector<std::string> headers);

    /** Append a full row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a separator rule before the next row. */
    void addRule();

    /** Render as aligned monospace text. */
    std::string toText() const;

    /** Render as CSV (no title line). */
    std::string toCsv() const;

    /**
     * Render as a JSON object
     * {"title":...,"headers":[...],"rows":[[...],...]} — the
     * machine-readable twin of toText() used by the harness JSON
     * report sink.
     */
    std::string toJson() const;

    /** The table title. */
    const std::string &title() const { return title_; }

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Format helpers used by the benches. */
    static std::string num(double v, int precision = 2);
    /** Format an integer count with thousands separators. */
    static std::string count(std::uint64_t v);
    /** Format @p v scaled to thousands (the paper's cache tables). */
    static std::string thousands(std::uint64_t v);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> ruleBefore_;
};

} // namespace lsched

#endif // LSCHED_SUPPORT_TABLE_HH
