/**
 * @file
 * Ablation B: thread-group chunk size. Section 3.2 argues grouping
 * threads "amortizes" management cost; this bench measures host
 * fork+run time of one million null threads as the group capacity
 * varies from 1 (a malloc-ish allocation per thread) to 1024.
 */

#include <cstdio>

#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

void
nullThread(void *, void *)
{
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_groupsize", "Ablation: thread group capacity");
    cli.addInt("threads", 1 << 20, "threads per measurement");
    cli.parse(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.getInt("threads"));

    std::printf("== Ablation B: thread-group capacity ==\n");
    std::printf("%llu null threads, 16 bins\n\n",
                static_cast<unsigned long long>(n));

    TextTable table("", {"group capacity", "fork+run (ns/thread)",
                         "groups allocated"});
    for (const std::uint32_t capacity :
         {1u, 4u, 16u, 64u, 256u, 1024u}) {
        threads::SchedulerConfig cfg;
        cfg.dims = 1;
        cfg.blockBytes = 1 << 16;
        cfg.groupCapacity = capacity;
        threads::LocalityScheduler sched(cfg);

        // Warm-up run populates the group pool (steady state).
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(&nullThread, nullptr, nullptr,
                       (i % 16) << 16, 0);
        sched.run(false);

        CpuTimer timer;
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(&nullThread, nullptr, nullptr,
                       (i % 16) << 16, 0);
        sched.run(false);
        const double ns =
            timer.seconds() * 1e9 / static_cast<double>(n);
        table.addRow({TextTable::count(capacity),
                      TextTable::num(ns, 2), "steady-state"});
    }

    std::printf("%s\n", table.toText().c_str());
    std::printf("expected: per-thread cost drops steeply from "
                "capacity 1 and flattens by ~64 (the library "
                "default), validating the amortization claim\n");
    return 0;
}
