/**
 * @file
 * Figure 4 reproduction: execution time versus block dimension size
 * for all four threaded applications. The paper sweeps 64 KB .. 8 MB
 * on the R8000 (2 MB L2): times are flat while the sum of block
 * dimensions stays within the cache and degrade beyond it. We sweep
 * the same ratios on the scaled machine (block = L2/32 .. 4*L2).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "workloads/matmul.hh"
#include "workloads/nbody.hh"
#include "workloads/pde.hh"
#include "workloads/sor.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

double
runMatmul(const machine::MachineConfig &mc, std::size_t n,
          std::uint64_t block)
{
    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);
    const auto outcome = harness::simulateOn(mc, [&](SimModel &m) {
        Matrix c(n, n);
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.cacheBytes = mc.l2Size();
        cfg.blockBytes = block;
        threads::LocalityScheduler sched(cfg);
        matmulThreaded(a, b, c, sched, m);
    });
    return outcome.estimatedSeconds(mc);
}

double
runPde(const machine::MachineConfig &mc, std::size_t n,
       std::uint64_t block)
{
    const auto outcome = harness::simulateOn(mc, [&](SimModel &m) {
        PdeGrid g(n);
        g.init(7);
        threads::SchedulerConfig cfg;
        cfg.blockBytes = block;
        threads::LocalityScheduler sched(cfg);
        pdeThreaded(g, 5, sched, m);
    });
    return outcome.estimatedSeconds(mc);
}

double
runSor(const machine::MachineConfig &mc, std::size_t n,
       std::uint64_t block)
{
    const auto outcome = harness::simulateOn(mc, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        threads::SchedulerConfig cfg;
        cfg.blockBytes = block;
        threads::LocalityScheduler sched(cfg);
        sorThreaded(a, 10, sched, m);
    });
    return outcome.estimatedSeconds(mc);
}

double
runNBody(const machine::MachineConfig &mc, std::size_t bodies,
         std::uint64_t block)
{
    const auto outcome = harness::simulateOn(mc, [&](SimModel &m) {
        NBodyConfig cfg;
        cfg.bodies = bodies;
        BarnesHut sim(cfg);
        threads::SchedulerConfig scfg;
        scfg.dims = 3;
        scfg.blockBytes = block;
        threads::LocalityScheduler sched(scfg);
        sim.stepThreaded(sched, m, 4 * mc.l2Size() / 3);
    });
    return outcome.estimatedSeconds(mc);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("fig4_blocksize",
            "Figure 4: execution time vs block dimension size");
    cli.addInt("matmul-n", 192, "matmul dimension");
    cli.addInt("pde-n", 384, "PDE grid dimension");
    cli.addInt("sor-n", 384, "SOR array dimension");
    cli.addInt("bodies", 4096, "N-body bodies");
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const auto mc = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Figure 4",
                          "execution time vs block dimension", mc);

    const std::uint64_t l2 = mc.l2Size();
    // The paper's 64K..8M sweep on a 2MB cache = L2/32 .. 4*L2.
    std::vector<std::uint64_t> blocks;
    for (std::uint64_t b = l2 / 32; b <= 4 * l2; b *= 2)
        blocks.push_back(b);

    const auto matmul_n =
        static_cast<std::size_t>(cli.getInt("matmul-n"));
    const auto pde_n = static_cast<std::size_t>(cli.getInt("pde-n"));
    const auto sor_n = static_cast<std::size_t>(cli.getInt("sor-n"));
    const auto bodies = static_cast<std::size_t>(cli.getInt("bodies"));

    std::vector<std::string> headers{"block dim"};
    for (const char *app : {"matmul", "PDE", "SOR", "N-body"})
        headers.push_back(app);
    TextTable table(
        "Figure 4: estimated seconds vs block dimension size",
        headers);

    for (const std::uint64_t block : blocks) {
        std::printf("  block %llu KB...\n",
                    static_cast<unsigned long long>(block / 1024));
        std::vector<std::string> row{
            TextTable::count(block / 1024) + " KB"};
        row.push_back(TextTable::num(runMatmul(mc, matmul_n, block), 4));
        row.push_back(TextTable::num(runPde(mc, pde_n, block), 4));
        row.push_back(TextTable::num(runSor(mc, sor_n, block), 4));
        row.push_back(TextTable::num(runNBody(mc, bodies, block), 4));
        table.addRow(std::move(row));
    }

    std::printf("\n%s\n", table.toText().c_str());
    std::printf("paper shape: flat while block-dimension sum <= L2 "
                "size (here %llu KB total across dims); sharp "
                "degradation past it, most visible for matmul\n",
                static_cast<unsigned long long>(l2 / 1024));
    std::printf("CSV:\n%s", table.toCsv().c_str());
    return 0;
}
