/**
 * @file
 * Ablation E: run-to-completion package vs a general-purpose fiber
 * package — the open question of paper Section 7 ("whether the
 * scheduling algorithm can be efficiently implemented with a
 * general-purpose thread package that supports synchronization").
 *
 * Measures per-thread fork+run cost of null bodies under: the paper's
 * run-to-completion scheduler, the fiber scheduler with locality
 * bins, the fiber scheduler in FIFO mode, and the fiber scheduler
 * when every body yields once (forcing a live suspension).
 */

#include <cstdio>

#include "fibers/general_scheduler.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

void
nullThread(void *, void *)
{
}

void
nullFiber(void *)
{
}

void
yieldingFiber(void *)
{
    lsched::fibers::GeneralScheduler::yield();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_package",
            "Ablation: run-to-completion vs general-purpose package");
    cli.addInt("threads", 1 << 18, "threads per measurement");
    cli.parse(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.getInt("threads"));

    std::printf("== Ablation E: thread package generality ==\n");
    std::printf("%llu null threads, hints spread over 16 blocks\n\n",
                static_cast<unsigned long long>(n));

    TextTable table("", {"package", "ns/thread", "vs baseline"});
    double baseline = 0;

    auto add_row = [&](const char *name, double seconds) {
        const double ns = seconds * 1e9 / static_cast<double>(n);
        if (baseline == 0)
            baseline = ns;
        table.addRow({name, TextTable::num(ns, 1),
                      TextTable::num(ns / baseline, 1) + "x"});
    };

    {
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.blockBytes = 1 << 20;
        threads::LocalityScheduler sched(cfg);
        // Warm-up for pool population.
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(&nullThread, nullptr, nullptr, (i % 16) << 20, 0);
        sched.run(false);
        CpuTimer timer;
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(&nullThread, nullptr, nullptr, (i % 16) << 20, 0);
        sched.run(false);
        add_row("run-to-completion (paper)", timer.seconds());
    }

    auto fiber_round = [&](bool locality, bool yielding) {
        fibers::GeneralSchedulerConfig cfg;
        cfg.locality = locality;
        cfg.dims = 2;
        cfg.blockBytes = 1 << 20;
        fibers::GeneralScheduler sched(cfg);
        const auto body = yielding ? &yieldingFiber : &nullFiber;
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(body, nullptr, (i % 16) << 20, 0);
        sched.run();
        CpuTimer timer;
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(body, nullptr, (i % 16) << 20, 0);
        sched.run();
        return timer.seconds();
    };

    add_row("fibers, locality bins", fiber_round(true, false));
    add_row("fibers, FIFO", fiber_round(false, false));
    add_row("fibers, locality + yield", fiber_round(true, true));

    std::printf("%s\n", table.toText().c_str());
    std::printf("expected: the minimal run-to-completion design is "
                "several times cheaper per thread than a stack-"
                "switching package, and an actual suspension costs "
                "two more context switches — quantifying why the "
                "paper kept its package minimal\n");
    return 0;
}
