/**
 * @file
 * Ablation F: cache organization sensitivity. Replays the threaded
 * and untiled matmul reference streams against L2 configurations
 * sweeping associativity (1..8 plus fully associative) and
 * replacement policy (LRU / FIFO / random) — the knobs the authors'
 * modified DineroIII exposed (after Hill & Smith's associativity
 * methodology). Shows that the locality-scheduling win is robust to
 * the cache organization, not an LRU artifact.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

harness::SimOutcome
runOnce(const machine::MachineConfig &mc, bool threaded,
        const Matrix &a, const Matrix &b)
{
    return harness::simulateOn(mc, [&](SimModel &m) {
        const std::size_t n = a.rows();
        Matrix c(n, n);
        if (!threaded) {
            matmulInterchanged(a, b, c, m);
            return;
        }
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.cacheBytes = mc.l2Size();
        cfg.blockBytes = mc.l2Size() / 2;
        threads::LocalityScheduler sched(cfg);
        matmulThreaded(a, b, c, sched, m);
    });
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("ablation_replacement",
            "Ablation: L2 associativity and replacement policy");
    cli.addInt("n", 192, "matrix dimension");
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const auto base = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Ablation F",
                          "L2 organization sensitivity", base);
    std::printf("matmul, n = %zu\n\n", n);

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    TextTable table("L2 misses (thousands)",
                    {"L2 organization", "untiled", "threaded",
                     "reduction"});

    auto sweep = [&](const char *label, unsigned assoc,
                     cachesim::Replacement repl) {
        machine::MachineConfig mc = base;
        mc.caches.l2.associativity = assoc;
        mc.caches.l2.replacement = repl;
        const auto untiled = runOnce(mc, false, a, b);
        const auto threaded = runOnce(mc, true, a, b);
        table.addRow(
            {label, TextTable::thousands(untiled.l2.misses),
             TextTable::thousands(threaded.l2.misses),
             TextTable::num(static_cast<double>(untiled.l2.misses) /
                                static_cast<double>(std::max<
                                    std::uint64_t>(
                                    1, threaded.l2.misses)),
                            1) +
                 "x"});
        std::printf("  %s done\n", label);
    };

    sweep("direct-mapped LRU", 1, cachesim::Replacement::Lru);
    sweep("2-way LRU", 2, cachesim::Replacement::Lru);
    sweep("4-way LRU (R8000)", 4, cachesim::Replacement::Lru);
    sweep("8-way LRU", 8, cachesim::Replacement::Lru);
    sweep("fully assoc LRU", 0, cachesim::Replacement::Lru);
    table.addRule();
    sweep("4-way FIFO", 4, cachesim::Replacement::Fifo);
    sweep("4-way random", 4, cachesim::Replacement::Random);

    std::printf("\n%s\n", table.toText().c_str());
    std::printf("expected: the threaded version wins by a large "
                "factor under every organization; higher "
                "associativity trims untiled conflict misses but "
                "cannot touch its capacity misses\n");
    return 0;
}
