/**
 * @file
 * Host validation: measure the *real* machine with hardware
 * performance counters while running the untiled and threaded matmul
 * natively, sized so the matrices exceed the host's last-level cache.
 * This is the modern analogue of the paper's "run it on the R8000 and
 * see": locality scheduling should cut measured LLC misses on
 * whatever CPU this is running on, independent of the simulator.
 *
 * Degrades to an informative no-op (exit 0) when perf counters are
 * unavailable (containers, perf_event_paranoid), so bench sweeps stay
 * green everywhere.
 */

#include <cstdio>

#include "perfcount/perf_counters.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"
#include "workloads/matmul.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;
    using namespace lsched::perfcount;

    Cli cli("host_validation",
            "real-hardware counter validation of locality scheduling");
    cli.addInt("n", 1024, "matrix dimension");
    cli.addInt("llc-kb", 2048,
               "assumed host LLC size in KB (scheduling plane)");
    cli.parse(argc, argv);

    std::printf("== Host validation: hardware counters ==\n");
    if (!countersAvailable()) {
        PerfCounterGroup probe({HwEvent::Instructions});
        std::printf("perf counters unavailable on this host (%s); "
                    "skipping — rerun on a machine with "
                    "perf_event_paranoid <= 2\n",
                    probe.error().c_str());
        return 0;
    }

    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const std::uint64_t llc =
        static_cast<std::uint64_t>(cli.getInt("llc-kb")) * 1024;
    std::printf("matmul n = %zu (%.1f MB per matrix), assumed LLC "
                "%llu KB\n\n",
                n, static_cast<double>(n * n * 8) / (1024 * 1024),
                static_cast<unsigned long long>(llc / 1024));

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    const std::vector<HwEvent> events{HwEvent::Instructions,
                                      HwEvent::CacheReferences,
                                      HwEvent::CacheMisses};

    TextTable table("", {"version", "CPU s", "instructions",
                         "LLC refs", "LLC misses"});

    auto measure = [&](const char *name, auto &&kernel) {
        PerfCounterGroup group(events);
        NativeModel model;
        CpuTimer timer;
        group.start();
        kernel(model);
        const PerfSample sample = group.stop();
        const double secs = timer.seconds();
        table.addRow({name, TextTable::num(secs, 2),
                      sample.valid
                          ? TextTable::count(sample.values[0])
                          : "-",
                      sample.valid
                          ? TextTable::count(sample.values[1])
                          : "-",
                      sample.valid
                          ? TextTable::count(sample.values[2])
                          : "-"});
        std::printf("  %-9s done\n", name);
        return sample;
    };

    const PerfSample untiled =
        measure("untiled", [&](NativeModel &m) {
            Matrix c(n, n);
            matmulInterchanged(a, b, c, m);
        });
    const PerfSample threaded =
        measure("threaded", [&](NativeModel &m) {
            Matrix c(n, n);
            threads::SchedulerConfig cfg;
            cfg.dims = 2;
            cfg.cacheBytes = llc;
            cfg.blockBytes = llc / 2;
            threads::LocalityScheduler sched(cfg);
            matmulThreaded(a, b, c, sched, m);
        });

    std::printf("\n%s\n", table.toText().c_str());
    if (untiled.valid && threaded.valid && threaded.values[2] > 0) {
        std::printf("measured LLC-miss reduction: %.2fx (the paper's "
                    "L2 story, on this host's silicon)\n",
                    static_cast<double>(untiled.values[2]) /
                        static_cast<double>(threaded.values[2]));
    }
    return 0;
}
