/**
 * @file
 * Streaming-admission ablation: the same produce-then-consume workload
 * run as a classic fork-all barrier (fork every thread, then
 * runParallel) and as a streaming session (runStream: bins seal and
 * drain while producers still fork).
 *
 * Each producer writes a thread's payload slot immediately before
 * forking the thread that reads it back (in bursts of --burst forks
 * per bin, the way a real producer emits related work together).
 * Under the barrier, every slot is written in one full pass and read
 * back in a second full pass; with a total payload well past the
 * last-level cache, the read pass misses on everything, and the
 * scheduler's group slabs grow to hold all N descriptors before the
 * first thread runs. The stream bounds the backlog (--max-pending)
 * and seals a bin as soon as its burst lands (--seal), so a thread
 * runs shortly after its slot was written — payload and descriptor
 * are still cache-resident — and the sealed-chain recycling keeps the
 * group-pool working set at the bound instead of at N. The gap
 * between the two columns is the memory-residency argument for
 * fork-while-run, measured on real hardware rather than the cache
 * simulator.
 *
 * Both modes execute exactly the same thread bodies over the same
 * data; the bench checks the consumed sums agree before reporting.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "support/cli.hh"
#include "support/panic.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

/** Shared context: every thread derives its slot from its index. */
struct Context
{
    double *payload = nullptr;      // threads * work doubles
    double *out = nullptr;          // one sum per thread
    std::size_t work = 0;           // doubles per payload slot
};

void
consumeSlot(void *arg1, void *arg2)
{
    const Context &ctx = *static_cast<const Context *>(arg1);
    const auto index = reinterpret_cast<std::uintptr_t>(arg2);
    const double *slot = ctx.payload + index * ctx.work;
    // Walk the slot in full-period LCG order (a ≡ 1 mod 4, c odd,
    // power-of-two modulus): every element is visited exactly once,
    // but in an order no hardware prefetcher can predict, so the
    // traversal is latency-bound. That is exactly where residency
    // shows up — the stream's bounded backlog answers from L2, the
    // barrier's full-pass payload answers from wherever N slots
    // landed.
    double sum = 0.0;
    std::size_t idx = 0;
    const std::size_t mask = ctx.work - 1;
    for (std::size_t i = 0; i < ctx.work; ++i) {
        sum += slot[idx];
        idx = (idx * 1664525u + 1013904223u) & mask;
    }
    ctx.out[index] = sum;
}

/** Write thread @p i's payload slot, the way a real producer would. */
void
produceSlot(const Context &ctx, std::size_t i)
{
    double *slot = ctx.payload + i * ctx.work;
    for (std::size_t k = 0; k < ctx.work; ++k)
        slot[k] = static_cast<double>(i + k) * 0.5;
}

double
checksum(const Context &ctx, std::size_t threads)
{
    double total = 0.0;
    for (std::size_t i = 0; i < threads; ++i)
        total += ctx.out[i];
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_streaming",
            "streaming admission vs fork-then-run barrier: wall time "
            "for a produce-then-consume workload");
    cli.addInt("threads", 8192, "threads per run");
    cli.addInt("bins", 64, "address blocks the hints spread over");
    cli.addInt("burst", 8,
               "consecutive forks sharing one bin (producer locality)");
    cli.addInt("work", 8192,
               "doubles written/read per thread (power of two)");
    cli.addInt("workers", 4, "drain workers for both modes");
    cli.addInt("producers", 1, "forking threads in streaming mode");
    cli.addInt("seal", 8, "stream_seal_threshold (0 = off)");
    cli.addInt("max-pending", 32,
               "stream backlog bound (0 = unbounded)");
    cli.addInt("repeats", 3, "take the best of this many runs");
    cli.addString("json", "", "also write the table as JSON here");
    cli.parse(argc, argv);

    const auto threads = static_cast<std::size_t>(cli.getInt("threads"));
    const auto bins = static_cast<std::size_t>(cli.getInt("bins"));
    const auto burst = static_cast<std::size_t>(cli.getInt("burst"));
    if (burst == 0)
        LSCHED_FATAL("--burst must be at least 1");
    const auto work = static_cast<std::size_t>(cli.getInt("work"));
    if (work == 0 || (work & (work - 1)) != 0)
        LSCHED_FATAL("--work must be a power of two (LCG walk)");
    const auto workers = static_cast<unsigned>(cli.getInt("workers"));
    const auto producers =
        static_cast<unsigned>(cli.getInt("producers"));
    const int repeats = static_cast<int>(cli.getInt("repeats"));

    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 1 << 16;
    cfg.streamSealThreshold =
        static_cast<std::uint64_t>(cli.getInt("seal"));
    cfg.streamMaxPending =
        static_cast<std::uint64_t>(cli.getInt("max-pending"));

    std::printf("== Ablation: streaming admission vs barrier ==\n");
    std::printf("%zu threads x %zu doubles (%.1f MB payload), %zu "
                "bins in bursts of %zu, %u workers, %u producers, "
                "seal=%llu, max_pending=%llu, best of %d\n\n",
                threads, work,
                static_cast<double>(threads * work * sizeof(double)) /
                    (1024.0 * 1024.0),
                bins, burst, workers, producers,
                static_cast<unsigned long long>(cfg.streamSealThreshold),
                static_cast<unsigned long long>(cfg.streamMaxPending),
                repeats);

    std::vector<double> payload(threads * work, 0.0);
    std::vector<double> out(threads, 0.0);
    Context ctx{payload.data(), out.data(), work};

    const auto hintFor = [&](std::size_t i) {
        return static_cast<threads::Hint>((i / burst) % bins) *
               cfg.blockBytes * 2;
    };

    // Barrier: one full produce+fork pass, then one full drain pass.
    // (Batch fork() is caller-thread only; the barrier always forks
    // from main regardless of --producers.)
    const auto barrierRun = [&]() {
        threads::LocalityScheduler s(cfg);
        WallTimer timer;
        for (std::size_t i = 0; i < threads; ++i) {
            produceSlot(ctx, i);
            s.fork(consumeSlot, &ctx, reinterpret_cast<void *>(i),
                   hintFor(i));
        }
        s.runParallel(workers);
        return timer.seconds();
    };

    // Stream: the same produce+fork loop, split over --producers,
    // drained concurrently under the backlog bound.
    const auto streamRun = [&]() {
        threads::LocalityScheduler s(cfg);
        const std::size_t chunk = (threads + producers - 1) / producers;
        WallTimer timer;
        s.runStream(workers, producers, [&](unsigned p) {
            const std::size_t begin = p * chunk;
            const std::size_t end =
                begin + chunk < threads ? begin + chunk : threads;
            for (std::size_t i = begin; i < end; ++i) {
                produceSlot(ctx, i);
                s.fork(consumeSlot, &ctx, reinterpret_cast<void *>(i),
                       hintFor(i));
            }
        });
        return timer.seconds();
    };

    const auto bestOf = [&](const std::function<double()> &run,
                            double *sum) {
        double best = 0.0;
        for (int r = 0; r < repeats; ++r) {
            std::fill(out.begin(), out.end(), 0.0);
            const double t = run();
            if (r == 0 || t < best)
                best = t;
        }
        *sum = checksum(ctx, threads);
        return best;
    };

    double barrierSum = 0.0, streamSum = 0.0;
    const double barrier = bestOf(barrierRun, &barrierSum);
    std::printf("  barrier done\n");
    const double stream = bestOf(streamRun, &streamSum);
    std::printf("  streaming done\n\n");

    TextTable table("Ablation: streaming admission (wall seconds)",
                    {"mode", "wall s", "threads/s", "speedup"});
    table.addRow({"barrier", TextTable::num(barrier, 6),
                  TextTable::num(threads / barrier, 0), "1.00x"});
    table.addRow({"streaming", TextTable::num(stream, 6),
                  TextTable::num(threads / stream, 0),
                  TextTable::num(barrier / stream, 2) + "x"});
    std::printf("%s\n", table.toText().c_str());

    std::printf("shape checks:\n");
    std::printf("  both modes computed the same sums: %s\n",
                barrierSum == streamSum ? "yes" : "NO");
    std::printf("  streaming beats the barrier: %s (%.2fx)\n",
                stream < barrier ? "yes" : "NO", barrier / stream);

    const std::string jsonPath = cli.getString("json");
    if (!jsonPath.empty()) {
        harness::JsonReport report;
        report.addTable(table);
        if (!report.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("JSON written to %s\n", jsonPath.c_str());
    }
    return barrierSum == streamSum ? 0 : 1;
}
