/**
 * @file
 * Table 2 reproduction: matrix-multiply performance (n = 1024 in the
 * paper; proportionally scaled by default — see DESIGN.md).
 *
 * For each of the five variants we report (a) estimated seconds on the
 * R8000- and R10000-class machines from the crude timing model over a
 * full cache simulation, and (b) measured host CPU seconds of the
 * uninstrumented kernel. The paper's shape: tiled < threaded <
 * transposed < interchanged, threaded >= 2x faster than untiled.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "support/timer.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

threads::LocalityScheduler
makeScheduler(std::uint64_t l2_bytes)
{
    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.cacheBytes = l2_bytes;
    cfg.blockBytes = l2_bytes / 2; // paper Section 4.2
    return threads::LocalityScheduler(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("table2_matmul", "Table 2: matrix multiply performance");
    cli.addInt("n", 256, "matrix dimension");
    cli.addInt("workers", 1,
               "OS threads for the host Threaded pass (runParallel)");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const std::size_t n = cli.getFlag("full")
                              ? 1024
                              : static_cast<std::size_t>(cli.getInt("n"));
    const auto r8k = lsched::bench::machineFromCli(cli);
    auto r10k = machine::indigo2ImpactR10000();
    r10k = machine::scaled(
        r10k, cli.getFlag("full")
                  ? 1u
                  : static_cast<unsigned>(cli.getInt("scale")));

    lsched::bench::banner("Table 2", "matrix multiply performance", r8k);
    std::printf("n = %zu (paper: 1024)\n\n", n);

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    struct Variant
    {
        const char *name;
        std::function<void(const machine::MachineConfig &,
                           SimModel *, NativeModel *)>
            run;
    };

    const unsigned workers =
        static_cast<unsigned>(cli.getInt("workers"));

    auto run_variant = [&](const char *which,
                           const machine::MachineConfig &mc,
                           SimModel *sim, NativeModel *native) {
        Matrix c(n, n);
        const std::size_t l1 = mc.caches.l1d.sizeBytes;
        const std::size_t l2 = mc.l2Size();
        // SimModel mutates shared simulator state, so the simulated
        // pass always runs single-worker; --workers applies to the
        // host-timing pass only.
        const unsigned w = sim ? 1 : workers;
        const std::string v(which);
        auto dispatch = [&](auto &model) {
            if (v == "Interchanged") {
                matmulInterchanged(a, b, c, model);
            } else if (v == "Transposed") {
                matmulTransposed(a, b, c, model);
            } else if (v == "Tiled interchanged") {
                matmulTiledInterchanged(a, b, c, model, l1, l2);
            } else if (v == "Tiled transposed") {
                matmulTiledTransposed(a, b, c, model, l1, l2);
            } else {
                auto sched = makeScheduler(l2);
                matmulThreaded(a, b, c, sched, model, w);
            }
        };
        if (sim)
            dispatch(*sim);
        else
            dispatch(*native);
    };

    const std::vector<const char *> variants{
        "Interchanged", "Transposed", "Tiled interchanged",
        "Tiled transposed", "Threaded"};

    std::vector<harness::PerfRow> rows;
    for (const char *v : variants) {
        harness::PerfRow row;
        row.name = v;
        for (const auto &mc : {r8k, r10k}) {
            const auto outcome =
                harness::simulateOn(mc, [&](SimModel &m) {
                    run_variant(v, mc, &m, nullptr);
                });
            row.estimatedSeconds.push_back(
                outcome.estimatedSeconds(mc));
        }
        CpuTimer timer;
        NativeModel native;
        run_variant(v, r8k, nullptr, &native);
        row.hostSeconds = timer.seconds();
        rows.push_back(std::move(row));
        std::printf("  %-18s done\n", v);
    }

    {
        const auto table = harness::perfTable("Table 2 (estimated seconds, "
                                   "crude timing model)",
                                   {"R8000-class", "R10000-class"}, rows);
        std::printf("\n");
        lsched::bench::emitTable(cli, table);
        std::printf("\n");
    }

    std::printf("paper (R8000/R10000 measured): interchanged "
                "102.98/36.63, transposed 95.06/32.96, tiled-i "
                "16.61/12.24, tiled-t 19.73/18.71, threaded "
                "20.32/16.85\n");
    std::printf("shape: tiled < threaded < transposed < interchanged; "
                "threaded/untiled speedup:\n");
    std::printf("  measured here: %.2fx (R8000-class est.)\n",
                rows[0].estimatedSeconds[0] /
                    rows[4].estimatedSeconds[0]);
    return 0;
}
