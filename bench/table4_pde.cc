/**
 * @file
 * Table 4 reproduction: PDE (red-black Gauss-Seidel + residual)
 * performance for the regular, cache-conscious, and threaded versions
 * (paper: problem size 2049, 5 iterations).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "support/timer.hh"
#include "workloads/pde.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

template <class M>
void
runVariant(const std::string &v, PdeGrid &g, unsigned iters,
           std::uint64_t l2, M &model)
{
    if (v == "Regular") {
        pdeRegular(g, iters, model);
    } else if (v == "Cache-conscious") {
        pdeCacheConscious(g, iters, model);
    } else {
        threads::SchedulerConfig cfg;
        cfg.cacheBytes = l2;
        threads::LocalityScheduler sched(cfg);
        pdeThreaded(g, iters, sched, model);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("table4_pde", "Table 4: PDE performance");
    cli.addInt("n", 513, "grid dimension (interior points)");
    cli.addInt("iters", 5, "relaxation iterations");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const std::size_t n = cli.getFlag("full")
                              ? 2049
                              : static_cast<std::size_t>(cli.getInt("n"));
    const auto iters = static_cast<unsigned>(cli.getInt("iters"));
    const auto r8k = lsched::bench::machineFromCli(cli);
    auto r10k = machine::scaled(
        machine::indigo2ImpactR10000(),
        cli.getFlag("full") ? 1u
                            : static_cast<unsigned>(cli.getInt("scale")));

    lsched::bench::banner("Table 4", "PDE performance", r8k);
    std::printf("n = %zu, iters = %u (paper: 2049, 5)\n\n", n, iters);

    const std::vector<std::string> variants{"Regular", "Cache-conscious",
                                            "Threaded"};
    std::vector<harness::PerfRow> rows;
    for (const auto &v : variants) {
        harness::PerfRow row;
        row.name = v;
        for (const auto &mc : {r8k, r10k}) {
            const auto outcome =
                harness::simulateOn(mc, [&](SimModel &m) {
                    PdeGrid g(n);
                    g.init(7);
                    runVariant(v, g, iters, mc.l2Size(), m);
                });
            row.estimatedSeconds.push_back(
                outcome.estimatedSeconds(mc));
        }
        {
            PdeGrid g(n);
            g.init(7);
            NativeModel native;
            CpuTimer timer;
            runVariant(v, g, iters, r8k.l2Size(), native);
            row.hostSeconds = timer.seconds();
        }
        rows.push_back(std::move(row));
        std::printf("  %-16s done\n", v.c_str());
    }

    {
        const auto table = harness::perfTable(
                    "Table 4 (estimated seconds, crude timing model)",
                    {"R8000-class", "R10000-class"}, rows);
        std::printf("\n");
        lsched::bench::emitTable(cli, table);
        std::printf("\n");
    }
    std::printf("paper (R8000/R10000): regular 9.48/7.80, "
                "cache-conscious 5.21/5.21, threaded 7.24/4.98\n");
    std::printf("shape: cache-conscious and threaded beat regular; "
                "threaded lands between them on R8000-class\n");
    return 0;
}
