/**
 * @file
 * Ablation G: physically-indexed L2 under different page mappings.
 *
 * Paper Section 2.2: "Second-level caches are often physically
 * indexed, while the addresses associated with the threads are
 * virtual ... the virtual-to-physical memory mapping maintained by
 * the virtual memory system can significantly affect second-level
 * cache behavior." This bench runs the threaded and untiled matmul
 * against the same L2 indexed virtually (identity), first-touch,
 * page-coloured (Kessler & Hill), and randomly mapped — showing that
 * the locality-scheduling win survives every mapping (it targets
 * capacity misses, which translation cannot create or destroy) while
 * conflict misses move around.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

harness::SimOutcome
runOnce(const machine::MachineConfig &mc,
        cachesim::PageMapPolicy policy, bool threaded,
        const Matrix &a, const Matrix &b)
{
    machine::MachineConfig machine = mc;
    machine.caches.l2PageMap = policy;
    return harness::simulateOn(machine, [&](SimModel &m) {
        const std::size_t n = a.rows();
        Matrix c(n, n);
        if (!threaded) {
            matmulInterchanged(a, b, c, m);
            return;
        }
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.cacheBytes = machine.l2Size();
        cfg.blockBytes = machine.l2Size() / 2;
        threads::LocalityScheduler sched(cfg);
        matmulThreaded(a, b, c, sched, m);
    });
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("ablation_physical",
            "Ablation: physically-indexed L2 vs page mapping");
    cli.addInt("n", 192, "matrix dimension");
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const auto mc = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Ablation G",
                          "physical indexing and page mapping", mc);
    std::printf("matmul, n = %zu\n\n", n);

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    TextTable table("L2 misses (thousands)",
                    {"page mapping", "untiled", "unt. conflict",
                     "threaded", "thr. conflict", "reduction"});

    struct Row
    {
        const char *name;
        cachesim::PageMapPolicy policy;
    };
    for (const Row row :
         {Row{"identity (virtual)", cachesim::PageMapPolicy::Identity},
          Row{"first-touch", cachesim::PageMapPolicy::FirstTouch},
          Row{"page-coloured", cachesim::PageMapPolicy::Colored},
          Row{"random frames", cachesim::PageMapPolicy::Random}}) {
        const auto untiled = runOnce(mc, row.policy, false, a, b);
        const auto threaded = runOnce(mc, row.policy, true, a, b);
        table.addRow(
            {row.name, TextTable::thousands(untiled.l2.misses),
             TextTable::thousands(untiled.l2.conflictMisses),
             TextTable::thousands(threaded.l2.misses),
             TextTable::thousands(threaded.l2.conflictMisses),
             TextTable::num(
                 static_cast<double>(untiled.l2.misses) /
                     static_cast<double>(std::max<std::uint64_t>(
                         1, threaded.l2.misses)),
                 1) +
                 "x"});
        std::printf("  %s done\n", row.name);
    }

    std::printf("\n%s\n", table.toText().c_str());
    std::printf("expected: the threaded reduction holds under every "
                "mapping; page-coloured matches identity exactly; "
                "random mapping shifts conflict misses without "
                "touching the capacity story — the Section 2.2 "
                "effect, bounded\n");
    return 0;
}
