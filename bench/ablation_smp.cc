/**
 * @file
 * Ablation C: the SMP extension (paper Section 7 future work), now
 * benchmarking the persistent work-stealing pool itself.
 *
 * Workload: a deliberately skewed synthetic tour — bin b carries
 * 1 + skew*(b % 4) threads, each doing a fixed FMA loop over
 * bin-local data — so the occupancy-weighted partition and tail
 * stealing both matter. For every worker count the bench reports,
 * side by side:
 *
 *   cold s/tour  — SchedulerConfig::persistentPool = false: the
 *                  historic behavior, spawn + join fresh OS threads
 *                  every tour;
 *   warm setup   — the first tour on a persistent pool (includes
 *                  spawning the workers once);
 *   warm s/tour  — subsequent tours on the parked pool;
 *   speedup      — cold / warm per-tour time;
 *   steals       — bins claimed across segments (warm run).
 *
 * Pool setup is deliberately separated from tour time: setup is paid
 * once per scheduler, tours are paid per run() — conflating them is
 * exactly the mistake the persistent pool fixes.
 */

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness/report.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

/** Bin-local FMA workload: thread i of a bin chews on its bin's lane. */
struct Workload
{
    std::vector<double> lanes; // one cache-line-ish lane per bin
    std::uint64_t iters = 0;

    static void
    chew(void *self, void *tag)
    {
        auto *w = static_cast<Workload *>(self);
        const auto bin = reinterpret_cast<std::uintptr_t>(tag);
        double x = w->lanes[bin * 8];
        for (std::uint64_t i = 0; i < w->iters; ++i)
            x = x * 1.0000001 + 0.03125;
        w->lanes[bin * 8] = x;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_smp",
            "Ablation: persistent pool vs per-tour thread spawn");
    cli.addInt("bins", 32, "bins in the tour");
    cli.addInt("skew", 7, "bin b gets 1 + skew*(b%4) threads");
    cli.addInt("work", 50, "FMA iterations per thread");
    cli.addInt("tours", 50, "measured tours per configuration");
    cli.addInt("max-workers", 0,
               "max workers (0 = max(4, hardware))");
    cli.addString("json", "", "also write the table as JSON here");
    cli.parse(argc, argv);

    const auto bins = static_cast<std::size_t>(cli.getInt("bins"));
    const auto skew = static_cast<std::uint64_t>(cli.getInt("skew"));
    const auto work = static_cast<std::uint64_t>(cli.getInt("work"));
    const int tours = static_cast<int>(cli.getInt("tours"));
    unsigned max_workers =
        static_cast<unsigned>(cli.getInt("max-workers"));
    if (max_workers == 0)
        max_workers =
            std::max(4u, std::thread::hardware_concurrency());

    std::printf("== Ablation C: SMP worker pool ==\n");
    std::printf("skewed tour: %zu bins, 1+%llu*(b%%4) threads each, "
                "%llu FMAs per thread, %d tours\n\n",
                bins, static_cast<unsigned long long>(skew),
                static_cast<unsigned long long>(work), tours);

    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.cacheBytes = 2 * 1024 * 1024;
    cfg.blockBytes = 1 << 16;

    Workload wl;
    wl.lanes.assign(bins * 8, 1.0);
    wl.iters = work;

    const auto forkAll = [&](threads::LocalityScheduler &s) {
        for (std::size_t b = 0; b < bins; ++b) {
            const std::uint64_t count = 1 + skew * (b % 4);
            for (std::uint64_t i = 0; i < count; ++i)
                s.fork(&Workload::chew, &wl,
                       reinterpret_cast<void *>(b),
                       static_cast<threads::Hint>(b) *
                           cfg.blockBytes * 2,
                       0);
        }
    };

    TextTable table("", {"workers", "cold s/tour", "warm setup s",
                         "warm s/tour", "speedup", "steals"});

    for (unsigned w = 1; w <= max_workers; w *= 2) {
        // Cold: a throwaway pool per tour (spawn + join every run).
        cfg.persistentPool = false;
        threads::LocalityScheduler cold(cfg);
        forkAll(cold);
        WallTimer coldTimer;
        for (int t = 0; t < tours; ++t)
            cold.runParallel(w, /*keep=*/true);
        const double coldPerTour = coldTimer.seconds() / tours;

        // Warm: one persistent pool; its first tour pays the spawn.
        cfg.persistentPool = true;
        threads::LocalityScheduler warm(cfg);
        forkAll(warm);
        WallTimer setupTimer;
        warm.runParallel(w, /*keep=*/true);
        const double setup = setupTimer.seconds();
        WallTimer warmTimer;
        for (int t = 0; t < tours; ++t)
            warm.runParallel(w, /*keep=*/true);
        const double warmPerTour = warmTimer.seconds() / tours;

        table.addRow(
            {TextTable::count(w), TextTable::num(coldPerTour, 6),
             TextTable::num(setup, 6), TextTable::num(warmPerTour, 6),
             TextTable::num(coldPerTour / warmPerTour, 2) + "x",
             TextTable::count(warm.workerPoolStats().steals)});
        std::printf("  %u workers done\n", w);
    }

    std::printf("\n%s\n", table.toText().c_str());
    std::printf("expected: warm s/tour beats cold s/tour once workers "
                "> 1 — repeat tours on the parked pool pay no thread "
                "creation; setup is a one-time cost\n");

    const std::string jsonPath = cli.getString("json");
    if (!jsonPath.empty()) {
        harness::JsonReport report;
        report.addTable(table);
        report.includeMetrics();
        if (!report.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("JSON written to %s\n", jsonPath.c_str());
    }
    return 0;
}
