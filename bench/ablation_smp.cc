/**
 * @file
 * Ablation C: the SMP extension (paper Section 7 future work). Runs
 * threaded matmul natively with the bin tour distributed over 1..N
 * workers and reports host wall-clock speedup. Bins remain the unit
 * of distribution so per-bin locality carries to each CPU.
 */

#include <cstdio>
#include <thread>

#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"
#include "workloads/matmul.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("ablation_smp", "Ablation: SMP extension speedup");
    cli.addInt("n", 512, "matrix dimension");
    cli.addInt("max-workers", 0, "max workers (0 = hardware)");
    cli.parse(argc, argv);

    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    unsigned max_workers =
        static_cast<unsigned>(cli.getInt("max-workers"));
    if (max_workers == 0)
        max_workers = std::max(1u, std::thread::hardware_concurrency());

    std::printf("== Ablation C: SMP extension ==\n");
    std::printf("threaded matmul, n = %zu, up to %u workers\n\n", n,
                max_workers);

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);
    Matrix at(n, n);
    NativeModel model;
    transpose(a, at, model);

    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.cacheBytes = 2 * 1024 * 1024;
    cfg.blockBytes = cfg.cacheBytes / 2;
    threads::LocalityScheduler sched(cfg);

    TextTable table("", {"workers", "wall seconds", "speedup"});
    double base = 0;
    for (unsigned w = 1; w <= max_workers; w *= 2) {
        Matrix c(n, n);
        DotProductCtx<NativeModel> ctx{&at, &b, &c, &model};
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                sched.fork(&dotProductThread<NativeModel>, &ctx,
                           reinterpret_cast<void *>((i << 32) | j),
                           threads::hintOf(at.col(i)),
                           threads::hintOf(b.col(j)));
        WallTimer timer;
        sched.runParallel(w, false);
        const double t = timer.seconds();
        if (w == 1)
            base = t;
        table.addRow({TextTable::count(w), TextTable::num(t, 3),
                      TextTable::num(base / t, 2) + "x"});
        std::printf("  %u workers done\n", w);
    }

    std::printf("\n%s\n", table.toText().c_str());
    std::printf("expected: near-linear speedup for small worker "
                "counts — the paper's claim that the idea 'can be "
                "extended in a straightforward manner' to SMPs\n");
    return 0;
}
