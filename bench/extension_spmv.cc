/**
 * @file
 * Extension experiment: locality scheduling for indirect access.
 *
 * The paper's opening argument for runtime scheduling is that tiling
 * is infeasible when "data might be allocated dynamically or accessed
 * indirectly" (Section 1). This bench quantifies that case with a
 * banded-random sparse matrix-vector multiply whose rows are stored
 * in shuffled order: the column pattern — and hence the x-vector
 * reuse structure — exists only at run time, yet the program can hand
 * it to the scheduler as one address hint per row.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "support/timer.hh"
#include "workloads/spmv.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("extension_spmv",
            "extension: SpMV with runtime locality hints");
    cli.addInt("rows", 32768, "matrix rows");
    cli.addInt("cols", 131072, "matrix columns (x size)");
    cli.addInt("nnz", 24, "nonzeros per row");
    cli.addInt("band", 512, "band half-width");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    SpmvConfig cfg;
    cfg.rows = static_cast<std::size_t>(cli.getInt("rows"));
    cfg.cols = static_cast<std::size_t>(cli.getInt("cols"));
    cfg.rowNnz = static_cast<std::size_t>(cli.getInt("nnz"));
    cfg.bandHalfWidth = static_cast<std::size_t>(cli.getInt("band"));
    const auto machine = lsched::bench::machineFromCli(cli);

    lsched::bench::banner("Extension", "sparse matrix-vector multiply",
                          machine);
    std::printf("%zu x %zu, %zu nnz/row, band +-%zu, x = %zu KB\n\n",
                cfg.rows, cfg.cols, cfg.rowNnz, cfg.bandHalfWidth,
                cfg.cols * sizeof(double) / 1024);

    const CsrMatrix m = makeBandedRandom(cfg);
    Prng prng(5);
    std::vector<double> x(cfg.cols);
    for (double &v : x)
        v = prng.nextDouble(-1.0, 1.0);

    const auto natural = harness::simulateOn(machine, [&](SimModel &s) {
        std::vector<double> y(m.rows, 0.0);
        spmvNatural(m, x, y, s);
    });
    std::printf("  natural order done\n");
    const auto threaded =
        harness::simulateOn(machine, [&](SimModel &s) {
            std::vector<double> y(m.rows, 0.0);
            threads::SchedulerConfig scfg;
            scfg.dims = 1;
            scfg.cacheBytes = machine.l2Size();
            scfg.blockBytes = machine.l2Size() / 3;
            threads::LocalityScheduler sched(scfg);
            spmvThreaded(m, x, y, sched, s);
        });
    std::printf("  locality-scheduled done\n\n");

    const auto table = harness::cacheTable(
        "SpMV references and cache misses (thousands)",
        {{"Natural order", natural},
         {"Locality-scheduled", threaded}});
    lsched::bench::emitTable(cli, table);

    std::printf("\nest. seconds (crude model, R8000-class): natural "
                "%.3f, threaded %.3f (%.2fx)\n",
                natural.estimatedSeconds(machine),
                threaded.estimatedSeconds(machine),
                natural.estimatedSeconds(machine) /
                    threaded.estimatedSeconds(machine));
    std::printf("expected: large L2-miss reduction from x-vector "
                "reuse that no compile-time transformation could "
                "recover — the paper's 'indirect access' motivation, "
                "quantified\n");
    return 0;
}
