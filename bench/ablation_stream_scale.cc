/**
 * @file
 * Admission-scaling ablation for the lock-free streaming intake: the
 * same total fork count pushed through a streaming session by 1, 2, 4,
 * ... concurrent producers, with deliberately tiny thread bodies so
 * wall time is dominated by the admission path itself (bin lookup /
 * CAS insert, group claim, ticket gate) rather than by user work.
 *
 * Under the old lock-striped intake every producer serialized on its
 * shard mutex, so producer scaling flattened immediately; the
 * lock-free path's exit proof is the producer sweep staying near
 * linear (efficiency >= 0.7x at 4 producers) — on hosts with enough
 * cores to run the producers concurrently at all. On fewer cores the
 * sweep documents the host ceiling instead: producers time-slice one
 * another and efficiency degrades as 1/p by construction, which the
 * report calls out rather than hiding.
 *
 * The recorded single-producer baseline from the lock-striped
 * implementation (BENCH_streaming.json / EXPERIMENTS.md: streaming
 * 1.15-1.24x faster than the barrier, midpoint 1.21x) is carried in
 * the report so the two implementations stay comparable across the
 * redesign.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hh"
#include "support/cli.hh"
#include "support/panic.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

/** Recorded lock-striped baseline (see the file comment). */
constexpr double kLockStripedSingleProducerSpeedup = 1.21;

void
bumpCounter(void *counter, void *)
{
    static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
        1, std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_stream_scale",
            "streaming admission throughput vs concurrent producer "
            "count (lock-free intake scaling)");
    cli.addInt("threads", 1 << 16, "total threads per sweep point");
    cli.addInt("bins", 512, "distinct bins the hints spread over");
    cli.addInt("max-producers", 4,
               "sweep producers 1,2,4,... up to this");
    cli.addInt("workers", 1, "drain workers");
    cli.addInt("seal", 16, "stream_seal_threshold");
    cli.addInt("max-pending", 0, "stream backlog bound (0 = off)");
    cli.addInt("repeats", 3, "take the best of this many runs");
    cli.addString("json", "", "also write the table as JSON here");
    cli.parse(argc, argv);

    const auto threads =
        static_cast<std::uint64_t>(cli.getInt("threads"));
    const auto bins = static_cast<std::uint64_t>(cli.getInt("bins"));
    const auto maxProducers =
        static_cast<unsigned>(cli.getInt("max-producers"));
    if (maxProducers == 0)
        LSCHED_FATAL("--max-producers must be at least 1");
    const auto workers = static_cast<unsigned>(cli.getInt("workers"));
    const int repeats = static_cast<int>(cli.getInt("repeats"));

    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 1 << 16;
    cfg.streamSealThreshold =
        static_cast<std::uint64_t>(cli.getInt("seal"));
    cfg.streamMaxPending =
        static_cast<std::uint64_t>(cli.getInt("max-pending"));

    const unsigned hostCpus = std::thread::hardware_concurrency();
    std::printf("== Ablation: streaming admission scaling ==\n");
    std::printf("%llu threads over %llu bins per point, %u drain "
                "worker(s), seal=%llu, max_pending=%llu, best of %d; "
                "host has %u CPU(s)\n\n",
                static_cast<unsigned long long>(threads),
                static_cast<unsigned long long>(bins), workers,
                static_cast<unsigned long long>(
                    cfg.streamSealThreshold),
                static_cast<unsigned long long>(cfg.streamMaxPending),
                repeats, hostCpus);

    // One sweep point: --threads total forks split over p producers,
    // each hinted into one of --bins blocks, bodies a single relaxed
    // increment. Returns best-of wall seconds; conservation checked
    // on every run.
    std::atomic<std::uint64_t> ran{0};
    bool conserved = true;
    const auto sweepPoint = [&](unsigned producers) {
        double best = 0.0;
        for (int r = 0; r < repeats; ++r) {
            threads::LocalityScheduler s(cfg);
            ran.store(0, std::memory_order_relaxed);
            const std::uint64_t chunk =
                (threads + producers - 1) / producers;
            WallTimer timer;
            const std::uint64_t executed = s.runStream(
                workers, producers, [&](unsigned p) {
                    const std::uint64_t begin = p * chunk;
                    const std::uint64_t end =
                        begin + chunk < threads ? begin + chunk
                                                : threads;
                    for (std::uint64_t i = begin; i < end; ++i) {
                        s.fork(bumpCounter, &ran, nullptr,
                               static_cast<threads::Hint>(
                                   (i % bins) * cfg.blockBytes * 2),
                               0);
                    }
                });
            const double t = timer.seconds();
            if (executed != threads ||
                ran.load(std::memory_order_relaxed) != threads)
                conserved = false;
            if (r == 0 || t < best)
                best = t;
        }
        return best;
    };

    std::vector<unsigned> sweep;
    for (unsigned p = 1; p <= maxProducers; p *= 2)
        sweep.push_back(p);

    TextTable table("Ablation: admission scaling (wall seconds)",
                    {"producers", "wall s", "forks/s", "speedup",
                     "efficiency"});
    harness::JsonReport report;
    double t1 = 0.0;
    double effAtFour = -1.0;
    for (const unsigned p : sweep) {
        const double t = sweepPoint(p);
        if (p == 1)
            t1 = t;
        const double speedup = t1 / t;
        const double efficiency = speedup / p;
        if (p == 4)
            effAtFour = efficiency;
        table.addRow({std::to_string(p), TextTable::num(t, 6),
                      TextTable::num(threads / t, 0),
                      TextTable::num(speedup, 2) + "x",
                      TextTable::num(efficiency, 2)});
        report.addValue("scale.p" + std::to_string(p) + ".seconds", t);
        report.addValue(
            "scale.p" + std::to_string(p) + ".efficiency", efficiency);
        std::printf("  %u producer(s) done\n", p);
    }
    std::printf("\n%s\n", table.toText().c_str());

    // The producers need their own cores (plus one for the drain) for
    // linear admission scaling to be physically possible.
    const bool hostCanScale = hostCpus >= maxProducers + workers;
    std::printf("shape checks:\n");
    std::printf("  every run conserved its threads: %s\n",
                conserved ? "yes" : "NO");
    if (effAtFour >= 0 && hostCanScale) {
        std::printf("  efficiency at 4 producers: %.2f (target "
                    ">= 0.70)\n",
                    effAtFour);
    } else if (effAtFour >= 0) {
        std::printf("  efficiency at 4 producers: %.2f — host "
                    "core-count ceiling: %u CPU(s) for %u producers "
                    "+ %u worker(s); producers time-slice, so "
                    "efficiency degrades as 1/p regardless of the "
                    "admission path\n",
                    effAtFour, hostCpus, maxProducers, workers);
    }
    std::printf("  recorded lock-striped baseline (BENCH_streaming):"
                " single-producer streaming vs barrier %.2fx\n",
                kLockStripedSingleProducerSpeedup);

    const std::string jsonPath = cli.getString("json");
    if (!jsonPath.empty()) {
        report.addTable(table);
        report.addValue("host_cpus", hostCpus);
        report.addValue("baseline.lock_striped.single_producer_speedup",
                        kLockStripedSingleProducerSpeedup);
        if (!report.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("JSON written to %s\n", jsonPath.c_str());
    }
    return conserved ? 0 : 1;
}
