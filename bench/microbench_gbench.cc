/**
 * @file
 * google-benchmark micro-benchmarks of the primitives behind Table 1:
 * fork cost, run cost, hint hashing, cache-simulator access, and the
 * fully-associative shadow — the per-operation costs the paper's
 * overhead analysis rests on.
 */

#include <benchmark/benchmark.h>

#include "cachesim/cache.hh"
#include "cachesim/fully_assoc.hh"
#include "cachesim/hierarchy.hh"
#include "support/prng.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched;

void
nullThread(void *, void *)
{
}

void
BM_ForkRunNullThreads(benchmark::State &state)
{
    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.blockBytes = 1 << 20;
    threads::LocalityScheduler sched(cfg);
    const auto batch = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < batch; ++i)
            sched.fork(&nullThread, nullptr, nullptr,
                       (i % 16) << 20, ((i / 16) % 16) << 20);
        sched.run(false);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_ForkRunNullThreads)->Arg(1 << 10)->Arg(1 << 16);

void
BM_ForkOnly(benchmark::State &state)
{
    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.blockBytes = 1 << 20;
    threads::LocalityScheduler sched(cfg);
    std::uint64_t i = 0;
    for (auto _ : state) {
        sched.fork(&nullThread, nullptr, nullptr, (i % 16) << 20,
                   ((i / 16) % 16) << 20);
        if (++i % (1 << 16) == 0) {
            state.PauseTiming();
            sched.run(false);
            state.ResumeTiming();
        }
    }
    sched.clear();
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ForkOnly);

void
BM_KeepReRun(benchmark::State &state)
{
    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.blockBytes = 1 << 20;
    threads::LocalityScheduler sched(cfg);
    const std::uint64_t batch = 1 << 14;
    for (std::uint64_t i = 0; i < batch; ++i)
        sched.fork(&nullThread, nullptr, nullptr, (i % 16) << 20, 0);
    for (auto _ : state)
        sched.run(true);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
    sched.clear();
}
BENCHMARK(BM_KeepReRun);

void
BM_CacheAccess(benchmark::State &state)
{
    cachesim::Cache cache(
        {"L2", 2 * 1024 * 1024, 128, 4},
        state.range(0) != 0 /* classification on/off */);
    Prng prng(1);
    std::vector<std::uint64_t> lines(1 << 16);
    for (auto &l : lines)
        l = prng.nextBelow(1 << 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.accessLine(lines[i++ & 0xffff], false));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1);

void
BM_HierarchyLoad(benchmark::State &state)
{
    cachesim::HierarchyConfig cfg;
    cfg.l1i = {"L1I", 16 * 1024, 32, 1};
    cfg.l1d = {"L1D", 16 * 1024, 32, 1};
    cfg.l2 = {"L2", 2 * 1024 * 1024, 128, 4};
    cachesim::Hierarchy h(cfg);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        h.load(addr, 8);
        addr += 8;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchyLoad);

void
BM_FullyAssocAccess(benchmark::State &state)
{
    cachesim::FullyAssocLru lru(16384);
    Prng prng(2);
    std::vector<std::uint64_t> lines(1 << 16);
    for (auto &l : lines)
        l = prng.nextBelow(32768);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(lru.access(lines[i++ & 0xffff]));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullyAssocAccess);

} // namespace

BENCHMARK_MAIN();
