/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: machine
 * selection (paper scale vs proportionally scaled), and the standard
 * preamble every bench prints so outputs are self-describing.
 */

#ifndef LSCHED_BENCH_BENCH_UTIL_HH
#define LSCHED_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

#include "machine/machine_config.hh"
#include "obs/trace.hh"
#include "perfcount/perf_counters.hh"
#include "support/cli.hh"
#include "support/failpoint.hh"
#include "support/panic.hh"
#include "support/table.hh"

namespace lsched::bench
{

/** Default cache-shrink factor for laptop-speed runs. */
constexpr unsigned kDefaultScale = 16;

/** Resolve the simulated machine from --machine / --scale / --full. */
inline machine::MachineConfig
machineFromCli(const Cli &cli)
{
    const std::string name = cli.getString("machine");
    machine::MachineConfig m;
    if (name == "r8000") {
        m = machine::powerIndigo2R8000();
    } else if (name == "r10000") {
        m = machine::indigo2ImpactR10000();
    } else {
        LSCHED_FATAL("unknown --machine '", name,
                     "' (want r8000|r10000)");
    }
    const unsigned scale =
        cli.getFlag("full") ? 1u
                            : static_cast<unsigned>(cli.getInt("scale"));
    return machine::scaled(m, scale);
}

/** Register the options machineFromCli() consumes. */
inline void
addMachineOptions(Cli &cli, unsigned default_scale = kDefaultScale)
{
    cli.addString("machine", "r8000", "simulated machine model");
    cli.addInt("scale", default_scale,
               "cache shrink factor (power of two)");
    cli.addFlag("full", "paper-scale run (scale 1, paper problem size)");
}

/** Print the standard bench banner. */
inline void
banner(const char *table, const char *description,
       const machine::MachineConfig &m)
{
    std::printf("== %s: %s ==\n", table, description);
    std::printf("machine: %s (L2 %llu KB)\n\n", m.name.c_str(),
                static_cast<unsigned long long>(m.l2Size() / 1024));
}

/** Register the machine-readable output options emitTable() honours. */
inline void
addOutputOptions(Cli &cli)
{
    cli.addString("csv", "",
                  "also append the result table as CSV to this file");
    cli.addString("json", "",
                  "also append the result table as JSON to this file");
}

/**
 * Host metadata stamped into every BENCH_*.json so a perf trajectory
 * is interpretable across machines and build configurations: CPU
 * count, the LSCHED build flags that change what a bench measures,
 * and whether hardware profiling counters are actually usable here.
 */
inline std::string
hostMetadataJson()
{
    std::ostringstream os;
    os << "{\"cpus\":" << std::thread::hardware_concurrency()
       << ",\"trace_compiled\":" << (obs::kTraceCompiled ? 1 : 0)
       << ",\"failpoints_compiled\":"
       << (failpoint::kCompiled ? 1 : 0) << ",\"assertions\":"
#ifdef NDEBUG
       << 0
#else
       << 1
#endif
       << ",\"pmu_available\":"
       << (perfcount::countersAvailable() ? 1 : 0) << "}";
    return os.str();
}

/**
 * Print @p table and, when --csv / --json were given, append the
 * matching rendering to those files (creating them if needed). JSON
 * output is one table object per line (JSON lines), each stamped with
 * a "host" object (hostMetadataJson) ahead of the table fields.
 */
inline void
emitTable(const Cli &cli, const TextTable &table)
{
    std::fputs(table.toText().c_str(), stdout);
    auto append = [&](const char *opt, const std::string &body) {
        const std::string &path = cli.getString(opt);
        if (path.empty())
            return;
        std::FILE *f = std::fopen(path.c_str(), "a");
        if (!f)
            LSCHED_FATAL("cannot open --", opt, " output file '", path,
                         "'");
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("(%s appended to %s)\n", opt, path.c_str());
    };
    append("csv", table.toCsv());
    std::string json = table.toJson();
    if (!json.empty() && json.front() == '{')
        json.insert(1, "\"host\":" + hostMetadataJson() + ",");
    append("json", json + "\n");
}

} // namespace lsched::bench

#endif // LSCHED_BENCH_BENCH_UTIL_HH
