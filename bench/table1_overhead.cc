/**
 * @file
 * Table 1 reproduction: thread overhead in microseconds.
 *
 * The paper forks 1,048,576 null threads evenly distributed across the
 * scheduling plane, then runs them, and reports the per-thread fork
 * cost, run cost, and total, next to the cost of an L2 cache miss.
 * We measure the same loop on the host and report the modeled L2-miss
 * costs of both paper machines for the comparison row.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "machine/machine_config.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

void
nullThread(void *, void *)
{
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("table1_overhead", "Table 1: thread overhead");
    cli.addInt("threads", 1 << 20, "null threads per measurement");
    cli.addInt("repeats", 3, "measurement repetitions (best taken)");
    cli.addString("json", "", "also write the table as JSON here");
    cli.parse(argc, argv);

    const auto n = static_cast<std::uint64_t>(cli.getInt("threads"));
    const int repeats = static_cast<int>(cli.getInt("repeats"));

    threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.cacheBytes = 2 * 1024 * 1024;
    cfg.blockBytes = cfg.cacheBytes / 2;
    threads::LocalityScheduler sched(cfg);

    std::printf("== Table 1: thread overhead (microseconds) ==\n");
    std::printf("forking %llu null threads evenly over the plane\n\n",
                static_cast<unsigned long long>(n));

    double best_fork = 1e99, best_run = 1e99;
    for (int rep = 0; rep < repeats; ++rep) {
        CpuTimer fork_timer;
        for (std::uint64_t i = 0; i < n; ++i) {
            // Even distribution across a 16x16 block grid, as in the
            // paper's micro-benchmark setup.
            const threads::Hint h1 =
                (i % 16) * cfg.blockBytes;
            const threads::Hint h2 =
                ((i / 16) % 16) * cfg.blockBytes;
            sched.fork(&nullThread, nullptr, nullptr, h1, h2);
        }
        const double fork_s = fork_timer.seconds();

        CpuTimer run_timer;
        sched.run(false);
        const double run_s = run_timer.seconds();

        best_fork = std::min(best_fork, fork_s);
        best_run = std::min(best_run, run_s);
    }

    const double fork_us = best_fork / static_cast<double>(n) * 1e6;
    const double run_us = best_run / static_cast<double>(n) * 1e6;

    const auto r8k = machine::powerIndigo2R8000();
    const auto r10k = machine::indigo2ImpactR10000();

    TextTable table("", {"", "host (measured)", "R8000 (paper)",
                         "R10000 (paper)"});
    table.addRow({"Fork", TextTable::num(fork_us, 3), "1.38", "0.95"});
    table.addRow({"Run", TextTable::num(run_us, 3), "0.22", "0.14"});
    table.addRow({"Total", TextTable::num(fork_us + run_us, 3), "1.60",
                  "1.09"});
    table.addRule();
    table.addRow({"L2 miss", "-",
                  TextTable::num(r8k.l2MissSeconds * 1e6, 2),
                  TextTable::num(r10k.l2MissSeconds * 1e6, 2)});
    table.addRule();
    // Fork rate in millions/second: the direct view of the th_fork
    // fast path (group slab recycling + the bin-table probe).
    table.addRow({"Forks/sec (M)",
                  TextTable::num(1.0 / best_fork *
                                     static_cast<double>(n) / 1e6,
                                 2),
                  "-", "-"});
    std::fputs(table.toText().c_str(), stdout);

    std::printf("\nshape check: total thread overhead should be the "
                "same order as one L2 miss\n");
    std::printf("host total/fork ratio vs paper: host %.2f, paper "
                "R8000 %.2f\n",
                (fork_us + run_us) / fork_us, 1.60 / 1.38);

    const std::string jsonPath = cli.getString("json");
    if (!jsonPath.empty()) {
        harness::JsonReport report;
        report.addTable(table);
        if (!report.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("JSON written to %s\n", jsonPath.c_str());
    }
    return 0;
}
