/**
 * @file
 * Table 7 reproduction: SOR memory references and cache misses
 * (thousands) on the R8000-class machine.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "workloads/sor.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("table7_sor_cache", "Table 7: SOR cache misses");
    cli.addInt("n", 501, "array dimension");
    cli.addInt("t", 8,
               "SOR iterations (paper: 30; the scaled default keeps "
               "the paper's (s+2t)*n*8 : L2 tiling-margin ratio)");
    cli.addInt("s", 4, "hand-tiling tile size (paper: 18)");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const bool full = cli.getFlag("full");
    const std::size_t n =
        full ? 2005 : static_cast<std::size_t>(cli.getInt("n"));
    const auto t =
        full ? 30u : static_cast<unsigned>(cli.getInt("t"));
    const auto s =
        full ? 18u : static_cast<std::size_t>(cli.getInt("s"));
    const auto machine = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Table 7", "SOR cache simulation", machine);
    std::printf("n = %zu, t = %u, s = %zu (paper: 2005, 30, 18)\n\n", n,
                t, s);

    const auto untiled = harness::simulateOn(machine, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        sorUntiled(a, t, m);
    });
    std::printf("  untiled done\n");
    const auto tiled = harness::simulateOn(machine, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        sorHandTiled(a, t, m, s);
    });
    std::printf("  hand-tiled done\n");
    const auto threaded = harness::simulateOn(machine, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        threads::SchedulerConfig cfg;
        cfg.cacheBytes = machine.l2Size();
        threads::LocalityScheduler sched(cfg);
        sorThreaded(a, t, sched, m);
    });
    std::printf("  threaded done\n\n");

    const auto table = harness::cacheTable(
        "Table 7: SOR memory references and cache misses (thousands)",
        {{"Untiled", untiled},
         {"Hand-tiled", tiled},
         {"Threaded", threaded}});
    lsched::bench::emitTable(cli, table);

    std::printf("\npaper (thousands): untiled L2=7,545 (capacity "
                "7,294); hand-tiled L2=282 (capacity 0); threaded "
                "L2=263 (capacity 6)\n");
    std::printf("shape checks:\n");
    std::printf("  untiled dominated by capacity misses: %s\n",
                untiled.l2.capacityMisses > untiled.l2.misses * 8 / 10
                    ? "yes"
                    : "NO");
    std::printf("  hand-tiled removes ~all capacity misses: %s\n",
                tiled.l2.capacityMisses * 20 < untiled.l2.capacityMisses
                    ? "yes"
                    : "NO");
    std::printf("  threaded removes ~all capacity misses: %s\n",
                threaded.l2.capacityMisses * 20 <
                        untiled.l2.capacityMisses
                    ? "yes"
                    : "NO");
    std::printf("  hand-tiled issues more refs (tiling overhead): %s\n",
                tiled.dataRefs > untiled.dataRefs ? "yes" : "NO");
    return 0;
}
