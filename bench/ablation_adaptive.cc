/**
 * @file
 * Adaptive-placement ablation: start the scheduler deliberately
 * mis-tuned (blocks 8x the slab size, so every bin's working set
 * overflows the simulated L2) and show the online tuner walking the
 * block dimension back to the hand-tuned geometry from per-tour miss
 * feedback alone.
 *
 * The workload interleaves T threads over S disjoint slabs of L2/2
 * each, forked thread-major (t0 over every slab, then t1, ...). With
 * block = slab, a bin holds one slab's T threads and the tour streams
 * each slab once: misses sit at the compulsory floor. With block =
 * 8 slabs, consecutive threads in a bin stream *different* slabs, so
 * every thread reloads its slab: ~T x the miss rate. After each tour
 * the per-thread simulated L2 deltas are fed through the profiler's
 * recordSample() pipeline (attributed to the executing bin via the
 * trace, exactly like bench/ablation_profile) and the scheduler is
 * polled at the tour boundary; the tuner classifies the epochs
 * capacity-dominated and halves the block until the miss rate drops
 * to the floor. The bench passes when the adaptive run starts >= 5x
 * the hand-tuned miss rate and converges to within --converge
 * (default 1.5x, the configured adapt.converge factor) in at most
 * --max-tours tours.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "cachesim/hierarchy.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "support/cli.hh"
#include "threads/adapt.hh"
#include "threads/scheduler.hh"
#include "workloads/memmodel.hh"

namespace
{

/** One thread's simulated-L2 delta, pushed in execution order. */
struct ThreadDelta
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** One thread's slice of work: stream a whole slab, record deltas. */
struct SlabJob
{
    lsched::workloads::SimModel *model;
    const lsched::cachesim::Hierarchy *hierarchy;
    const double *slab;
    std::size_t doubles;
    std::vector<ThreadDelta> *order;
};

void
streamSlab(void *arg1, void *)
{
    const SlabJob &job = *static_cast<SlabJob *>(arg1);
    const lsched::cachesim::CacheStats before =
        job.hierarchy->l2Stats();
    for (std::size_t i = 0; i < job.doubles; ++i)
        job.model->load(&job.slab[i], sizeof(double));
    job.model->instructions(job.doubles +
                            lsched::workloads::kThreadOverheadInstr);
    const lsched::cachesim::CacheStats after = job.hierarchy->l2Stats();
    job.order->push_back({after.accesses - before.accesses,
                          after.misses - before.misses});
}

struct TourResult
{
    double missPercent = 0.0;
    std::uint64_t blockBytes = 0;
    bool traced = true;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_adaptive",
            "mis-tuned start converging to the hand-tuned block size "
            "via online miss feedback");
    cli.addInt("slabs", 16, "disjoint data slabs (one block each)");
    cli.addInt("threads-per-slab", 8, "threads streaming each slab");
    cli.addInt("mistune", 8,
               "initial block size as a multiple of the slab size");
    cli.addInt("max-tours", 8,
               "tour budget for reaching the convergence factor");
    cli.addDouble("converge", 1.5,
                  "converged when within this factor of hand-tuned");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 64);
    cli.parse(argc, argv);

    if (!obs::kTraceCompiled) {
        std::printf("ablation_adaptive: instrumentation compiled out "
                    "(LSCHED_TRACE_ENABLED=OFF); nothing to measure\n");
        return 0;
    }

    const auto machine = lsched::bench::machineFromCli(cli);
    const std::size_t slabs =
        static_cast<std::size_t>(cli.getInt("slabs"));
    const std::size_t perSlab =
        static_cast<std::size_t>(cli.getInt("threads-per-slab"));
    const std::size_t mistune =
        static_cast<std::size_t>(cli.getInt("mistune"));
    const int maxTours = cli.getInt("max-tours");
    const double converge = cli.getDouble("converge");
    const std::size_t slabBytes = machine.l2Size() / 2;
    const std::size_t slabDoubles = slabBytes / sizeof(double);

    lsched::bench::banner("Ablation", "adaptive placement convergence",
                          machine);
    std::printf("slabs = %zu x %zu KB (L2/2), threads per slab = %zu, "
                "mis-tuned block = %zu x slab\n\n",
                slabs, slabBytes / 1024, perSlab, mistune);

    std::vector<double> data(slabs * slabDoubles, 1.0);

    obs::Profiler &profiler = obs::Profiler::global();
    obs::ProfileConfig pconfig = profiler.config();
    pconfig.pmu = false; // host counters measure the host, not the sim
    std::string perror;
    if (!profiler.configure(pconfig, &perror)) {
        std::printf("profiler configure failed: %s\n", perror.c_str());
        return 1;
    }

    // Thread-major fork order: consecutive forks hit different slabs,
    // so an oversized block turns one bin into a slab-thrashing mix
    // while block = slab keeps each bin on one slab.
    const auto forkAll = [&](threads::LocalityScheduler &sched,
                             std::vector<SlabJob> &jobs) {
        for (std::size_t t = 0; t < perSlab; ++t) {
            for (std::size_t s = 0; s < slabs; ++s) {
                SlabJob &job = jobs[t * slabs + s];
                sched.fork(streamSlab, &job, nullptr,
                           threads::hintOf(job.slab));
            }
        }
    };

    // One tour under a fresh simulated hierarchy; when @p feed is set,
    // the per-thread deltas are attributed to their bins and the
    // scheduler is polled at the tour boundary (the adaptive loop).
    const auto runTour = [&](threads::LocalityScheduler &sched,
                             bool feed) {
        TourResult out;
        cachesim::Hierarchy hierarchy(machine.caches);
        workloads::SimModel model(hierarchy);
        std::vector<ThreadDelta> order;
        order.reserve(slabs * perSlab);
        std::vector<SlabJob> jobs(slabs * perSlab);
        for (std::size_t t = 0; t < perSlab; ++t) {
            for (std::size_t s = 0; s < slabs; ++s) {
                jobs[t * slabs + s] = {&model, &hierarchy,
                                       &data[s * slabDoubles],
                                       slabDoubles, &order};
            }
        }
        model.enterKernel(0);
        obs::setTraceEnabled(true);
        obs::TraceSession::global().clear();
        forkAll(sched, jobs);
        sched.run();
        obs::setTraceEnabled(false);

        const cachesim::CacheStats l2 = hierarchy.l2Stats();
        out.missPercent = l2.missRatePercent();
        out.blockBytes = sched.stats().adapt.active
                             ? sched.stats().adapt.blockBytes
                             : sched.config().blockBytes;
        if (!feed)
            return out;

        // Pair the trace's in-order ThreadStart events with the
        // execution-order deltas, then feed them as PMU-valid samples
        // (the simulator is this bench's "hardware counter").
        std::vector<obs::Event> starts;
        for (const obs::LaneSnapshot &lane :
             obs::TraceSession::global().snapshot()) {
            for (const obs::Event &e : lane.events)
                if (e.type == obs::EventType::ThreadStart)
                    starts.push_back(e);
        }
        std::sort(starts.begin(), starts.end(),
                  [](const obs::Event &a, const obs::Event &b) {
                      return a.ns < b.ns;
                  });
        if (starts.size() != order.size()) {
            std::printf("trace/run mismatch: %zu ThreadStart events vs "
                        "%zu executed threads\n",
                        starts.size(), order.size());
            out.traced = false;
            return out;
        }
        profiler.setEnabled(true);
        for (std::size_t i = 0; i < order.size(); ++i) {
            profiler.recordSample(starts[i].a, obs::kProfileNoSuperBin,
                                  /*worker=*/0, /*threads=*/1,
                                  /*dwellNs=*/0, /*instructions=*/0,
                                  /*cycles=*/0, order[i].accesses,
                                  order[i].misses, /*pmuValid=*/true);
        }
        profiler.setEnabled(false);
        sched.pollAdaptivePlacement();
        return out;
    };

    // References: hand-tuned (block = slab) and mis-tuned (frozen at
    // the adaptive run's starting geometry), both plain blockhash.
    const auto referenceMiss = [&](std::size_t blockBytes) {
        threads::SchedulerConfig cfg;
        cfg.dims = 1;
        cfg.cacheBytes = machine.l2Size();
        cfg.blockBytes = blockBytes;
        threads::LocalityScheduler sched(cfg);
        return runTour(sched, /*feed=*/false).missPercent;
    };
    const double handTuned = referenceMiss(slabBytes);
    const double misTuned = referenceMiss(mistune * slabBytes);
    std::printf("  hand-tuned block (%zu KB): %.2f%% L2 miss\n",
                slabBytes / 1024, handTuned);
    std::printf("  mis-tuned block  (%zu KB): %.2f%% L2 miss\n\n",
                mistune * slabBytes / 1024, misTuned);

    // The adaptive run: same mis-tuned start, tuner in the loop.
    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.cacheBytes = machine.l2Size();
    cfg.blockBytes = mistune * slabBytes;
    cfg.placement = threads::PlacementKind::Adaptive;
    cfg.adaptBase = threads::PlacementKind::BlockHash;
    cfg.adaptEpochs = 1;
    cfg.adaptHold = 0;
    cfg.adaptMinBlock = 4096;
    cfg.adaptMaxBlock = mistune * slabBytes;
    cfg.adaptConverge = converge;
    threads::LocalityScheduler sched(cfg);

    profiler.reset();
    const double target = handTuned * converge;
    double first = 0.0;
    double final = 0.0;
    int converged = -1;
    bool traced = true;
    for (int tour = 0; tour < maxTours; ++tour) {
        const TourResult r = runTour(sched, /*feed=*/true);
        traced = traced && r.traced;
        if (tour == 0)
            first = r.missPercent;
        final = r.missPercent;
        const threads::AdaptSnapshot snap = sched.stats().adapt;
        std::printf("  tour %d: block %llu KB, %.2f%% miss, regime "
                    "%s, retunes %llu\n",
                    tour,
                    static_cast<unsigned long long>(r.blockBytes) /
                        1024,
                    r.missPercent,
                    threads::adaptRegimeName(snap.regime),
                    static_cast<unsigned long long>(snap.retunes));
        if (converged < 0 && r.missPercent <= target)
            converged = tour;
    }
    const threads::AdaptSnapshot snap = sched.stats().adapt;

    // Quiescent overhead: with the tuner settled (no fresh profiler
    // epochs), time a fork-heavy no-op tour against plain blockhash at
    // the same geometry. Per-rep minimum, because the one-off cost the
    // adaptive wrapper adds (an acquire load per place) is far below
    // scheduler wall-clock jitter; the min is the jitter-robust
    // estimator of the true per-tour floor.
    const auto oneTour = [&](threads::LocalityScheduler &s) {
        static std::atomic<std::uint64_t> sink{0};
        const auto begin = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < 4000; ++i) {
            s.fork(
                [](void *, void *) {
                    sink.fetch_add(1, std::memory_order_relaxed);
                },
                nullptr, nullptr,
                static_cast<threads::Hint>(i) * 4096);
        }
        s.run();
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - begin)
            .count();
    };
    // Both sides fresh at the converged geometry, reps interleaved so
    // frequency drift hits them equally; the adaptive side exercises
    // the full quiescent path including run()-end maybeRetune() (the
    // profiler is disabled, so the tuner never moves).
    threads::SchedulerConfig quiet;
    quiet.dims = 1;
    quiet.cacheBytes = machine.l2Size();
    quiet.blockBytes = snap.blockBytes ? snap.blockBytes : slabBytes;
    threads::LocalityScheduler baseline(quiet);
    threads::SchedulerConfig quietAdapt = quiet;
    quietAdapt.placement = threads::PlacementKind::Adaptive;
    quietAdapt.adaptBase = threads::PlacementKind::BlockHash;
    threads::LocalityScheduler adaptiveQuiet(quietAdapt);
    oneTour(baseline); // warmup: first-touch of bins and free lists
    oneTour(adaptiveQuiet);
    double baseMs = oneTour(baseline);
    double adaptMs = oneTour(adaptiveQuiet);
    for (int rep = 1; rep < 30; ++rep) {
        baseMs = std::min(baseMs, oneTour(baseline));
        adaptMs = std::min(adaptMs, oneTour(adaptiveQuiet));
    }
    const double overheadPercent =
        baseMs > 0.0 ? 100.0 * (adaptMs - baseMs) / baseMs : 0.0;

    TextTable table("Ablation: adaptive placement convergence",
                    {"metric", "value"});
    const auto row = [&](const std::string &label, double v,
                         int precision) {
        table.addRow({label, TextTable::num(v, precision)});
    };
    row("hand-tuned miss %", handTuned, 2);
    row("mis-tuned miss %", misTuned, 2);
    row("adaptive first-tour miss %", first, 2);
    row("adaptive final miss %", final, 2);
    row("start/hand-tuned ratio",
        handTuned > 0 ? first / handTuned : 0, 2);
    row("final/hand-tuned ratio",
        handTuned > 0 ? final / handTuned : 0, 2);
    row("tours to converge", converged, 0);
    row("final block KB",
        static_cast<double>(snap.blockBytes) / 1024.0, 0);
    row("retunes", static_cast<double>(snap.retunes), 0);
    row("quiescent overhead %", overheadPercent, 1);
    lsched::bench::emitTable(cli, table);

    std::printf("\nshape checks:\n");
    std::printf("  trace paired every thread: %s\n",
                traced ? "yes" : "NO");
    const bool startBad = handTuned > 0 && first >= 5.0 * handTuned;
    std::printf("  mis-tuned start >= 5x hand-tuned: %s "
                "(%.2f%% vs %.2f%%)\n",
                startBad ? "yes" : "NO", first, handTuned);
    const bool convergedOk = converged >= 0 && final <= target;
    std::printf("  converged to <= %.2fx hand-tuned in %d tours: %s "
                "(tour %d, %.2f%% vs target %.2f%%)\n",
                converge, maxTours, convergedOk ? "yes" : "NO",
                converged, final, target);
    const bool retuned = snap.retunes > 0 &&
                         snap.blockBytes < mistune * slabBytes;
    std::printf("  tuner shrank the block online: %s (%llu retunes)\n",
                retuned ? "yes" : "NO",
                static_cast<unsigned long long>(snap.retunes));
    // The design target is <2% quiescent overhead (the batch fork
    // path dispatches straight to the inner generation, so the true
    // cost is ~0); the gate leaves headroom for wall-clock noise on
    // shared CI runners. The measured number lands in the JSON for
    // trend tracking.
    const bool overheadOk = overheadPercent < 5.0;
    std::printf("  quiescent overhead sane: %s (%.1f%%)\n",
                overheadOk ? "yes" : "NO", overheadPercent);

    return traced && startBad && convergedOk && retuned && overheadOk
               ? 0
               : 1;
}
