/**
 * @file
 * Placement-policy ablation: the same slab-streaming workload run
 * under each PlacementPolicy (threads/placement.hh), with the cache
 * simulator measuring what the policy alone buys.
 *
 * The workload forks T threads per slab over S disjoint slabs, each
 * thread streaming its whole slab; a slab fits in half the simulated
 * L2, the per-bin working set under a locality-oblivious placement
 * does not. Threads are forked slab-major, so:
 *
 *  - blockhash bins by slab: a bin's threads share one slab, the
 *    first thread warms L2 and the rest hit — misses stay near the
 *    compulsory floor.
 *  - roundrobin deals consecutive threads of one slab to different
 *    bins: every bin mixes ~min(T, bins) slabs, its working set
 *    overflows L2, and each thread re-misses its whole slab.
 *  - hierarchical bins like blockhash and additionally groups
 *    adjacent blocks into super-bins (visible in the tour, not in
 *    the serial miss rate).
 *
 * The gap is the paper's Section 5 argument isolated from everything
 * else the scheduler does.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "threads/scheduler.hh"
#include "workloads/memmodel.hh"

namespace
{

/** One thread's slice of work: stream a whole slab. */
struct SlabJob
{
    lsched::workloads::SimModel *model;
    const double *slab;
    std::size_t doubles;
};

void
streamSlab(void *arg1, void *)
{
    const SlabJob &job = *static_cast<SlabJob *>(arg1);
    for (std::size_t i = 0; i < job.doubles; ++i)
        job.model->load(&job.slab[i], sizeof(double));
    job.model->instructions(job.doubles +
                            lsched::workloads::kThreadOverheadInstr);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_placement",
            "placement-policy ablation: simulated L2 misses under "
            "blockhash vs roundrobin vs hierarchical placement");
    cli.addInt("slabs", 16, "disjoint data slabs (one block each)");
    cli.addInt("threads-per-slab", 8, "threads streaming each slab");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 64);
    cli.parse(argc, argv);

    const auto machine = lsched::bench::machineFromCli(cli);
    const std::size_t slabs =
        static_cast<std::size_t>(cli.getInt("slabs"));
    const std::size_t perSlab =
        static_cast<std::size_t>(cli.getInt("threads-per-slab"));
    const std::size_t slabBytes = machine.l2Size() / 2;
    const std::size_t slabDoubles = slabBytes / sizeof(double);

    lsched::bench::banner("Ablation", "placement policy", machine);
    std::printf("slabs = %zu x %zu KB (L2/2), threads per slab = %zu\n\n",
                slabs, slabBytes / 1024, perSlab);

    std::vector<double> data(slabs * slabDoubles, 1.0);

    const auto runWith = [&](threads::PlacementKind kind) {
        return harness::simulateOn(machine, [&](workloads::SimModel &m) {
            threads::SchedulerConfig cfg;
            cfg.dims = 1;
            cfg.cacheBytes = machine.l2Size();
            cfg.blockBytes = slabBytes;
            cfg.placement = kind;
            cfg.roundRobinBins = slabs; // same bin count as blockhash
            threads::LocalityScheduler sched(cfg);

            std::vector<SlabJob> jobs(slabs * perSlab);
            m.enterKernel(0);
            for (std::size_t s = 0; s < slabs; ++s) {
                for (std::size_t t = 0; t < perSlab; ++t) {
                    SlabJob &job = jobs[s * perSlab + t];
                    job = {&m, &data[s * slabDoubles], slabDoubles};
                    sched.fork(streamSlab, &job, nullptr,
                               threads::hintOf(job.slab));
                }
            }
            sched.run();
        });
    };

    const auto blockhash = runWith(threads::PlacementKind::BlockHash);
    std::printf("  blockhash done\n");
    const auto roundrobin = runWith(threads::PlacementKind::RoundRobin);
    std::printf("  roundrobin done\n");
    const auto hierarchical =
        runWith(threads::PlacementKind::Hierarchical);
    std::printf("  hierarchical done\n\n");

    const auto table = harness::cacheTable(
        "Ablation: placement policy (slab streaming)",
        {{"BlockHash", blockhash},
         {"RoundRobin", roundrobin},
         {"Hierarchical", hierarchical}});
    lsched::bench::emitTable(cli, table);

    std::printf("\nshape checks:\n");
    std::printf("  blockhash L2 miss rate below roundrobin: %s "
                "(%.2f%% vs %.2f%%)\n",
                blockhash.l2RatePercent < roundrobin.l2RatePercent
                    ? "yes"
                    : "NO",
                blockhash.l2RatePercent, roundrobin.l2RatePercent);
    std::printf("  blockhash L2 misses near compulsory floor: %s\n",
                blockhash.l2.misses <
                        blockhash.l2.compulsoryMisses * 2
                    ? "yes"
                    : "NO");
    std::printf("  hierarchical matches blockhash serially: %s\n",
                hierarchical.l2.misses == blockhash.l2.misses
                    ? "yes"
                    : "NO");
    return blockhash.l2RatePercent < roundrobin.l2RatePercent ? 0 : 1;
}
