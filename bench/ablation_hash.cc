/**
 * @file
 * Ablation D: hash-table size sensitivity (the second knob of
 * th_init). Forks a fixed thread population over many blocks while
 * the bucket count varies, reporting fork time and the longest
 * collision chain.
 */

#include <cstdio>

#include "support/cli.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

void
nullThread(void *, void *)
{
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_hash", "Ablation: hash table size");
    cli.addInt("threads", 1 << 20, "threads per measurement");
    cli.addInt("blocks", 1024, "distinct blocks the hints span");
    cli.parse(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.getInt("threads"));
    const auto blocks =
        static_cast<std::uint64_t>(cli.getInt("blocks"));

    std::printf("== Ablation D: hash-table size ==\n");
    std::printf("%llu threads over %llu blocks\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(blocks));

    TextTable table("", {"buckets", "fork+run (ns/thread)",
                         "longest chain"});
    for (const std::size_t buckets :
         {1u, 16u, 256u, 4096u, 65536u}) {
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.blockBytes = 1 << 16;
        cfg.hashBuckets = buckets;
        threads::LocalityScheduler sched(cfg);

        // Warm-up pass to populate pools and bins.
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(&nullThread, nullptr, nullptr,
                       (i % blocks) << 16, ((i * 7) % blocks) << 16);
        const std::uint64_t chain = sched.stats().maxHashChain;
        sched.run(false);

        CpuTimer timer;
        for (std::uint64_t i = 0; i < n; ++i)
            sched.fork(&nullThread, nullptr, nullptr,
                       (i % blocks) << 16, ((i * 7) % blocks) << 16);
        sched.run(false);
        const double ns =
            timer.seconds() * 1e9 / static_cast<double>(n);
        table.addRow({TextTable::count(buckets),
                      TextTable::num(ns, 2), TextTable::count(chain)});
    }

    std::printf("%s\n", table.toText().c_str());
    std::printf("expected: a nearly flat curve — the open-addressing "
                "table grows itself past 3/4 load, so an undersized "
                "th_init size costs a few rehashes, not the deep "
                "chains the paper's fixed-size table would build; a "
                "right-sized table still saves the rehash work and "
                "keeps probes shortest\n");
    return 0;
}
