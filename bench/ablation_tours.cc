/**
 * @file
 * Ablation A: bin tour strategy. The paper traverses bins in creation
 * order and remarks the tour should "preferably [be] the shortest";
 * this bench quantifies how much the traversal order matters by
 * running threaded matmul under four tours and reporting tour length
 * (Manhattan, in blocks) and estimated execution time.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "threads/tour.hh"
#include "workloads/matmul.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("ablation_tours", "Ablation: bin traversal order");
    cli.addInt("n", 192, "matrix dimension");
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const auto mc = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Ablation A", "bin tour strategies", mc);
    std::printf("threaded matmul, n = %zu\n\n", n);

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    TextTable table("", {"tour", "tour length (blocks)", "L2 misses",
                         "est. seconds"});
    for (const auto policy :
         {threads::TourPolicy::CreationOrder,
          threads::TourPolicy::SortedSnake,
          threads::TourPolicy::NearestNeighbor,
          threads::TourPolicy::Hilbert}) {
        std::uint64_t tour_len = 0;
        const auto outcome = harness::simulateOn(mc, [&](SimModel &m) {
            Matrix c(n, n);
            threads::SchedulerConfig cfg;
            cfg.dims = 2;
            cfg.cacheBytes = mc.l2Size();
            cfg.blockBytes = mc.l2Size() / 2;
            cfg.tour = policy;
            threads::LocalityScheduler sched(cfg);

            // Capture the tour length before run() recycles the bins.
            const std::size_t nn = n;
            Matrix at(nn, nn);
            transpose(a, at, m);
            DotProductCtx<SimModel> ctx{&at, &b, &c, &m};
            for (std::size_t i = 0; i < nn; ++i)
                for (std::size_t j = 0; j < nn; ++j)
                    sched.fork(&dotProductThread<SimModel>, &ctx,
                               reinterpret_cast<void *>((i << 32) | j),
                               threads::hintOf(at.col(i)),
                               threads::hintOf(b.col(j)));
            tour_len = sched.stats().tourLength;
            sched.run(false);
            Matrix dummy(nn, nn);
            transpose(at, dummy, m);
        });
        table.addRow({threads::tourPolicyName(policy),
                      TextTable::count(tour_len),
                      TextTable::count(outcome.l2.misses),
                      TextTable::num(outcome.estimatedSeconds(mc), 4)});
        std::printf("  %s done\n", threads::tourPolicyName(policy));
    }

    std::printf("\n%s\n", table.toText().c_str());
    std::printf("expected: locality-aware tours (snake/hilbert/"
                "nearest) shorten the tour; execution time changes "
                "little because within-bin locality dominates — "
                "supporting the paper's simple creation-order "
                "choice\n");
    return 0;
}
