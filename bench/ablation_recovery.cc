/**
 * @file
 * Recovery-layer ablation: what the robustness features cost when
 * nothing goes wrong, and how fast the scheduler comes back when
 * something does.
 *
 * Part 1 — armed-deadline overhead. The same fork-all/runParallel
 * workload runs with deadlineMillis=0 (no monitor, no cancel token;
 * executeBin's cancel check is one null-pointer test) and with a
 * deadline armed far above the runtime (monitor thread running, one
 * relaxed atomic load per user thread at the cancellation boundary).
 * The target from the issue: an armed-but-unfired deadline costs
 * under 2% of throughput.
 *
 * Part 2 — time-to-recover (fail-point builds only). A stalled tour
 * under a short deadline trips the overload governor into Degraded;
 * the bench then times clean tours until the governor reports
 * Recovered, i.e. how long degraded mode lingers after the fault
 * clears. Both the tour count (deterministic: recoverEpochs) and the
 * wall time (what a user actually waits) are reported.
 *
 * Both parts run the same thread bodies; the off/armed checksums must
 * agree before anything is reported.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "support/cli.hh"
#include "support/failpoint.hh"
#include "support/panic.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "threads/scheduler.hh"

namespace
{

/** Shared context: every thread derives its slot from its index. */
struct Context
{
    double *payload = nullptr; // threads * work doubles
    double *out = nullptr;     // one sum per thread
    std::size_t work = 0;      // doubles per payload slot
};

void
consumeSlot(void *arg1, void *arg2)
{
    const Context &ctx = *static_cast<const Context *>(arg1);
    const auto index = reinterpret_cast<std::uintptr_t>(arg2);
    const double *slot = ctx.payload + index * ctx.work;
    double sum = 0.0;
    for (std::size_t k = 0; k < ctx.work; ++k)
        sum += slot[k];
    ctx.out[index] = sum;
}

double
checksum(const Context &ctx, std::size_t threads)
{
    double total = 0.0;
    for (std::size_t i = 0; i < threads; ++i)
        total += ctx.out[i];
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;
    namespace fp = failpoint;

    Cli cli("ablation_recovery",
            "armed-deadline overhead and post-degradation "
            "time-to-recover");
    cli.addInt("threads", 65536, "threads per tour");
    cli.addInt("bins", 64, "address blocks the hints spread over");
    cli.addInt("work", 16, "doubles summed per thread");
    cli.addInt("workers", 4, "tour workers");
    cli.addInt("repeats", 5, "take the best of this many tours");
    cli.addInt("armed-ms", 600000,
               "deadline armed for the overhead run (never fires)");
    cli.addInt("recover-epochs", 2,
               "healthy tours required before Recovered");
    cli.addString("json", "", "also write the table as JSON here");
    cli.parse(argc, argv);

    const auto threads = static_cast<std::size_t>(cli.getInt("threads"));
    const auto bins = static_cast<std::size_t>(cli.getInt("bins"));
    const auto work = static_cast<std::size_t>(cli.getInt("work"));
    const auto workers = static_cast<unsigned>(cli.getInt("workers"));
    const int repeats = static_cast<int>(cli.getInt("repeats"));
    const auto armedMs =
        static_cast<std::uint32_t>(cli.getInt("armed-ms"));
    const auto recoverEpochs =
        static_cast<unsigned>(cli.getInt("recover-epochs"));

    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 1 << 16;
    cfg.backend = threads::BackendKind::Pooled;

    std::printf("== Ablation: recovery layer ==\n");
    std::printf("%zu threads x %zu doubles over %zu bins, %u workers, "
                "best of %d; armed deadline %u ms\n\n",
                threads, work, bins, workers, repeats, armedMs);

    std::vector<double> payload(threads * work, 0.5);
    std::vector<double> out(threads, 0.0);
    Context ctx{payload.data(), out.data(), work};

    const auto hintFor = [&](std::size_t i) {
        return static_cast<threads::Hint>(i % bins) * cfg.blockBytes *
               2;
    };

    // One tour at the given deadline; the scheduler is rebuilt per
    // tour so each run pays (or doesn't pay) the monitor start/stop.
    const auto tourRun = [&](std::uint32_t deadlineMs) {
        threads::SchedulerConfig c = cfg;
        c.deadlineMillis = deadlineMs;
        threads::LocalityScheduler s(c);
        WallTimer timer;
        for (std::size_t i = 0; i < threads; ++i) {
            s.fork(consumeSlot, &ctx,
                   reinterpret_cast<void *>(i), hintFor(i));
        }
        s.runParallel(workers);
        return timer.seconds();
    };

    const auto bestOf = [&](std::uint32_t deadlineMs, double *sum) {
        double best = 0.0;
        for (int r = 0; r < repeats; ++r) {
            std::fill(out.begin(), out.end(), 0.0);
            const double t = tourRun(deadlineMs);
            if (r == 0 || t < best)
                best = t;
        }
        *sum = checksum(ctx, threads);
        return best;
    };

    double offSum = 0.0, armedSum = 0.0;
    const double off = bestOf(0, &offSum);
    std::printf("  deadline off done\n");
    const double armed = bestOf(armedMs, &armedSum);
    std::printf("  deadline armed done\n\n");
    const double overheadPct = (armed / off - 1.0) * 100.0;

    // Part 2: trip the governor with a stalled tour, then time the
    // walk back to Recovered over clean tours.
    double recoverMs = -1.0;
    unsigned recoverTours = 0;
    bool recovered = false;
    if (fp::kCompiled) {
        threads::SchedulerConfig c = cfg;
        c.deadlineMillis = 40;
        c.onError = threads::ErrorPolicy::ContinueAndCollect;
        c.overloadEpochs = 1;
        c.recoverEpochs = recoverEpochs;
        threads::LocalityScheduler s(c);
        const std::size_t wedgeForks = 256;
        fp::arm("sched.bin.execute", "stall=120");
        for (std::size_t i = 0; i < wedgeForks; ++i) {
            s.fork(consumeSlot, &ctx,
                   reinterpret_cast<void *>(i), hintFor(i));
        }
        s.runParallel(workers); // deadline fires -> Degraded
        fp::disarmAll();
        if (s.recoveryState() == threads::RecoveryState::Degraded) {
            WallTimer timer;
            while (s.recoveryState() !=
                       threads::RecoveryState::Recovered &&
                   recoverTours < recoverEpochs + 4) {
                for (std::size_t i = 0; i < wedgeForks; ++i) {
                    s.fork(consumeSlot, &ctx,
                           reinterpret_cast<void *>(i), hintFor(i));
                }
                s.runParallel(workers);
                ++recoverTours;
            }
            recoverMs = timer.seconds() * 1000.0;
            recovered = s.recoveryState() ==
                        threads::RecoveryState::Recovered;
        }
        std::printf("  recovery walk done\n\n");
    } else {
        std::printf("  (fail points compiled out: time-to-recover "
                    "skipped)\n\n");
    }

    TextTable table("Ablation: recovery layer",
                    {"metric", "value", "note"});
    table.addRow({"deadline off wall s", TextTable::num(off, 6),
                  TextTable::num(threads / off, 0) + " threads/s"});
    table.addRow({"deadline armed wall s", TextTable::num(armed, 6),
                  TextTable::num(threads / armed, 0) + " threads/s"});
    table.addRow({"armed overhead %", TextTable::num(overheadPct, 2),
                  "target < 2"});
    if (recoverMs >= 0.0) {
        table.addRow({"time to recover ms",
                      TextTable::num(recoverMs, 1),
                      std::to_string(recoverTours) + " clean tour(s)"});
    }
    std::printf("%s\n", table.toText().c_str());

    std::printf("shape checks:\n");
    std::printf("  off/armed sums agree: %s\n",
                offSum == armedSum ? "yes" : "NO");
    std::printf("  armed overhead under 2%%: %s (%.2f%%)\n",
                overheadPct < 2.0 ? "yes" : "NO", overheadPct);
    if (fp::kCompiled) {
        std::printf("  degraded scheduler recovered: %s\n",
                    recovered ? "yes" : "NO");
    }

    const std::string jsonPath = cli.getString("json");
    if (!jsonPath.empty()) {
        harness::JsonReport report;
        report.addTable(table);
        if (!report.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("JSON written to %s\n", jsonPath.c_str());
    }
    return offSum == armedSum ? 0 : 1;
}
