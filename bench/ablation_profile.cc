/**
 * @file
 * Online-profiling ablation: show that the continuous profiler's
 * per-bin attribution (obs/profile.hh) reproduces the offline
 * placement split of ablation_placement.
 *
 * The workload is ablation_placement's slab streamer: T threads per
 * slab over S disjoint slabs, each slab = L2/2, forked slab-major.
 * Under blockhash every bin's threads share one slab (misses near the
 * compulsory floor); under roundrobin each bin mixes slabs and is
 * capacity-dominated. Here the run executes with profiling enabled,
 * so every executeBin() window lands in the attribution table
 * (dwell-only — host PMU counters measure the host, not the simulated
 * hierarchy), and each thread's simulated L2 delta is then fed
 * through the same Profiler::recordSample() pipeline, attributed to
 * the bin the trace says executed it. If the online pipeline is
 * faithful, the per-bin miss rates must separate the placements
 * exactly like the offline whole-run numbers do.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "cachesim/hierarchy.hh"
#include "obs/profile.hh"
#include "obs/snapshot.hh"
#include "obs/trace.hh"
#include "support/cli.hh"
#include "threads/scheduler.hh"
#include "workloads/memmodel.hh"

namespace
{

/** One thread's simulated-L2 delta, pushed in execution order. */
struct ThreadDelta
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** One thread's slice of work: stream a whole slab, record deltas. */
struct SlabJob
{
    lsched::workloads::SimModel *model;
    const lsched::cachesim::Hierarchy *hierarchy;
    const double *slab;
    std::size_t doubles;
    std::vector<ThreadDelta> *order;
};

void
streamSlab(void *arg1, void *)
{
    const SlabJob &job = *static_cast<SlabJob *>(arg1);
    const lsched::cachesim::CacheStats before =
        job.hierarchy->l2Stats();
    for (std::size_t i = 0; i < job.doubles; ++i)
        job.model->load(&job.slab[i], sizeof(double));
    job.model->instructions(job.doubles +
                            lsched::workloads::kThreadOverheadInstr);
    const lsched::cachesim::CacheStats after = job.hierarchy->l2Stats();
    job.order->push_back({after.accesses - before.accesses,
                          after.misses - before.misses});
}

/** Per-placement outcome of one profiled run. */
struct ProfiledRun
{
    /** Offline truth: whole-run simulated L2 stats. */
    lsched::cachesim::CacheStats offline;
    /** Online attribution rows after the sim-delta feed. */
    std::vector<lsched::obs::BinProfile> bins;
    /** Dwell-only windows the executeBin() hook attributed live. */
    std::uint64_t liveSamples = 0;

    double
    onlineRatePercent() const
    {
        std::uint64_t refs = 0;
        std::uint64_t misses = 0;
        for (const auto &b : bins) {
            refs += b.llcRefs;
            misses += b.llcMisses;
        }
        return refs ? 100.0 * static_cast<double>(misses) /
                          static_cast<double>(refs)
                    : 0.0;
    }

    double
    minBinRatePercent() const
    {
        double v = 100.0;
        for (const auto &b : bins)
            v = std::min(v, 100.0 * b.missRate());
        return bins.empty() ? 0.0 : v;
    }

    double
    maxBinRatePercent() const
    {
        double v = 0.0;
        for (const auto &b : bins)
            v = std::max(v, 100.0 * b.missRate());
        return v;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_profile",
            "online per-bin miss attribution vs the offline placement "
            "split (blockhash vs roundrobin)");
    cli.addInt("slabs", 16, "disjoint data slabs (one block each)");
    cli.addInt("threads-per-slab", 8, "threads streaming each slab");
    cli.addString("jsonl", "",
                  "also write the profiler's JSONL snapshot report here");
    cli.addString("om", "",
                  "also write the OpenMetrics exposition here");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 64);
    cli.parse(argc, argv);

    if (!obs::kTraceCompiled) {
        std::printf("ablation_profile: instrumentation compiled out "
                    "(LSCHED_TRACE_ENABLED=OFF); nothing to measure\n");
        return 0;
    }

    const auto machine = lsched::bench::machineFromCli(cli);
    const std::size_t slabs =
        static_cast<std::size_t>(cli.getInt("slabs"));
    const std::size_t perSlab =
        static_cast<std::size_t>(cli.getInt("threads-per-slab"));
    const std::size_t slabBytes = machine.l2Size() / 2;
    const std::size_t slabDoubles = slabBytes / sizeof(double);

    lsched::bench::banner("Ablation", "online profiling attribution",
                          machine);
    std::printf("slabs = %zu x %zu KB (L2/2), threads per slab = %zu\n\n",
                slabs, slabBytes / 1024, perSlab);

    std::vector<double> data(slabs * slabDoubles, 1.0);

    obs::Profiler &profiler = obs::Profiler::global();
    obs::ProfileConfig pconfig = profiler.config();
    pconfig.pmu = false; // host counters measure the host, not the sim
    std::string perror;
    if (!profiler.configure(pconfig, &perror)) {
        std::printf("profiler configure failed: %s\n", perror.c_str());
        return 1;
    }

    const auto runWith = [&](threads::PlacementKind kind) {
        ProfiledRun out;

        obs::setTraceEnabled(true);
        obs::TraceSession::global().clear();
        profiler.reset();
        profiler.setEnabled(true);

        cachesim::Hierarchy hierarchy(machine.caches);
        workloads::SimModel model(hierarchy);

        threads::SchedulerConfig cfg;
        cfg.dims = 1;
        cfg.cacheBytes = machine.l2Size();
        cfg.blockBytes = slabBytes;
        cfg.placement = kind;
        cfg.roundRobinBins = slabs; // same bin count as blockhash
        threads::LocalityScheduler sched(cfg);

        std::vector<ThreadDelta> order;
        order.reserve(slabs * perSlab);
        std::vector<SlabJob> jobs(slabs * perSlab);
        model.enterKernel(0);
        for (std::size_t s = 0; s < slabs; ++s) {
            for (std::size_t t = 0; t < perSlab; ++t) {
                SlabJob &job = jobs[s * perSlab + t];
                job = {&model, &hierarchy, &data[s * slabDoubles],
                       slabDoubles, &order};
                sched.fork(streamSlab, &job, nullptr,
                           threads::hintOf(job.slab));
            }
        }
        sched.run();

        profiler.setEnabled(false);
        obs::setTraceEnabled(false);
        out.offline = hierarchy.l2Stats();
        out.liveSamples = profiler.samples();

        // The serial run executed threads in one total order; the
        // trace's ThreadStart events carry the executing bin in the
        // same order, so pairing the i-th event with the i-th recorded
        // delta attributes each thread's simulated misses to its bin.
        std::vector<obs::Event> starts;
        for (const obs::LaneSnapshot &lane :
             obs::TraceSession::global().snapshot()) {
            for (const obs::Event &e : lane.events)
                if (e.type == obs::EventType::ThreadStart)
                    starts.push_back(e);
        }
        std::sort(starts.begin(), starts.end(),
                  [](const obs::Event &a, const obs::Event &b) {
                      return a.ns < b.ns;
                  });
        if (starts.size() != order.size()) {
            std::printf("trace/run mismatch: %zu ThreadStart events vs "
                        "%zu executed threads\n",
                        starts.size(), order.size());
            return out;
        }

        profiler.reset();
        profiler.setEnabled(true);
        for (std::size_t i = 0; i < order.size(); ++i) {
            profiler.recordSample(starts[i].a, obs::kProfileNoSuperBin,
                                  /*worker=*/0, /*threads=*/1,
                                  /*dwellNs=*/0, /*instructions=*/0,
                                  /*cycles=*/0, order[i].accesses,
                                  order[i].misses, /*pmuValid=*/true);
        }
        out.bins = profiler.binProfiles();
        std::sort(out.bins.begin(), out.bins.end(),
                  [](const obs::BinProfile &a, const obs::BinProfile &b) {
                      return a.binId < b.binId;
                  });
        profiler.setEnabled(false);
        return out;
    };

    const ProfiledRun blockhash =
        runWith(threads::PlacementKind::BlockHash);
    std::printf("  blockhash done (%llu live profile windows)\n",
                static_cast<unsigned long long>(blockhash.liveSamples));
    const ProfiledRun roundrobin =
        runWith(threads::PlacementKind::RoundRobin);
    std::printf("  roundrobin done (%llu live profile windows)\n\n",
                static_cast<unsigned long long>(roundrobin.liveSamples));

    TextTable table("Ablation: online per-bin miss attribution",
                    {"metric", "BlockHash", "RoundRobin"});
    auto row = [&](const std::string &label, double a, double b,
                   int precision) {
        table.addRow({label, TextTable::num(a, precision),
                      TextTable::num(b, precision)});
    };
    row("bins attributed", static_cast<double>(blockhash.bins.size()),
        static_cast<double>(roundrobin.bins.size()), 0);
    row("offline L2 miss %", blockhash.offline.missRatePercent(),
        roundrobin.offline.missRatePercent(), 2);
    row("online weighted miss %", blockhash.onlineRatePercent(),
        roundrobin.onlineRatePercent(), 2);
    row("min per-bin miss %", blockhash.minBinRatePercent(),
        roundrobin.minBinRatePercent(), 2);
    row("max per-bin miss %", blockhash.maxBinRatePercent(),
        roundrobin.maxBinRatePercent(), 2);
    lsched::bench::emitTable(cli, table);

    // Snapshot the final (roundrobin) attribution state into report
    // artifacts so CI uploads a real JSONL/OpenMetrics sample.
    obs::SnapshotEngine &engine = obs::SnapshotEngine::global();
    const std::string jsonlPath = cli.getString("jsonl");
    const std::string omPath = cli.getString("om");
    if (!jsonlPath.empty()) {
        std::printf("(profile jsonl %s to %s)\n",
                    engine.writeReport(jsonlPath) ? "written" : "FAILED",
                    jsonlPath.c_str());
    }
    if (!omPath.empty()) {
        std::printf("(openmetrics %s to %s)\n",
                    engine.writeReport(omPath) ? "written" : "FAILED",
                    omPath.c_str());
    }

    const double onBh = blockhash.onlineRatePercent();
    const double onRr = roundrobin.onlineRatePercent();
    const double offBh = blockhash.offline.missRatePercent();
    const double offRr = roundrobin.offline.missRatePercent();

    std::printf("\nshape checks:\n");
    const bool liveOk =
        blockhash.liveSamples > 0 && roundrobin.liveSamples > 0;
    std::printf("  executeBin() windows attributed live: %s\n",
                liveOk ? "yes" : "NO");
    const bool splitOk = onBh < onRr;
    std::printf("  online blockhash below roundrobin: %s "
                "(%.2f%% vs %.2f%%)\n",
                splitOk ? "yes" : "NO", onBh, onRr);
    const bool matchBh = std::abs(onBh - offBh) < 0.5;
    const bool matchRr = std::abs(onRr - offRr) < 0.5;
    std::printf("  online matches offline: %s "
                "(blockhash %.2f%% vs %.2f%%, roundrobin %.2f%% vs "
                "%.2f%%)\n",
                matchBh && matchRr ? "yes" : "NO", onBh, offBh, onRr,
                offRr);
    const bool binsOk = !blockhash.bins.empty() &&
                        blockhash.bins.size() == roundrobin.bins.size();
    std::printf("  same bin count across placements: %s\n",
                binsOk ? "yes" : "NO");

    return liveOk && splitOk && matchBh && matchRr && binsOk ? 0 : 1;
}
