/**
 * @file
 * Table 5 reproduction: PDE cache misses (thousands) for the regular,
 * cache-conscious, and threaded versions on the R8000-class machine.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "workloads/pde.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("table5_pde_cache", "Table 5: PDE cache misses");
    cli.addInt("n", 513, "grid dimension (interior points)");
    cli.addInt("iters", 5, "relaxation iterations");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const std::size_t n = cli.getFlag("full")
                              ? 2049
                              : static_cast<std::size_t>(cli.getInt("n"));
    const auto iters = static_cast<unsigned>(cli.getInt("iters"));
    const auto machine = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Table 5", "PDE cache simulation", machine);
    std::printf("n = %zu, iters = %u (paper: 2049, 5)\n\n", n, iters);

    const auto regular = harness::simulateOn(machine, [&](SimModel &m) {
        PdeGrid g(n);
        g.init(7);
        pdeRegular(g, iters, m);
    });
    std::printf("  regular done\n");
    const auto cc = harness::simulateOn(machine, [&](SimModel &m) {
        PdeGrid g(n);
        g.init(7);
        pdeCacheConscious(g, iters, m);
    });
    std::printf("  cache-conscious done\n");
    const auto threaded = harness::simulateOn(machine, [&](SimModel &m) {
        PdeGrid g(n);
        g.init(7);
        threads::SchedulerConfig cfg;
        cfg.cacheBytes = machine.l2Size();
        threads::LocalityScheduler sched(cfg);
        pdeThreaded(g, iters, sched, m);
    });
    std::printf("  threaded done\n\n");

    const auto table = harness::cacheTable(
        "Table 5: PDE cache misses (thousands)",
        {{"Regular", regular},
         {"Cache-conscious", cc},
         {"Threaded", threaded}});
    lsched::bench::emitTable(cli, table);

    std::printf("\npaper (thousands): regular L2=6,038 (capacity "
                "5,251); cache-conscious L2=2,888; threaded L2=3,415\n");
    std::printf("shape checks:\n");
    std::printf("  cache-conscious avoids ~60%% of capacity misses: "
                "%s (%.0f%%)\n",
                cc.l2.capacityMisses * 2 < regular.l2.capacityMisses
                    ? "yes"
                    : "NO",
                100.0 * (1.0 - static_cast<double>(cc.l2.capacityMisses) /
                                   static_cast<double>(
                                       regular.l2.capacityMisses)));
    std::printf("  threaded avoids ~50%% of capacity misses: %s "
                "(%.0f%%)\n",
                threaded.l2.capacityMisses * 10 <
                        regular.l2.capacityMisses * 7
                    ? "yes"
                    : "NO",
                100.0 *
                    (1.0 - static_cast<double>(threaded.l2.capacityMisses) /
                               static_cast<double>(
                                   regular.l2.capacityMisses)));
    return 0;
}
