/**
 * @file
 * Table 8 reproduction: N-body performance for the unthreaded and
 * threaded versions (paper: 64,000 bodies, 4 iterations).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "support/timer.hh"
#include "workloads/nbody.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

template <class M>
void
runVariant(bool threaded, NBodyConfig cfg, unsigned steps,
           std::uint64_t l2, M &model)
{
    BarnesHut sim(cfg);
    if (!threaded) {
        for (unsigned s = 0; s < steps; ++s)
            sim.stepUnthreaded(model);
        return;
    }
    threads::SchedulerConfig scfg;
    scfg.dims = 3;
    scfg.cacheBytes = l2;
    threads::LocalityScheduler sched(scfg);
    for (unsigned s = 0; s < steps; ++s)
        sim.stepThreaded(sched, model, 4 * l2 / 3);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("table8_nbody", "Table 8: N-body performance");
    cli.addInt("bodies", 8000, "number of bodies");
    cli.addInt("steps", 4, "time steps");
    cli.addDouble("theta", 0.6, "opening angle");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 8);
    cli.parse(argc, argv);

    NBodyConfig cfg;
    cfg.bodies = cli.getFlag("full")
                     ? 64000
                     : static_cast<std::size_t>(cli.getInt("bodies"));
    cfg.theta = cli.getDouble("theta");
    const auto steps = static_cast<unsigned>(cli.getInt("steps"));
    const auto r8k = lsched::bench::machineFromCli(cli);
    auto r10k = machine::scaled(
        machine::indigo2ImpactR10000(),
        cli.getFlag("full") ? 1u
                            : static_cast<unsigned>(cli.getInt("scale")));

    lsched::bench::banner("Table 8", "N-body performance", r8k);
    std::printf("bodies = %zu, steps = %u (paper: 64000, 4)\n\n",
                cfg.bodies, steps);

    std::vector<harness::PerfRow> rows;
    for (const bool threaded : {false, true}) {
        harness::PerfRow row;
        row.name = threaded ? "Threaded" : "Unthreaded";
        for (const auto &mc : {r8k, r10k}) {
            const auto outcome =
                harness::simulateOn(mc, [&](SimModel &m) {
                    runVariant(threaded, cfg, steps, mc.l2Size(), m);
                });
            row.estimatedSeconds.push_back(
                outcome.estimatedSeconds(mc));
        }
        {
            NativeModel native;
            CpuTimer timer;
            runVariant(threaded, cfg, steps, r8k.l2Size(), native);
            row.hostSeconds = timer.seconds();
        }
        rows.push_back(std::move(row));
        std::printf("  %-10s done\n", row.name.c_str());
    }

    {
        const auto table = harness::perfTable(
                    "Table 8 (estimated seconds, crude timing model)",
                    {"R8000-class", "R10000-class"}, rows);
        std::printf("\n");
        lsched::bench::emitTable(cli, table);
        std::printf("\n");
    }
    std::printf("paper (R8000/R10000): unthreaded 153.81/53.22, "
                "threaded 148.60/46.34\n");
    std::printf("shape: threaded faster on both machines "
                "(~3-15%%); here: %.1f%% (R8000-class est.)\n",
                100.0 * (1.0 - rows[1].estimatedSeconds[0] /
                                   rows[0].estimatedSeconds[0]));
    return 0;
}
