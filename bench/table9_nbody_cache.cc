/**
 * @file
 * Table 9 reproduction: N-body memory references and cache misses
 * (thousands) for one iteration on the R8000-class machine.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "workloads/nbody.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("table9_nbody_cache", "Table 9: N-body cache misses");
    cli.addInt("bodies", 8000, "number of bodies");
    cli.addDouble("theta", 0.6, "opening angle");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 8);
    cli.parse(argc, argv);

    NBodyConfig cfg;
    cfg.bodies = cli.getFlag("full")
                     ? 64000
                     : static_cast<std::size_t>(cli.getInt("bodies"));
    cfg.theta = cli.getDouble("theta");
    const auto machine = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Table 9", "N-body cache simulation (one "
                                     "iteration)",
                          machine);
    std::printf("bodies = %zu (paper: 64000)\n\n", cfg.bodies);

    const auto unthreaded =
        harness::simulateOn(machine, [&](SimModel &m) {
            BarnesHut sim(cfg);
            sim.stepUnthreaded(m);
        });
    std::printf("  unthreaded done\n");
    const auto threaded = harness::simulateOn(machine, [&](SimModel &m) {
        BarnesHut sim(cfg);
        threads::SchedulerConfig scfg;
        scfg.dims = 3;
        scfg.cacheBytes = machine.l2Size();
        threads::LocalityScheduler sched(scfg);
        sim.stepThreaded(sched, m, 4 * machine.l2Size() / 3);
    });
    std::printf("  threaded done\n\n");

    const auto table = harness::cacheTable(
        "Table 9: N-body memory references and cache misses "
        "(thousands, one iteration)",
        {{"Unthreaded", unthreaded}, {"Threaded", threaded}});
    lsched::bench::emitTable(cli, table);

    std::printf("\npaper (thousands): unthreaded L2=1,674 (capacity "
                "1,131, conflict 369); threaded L2=778 (capacity 495, "
                "conflict 93)\n");
    std::printf("shape checks:\n");
    std::printf("  threaded cuts L2 capacity misses ~2.3x: %s "
                "(%.2fx)\n",
                threaded.l2.capacityMisses * 3 <
                        unthreaded.l2.capacityMisses * 2
                    ? "yes"
                    : "NO",
                static_cast<double>(unthreaded.l2.capacityMisses) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1,
                                                threaded.l2
                                                    .capacityMisses)));
    std::printf("  reference overhead of threading is small: %s\n",
                threaded.ifetches < unthreaded.ifetches * 11 / 10
                    ? "yes"
                    : "NO");
    return 0;
}
