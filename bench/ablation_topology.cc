/**
 * @file
 * Topology-placement ablation: flat super-bin placement vs placement
 * derived from a cache-topology tree, measured as cross-domain miss
 * attribution on a cachesim-backed multi-L2 synthetic machine.
 *
 * The workload forks T threads per slab over S disjoint slabs; slabs
 * come in pairs, and both slabs of a pair also stream one shared
 * per-pair buffer (a halo). Each L2 group of the synthetic topology is
 * modelled as its own cache hierarchy: every domain gets a fresh
 * simulateOn() run over exactly the bins assigned to it, and the
 * arm's total misses are the sum across domains.
 *
 *  - flat deals bins round-robin across domains (what steal-anywhere
 *    workers give a flat placement): every pair is split, so its
 *    shared buffer is loaded compulsorily in two different L2s.
 *  - topology maps bins through TopologyPlacement::domainOf with the
 *    super-bin fan the tree derives (L2 groups per L3 cluster), so a
 *    pair's blocks stay in one domain and the second slab's halo
 *    pass hits.
 *
 * The difference against a run-everything-in-one-domain baseline is
 * the cross-domain miss attribution the topology-aware placement is
 * supposed to shrink. The bench also resolves topology=auto against
 * the real host sysfs tree and prints both TopologySummary lines, so
 * it exercises discovery and the forced synthetic path in one run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "machine/topology.hh"
#include "support/cli.hh"
#include "support/panic.hh"
#include "threads/placement.hh"
#include "threads/scheduler.hh"
#include "workloads/memmodel.hh"

namespace
{

/** One thread's slice of work: stream a slab, then the pair's halo. */
struct SlabJob
{
    lsched::workloads::SimModel *model;
    const double *slab;
    const double *shared;
    std::size_t slabDoubles;
    std::size_t sharedDoubles;
};

void
streamSlab(void *arg1, void *)
{
    const SlabJob &job = *static_cast<SlabJob *>(arg1);
    for (std::size_t i = 0; i < job.slabDoubles; ++i)
        job.model->load(&job.slab[i], sizeof(double));
    for (std::size_t i = 0; i < job.sharedDoubles; ++i)
        job.model->load(&job.shared[i], sizeof(double));
    job.model->instructions(job.slabDoubles + job.sharedDoubles +
                            lsched::workloads::kThreadOverheadInstr);
}

/** Sum per-domain outcomes into one table column. */
lsched::harness::SimOutcome
accumulate(const std::vector<lsched::harness::SimOutcome> &parts)
{
    lsched::harness::SimOutcome total;
    for (const auto &p : parts) {
        total.ifetches += p.ifetches;
        total.dataRefs += p.dataRefs;
        total.l1 += p.l1;
        total.l2 += p.l2;
    }
    const std::uint64_t l1Refs = total.ifetches + total.dataRefs;
    total.l1RatePercent =
        l1Refs ? 100.0 * static_cast<double>(total.l1.misses) /
                     static_cast<double>(l1Refs)
               : 0.0;
    total.l2RatePercent = total.l2.missRatePercent();
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsched;

    Cli cli("ablation_topology",
            "topology-aware placement ablation: cross-domain misses "
            "under flat vs topology-derived super-bin placement");
    cli.addInt("slabs", 8, "disjoint data slabs (one block each; even)");
    cli.addInt("threads-per-slab", 4, "threads streaming each slab");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 64);
    cli.parse(argc, argv);

    const auto machine = lsched::bench::machineFromCli(cli);
    const std::size_t slabs =
        static_cast<std::size_t>(cli.getInt("slabs")) & ~std::size_t{1};
    const std::size_t perSlab =
        static_cast<std::size_t>(cli.getInt("threads-per-slab"));
    LSCHED_ASSERT(slabs >= 2, "need at least one slab pair");
    const std::size_t slabBytes = machine.l2Size() / 4;
    const std::size_t slabDoubles = slabBytes / sizeof(double);

    lsched::bench::banner("Ablation", "topology-aware placement",
                          machine);
    std::printf("slabs = %zu x %zu KB (L2/4) in pairs sharing a %zu KB "
                "halo, threads per slab = %zu\n",
                slabs, slabBytes / 1024, slabBytes / 1024, perSlab);

    // The forced synthetic machine: 1 package, 2 L3 clusters, 2 L2
    // groups per cluster, no SMT — 4 cache domains, derived fan 2.
    const std::string spec =
        "1x2x2x1/l2=" + std::to_string(machine.l2Size()) +
        "/l3=" + std::to_string(machine.l2Size() * 4);

    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.cacheBytes = 0; // derived from the topology's L2 size
    cfg.blockBytes = slabBytes;
    cfg.placement = threads::PlacementKind::Hierarchical;
    cfg.superBinFan = 0; // derived: L2 groups per L3 cluster
    cfg.topology = spec;
    threads::LocalityScheduler forced(cfg);

    const auto topo = forced.topologyTree();
    LSCHED_ASSERT(topo != nullptr, "forced spec did not resolve");
    const std::size_t domains = topo->l2Groups();
    const std::size_t fan = forced.config().superBinFan;
    std::printf("%s\n",
                harness::topologySummaryLine(topo.get()).c_str());
    std::printf("derived: cache_bytes = %llu, super_bin_fan = %zu, "
                "domains = %zu\n",
                static_cast<unsigned long long>(
                    forced.config().cacheBytes),
                fan, domains);

    // Discovery against the real host sysfs tree (nullptr on hosts
    // without one — the flat fallback is part of what's exercised).
    threads::SchedulerConfig autoCfg;
    autoCfg.topology = "auto";
    threads::LocalityScheduler discovered(autoCfg);
    std::printf("host %s\n\n",
                harness::topologySummaryLine(
                    discovered.topologyTree().get())
                    .c_str());

    std::vector<double> data(slabs * slabDoubles, 1.0);
    std::vector<double> halos((slabs / 2) * slabDoubles, 1.0);

    // Run the slabs mapped to one cache domain, bins in slab order —
    // each domain is its own hierarchy, so misses a split pair causes
    // in two domains are counted in both.
    const auto runDomain = [&](const std::vector<std::size_t> &members) {
        return harness::simulateOn(machine, [&](workloads::SimModel &m) {
            threads::SchedulerConfig dcfg = cfg;
            threads::LocalityScheduler sched(dcfg);
            std::vector<SlabJob> jobs(members.size() * perSlab);
            m.enterKernel(0);
            std::size_t j = 0;
            for (const std::size_t s : members) {
                for (std::size_t t = 0; t < perSlab; ++t, ++j) {
                    SlabJob &job = jobs[j];
                    job = {&m, &data[s * slabDoubles],
                           &halos[(s / 2) * slabDoubles], slabDoubles,
                           slabDoubles};
                    sched.fork(streamSlab, &job, nullptr,
                               threads::hintOf(job.slab));
                }
            }
            sched.run();
        });
    };

    const auto runArm = [&](auto domainOf) {
        std::vector<harness::SimOutcome> parts;
        for (std::size_t d = 0; d < domains; ++d) {
            std::vector<std::size_t> members;
            for (std::size_t s = 0; s < slabs; ++s) {
                if (domainOf(s) == d)
                    members.push_back(s);
            }
            if (!members.empty())
                parts.push_back(runDomain(members));
        }
        return accumulate(parts);
    };

    // Ideal baseline: every slab in one domain — the compulsory floor
    // the arms are attributed against.
    std::vector<std::size_t> all(slabs);
    for (std::size_t s = 0; s < slabs; ++s)
        all[s] = s;
    const auto ideal = runDomain(all);
    std::printf("  one-domain baseline done\n");

    const auto flat = runArm([&](std::size_t s) { return s % domains; });
    std::printf("  flat (round-robin domains) done\n");

    const auto topoArm = runArm([&](std::size_t s) {
        return static_cast<std::size_t>(threads::TopologyPlacement::domainOf(
            static_cast<std::uint32_t>(s / fan),
            static_cast<std::uint32_t>(s),
            static_cast<std::uint32_t>(domains)));
    });
    std::printf("  topology (domainOf, fan %zu) done\n\n", fan);

    const auto table = harness::cacheTable(
        "Ablation: topology-aware placement (paired slab streaming)",
        {{"OneDomain", ideal}, {"Flat", flat}, {"Topology", topoArm}});
    lsched::bench::emitTable(cli, table);

    const std::uint64_t flatCross = flat.l2.misses - ideal.l2.misses;
    const std::uint64_t topoCross = topoArm.l2.misses - ideal.l2.misses;
    std::printf("\ncross-domain miss attribution (L2 misses over the "
                "one-domain baseline):\n");
    std::printf("  flat placement:     %llu\n",
                static_cast<unsigned long long>(flatCross));
    std::printf("  topology placement: %llu\n",
                static_cast<unsigned long long>(topoCross));
    std::printf("  topology below flat: %s\n",
                topoCross < flatCross ? "yes" : "NO");
    return topoCross < flatCross ? 0 : 1;
}
