/**
 * @file
 * Table 3 reproduction: matrix-multiply memory references and cache
 * misses (thousands) on the R8000-class machine — untiled
 * (interchanged), compiler-tiled stand-in, and threaded, with the
 * compulsory / capacity / conflict split from single-run
 * classification.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "workloads/matmul.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("table3_matmul_cache",
            "Table 3: matmul references and cache misses");
    cli.addInt("n", 256, "matrix dimension");
    cli.addString("ifetch", "analytic",
                  "instruction-fetch model: analytic|full (full "
                  "simulates every fetch; ~10x slower)");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const std::size_t n = cli.getFlag("full")
                              ? 1024
                              : static_cast<std::size_t>(cli.getInt("n"));
    const std::string &ifetch_name = cli.getString("ifetch");
    if (ifetch_name != "analytic" && ifetch_name != "full")
        LSCHED_FATAL("--ifetch must be analytic or full");
    const auto ifetch_mode =
        ifetch_name == "full" ? trace::SynthIFetch::Mode::Full
                              : trace::SynthIFetch::Mode::Analytic;
    const auto machine = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Table 3", "matmul cache simulation", machine);
    std::printf("n = %zu (paper: 1024)\n\n", n);

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    const auto untiled = harness::simulateOn(
        machine,
        [&](SimModel &m) {
            Matrix c(n, n);
            matmulInterchanged(a, b, c, m);
        },
        ifetch_mode);
    std::printf("  untiled done\n");
    const auto tiled = harness::simulateOn(
        machine,
        [&](SimModel &m) {
            Matrix c(n, n);
            matmulTiledTransposed(a, b, c, m,
                                  machine.caches.l1d.sizeBytes,
                                  machine.l2Size());
        },
        ifetch_mode);
    std::printf("  tiled done\n");
    const auto threaded = harness::simulateOn(
        machine,
        [&](SimModel &m) {
            Matrix c(n, n);
            threads::SchedulerConfig cfg;
            cfg.dims = 2;
            cfg.cacheBytes = machine.l2Size();
            cfg.blockBytes = machine.l2Size() / 2;
            threads::LocalityScheduler sched(cfg);
            matmulThreaded(a, b, c, sched, m);
        },
        ifetch_mode);
    std::printf("  threaded done\n\n");

    const auto table = harness::cacheTable(
        "Table 3: matmul memory references and cache misses "
        "(thousands)",
        {{"Untiled", untiled}, {"Tiled", tiled}, {"Threaded", threaded}});
    lsched::bench::emitTable(cli, table);

    std::printf("\npaper (thousands): untiled L2=68,225 (capacity "
                "68,025); tiled L2=738; threaded L2=1,872\n");
    std::printf("shape checks:\n");
    std::printf("  untiled capacity dominates: %s\n",
                untiled.l2.capacityMisses > untiled.l2.misses * 8 / 10
                    ? "yes"
                    : "NO");
    std::printf("  tiled removes >90%% of untiled L2 misses: %s "
                "(%.1f%%; paper 98.9%%)\n",
                tiled.l2.misses * 10 < untiled.l2.misses ? "yes" : "NO",
                100.0 * (1.0 - static_cast<double>(tiled.l2.misses) /
                                   static_cast<double>(
                                       untiled.l2.misses)));
    std::printf("  threaded removes >85%% of untiled L2 misses: %s "
                "(%.1f%%; paper 97.3%%)\n",
                threaded.l2.misses * 100 < untiled.l2.misses * 15
                    ? "yes"
                    : "NO",
                100.0 *
                    (1.0 - static_cast<double>(threaded.l2.misses) /
                               static_cast<double>(untiled.l2.misses)));
    std::printf("  tiled reduces refs vs untiled: %s\n",
                tiled.dataRefs < untiled.dataRefs ? "yes" : "NO");
    return 0;
}
