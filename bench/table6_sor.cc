/**
 * @file
 * Table 6 reproduction: SOR performance for the untiled, hand-tiled
 * (time-skewed, s = 18) and threaded versions (paper: n = 2005,
 * t = 30).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "support/cli.hh"
#include "support/timer.hh"
#include "workloads/sor.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

template <class M>
void
runVariant(const std::string &v, Matrix &a, unsigned t, std::size_t s,
           std::uint64_t l2, M &model)
{
    if (v == "Untiled") {
        sorUntiled(a, t, model);
    } else if (v == "Hand tiled") {
        sorHandTiled(a, t, model, s);
    } else {
        threads::SchedulerConfig cfg;
        cfg.cacheBytes = l2;
        threads::LocalityScheduler sched(cfg);
        sorThreaded(a, t, sched, model);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("table6_sor", "Table 6: SOR performance");
    cli.addInt("n", 501, "array dimension");
    cli.addInt("t", 8,
               "SOR iterations (paper: 30; the scaled default keeps "
               "the paper's (s+2t)*n*8 : L2 tiling-margin ratio)");
    cli.addInt("s", 4, "hand-tiling tile size (paper: 18)");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli);
    cli.parse(argc, argv);

    const bool full = cli.getFlag("full");
    const std::size_t n =
        full ? 2005 : static_cast<std::size_t>(cli.getInt("n"));
    const auto t =
        full ? 30u : static_cast<unsigned>(cli.getInt("t"));
    const auto s =
        full ? 18u : static_cast<std::size_t>(cli.getInt("s"));
    const auto r8k = lsched::bench::machineFromCli(cli);
    auto r10k = machine::scaled(
        machine::indigo2ImpactR10000(),
        cli.getFlag("full") ? 1u
                            : static_cast<unsigned>(cli.getInt("scale")));

    lsched::bench::banner("Table 6", "SOR performance", r8k);
    std::printf("n = %zu, t = %u, s = %zu (paper: 2005, 30, 18)\n\n", n,
                t, s);

    const std::vector<std::string> variants{"Untiled", "Hand tiled",
                                            "Threaded"};
    std::vector<harness::PerfRow> rows;
    for (const auto &v : variants) {
        harness::PerfRow row;
        row.name = v;
        for (const auto &mc : {r8k, r10k}) {
            const auto outcome =
                harness::simulateOn(mc, [&](SimModel &m) {
                    Matrix a = sorInit(n, 5);
                    runVariant(v, a, t, s, mc.l2Size(), m);
                });
            row.estimatedSeconds.push_back(
                outcome.estimatedSeconds(mc));
        }
        {
            Matrix a = sorInit(n, 5);
            NativeModel native;
            CpuTimer timer;
            runVariant(v, a, t, s, r8k.l2Size(), native);
            row.hostSeconds = timer.seconds();
        }
        rows.push_back(std::move(row));
        std::printf("  %-11s done\n", v.c_str());
    }

    {
        const auto table = harness::perfTable(
                    "Table 6 (estimated seconds, crude timing model)",
                    {"R8000-class", "R10000-class"}, rows);
        std::printf("\n");
        lsched::bench::emitTable(cli, table);
        std::printf("\n");
    }
    std::printf("paper (R8000/R10000): untiled 30.54/12.81, hand "
                "tiled 26.90/4.27, threaded 23.10/4.31\n");
    std::printf("shape: hand-tiled and threaded beat untiled; the two "
                "are close to each other\n");
    return 0;
}
