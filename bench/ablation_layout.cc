/**
 * @file
 * Ablation H: computation reordering vs data reordering on N-body.
 *
 * The paper's related-work section separates two locality families:
 * rearranging *data structures* and reordering *computation* (its
 * contribution). Barnes-Hut admits both: locality-scheduled force
 * threads (computation) and a DFS rewrite of the octree node pool
 * (data). This bench crosses the two, showing that they attack the
 * same misses from different ends and compose.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "support/cli.hh"
#include "support/table.hh"
#include "workloads/nbody.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    Cli cli("ablation_layout",
            "Ablation: computation vs data reordering (N-body)");
    cli.addInt("bodies", 8000, "number of bodies");
    cli.addDouble("theta", 0.6, "opening angle");
    lsched::bench::addOutputOptions(cli);
    lsched::bench::addMachineOptions(cli, 8);
    cli.parse(argc, argv);

    NBodyConfig cfg;
    cfg.bodies = cli.getFlag("full")
                     ? 64000
                     : static_cast<std::size_t>(cli.getInt("bodies"));
    cfg.theta = cli.getDouble("theta");
    const auto machine = lsched::bench::machineFromCli(cli);
    lsched::bench::banner("Ablation H",
                          "computation vs data reordering", machine);
    std::printf("bodies = %zu, one iteration\n\n", cfg.bodies);

    auto run = [&](bool threaded, bool dfs) {
        return harness::simulateOn(machine, [&](SimModel &m) {
            BarnesHut sim(cfg);
            if (!threaded) {
                sim.stepUnthreaded(m, dfs);
                return;
            }
            threads::SchedulerConfig scfg;
            scfg.dims = 3;
            scfg.cacheBytes = machine.l2Size();
            threads::LocalityScheduler sched(scfg);
            sim.stepThreaded(sched, m, 4 * machine.l2Size() / 3, dfs);
        });
    };

    TextTable table("L2 misses (thousands)",
                    {"configuration", "L2 misses", "capacity",
                     "conflict"});
    struct Case
    {
        const char *name;
        bool threaded;
        bool dfs;
    };
    for (const Case c :
         {Case{"baseline (neither)", false, false},
          Case{"data reordering only (DFS tree)", false, true},
          Case{"computation reordering only (threads)", true, false},
          Case{"both", true, true}}) {
        const auto outcome = run(c.threaded, c.dfs);
        table.addRow({c.name, TextTable::thousands(outcome.l2.misses),
                      TextTable::thousands(outcome.l2.capacityMisses),
                      TextTable::thousands(outcome.l2.conflictMisses)});
        std::printf("  %s done\n", c.name);
    }

    std::printf("\n");
    lsched::bench::emitTable(cli, table);
    std::printf("\nexpected: computation reordering (the paper's "
                "method) is the dominant win — a DFS data layout "
                "alone barely helps, because bodies still arrive in "
                "arbitrary order and each walk's footprint exceeds "
                "the cache; once the walks are grouped, the layout "
                "shaves the remaining capacity misses. The two "
                "compose, with scheduling doing the heavy lifting.\n");
    return 0;
}
