# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "64")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_locality "/root/repo/build/examples/matmul_locality" "64" "128")
set_tests_properties(example_matmul_locality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nbody_sim "/root/repo/build/examples/nbody_sim" "1024" "2")
set_tests_properties(example_nbody_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_explorer "/root/repo/build/examples/cache_explorer" "r8000" "1024")
set_tests_properties(example_cache_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multigrid_solver "/root/repo/build/examples/multigrid_solver" "63" "4")
set_tests_properties(example_multigrid_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fiber_pipeline "/root/repo/build/examples/fiber_pipeline" "16" "4096")
set_tests_properties(example_fiber_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plane_visualizer_matmul "/root/repo/build/examples/plane_visualizer" "matmul" "64")
set_tests_properties(example_plane_visualizer_matmul PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plane_visualizer_nbody "/root/repo/build/examples/plane_visualizer" "nbody" "2048")
set_tests_properties(example_plane_visualizer_nbody PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
