
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsched_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/lsched_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lsched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsched_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/lsched_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/fibers/CMakeFiles/lsched_fibers.dir/DependInfo.cmake"
  "/root/repo/build/src/perfcount/CMakeFiles/lsched_perfcount.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/lsched_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
