# Empty compiler generated dependencies file for nbody_sim.
# This may be replaced when dependencies are built.
