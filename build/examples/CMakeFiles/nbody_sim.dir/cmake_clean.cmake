file(REMOVE_RECURSE
  "CMakeFiles/nbody_sim.dir/nbody_sim.cpp.o"
  "CMakeFiles/nbody_sim.dir/nbody_sim.cpp.o.d"
  "nbody_sim"
  "nbody_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
