# Empty compiler generated dependencies file for multigrid_solver.
# This may be replaced when dependencies are built.
