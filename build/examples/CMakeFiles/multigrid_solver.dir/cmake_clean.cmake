file(REMOVE_RECURSE
  "CMakeFiles/multigrid_solver.dir/multigrid_solver.cpp.o"
  "CMakeFiles/multigrid_solver.dir/multigrid_solver.cpp.o.d"
  "multigrid_solver"
  "multigrid_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigrid_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
