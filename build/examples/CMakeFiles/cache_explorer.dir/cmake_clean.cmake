file(REMOVE_RECURSE
  "CMakeFiles/cache_explorer.dir/cache_explorer.cpp.o"
  "CMakeFiles/cache_explorer.dir/cache_explorer.cpp.o.d"
  "cache_explorer"
  "cache_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
