# Empty dependencies file for plane_visualizer.
# This may be replaced when dependencies are built.
