file(REMOVE_RECURSE
  "CMakeFiles/plane_visualizer.dir/plane_visualizer.cpp.o"
  "CMakeFiles/plane_visualizer.dir/plane_visualizer.cpp.o.d"
  "plane_visualizer"
  "plane_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plane_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
