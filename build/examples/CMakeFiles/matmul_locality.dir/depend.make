# Empty dependencies file for matmul_locality.
# This may be replaced when dependencies are built.
