file(REMOVE_RECURSE
  "CMakeFiles/matmul_locality.dir/matmul_locality.cpp.o"
  "CMakeFiles/matmul_locality.dir/matmul_locality.cpp.o.d"
  "matmul_locality"
  "matmul_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
