# Empty compiler generated dependencies file for fiber_pipeline.
# This may be replaced when dependencies are built.
