file(REMOVE_RECURSE
  "CMakeFiles/fiber_pipeline.dir/fiber_pipeline.cpp.o"
  "CMakeFiles/fiber_pipeline.dir/fiber_pipeline.cpp.o.d"
  "fiber_pipeline"
  "fiber_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiber_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
