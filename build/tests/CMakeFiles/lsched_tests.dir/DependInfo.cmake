
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_align.cc" "tests/CMakeFiles/lsched_tests.dir/test_align.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_align.cc.o.d"
  "/root/repo/tests/test_analytic_bounds.cc" "tests/CMakeFiles/lsched_tests.dir/test_analytic_bounds.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_analytic_bounds.cc.o.d"
  "/root/repo/tests/test_block_map.cc" "tests/CMakeFiles/lsched_tests.dir/test_block_map.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_block_map.cc.o.d"
  "/root/repo/tests/test_c_api.cc" "tests/CMakeFiles/lsched_tests.dir/test_c_api.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_c_api.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/lsched_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_policies.cc" "tests/CMakeFiles/lsched_tests.dir/test_cache_policies.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_cache_policies.cc.o.d"
  "/root/repo/tests/test_classify.cc" "tests/CMakeFiles/lsched_tests.dir/test_classify.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_classify.cc.o.d"
  "/root/repo/tests/test_cli.cc" "tests/CMakeFiles/lsched_tests.dir/test_cli.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_cli.cc.o.d"
  "/root/repo/tests/test_din.cc" "tests/CMakeFiles/lsched_tests.dir/test_din.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_din.cc.o.d"
  "/root/repo/tests/test_fiber_workload.cc" "tests/CMakeFiles/lsched_tests.dir/test_fiber_workload.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_fiber_workload.cc.o.d"
  "/root/repo/tests/test_fibers.cc" "tests/CMakeFiles/lsched_tests.dir/test_fibers.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_fibers.cc.o.d"
  "/root/repo/tests/test_fortran_api.cc" "tests/CMakeFiles/lsched_tests.dir/test_fortran_api.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_fortran_api.cc.o.d"
  "/root/repo/tests/test_fully_assoc.cc" "tests/CMakeFiles/lsched_tests.dir/test_fully_assoc.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_fully_assoc.cc.o.d"
  "/root/repo/tests/test_general_scheduler.cc" "tests/CMakeFiles/lsched_tests.dir/test_general_scheduler.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_general_scheduler.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/lsched_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_hash_table.cc" "tests/CMakeFiles/lsched_tests.dir/test_hash_table.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_hash_table.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/lsched_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_ifetch_fidelity.cc" "tests/CMakeFiles/lsched_tests.dir/test_ifetch_fidelity.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_ifetch_fidelity.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/lsched_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/lsched_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_matmul.cc" "tests/CMakeFiles/lsched_tests.dir/test_matmul.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_matmul.cc.o.d"
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/lsched_tests.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_matrix.cc.o.d"
  "/root/repo/tests/test_multigrid.cc" "tests/CMakeFiles/lsched_tests.dir/test_multigrid.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_multigrid.cc.o.d"
  "/root/repo/tests/test_nbody.cc" "tests/CMakeFiles/lsched_tests.dir/test_nbody.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_nbody.cc.o.d"
  "/root/repo/tests/test_nbody_layout.cc" "tests/CMakeFiles/lsched_tests.dir/test_nbody_layout.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_nbody_layout.cc.o.d"
  "/root/repo/tests/test_page_map.cc" "tests/CMakeFiles/lsched_tests.dir/test_page_map.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_page_map.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/lsched_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_pde.cc" "tests/CMakeFiles/lsched_tests.dir/test_pde.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_pde.cc.o.d"
  "/root/repo/tests/test_perfcount.cc" "tests/CMakeFiles/lsched_tests.dir/test_perfcount.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_perfcount.cc.o.d"
  "/root/repo/tests/test_prng.cc" "tests/CMakeFiles/lsched_tests.dir/test_prng.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_prng.cc.o.d"
  "/root/repo/tests/test_property_cache.cc" "tests/CMakeFiles/lsched_tests.dir/test_property_cache.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_property_cache.cc.o.d"
  "/root/repo/tests/test_property_hierarchy.cc" "tests/CMakeFiles/lsched_tests.dir/test_property_hierarchy.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_property_hierarchy.cc.o.d"
  "/root/repo/tests/test_property_scheduler.cc" "tests/CMakeFiles/lsched_tests.dir/test_property_scheduler.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_property_scheduler.cc.o.d"
  "/root/repo/tests/test_property_statemachine.cc" "tests/CMakeFiles/lsched_tests.dir/test_property_statemachine.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_property_statemachine.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/lsched_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_scheduler_tours.cc" "tests/CMakeFiles/lsched_tests.dir/test_scheduler_tours.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_scheduler_tours.cc.o.d"
  "/root/repo/tests/test_sor.cc" "tests/CMakeFiles/lsched_tests.dir/test_sor.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_sor.cc.o.d"
  "/root/repo/tests/test_spmv.cc" "tests/CMakeFiles/lsched_tests.dir/test_spmv.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_spmv.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/lsched_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_synth_ifetch.cc" "tests/CMakeFiles/lsched_tests.dir/test_synth_ifetch.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_synth_ifetch.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/lsched_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_thread_group.cc" "tests/CMakeFiles/lsched_tests.dir/test_thread_group.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_thread_group.cc.o.d"
  "/root/repo/tests/test_timer.cc" "tests/CMakeFiles/lsched_tests.dir/test_timer.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_timer.cc.o.d"
  "/root/repo/tests/test_timing_model.cc" "tests/CMakeFiles/lsched_tests.dir/test_timing_model.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_timing_model.cc.o.d"
  "/root/repo/tests/test_tour.cc" "tests/CMakeFiles/lsched_tests.dir/test_tour.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_tour.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/lsched_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trace_pipeline.cc" "tests/CMakeFiles/lsched_tests.dir/test_trace_pipeline.cc.o" "gcc" "tests/CMakeFiles/lsched_tests.dir/test_trace_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsched_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/lsched_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lsched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lsched_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/lsched_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/fibers/CMakeFiles/lsched_fibers.dir/DependInfo.cmake"
  "/root/repo/build/src/perfcount/CMakeFiles/lsched_perfcount.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/lsched_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
