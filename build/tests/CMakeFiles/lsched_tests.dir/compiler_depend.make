# Empty compiler generated dependencies file for lsched_tests.
# This may be replaced when dependencies are built.
