# Empty dependencies file for table5_pde_cache.
# This may be replaced when dependencies are built.
