file(REMOVE_RECURSE
  "CMakeFiles/table5_pde_cache.dir/table5_pde_cache.cc.o"
  "CMakeFiles/table5_pde_cache.dir/table5_pde_cache.cc.o.d"
  "table5_pde_cache"
  "table5_pde_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pde_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
