# Empty dependencies file for table3_matmul_cache.
# This may be replaced when dependencies are built.
