file(REMOVE_RECURSE
  "CMakeFiles/table3_matmul_cache.dir/table3_matmul_cache.cc.o"
  "CMakeFiles/table3_matmul_cache.dir/table3_matmul_cache.cc.o.d"
  "table3_matmul_cache"
  "table3_matmul_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_matmul_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
