# Empty compiler generated dependencies file for table8_nbody.
# This may be replaced when dependencies are built.
