file(REMOVE_RECURSE
  "CMakeFiles/table8_nbody.dir/table8_nbody.cc.o"
  "CMakeFiles/table8_nbody.dir/table8_nbody.cc.o.d"
  "table8_nbody"
  "table8_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
