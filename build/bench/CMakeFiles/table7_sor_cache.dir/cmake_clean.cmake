file(REMOVE_RECURSE
  "CMakeFiles/table7_sor_cache.dir/table7_sor_cache.cc.o"
  "CMakeFiles/table7_sor_cache.dir/table7_sor_cache.cc.o.d"
  "table7_sor_cache"
  "table7_sor_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_sor_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
