# Empty compiler generated dependencies file for table7_sor_cache.
# This may be replaced when dependencies are built.
