# Empty compiler generated dependencies file for table2_matmul.
# This may be replaced when dependencies are built.
