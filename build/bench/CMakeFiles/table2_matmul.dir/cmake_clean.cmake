file(REMOVE_RECURSE
  "CMakeFiles/table2_matmul.dir/table2_matmul.cc.o"
  "CMakeFiles/table2_matmul.dir/table2_matmul.cc.o.d"
  "table2_matmul"
  "table2_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
