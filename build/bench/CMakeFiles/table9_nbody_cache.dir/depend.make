# Empty dependencies file for table9_nbody_cache.
# This may be replaced when dependencies are built.
