file(REMOVE_RECURSE
  "CMakeFiles/table9_nbody_cache.dir/table9_nbody_cache.cc.o"
  "CMakeFiles/table9_nbody_cache.dir/table9_nbody_cache.cc.o.d"
  "table9_nbody_cache"
  "table9_nbody_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_nbody_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
