file(REMOVE_RECURSE
  "CMakeFiles/fig4_blocksize.dir/fig4_blocksize.cc.o"
  "CMakeFiles/fig4_blocksize.dir/fig4_blocksize.cc.o.d"
  "fig4_blocksize"
  "fig4_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
