# Empty compiler generated dependencies file for fig4_blocksize.
# This may be replaced when dependencies are built.
